//! Workspace facade: re-exports every crate of the ChameleMon reproduction
//! so examples and integration tests can use one dependency.
//!
//! The individual crates are the real API surface:
//!
//! * [`chamelemon`] — the system (data plane + control plane).
//! * [`chm_fermat`] — FermatSketch.
//! * [`chm_tower`] — TowerSketch + estimators.
//! * [`chm_baselines`] — every competitor from the paper's evaluation.
//! * [`chm_workloads`] — traces, distributions, loss plans.
//! * [`chm_netsim`] — topology, epochs, clocks, collection model.
//! * [`chm_obs`] — deterministic telemetry core (metrics, spans, exposition).
//! * [`chm_scenarios`] — adversarial scenario engine + golden matrix.
//! * [`chm_serve`] — fault-injected streaming controller runtime.
//! * [`chm_common`] — hashing, modular arithmetic, flow IDs, metrics.

#![forbid(unsafe_code)]

pub use chamelemon;
pub use chm_baselines;
pub use chm_common;
pub use chm_fermat;
pub use chm_netsim;
pub use chm_obs;
pub use chm_scenarios;
pub use chm_serve;
pub use chm_tower;
pub use chm_workloads;
