//! Loss forensics: the §5.1 head-to-head — FermatSketch vs FlowRadar vs
//! LossRadar on a single monitored link.
//!
//! Demonstrates FermatSketch's defining property: memory proportional to the
//! number of *victim flows*, not to the number of flows (FlowRadar) or lost
//! packets (LossRadar).
//!
//! Run with: `cargo run --release --example loss_forensics`

use chm_baselines::{FlowRadar, LossDetector, LossRadar};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_workloads::{caida_like_trace, LossPlan, VictimSelection};
use std::collections::HashMap;

/// Replays the trace through a LossDetector.
fn replay<D: LossDetector<u32>>(
    det: &mut D,
    delivered: &HashMap<u32, u64>,
    lost: &HashMap<u32, u64>,
) {
    for (&f, &d) in delivered {
        let l = lost.get(&f).copied().unwrap_or(0);
        for seq in 0..(d + l) {
            det.observe_upstream(&f, seq as u32);
            if seq >= l {
                det.observe_downstream(&f, seq as u32);
            }
        }
    }
}

fn main() {
    // The CAIDA-like setup of §5.1: largest 10K flows over the link, the
    // largest 100 are victims at 10% loss.
    let trace = caida_like_trace(100_000, 7).top_n(10_000);
    let plan = LossPlan::build(&trace, VictimSelection::LargestN(100), 0.10, 8);
    let (delivered, lost) = plan.apply_to_trace(&trace, 9);
    let lost_pkts: u64 = lost.values().sum();
    println!(
        "link carries {} flows, {} packets; {} victim flows, {} lost packets\n",
        trace.num_flows(),
        trace.total_packets(),
        lost.len(),
        lost_pkts
    );

    // --- FermatSketch: sized by victim flows -----------------------------
    let buckets = ((lost.len() as f64 * 1.43 / 3.0).ceil() as usize).max(8);
    let cfg = FermatConfig::standard(buckets, 42);
    let mut up = FermatSketch::<u32>::new(cfg);
    let mut down = FermatSketch::<u32>::new(cfg);
    for (&f, &d) in &delivered {
        let l = lost.get(&f).copied().unwrap_or(0);
        up.insert_weighted(&f, (d + l) as i64);
        down.insert_weighted(&f, d as i64);
    }
    up.sub_assign_sketch(&down);
    let decoded = up.decode();
    let fermat_ok = decoded.success
        && decoded.flows.len() == lost.len()
        && decoded.flows.iter().all(|(f, &c)| lost.get(f) == Some(&(c as u64)));
    println!(
        "FermatSketch : {:8.1} KB  -> decode {}  ({} victims recovered)",
        cfg.logical_memory_bytes::<u32>() / 1024.0,
        if fermat_ok { "OK " } else { "FAIL" },
        decoded.flows.len()
    );

    // --- FlowRadar: sized by total flows (cells ≈ 2× flows so the decode
    // sits comfortably above the peeling threshold) --------------------
    let fr_bytes = (trace.num_flows() as f64 * 2.0 * 12.0 / 0.9) as usize;
    let mut fr = FlowRadar::<u32>::new(fr_bytes, 43);
    replay(&mut fr, &delivered, &lost);
    let fr_losses = fr.decode_losses();
    println!(
        "FlowRadar    : {:8.1} KB  -> decode {}  ({} victims recovered)",
        fr.memory_bytes() / 1024.0,
        if fr_losses.is_some() { "OK " } else { "FAIL" },
        fr_losses.as_ref().map(|m| m.len()).unwrap_or(0)
    );

    // --- LossRadar: sized by lost packets --------------------------------
    let lr_bytes = (lost_pkts as f64 * 1.43 * 10.0) as usize;
    let mut lr = LossRadar::<u32>::new(lr_bytes, 44);
    replay(&mut lr, &delivered, &lost);
    let lr_losses = lr.decode_losses();
    println!(
        "LossRadar    : {:8.1} KB  -> decode {}  ({} victims recovered)",
        lr.memory_bytes() / 1024.0,
        if lr_losses.is_some() { "OK " } else { "FAIL" },
        lr_losses.as_ref().map(|m| m.len()).unwrap_or(0)
    );

    println!(
        "\nFermatSketch monitors the same losses in ~{:.0}x less memory than \
         FlowRadar and ~{:.0}x less than LossRadar.",
        fr.memory_bytes() / cfg.logical_memory_bytes::<u32>(),
        lr.memory_bytes() / cfg.logical_memory_bytes::<u32>()
    );
}
