//! Quickstart: deploy ChameleMon on the simulated 4-edge testbed, run a few
//! epochs of a DCTCP workload with injected losses, and print what the
//! controller sees.
//!
//! Run with: `cargo run --release --example quickstart`

use chamelemon::config::DataPlaneConfig;
use chamelemon::ChameleMon;
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

fn main() {
    // A data plane an eighth of the testbed's size — plenty for 2K flows.
    let mut system = ChameleMon::testbed(DataPlaneConfig::small(0x5eed));

    // 2000 UDP flows between the 8 hosts, DCTCP flow-size distribution.
    let trace = testbed_trace(WorkloadKind::Dctcp, 2_000, 8, 1);
    // 5% of flows are victims losing ~2% of their packets.
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.05), 0.02, 2);

    println!("flows: {}   packets: {}", trace.num_flows(), trace.total_packets());
    println!("victim flows planned: {}\n", plan.num_victims());

    for epoch in 0..5 {
        let out = system.run_epoch(&trace, &plan);
        let rt = &out.config_in_effect;
        println!(
            "epoch {epoch}: state={:?}  Th={} Tl={} sample={:.2}  \
             partition HH/HL/LL = {}/{}/{}",
            out.analysis.state_during,
            rt.th,
            rt.tl,
            rt.sample_rate(),
            rt.partition.m_hh,
            rt.partition.m_hl,
            rt.partition.m_ll,
        );
        println!(
            "         victims reported: {:4}  (truth {:4})   est flows: {:.0}",
            out.analysis.loss_report.len(),
            out.report.lost.len(),
            out.analysis.est_flows,
        );
        // Verify per-flow loss counts on the last epoch.
        if epoch == 4 {
            let exact = out
                .report
                .lost
                .iter()
                .filter(|(f, &l)| out.analysis.loss_report.get(f) == Some(&l))
                .count();
            println!(
                "\nper-flow loss counts exactly recovered: {exact}/{}",
                out.report.lost.len()
            );
        }
    }
}
