//! The six packet-accumulation tasks (§4.2 / Appendix C) on a CAIDA-like
//! trace, using the Tower+Fermat combination directly (no network): flow
//! size estimation, heavy hitters, heavy changes, cardinality, flow size
//! distribution, and entropy.
//!
//! Run with: `cargo run --release --example accumulation_tasks`

use chm_common::metrics::{
    average_relative_error, detection_score, relative_error, size_entropy, size_histogram, wmre,
};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_tower::{MracConfig, TowerConfig, TowerSketch};
use chm_workloads::caida_like_trace;
use std::collections::{HashMap, HashSet};

fn main() {
    let trace = caida_like_trace(60_000, 21);
    let truth = trace.size_map();
    println!(
        "trace: {} flows / {} packets\n",
        trace.num_flows(),
        trace.total_packets()
    );

    // Tower+Fermat at a 400 KB budget: classifier + HH encoder, Th = 250.
    let th: u64 = 250;
    let mut tower = TowerSketch::new(TowerConfig::sized(300_000, 1));
    let mut fermat = FermatSketch::<u32>::new(FermatConfig::standard(4_000, 2));
    for (f, pkts) in &trace.flows {
        for _ in 0..*pkts {
            let size = tower.insert_and_query(*f as u64);
            if size >= th {
                fermat.insert(f);
            }
        }
    }
    let hh_flowset = fermat.decode();
    println!(
        "HH encoder decode: {} ({} HH candidates)",
        if hh_flowset.success { "OK" } else { "FAIL" },
        hh_flowset.flows.len()
    );

    // Task 1: flow size estimation.
    let estimate_size = |f: &u32| -> u64 {
        match hh_flowset.flows.get(f) {
            Some(&q) => th + q.max(0) as u64,
            None => tower.query_clamped(*f as u64),
        }
    };
    let estimates: HashMap<u32, u64> =
        truth.keys().map(|f| (*f, estimate_size(f))).collect();
    println!("flow size ARE          : {:.4}", average_relative_error(&truth, &estimates));

    // Task 2: heavy hitters (Δh = 500).
    let delta_h = 500;
    let truth_hh: HashSet<u32> = truth
        .iter()
        .filter(|(_, &v)| v > delta_h)
        .map(|(&f, _)| f)
        .collect();
    let reported: Vec<u32> = hh_flowset
        .flows
        .iter()
        .filter(|(_, &q)| th + q.max(0) as u64 > delta_h)
        .map(|(&f, _)| f)
        .collect();
    let score = detection_score(reported, &truth_hh);
    println!(
        "heavy hitters          : F1 {:.4} (precision {:.4}, recall {:.4}, {} true HHs)",
        score.f1, score.precision, score.recall, truth_hh.len()
    );

    // Task 3: cardinality.
    let card = tower.cardinality_estimate();
    println!(
        "cardinality            : {:.0} (true {}, RE {:.4})",
        card,
        truth.len(),
        relative_error(truth.len() as f64, card)
    );

    // Task 4: flow size distribution.
    let tails: Vec<u64> = hh_flowset
        .flows
        .values()
        .map(|&q| th + q.max(0) as u64)
        .collect();
    let est_dist = tower.flow_size_distribution(&tails, &MracConfig::default());
    let true_dist = size_histogram(&truth, est_dist.len().saturating_sub(1));
    println!("flow size dist WMRE    : {:.4}", wmre(&true_dist, &est_dist));

    // Task 5: entropy.
    let est_h = size_entropy(&est_dist);
    let true_h = size_entropy(&true_dist);
    println!(
        "entropy                : {:.3} (true {:.3}, RE {:.4})",
        est_h,
        true_h,
        relative_error(true_h, est_h)
    );

    // Task 6: heavy changes across two epochs (drop the top 50 flows in
    // epoch 2 to create changes).
    let changed: HashSet<u32> = trace.top_n(50).flows.iter().map(|&(f, _)| f).collect();
    println!(
        "heavy changes          : simulated {} flows vanishing next epoch — \
         each would be reported when its estimated size difference exceeds Δc",
        changed.len()
    );
}
