//! Attention shifting live: degrade the network from healthy to ill and
//! back, and watch ChameleMon re-divide its memory, move its thresholds,
//! and adjust its sample rate — a miniature of Figure 9.
//!
//! Run with: `cargo run --release --example attention_demo`

use chamelemon::config::DataPlaneConfig;
use chamelemon::ChameleMon;
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

fn main() {
    let mut system = ChameleMon::testbed(DataPlaneConfig::small(0xa77e));
    let trace = testbed_trace(WorkloadKind::Dctcp, 5_000, 8, 1);

    // Five phases of five epochs: victim ratio ramps 1% → 10% → 40% → 10% → 1%.
    let phases = [0.01, 0.10, 0.40, 0.10, 0.01];
    println!(
        "{:>5} {:>7} {:>9} {:>22} {:>5} {:>5} {:>7}",
        "epoch", "phase", "state", "memory HH/HL/LL", "Th", "Tl", "sample"
    );
    for (pi, &ratio) in phases.iter().enumerate() {
        let plan = LossPlan::build(
            &trace,
            VictimSelection::RandomRatio(ratio),
            0.05,
            100 + pi as u64,
        );
        for _ in 0..5 {
            let out = system.run_epoch(&trace, &plan);
            let rt = &out.config_in_effect;
            let p = rt.partition;
            let total = p.total() as f64;
            println!(
                "{:>5} {:>6.0}% {:>9} {:>7.0}%/{:>4.0}%/{:>4.0}% {:>5} {:>5} {:>6.2}",
                out.report.epoch,
                ratio * 100.0,
                format!("{:?}", out.analysis.state_during),
                p.m_hh as f64 / total * 100.0,
                p.m_hl as f64 / total * 100.0,
                p.m_ll as f64 / total * 100.0,
                rt.th,
                rt.tl,
                rt.sample_rate(),
            );
        }
    }
    println!(
        "\nfinal state: {:?} (expected Healthy after the network recovers)",
        system.controller.state()
    );
}
