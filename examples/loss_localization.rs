//! Loss localization: combine ChameleMon's *who* (which flows lost how many
//! packets, from the edge-deployed Fermat encoders) with the detailed
//! fat-tree simulation's *where* (which switch dropped them) — the
//! complementary visibility the paper attributes to per-link deployments
//! like LossRadar (§6).
//!
//! Run with: `cargo run --release --example loss_localization`

use chm_netsim::{run_detailed, FatTree, SwitchRole};
use chm_workloads::trace::ip_host;
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

fn main() {
    let topo = FatTree::testbed();
    let trace = testbed_trace(WorkloadKind::Hadoop, 3_000, 8, 7);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.08), 0.05, 8);

    let report = run_detailed(
        &topo,
        &trace,
        &plan,
        |f| (ip_host(f.src_ip) as usize, ip_host(f.dst_ip) as usize),
        9,
    );

    println!(
        "{} packets delivered, {} dropped across {} victim flows\n",
        report.total_delivered(),
        report.total_dropped(),
        report.lost.len()
    );

    println!("losses attributed per switch:");
    let mut rows: Vec<_> = report.dropped_at.iter().collect();
    rows.sort_by_key(|(s, _)| (format!("{:?}", s.role), s.index));
    for (switch, drops) in rows {
        let fwd = report.forwarded.get(switch).copied().unwrap_or(0);
        let rate = *drops as f64 / (fwd + drops) as f64 * 100.0;
        println!(
            "  {:>12} {:>2}: {:>6} dropped / {:>8} seen  ({:.2}%)",
            match switch.role {
                SwitchRole::Edge => "edge",
                SwitchRole::Aggregation => "aggregation",
                SwitchRole::Core => "core",
            },
            switch.index,
            drops,
            fwd + drops,
            rate
        );
    }

    // Route-length mix sanity: the 2-pod fat-tree yields 1/3/5-switch paths.
    println!("\nroute length histogram (switches on path -> packets):");
    let mut hops: Vec<_> = report.hops_histogram.iter().collect();
    hops.sort();
    for (h, n) in hops {
        println!("  {h} switches: {n} packets");
    }

    // The worst victim and where it bled.
    if let Some((flow, points)) = report.lost.iter().max_by_key(|(_, p)| p.len()) {
        println!(
            "\nworst victim {:?} lost {} packets; first three drop points:",
            flow,
            points.len()
        );
        for p in points.iter().take(3) {
            println!("  hop {} at {:?} {}", p.hop, p.switch.role, p.switch.index);
        }
    }
}
