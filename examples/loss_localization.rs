//! Loss localization, end to end: a browned-out core switch drops packets
//! via the per-link congestion model, the fabric replay attributes every
//! drop to the switch that caused it (ground truth), and the ChameleMon
//! controller — which only sees the edge sketches — runs its localization
//! pass to rank the suspect switches from the victims' ingress/egress loss
//! asymmetry. The example prints both sides and scores the match.
//!
//! Run with: `cargo run --release --example loss_localization`

use chm_scenarios::{ReplayMode, Scenario, ScenarioStack};
use chm_netsim::SwitchRole;
use chm_workloads::VictimSelection;

fn main() {
    // A core brownout: core 0's out-links run at 40% capacity. No loss
    // plan at all — every drop is congestion, attributed to a real switch.
    let s = Scenario::builder("brownout-demo")
        .seed(0xC0DE)
        .flows(2_000)
        .epochs(4)
        .loss(VictimSelection::RandomN(0), 0.0)
        .derate_switch(SwitchRole::Core, 0, 0.4)
        .build();

    let mut stack = ScenarioStack::new(&s);
    let base = s.base_trace();
    let mut last = None;
    for _ in 0..s.epochs {
        let t = stack.step_epoch(&s, &base, ReplayMode::Burst);
        println!(
            "epoch {}: {} victims (controller found {}), loc hit@1 {:.2}, hit@3 {:.2}",
            t.metrics.epoch,
            t.metrics.true_victims,
            t.metrics.reported_victims,
            t.metrics.loc_top1,
            t.metrics.loc_top3,
        );
        last = Some(t);
    }
    let t = last.expect("at least one epoch");

    println!("\nground truth — losses attributed per switch:");
    for (switch, drops) in &t.report.dropped_at {
        println!(
            "  {:>12} {:>2}: {:>6} dropped",
            match switch.role {
                SwitchRole::Edge => "edge",
                SwitchRole::Aggregation => "aggregation",
                SwitchRole::Core => "core",
            },
            switch.index,
            drops,
        );
    }

    println!("\ncontroller's suspect ranking (blame normalized by known transit):");
    for (switch, score) in t.localization.ranking.iter().take(5) {
        println!("  {:>12} {:>2}: score {:.3}", switch.role.label(), switch.index, score);
    }

    println!("\nroute length histogram (switches on path -> packets):");
    for (h, n) in &t.report.hops_histogram {
        println!("  {h} switches: {n} packets");
    }

    // The worst victim and where it bled.
    if let Some((flow, at)) = t
        .report
        .lost_at
        .iter()
        .max_by_key(|(_, at)| at.values().sum::<u64>())
    {
        println!(
            "\nworst victim {:?} lost {} packets at {:?}; controller's candidates: {:?}",
            flow,
            at.values().sum::<u64>(),
            at.keys().collect::<Vec<_>>(),
            t.localization.per_victim.get(flow).map(|c| &c[..c.len().min(3)]),
        );
    }
}
