//! Minimal vendored subset of the `proptest` API.
//!
//! Supports exactly what the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute;
//! * strategies: integer and float [`Range`](core::ops::Range)s,
//!   [`any`]`::<T>()` for primitive `T`, tuples of strategies (arity ≤ 6),
//!   and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Cases are generated from a seed derived deterministically from the test's
//! module path and name, so every run of the suite sees the same inputs
//! (the workspace's "seed-pinned" policy for randomized tests). Shrinking is
//! not implemented: a failing case reports its inputs via `Debug` instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (analogue of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values for strategies.
pub type TestRng = StdRng;

/// A generator of values of type `Self::Value` (no shrinking).
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Primitive types drawable from their full range (analogue of proptest's
/// `Arbitrary` for primitives).
pub trait Arbitrary: Sized {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over `T`'s full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length specification for [`vec()`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(strategy, len_range)` — a vector of values from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Deterministic per-test seed: FNV-1a over the fully-qualified test name.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Constructs the RNG for one case of one property.
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_path) ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude::*`.
    pub use crate::collection::vec as prop_vec;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// immediately) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, $($fmt)*);
            }
        }
    };
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
}

/// Defines property tests (analogue of proptest's `proptest!` macro).
///
/// Each property runs `config.cases` times with deterministically-seeded
/// inputs; a failing case panics with the case number and message (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(cfg = ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::rng_for_case(test_path, case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest: property {} failed at case {}/{}: {}",
                        test_path, case, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 0u64..100, (b, c) in (any::<u16>(), 1i64..5)) {
            prop_assert!(a < 100);
            prop_assert_ne!(i64::from(b) - 70_000, c);
            prop_assert!((1..5).contains(&c));
        }

        #[test]
        fn vec_lengths(v in prop_vec(any::<u32>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(v.capacity() >= v.len(), true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_case("x::y", 3);
        let mut b = crate::rng_for_case("x::y", 3);
        let seq_a: Vec<u64> = (0..10).map(|_| rand::Rng::gen(&mut a)).collect();
        let seq_b: Vec<u64> = (0..10).map(|_| rand::Rng::gen(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
