//! Minimal vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses:
//!
//! * [`Rng`] — `gen`, `gen_range` (integer + float, half-open and
//!   inclusive), `gen_bool`;
//! * [`SeedableRng`] — `seed_from_u64` (plus `from_seed` on byte arrays);
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64 (not the real StdRng's ChaCha12, but stable and seedable);
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! Everything is deterministic given a seed, which is all the workspace's
//! reproducible experiments require. Statistical quality of xoshiro256** is
//! more than adequate for simulation workloads; cryptographic security is
//! explicitly *not* provided.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range (the
/// analogue of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value of `Self` from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts (analogue of rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over `T`'s full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (analogue of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Constructs the generator from OS-independent entropy — here simply a
    /// fixed seed, keeping offline builds deterministic.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5eed_5eed_5eed_5eed)
    }
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut sm);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.
    use super::Rng;

    /// Random operations on slices (analogue of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
