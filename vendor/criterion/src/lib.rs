//! Minimal vendored subset of the `criterion` benchmarking API.
//!
//! Implements the surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`](Criterion::benchmark_group), [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — with a straightforward warm-up + sample timing
//! loop. Results print as `name  time: [mean ns/iter]  thrpt: [elem/s]`.
//! No statistics, baselines, or reports: just honest wall-clock numbers so
//! `cargo bench` works offline.

// A benchmark harness exists to read the clock; exempt it from the
// workspace-wide `disallowed-methods` wall-clock ban (clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Expected amount of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to the closure given to `bench_function`.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Mean time per iteration measured by the last `iter` call.
    mean_ns: f64,
}

impl Bencher<'_> {
    /// Times `f`, storing the mean wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_until = Instant::now() + self.settings.warm_up_time;
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_until {
                break;
            }
        }
        let warm_elapsed = self.settings.warm_up_time.as_secs_f64().max(1e-9);
        let est_per_iter = warm_elapsed / warm_iters as f64;

        // Measurement: split the measurement budget into `sample_size`
        // samples of roughly equal iteration count.
        let budget = self.settings.measurement_time.as_secs_f64();
        let samples = self.settings.sample_size.max(1) as f64;
        let iters_per_sample =
            ((budget / samples / est_per_iter).ceil() as u64).clamp(1, 1_000_000_000);
        let mut total_ns: f64 = 0.0;
        let mut total_iters: u64 = 0;
        for _ in 0..self.settings.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.mean_ns = total_ns / total_iters as f64;
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / mean_ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<50} time: {:>12}/iter{thrpt}", human_time(mean_ns));
}

/// Benchmark driver (analogue of criterion's `Criterion`).
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Warm-up budget before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher { settings: &self.settings, mean_ns: f64::NAN };
        f(&mut b);
        report(&id.id, b.mean_ns, None);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.settings.sample_size = n;
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.settings.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher { settings: &self.criterion.settings, mean_ns: f64::NAN };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut b = Bencher { settings: &self.criterion.settings, mean_ns: f64::NAN };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_finite_mean() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
