//! Property-based tests of workload generation and loss planning.

use chm_workloads::distributions::{FlowSizeDistribution, WorkloadKind};
use chm_workloads::{caida_like_trace, testbed_trace, LossPlan, VictimSelection};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Traces have unique IDs, the requested flow count, and ≥1 packet per
    /// flow.
    #[test]
    fn trace_well_formed(n in 1usize..2000, seed in any::<u64>()) {
        let t = caida_like_trace(n, seed);
        prop_assert_eq!(t.num_flows(), n);
        let ids: std::collections::HashSet<u32> =
            t.flows.iter().map(|&(f, _)| f).collect();
        prop_assert_eq!(ids.len(), n);
        prop_assert!(t.flows.iter().all(|&(_, s)| s >= 1));
    }

    /// Quantile functions are monotone for every workload.
    #[test]
    fn quantiles_monotone(idx in 0usize..4, steps in 2usize..50) {
        let d = WorkloadKind::ALL[idx].distribution();
        let mut prev = 0u64;
        for i in 0..=steps {
            let q = d.quantile(i as f64 / steps as f64);
            prop_assert!(q >= prev);
            prev = q;
        }
    }

    /// Bounded Pareto samples stay within [1, max].
    #[test]
    fn pareto_in_range(alpha in 0.2f64..3.0, log_max in 4u32..22, seed in any::<u64>()) {
        use rand::SeedableRng;
        let max = 1u64 << log_max;
        let d = FlowSizeDistribution::bounded_pareto(alpha, max);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!((1..=max).contains(&s));
        }
    }

    /// Loss plans: victims ⊆ trace flows; realized losses within flow sizes
    /// and ≥ 1 per victim.
    #[test]
    fn loss_plan_sound(
        n in 50usize..500,
        ratio in 0.01f64..0.5,
        rate in 0.005f64..0.9,
        seed in any::<u64>(),
    ) {
        let t = caida_like_trace(n, seed);
        let plan = LossPlan::build(&t, VictimSelection::RandomRatio(ratio), rate, seed ^ 1);
        let sizes = t.size_map();
        prop_assert!(plan.victims.keys().all(|f| sizes.contains_key(f)));
        let (delivered, lost) = plan.apply_to_trace(&t, seed ^ 2);
        prop_assert_eq!(lost.len(), plan.num_victims());
        for (f, &l) in &lost {
            prop_assert!(l >= 1 && l <= sizes[f]);
            prop_assert_eq!(delivered[f] + l, sizes[f]);
        }
        // Non-victims deliver everything.
        let total_delivered: u64 = delivered.values().sum();
        let total_lost: u64 = lost.values().sum();
        prop_assert_eq!(total_delivered + total_lost, t.total_packets());
    }

    /// Testbed traces route between distinct hosts within range.
    #[test]
    fn testbed_hosts_in_range(n in 10usize..500, hosts in 2u32..16, seed in any::<u64>()) {
        let t = testbed_trace(WorkloadKind::Vl2, n, hosts, seed);
        for &(f, _) in &t.flows {
            let src = chm_workloads::trace::ip_host(f.src_ip);
            let dst = chm_workloads::trace::ip_host(f.dst_ip);
            prop_assert!(src < hosts && dst < hosts);
            prop_assert_ne!(f.src_ip, f.dst_ip);
        }
    }

    /// Same seed ⇒ same victim set, for every selection strategy.
    #[test]
    fn victim_selection_deterministic(
        n in 20usize..400,
        k in 1usize..40,
        sel_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let t = caida_like_trace(n, seed);
        let sel = match sel_idx {
            0 => VictimSelection::LargestN(k),
            1 => VictimSelection::RandomRatio(k as f64 / 40.0),
            _ => VictimSelection::RandomN(k),
        };
        let a = LossPlan::build(&t, sel, 0.1, seed ^ 0x11);
        let b = LossPlan::build(&t, sel, 0.1, seed ^ 0x11);
        prop_assert_eq!(
            a.victims.keys().collect::<std::collections::BTreeSet<_>>(),
            b.victims.keys().collect::<std::collections::BTreeSet<_>>()
        );
    }

    /// `LargestN(n)` picks exactly the top-n flows under the documented
    /// (size desc, id asc) tie-breaking — independent of the trace's flow
    /// order.
    #[test]
    fn largest_n_picks_exact_top_n(
        n in 20usize..300,
        k in 1usize..30,
        seed in any::<u64>(),
    ) {
        let t = caida_like_trace(n, seed);
        // Expected set, computed independently of Trace::top_n.
        let mut ranked = t.flows.clone();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let expect: std::collections::BTreeSet<u32> =
            ranked[..k.min(n)].iter().map(|&(f, _)| f).collect();
        let plan = LossPlan::build(&t, VictimSelection::LargestN(k), 0.1, seed);
        let got: std::collections::BTreeSet<u32> =
            plan.victims.keys().copied().collect();
        prop_assert_eq!(&got, &expect);
        // Tie-breaking is a property of the flows, not their order: a
        // shuffled clone of the trace selects the identical set.
        let mut shuffled = t.clone();
        {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5487);
            shuffled.flows.shuffle(&mut rng);
        }
        let plan2 = LossPlan::build(&shuffled, VictimSelection::LargestN(k), 0.1, seed);
        let got2: std::collections::BTreeSet<u32> =
            plan2.victims.keys().copied().collect();
        prop_assert_eq!(got2, expect);
    }

    /// `RandomRatio(r)` selects within ±1 of `r · n` victims.
    #[test]
    fn random_ratio_count_within_one(
        n in 10usize..1000,
        r in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let t = caida_like_trace(n, seed);
        let plan = LossPlan::build(&t, VictimSelection::RandomRatio(r), 0.1, seed ^ 0x22);
        let want = n as f64 * r;
        prop_assert!(
            (plan.num_victims() as f64 - want).abs() <= 1.0,
            "{} victims for requested {want:.2}",
            plan.num_victims()
        );
    }

    /// Packet streams preserve multiset multiplicities exactly.
    #[test]
    fn stream_multiplicities(n in 1usize..100, seed in any::<u64>()) {
        let t = caida_like_trace(n, seed);
        let stream = t.packet_stream(seed ^ 3);
        prop_assert_eq!(stream.len() as u64, t.total_packets());
        let mut counts: std::collections::HashMap<u32, u64> =
            std::collections::HashMap::new();
        for f in &stream {
            *counts.entry(*f).or_insert(0) += 1;
        }
        prop_assert_eq!(counts, t.size_map());
    }
}
