//! Loss plans: which flows are victims and at what loss rate.
//!
//! On the testbed the authors "let switches proactively drop packets whose
//! ECN fields are set to 1 … we can flexibly specify any flow as a victim
//! flow and control its packet loss rate" (§5.2). A [`LossPlan`] is the
//! software analogue: a per-flow drop probability that the simulator (or a
//! direct trace replay) consults for every packet.

use chm_common::hash::mix64;
use chm_common::FlowId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::Hash;

use crate::trace::Trace;

/// How victim flows are chosen from a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VictimSelection {
    /// The `n` largest flows (used by §5.1: "the largest 100 flows are
    /// victim flows").
    LargestN(usize),
    /// A uniformly random fraction of all flows (used by the testbed
    /// experiments: "fix the ratio of victim flows to 10%").
    RandomRatio(f64),
    /// A uniformly random count of flows.
    RandomN(usize),
}

/// A per-flow loss plan.
#[derive(Debug, Clone)]
pub struct LossPlan<F> {
    /// Victim flow → packet loss probability in `(0, 1]`.
    pub victims: HashMap<F, f64>,
}

impl<F: Copy + Eq + Hash + Ord> LossPlan<F> {
    /// No losses at all (healthy network).
    pub fn none() -> Self {
        LossPlan { victims: HashMap::new() }
    }

    /// Builds a plan by selecting victims from `trace` and assigning each
    /// the same `loss_rate`.
    pub fn build(
        trace: &Trace<F>,
        selection: VictimSelection,
        loss_rate: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let victims: Vec<F> = match selection {
            VictimSelection::LargestN(n) => {
                trace.top_n(n).flows.iter().map(|&(f, _)| f).collect()
            }
            VictimSelection::RandomRatio(r) => {
                assert!((0.0..=1.0).contains(&r), "ratio out of range");
                let n = (trace.num_flows() as f64 * r).round() as usize;
                let mut ids: Vec<F> = trace.flows.iter().map(|&(f, _)| f).collect();
                ids.shuffle(&mut rng);
                ids.truncate(n);
                ids
            }
            VictimSelection::RandomN(n) => {
                let mut ids: Vec<F> = trace.flows.iter().map(|&(f, _)| f).collect();
                ids.shuffle(&mut rng);
                ids.truncate(n);
                ids
            }
        };
        LossPlan {
            victims: victims.into_iter().map(|f| (f, loss_rate)).collect(),
        }
    }

    /// Number of victim flows in the plan.
    pub fn num_victims(&self) -> usize {
        self.victims.len()
    }

    /// Drop decision for a single packet of flow `f`.
    pub fn should_drop<R: Rng + ?Sized>(&self, f: &F, rng: &mut R) -> bool {
        match self.victims.get(f) {
            Some(&p) => rng.gen_bool(p),
            None => false,
        }
    }

    /// Deterministically splits each victim flow's packets into
    /// (delivered, lost), guaranteeing **at least one** lost packet per
    /// victim (so every planned victim is a real victim, as on the testbed
    /// where loss rates and flow sizes are chosen to make victims actual).
    ///
    /// Returns `(delivered_counts, lost_counts)` for the whole trace.
    pub fn apply_to_trace(
        &self,
        trace: &Trace<F>,
        seed: u64,
    ) -> (HashMap<F, u64>, HashMap<F, u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delivered = HashMap::with_capacity(trace.num_flows());
        let mut lost = HashMap::new();
        for &(f, pkts) in &trace.flows {
            match self.victims.get(&f) {
                Some(&p) => {
                    let mut dropped = 0u64;
                    for _ in 0..pkts {
                        if rng.gen_bool(p) {
                            dropped += 1;
                        }
                    }
                    if dropped == 0 {
                        dropped = 1; // victims must lose at least one packet
                    }
                    if dropped > pkts {
                        dropped = pkts;
                    }
                    delivered.insert(f, pkts - dropped);
                    lost.insert(f, dropped);
                }
                None => {
                    delivered.insert(f, pkts);
                }
            }
        }
        (delivered, lost)
    }
}

/// Per-epoch victim drift: the set of victim flows slides over time — each
/// epoch, roughly a `frac` fraction of the victims recover while an equal
/// number of healthy flows start losing packets. Modeled as a sliding
/// window over the flows ordered by a seeded **per-flow hash priority**
/// (wrapping around), so consecutive epochs share `1 − frac` of their
/// victims and the whole trajectory is reproducible from the seed.
///
/// The priority order is a pure function of each flow's identity, not of
/// its position in the trace — so when drift composes with flow churn or
/// floods, surviving flows keep their relative order and the promised
/// overlap degrades only by the churned fraction (a positional shuffle
/// would reshuffle the survivors wholesale and collapse the overlap).
///
/// Drift replaces the *membership* policy of a [`VictimSelection`] but keeps
/// its count: `LargestN(n)`/`RandomN(n)` drift over `n`-sized windows,
/// `RandomRatio(r)` over `round(r·flows)`-sized ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VictimDrift {
    /// Fraction of the victim set replaced per epoch, in `[0, 1]`.
    pub frac: f64,
    /// Seed of the drift trajectory.
    pub seed: u64,
}

impl VictimDrift {
    /// Builds epoch `epoch`'s loss plan: a window of victims at the drift
    /// offset, each losing at `loss_rate`.
    pub fn plan<F: FlowId>(
        &self,
        trace: &Trace<F>,
        selection: VictimSelection,
        loss_rate: f64,
        epoch: u64,
    ) -> LossPlan<F> {
        assert!((0.0..=1.0).contains(&self.frac), "drift fraction out of range");
        let n_flows = trace.num_flows();
        let n_victims = match selection {
            VictimSelection::LargestN(n) | VictimSelection::RandomN(n) => n,
            VictimSelection::RandomRatio(r) => {
                assert!((0.0..=1.0).contains(&r), "ratio out of range");
                (n_flows as f64 * r).round() as usize
            }
        }
        .min(n_flows);
        if n_victims == 0 || n_flows == 0 {
            return LossPlan::none();
        }
        let mut ids: Vec<(u64, F)> = trace
            .flows
            .iter()
            .map(|&(f, _)| (mix64(self.seed ^ mix64(f.key64())), f))
            .collect();
        ids.sort_unstable();
        let offset =
            (n_victims as f64 * self.frac * epoch as f64).round() as usize % n_flows;
        let victims = (0..n_victims)
            .map(|i| ids[(offset + i) % n_flows].1)
            .map(|f| (f, loss_rate))
            .collect();
        LossPlan { victims }
    }
}

/// Incast concentration: a seeded fraction of the trace's flows is
/// redirected at a single target host, the classic many-to-one fan-in that
/// saturates the target's ToR downlink. Unlike a [`LossPlan`], an incast
/// does not *mark* victims — it reshapes the offered load so a per-link
/// congestion model (`chm_netsim::congestion`) makes victims out of
/// whatever crosses the saturated link, with the drop attributed to the
/// target's ToR.
///
/// Selection is keyed by flow identity (like [`VictimDrift`]'s priority
/// order), so the redirected set is stable across epochs and survives
/// composition with churn and floods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncastModel {
    /// Fraction of flows redirected at the target, in `[0, 1]`.
    pub frac: f64,
    /// The host every redirected flow converges on.
    pub target_host: u32,
    /// Seed of the selection.
    pub seed: u64,
}

impl IncastModel {
    /// The trace with this epoch's incast applied: each selected flow's
    /// destination is rewritten to the target host (flows already at the
    /// target, originating there, or colliding with an existing 5-tuple are
    /// left alone).
    pub fn apply(&self, base: &crate::trace::Trace<chm_common::FiveTuple>)
        -> crate::trace::Trace<chm_common::FiveTuple> {
        assert!((0.0..=1.0).contains(&self.frac), "incast fraction out of range");
        use chm_common::FlowId as _;
        let threshold = (self.frac * (1u64 << 53) as f64) as u64;
        // Guards both collision classes: a redirected tuple landing on an
        // existing base flow, and two flows that differed only in dst_ip
        // collapsing onto the same redirected tuple (each redirect is
        // recorded before the next is attempted).
        let mut seen: std::collections::HashSet<chm_common::FiveTuple> =
            base.flows.iter().map(|&(f, _)| f).collect();
        let target_ip = crate::trace::host_ip(self.target_host);
        let mut flows = Vec::with_capacity(base.num_flows());
        for &(f, s) in &base.flows {
            let pick = (mix64(self.seed ^ mix64(f.key64())) >> 11) < threshold;
            if pick && f.dst_ip != target_ip && f.src_ip != target_ip {
                let redirected = chm_common::FiveTuple { dst_ip: target_ip, ..f };
                if seen.insert(redirected) {
                    flows.push((redirected, s));
                    continue;
                }
            }
            flows.push((f, s));
        }
        crate::trace::Trace { flows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::caida_like_trace;

    #[test]
    fn largest_n_selects_biggest() {
        let t = caida_like_trace(1000, 1);
        let plan = LossPlan::build(&t, VictimSelection::LargestN(10), 0.5, 2);
        assert_eq!(plan.num_victims(), 10);
        let top: std::collections::HashSet<u32> =
            t.top_n(10).flows.iter().map(|&(f, _)| f).collect();
        for f in plan.victims.keys() {
            assert!(top.contains(f));
        }
    }

    #[test]
    fn random_ratio_count() {
        let t = caida_like_trace(1000, 1);
        let plan = LossPlan::build(&t, VictimSelection::RandomRatio(0.1), 0.01, 3);
        assert_eq!(plan.num_victims(), 100);
    }

    #[test]
    fn random_n_is_deterministic_per_seed() {
        let t = caida_like_trace(500, 1);
        let a = LossPlan::build(&t, VictimSelection::RandomN(50), 0.01, 7);
        let b = LossPlan::build(&t, VictimSelection::RandomN(50), 0.01, 7);
        assert_eq!(
            a.victims.keys().collect::<std::collections::BTreeSet<_>>(),
            b.victims.keys().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn apply_guarantees_victim_losses() {
        let t = caida_like_trace(1000, 4);
        let plan = LossPlan::build(&t, VictimSelection::RandomRatio(0.1), 0.01, 5);
        let (delivered, lost) = plan.apply_to_trace(&t, 6);
        assert_eq!(lost.len(), plan.num_victims());
        let sizes = t.size_map();
        for (f, &l) in &lost {
            assert!(l >= 1);
            assert!(l <= sizes[f]);
            assert_eq!(delivered[f] + l, sizes[f]);
        }
    }

    #[test]
    fn non_victims_deliver_everything() {
        let t = caida_like_trace(200, 4);
        let plan = LossPlan::build(&t, VictimSelection::LargestN(5), 0.5, 5);
        let (delivered, lost) = plan.apply_to_trace(&t, 6);
        let sizes = t.size_map();
        for &(f, s) in &t.flows {
            if !plan.victims.contains_key(&f) {
                assert_eq!(delivered[&f], s);
                assert!(!lost.contains_key(&f));
            }
        }
        assert_eq!(delivered.len(), sizes.len());
    }

    #[test]
    fn none_plan_drops_nothing() {
        let plan: LossPlan<u32> = LossPlan::none();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!plan.should_drop(&1, &mut rng));
        assert_eq!(plan.num_victims(), 0);
    }

    #[test]
    fn victim_drift_keeps_count_and_slides_membership() {
        let t = caida_like_trace(500, 9);
        let drift = VictimDrift { frac: 0.2, seed: 10 };
        let sel = VictimSelection::RandomRatio(0.1);
        let p0 = drift.plan(&t, sel, 0.05, 0);
        let p1 = drift.plan(&t, sel, 0.05, 1);
        let p5 = drift.plan(&t, sel, 0.05, 5);
        assert_eq!(p0.num_victims(), 50);
        assert_eq!(p1.num_victims(), 50);
        let s0: std::collections::HashSet<u32> = p0.victims.keys().copied().collect();
        let s1: std::collections::HashSet<u32> = p1.victims.keys().copied().collect();
        let s5: std::collections::HashSet<u32> = p5.victims.keys().copied().collect();
        let overlap01 = s0.intersection(&s1).count();
        assert!(
            (35..50).contains(&overlap01),
            "adjacent epochs must share ~80% of victims, got {overlap01}"
        );
        assert!(s0.intersection(&s5).count() < overlap01, "drift must accumulate");
        // Determinism: the same epoch always selects the same victims.
        let again: std::collections::HashSet<u32> =
            drift.plan(&t, sel, 0.05, 1).victims.keys().copied().collect();
        assert_eq!(s1, again);
    }

    #[test]
    fn victim_drift_overlap_survives_membership_churn() {
        // The drift order is keyed by flow identity, so removing/replacing
        // a small fraction of the flows (what churn does between epochs)
        // must not reshuffle the surviving victims.
        let t = caida_like_trace(500, 13);
        let drift = VictimDrift { frac: 0.2, seed: 14 };
        let sel = VictimSelection::RandomRatio(0.1);
        // Same epoch, 5% of flows replaced.
        let mut churned = t.clone();
        let replacement = caida_like_trace(50, 99);
        for i in 0..25 {
            churned.flows[i * 7] = replacement.flows[i];
        }
        let a: std::collections::HashSet<u32> =
            drift.plan(&t, sel, 0.05, 3).victims.keys().copied().collect();
        let b: std::collections::HashSet<u32> =
            drift.plan(&churned, sel, 0.05, 3).victims.keys().copied().collect();
        let overlap = a.intersection(&b).count();
        assert!(
            overlap >= 40,
            "5% membership churn must keep ~95% of the victim window, got {overlap}/50"
        );
    }

    #[test]
    fn victim_drift_degenerate_cases() {
        let t = caida_like_trace(20, 11);
        let drift = VictimDrift { frac: 0.5, seed: 12 };
        assert_eq!(drift.plan(&t, VictimSelection::RandomN(0), 0.1, 3).num_victims(), 0);
        // More victims than flows: clamp to the whole trace.
        let all = drift.plan(&t, VictimSelection::RandomN(100), 0.1, 2);
        assert_eq!(all.num_victims(), 20);
    }

    #[test]
    fn incast_redirects_a_stable_keyed_fraction() {
        let t = crate::testbed_trace(crate::WorkloadKind::Dctcp, 1_000, 8, 17);
        let inc = IncastModel { frac: 0.25, target_host: 3, seed: 18 };
        let a = inc.apply(&t);
        let b = inc.apply(&t);
        assert_eq!(a.flows, b.flows, "selection must be deterministic");
        assert_eq!(a.num_flows(), t.num_flows(), "incast redirects, never adds");
        let target_ip = crate::trace::host_ip(3);
        let before = t.flows.iter().filter(|(f, _)| f.dst_ip == target_ip).count();
        let after = a.flows.iter().filter(|(f, _)| f.dst_ip == target_ip).count();
        let gained = after - before;
        // ~25% of the non-target flows converge (selection is hash-keyed,
        // so allow binomial slack).
        assert!((180..320).contains(&gained), "redirected {gained}");
        // Sizes ride along unchanged.
        let total_before: u64 = t.flows.iter().map(|&(_, s)| s).sum();
        let total_after: u64 = a.flows.iter().map(|&(_, s)| s).sum();
        assert_eq!(total_before, total_after);
        // No duplicate 5-tuples after redirection (two flows differing
        // only in dst_ip must not collapse onto one redirected tuple).
        let unique: std::collections::HashSet<_> =
            a.flows.iter().map(|&(f, _)| f).collect();
        assert_eq!(unique.len(), a.num_flows(), "redirection created duplicates");
    }

    #[test]
    fn higher_loss_rate_loses_more() {
        let t = caida_like_trace(2000, 8).top_n(100);
        let low = LossPlan::build(&t, VictimSelection::LargestN(100), 0.05, 1);
        let high = LossPlan::build(&t, VictimSelection::LargestN(100), 0.5, 1);
        let (_, lost_low) = low.apply_to_trace(&t, 2);
        let (_, lost_high) = high.apply_to_trace(&t, 2);
        let sum_low: u64 = lost_low.values().sum();
        let sum_high: u64 = lost_high.values().sum();
        assert!(sum_high > sum_low * 3, "low {sum_low}, high {sum_high}");
    }
}
