//! Loss plans: which flows are victims and at what loss rate.
//!
//! On the testbed the authors "let switches proactively drop packets whose
//! ECN fields are set to 1 … we can flexibly specify any flow as a victim
//! flow and control its packet loss rate" (§5.2). A [`LossPlan`] is the
//! software analogue: a per-flow drop probability that the simulator (or a
//! direct trace replay) consults for every packet.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::Hash;

use crate::trace::Trace;

/// How victim flows are chosen from a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VictimSelection {
    /// The `n` largest flows (used by §5.1: "the largest 100 flows are
    /// victim flows").
    LargestN(usize),
    /// A uniformly random fraction of all flows (used by the testbed
    /// experiments: "fix the ratio of victim flows to 10%").
    RandomRatio(f64),
    /// A uniformly random count of flows.
    RandomN(usize),
}

/// A per-flow loss plan.
#[derive(Debug, Clone)]
pub struct LossPlan<F> {
    /// Victim flow → packet loss probability in `(0, 1]`.
    pub victims: HashMap<F, f64>,
}

impl<F: Copy + Eq + Hash + Ord> LossPlan<F> {
    /// No losses at all (healthy network).
    pub fn none() -> Self {
        LossPlan { victims: HashMap::new() }
    }

    /// Builds a plan by selecting victims from `trace` and assigning each
    /// the same `loss_rate`.
    pub fn build(
        trace: &Trace<F>,
        selection: VictimSelection,
        loss_rate: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate out of range");
        let mut rng = StdRng::seed_from_u64(seed);
        let victims: Vec<F> = match selection {
            VictimSelection::LargestN(n) => {
                trace.top_n(n).flows.iter().map(|&(f, _)| f).collect()
            }
            VictimSelection::RandomRatio(r) => {
                assert!((0.0..=1.0).contains(&r), "ratio out of range");
                let n = (trace.num_flows() as f64 * r).round() as usize;
                let mut ids: Vec<F> = trace.flows.iter().map(|&(f, _)| f).collect();
                ids.shuffle(&mut rng);
                ids.truncate(n);
                ids
            }
            VictimSelection::RandomN(n) => {
                let mut ids: Vec<F> = trace.flows.iter().map(|&(f, _)| f).collect();
                ids.shuffle(&mut rng);
                ids.truncate(n);
                ids
            }
        };
        LossPlan {
            victims: victims.into_iter().map(|f| (f, loss_rate)).collect(),
        }
    }

    /// Number of victim flows in the plan.
    pub fn num_victims(&self) -> usize {
        self.victims.len()
    }

    /// Drop decision for a single packet of flow `f`.
    pub fn should_drop<R: Rng + ?Sized>(&self, f: &F, rng: &mut R) -> bool {
        match self.victims.get(f) {
            Some(&p) => rng.gen_bool(p),
            None => false,
        }
    }

    /// Deterministically splits each victim flow's packets into
    /// (delivered, lost), guaranteeing **at least one** lost packet per
    /// victim (so every planned victim is a real victim, as on the testbed
    /// where loss rates and flow sizes are chosen to make victims actual).
    ///
    /// Returns `(delivered_counts, lost_counts)` for the whole trace.
    pub fn apply_to_trace(
        &self,
        trace: &Trace<F>,
        seed: u64,
    ) -> (HashMap<F, u64>, HashMap<F, u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delivered = HashMap::with_capacity(trace.num_flows());
        let mut lost = HashMap::new();
        for &(f, pkts) in &trace.flows {
            match self.victims.get(&f) {
                Some(&p) => {
                    let mut dropped = 0u64;
                    for _ in 0..pkts {
                        if rng.gen_bool(p) {
                            dropped += 1;
                        }
                    }
                    if dropped == 0 {
                        dropped = 1; // victims must lose at least one packet
                    }
                    if dropped > pkts {
                        dropped = pkts;
                    }
                    delivered.insert(f, pkts - dropped);
                    lost.insert(f, dropped);
                }
                None => {
                    delivered.insert(f, pkts);
                }
            }
        }
        (delivered, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::caida_like_trace;

    #[test]
    fn largest_n_selects_biggest() {
        let t = caida_like_trace(1000, 1);
        let plan = LossPlan::build(&t, VictimSelection::LargestN(10), 0.5, 2);
        assert_eq!(plan.num_victims(), 10);
        let top: std::collections::HashSet<u32> =
            t.top_n(10).flows.iter().map(|&(f, _)| f).collect();
        for f in plan.victims.keys() {
            assert!(top.contains(f));
        }
    }

    #[test]
    fn random_ratio_count() {
        let t = caida_like_trace(1000, 1);
        let plan = LossPlan::build(&t, VictimSelection::RandomRatio(0.1), 0.01, 3);
        assert_eq!(plan.num_victims(), 100);
    }

    #[test]
    fn random_n_is_deterministic_per_seed() {
        let t = caida_like_trace(500, 1);
        let a = LossPlan::build(&t, VictimSelection::RandomN(50), 0.01, 7);
        let b = LossPlan::build(&t, VictimSelection::RandomN(50), 0.01, 7);
        assert_eq!(
            a.victims.keys().collect::<std::collections::BTreeSet<_>>(),
            b.victims.keys().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn apply_guarantees_victim_losses() {
        let t = caida_like_trace(1000, 4);
        let plan = LossPlan::build(&t, VictimSelection::RandomRatio(0.1), 0.01, 5);
        let (delivered, lost) = plan.apply_to_trace(&t, 6);
        assert_eq!(lost.len(), plan.num_victims());
        let sizes = t.size_map();
        for (f, &l) in &lost {
            assert!(l >= 1);
            assert!(l <= sizes[f]);
            assert_eq!(delivered[f] + l, sizes[f]);
        }
    }

    #[test]
    fn non_victims_deliver_everything() {
        let t = caida_like_trace(200, 4);
        let plan = LossPlan::build(&t, VictimSelection::LargestN(5), 0.5, 5);
        let (delivered, lost) = plan.apply_to_trace(&t, 6);
        let sizes = t.size_map();
        for &(f, s) in &t.flows {
            if !plan.victims.contains_key(&f) {
                assert_eq!(delivered[&f], s);
                assert!(!lost.contains_key(&f));
            }
        }
        assert_eq!(delivered.len(), sizes.len());
    }

    #[test]
    fn none_plan_drops_nothing() {
        let plan: LossPlan<u32> = LossPlan::none();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!plan.should_drop(&1, &mut rng));
        assert_eq!(plan.num_victims(), 0);
    }

    #[test]
    fn higher_loss_rate_loses_more() {
        let t = caida_like_trace(2000, 8).top_n(100);
        let low = LossPlan::build(&t, VictimSelection::LargestN(100), 0.05, 1);
        let high = LossPlan::build(&t, VictimSelection::LargestN(100), 0.5, 1);
        let (_, lost_low) = low.apply_to_trace(&t, 2);
        let (_, lost_high) = high.apply_to_trace(&t, 2);
        let sum_low: u64 = lost_low.values().sum();
        let sum_high: u64 = lost_high.values().sum();
        assert!(sum_high > sum_low * 3, "low {sum_low}, high {sum_high}");
    }
}
