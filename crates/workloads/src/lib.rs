//! Workload generation for the ChameleMon evaluation (§5.2, Appendix E).
//!
//! Two families of workloads appear in the paper:
//!
//! * **CAIDA-like traces** (used for the CPU-platform experiments, §5.1 and
//!   Appendix C): anonymized backbone traces with 32-bit source-IP flow IDs.
//!   We synthesize heavy-tailed traces calibrated to the paper's reported
//!   statistics (first 100K flows ≈ 5.3M packets ⇒ mean ≈ 53 packets/flow;
//!   Appendix-C traces: 63K flows / 2.3M packets ⇒ mean ≈ 37), via a
//!   bounded Pareto sampler. See the substitution table in DESIGN.md.
//! * **Distribution-driven UDP workloads** (testbed experiments): flow sizes
//!   drawn from the DCTCP, HADOOP, VL2 and CACHE distributions. We embed
//!   approximate packet-count CDFs transcribed from the cited papers'
//!   figures; what the evaluation depends on is the *relative skew*
//!   (CACHE ≫ HADOOP ≈ VL2 > DCTCP), which these tables preserve.
//!
//! The crate also builds the loss plans the testbed realizes via proactive
//! ECN drops: a set of victim flows, each with a target loss rate.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod loss;
pub mod profile;
pub mod trace;

pub use distributions::{FlowSizeDistribution, WorkloadKind};
pub use loss::{IncastModel, LossPlan, VictimDrift, VictimSelection};
pub use profile::ArrivalProfile;
pub use trace::{caida_like_trace, testbed_trace, FlowChurn, FloodModel, Trace};
