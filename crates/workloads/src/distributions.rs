//! Flow-size distributions for trace synthesis.
//!
//! The four named workloads follow the paper (§5.2): DCTCP \[40\] (web
//! search), HADOOP \[43\] (Facebook datacenter), VL2 \[44\], and CACHE \[45\]
//! (key-value store). Flow sizes are in **packets** — the testbed normalizes
//! every packet to 64 bytes, so only packet counts matter to ChameleMon.
//!
//! CDF tables are approximate transcriptions of the cited papers' figures
//! (see DESIGN.md substitutions): the evaluation's qualitative claims depend
//! on the workloads' relative skew, which these tables preserve — CACHE is
//! the most skewed (Appendix E.1 discusses its "high skewness"), HADOOP and
//! VL2 are heavy-tailed, DCTCP is the mildest.

use rand::Rng;

/// The workload families of §5.2 / Appendix E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// DCTCP web-search distribution \[40\].
    Dctcp,
    /// Facebook Hadoop distribution \[43\].
    Hadoop,
    /// VL2 datacenter measurement distribution \[44\].
    Vl2,
    /// Key-value-store (memcached) distribution \[45\].
    Cache,
}

impl WorkloadKind {
    /// All four testbed workloads, in the paper's presentation order.
    pub const ALL: [WorkloadKind; 4] =
        [WorkloadKind::Dctcp, WorkloadKind::Hadoop, WorkloadKind::Vl2, WorkloadKind::Cache];

    /// Human-readable name as used in the figures.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Dctcp => "DCTCP",
            WorkloadKind::Hadoop => "HADOOP",
            WorkloadKind::Vl2 => "VL2",
            WorkloadKind::Cache => "CACHE",
        }
    }

    /// The flow-size distribution of this workload.
    pub fn distribution(&self) -> FlowSizeDistribution {
        let points: &[(u64, f64)] = match self {
            // Mild skew: web-search RPCs, sizes from a few to ~hundreds of
            // packets.
            WorkloadKind::Dctcp => &[
                (1, 0.00),
                (2, 0.10),
                (3, 0.20),
                (5, 0.30),
                (7, 0.40),
                (10, 0.53),
                (14, 0.60),
                (20, 0.70),
                (30, 0.80),
                (50, 0.90),
                (100, 0.97),
                (700, 1.00),
            ],
            // Mostly small flows with a long tail of shuffle transfers.
            WorkloadKind::Hadoop => &[
                (1, 0.30),
                (2, 0.50),
                (3, 0.60),
                (5, 0.70),
                (10, 0.80),
                (30, 0.90),
                (100, 0.95),
                (300, 0.98),
                (1000, 1.00),
            ],
            // Bimodal-ish: many mice plus a substantial elephant component.
            WorkloadKind::Vl2 => &[
                (1, 0.05),
                (2, 0.15),
                (4, 0.25),
                (10, 0.40),
                (30, 0.60),
                (100, 0.80),
                (300, 0.95),
                (1000, 1.00),
            ],
            // Extremely skewed key-value traffic: half the flows are single
            // packets; a handful are enormous.
            WorkloadKind::Cache => &[
                (1, 0.50),
                (2, 0.70),
                (3, 0.80),
                (5, 0.90),
                (10, 0.95),
                (100, 0.98),
                (1000, 0.999),
                (10_000, 1.00),
            ],
        };
        FlowSizeDistribution::from_cdf(points)
    }
}

/// A discrete flow-size distribution sampled by inverse-CDF with log-linear
/// interpolation between knots.
#[derive(Debug, Clone)]
pub struct FlowSizeDistribution {
    /// `(size_in_packets, cumulative_probability)` knots, strictly
    /// increasing in both coordinates, last probability = 1.
    knots: Vec<(u64, f64)>,
}

impl FlowSizeDistribution {
    /// Builds a distribution from CDF knots. Panics if the table is not a
    /// valid CDF (non-monotone, empty, or not ending at 1.0).
    pub fn from_cdf(points: &[(u64, f64)]) -> Self {
        assert!(!points.is_empty(), "empty CDF");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must increase");
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
        let last = points.last().expect("asserted non-empty above");
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at 1.0");
        FlowSizeDistribution { knots: points.to_vec() }
    }

    /// A bounded-Pareto distribution with shape `alpha` on `[1, max_size]`,
    /// used for CAIDA-like synthesis.
    pub fn bounded_pareto(alpha: f64, max_size: u64) -> Self {
        assert!(alpha > 0.0 && max_size >= 2);
        // Tabulate the CDF at log-spaced knots.
        let h = 1.0 - (1.0 / max_size as f64).powf(alpha);
        let mut knots = Vec::new();
        let mut s = 1u64;
        while s < max_size {
            let cdf = (1.0 - (1.0 / s as f64).powf(alpha)) / h;
            knots.push((s, cdf));
            s = (s * 2).max(s + 1);
        }
        knots.push((max_size, 1.0));
        FlowSizeDistribution { knots }
    }

    /// Samples one flow size (≥ 1 packet).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// Inverse CDF with geometric interpolation between knots.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let mut prev = (1u64, 0.0f64);
        for &(size, cdf) in &self.knots {
            if u <= cdf {
                let (s0, c0) = prev;
                if cdf <= c0 {
                    return size;
                }
                let t = (u - c0) / (cdf - c0);
                // Geometric interpolation keeps the heavy tail shape.
                let ls0 = (s0 as f64).ln();
                let ls1 = (size as f64).ln();
                let s = (ls0 + t * (ls1 - ls0)).exp().round() as u64;
                return s.clamp(s0.min(size), size).max(1);
            }
            prev = (size, cdf);
        }
        self.knots.last().expect("constructors reject an empty knot list").0
    }

    /// Analytic-ish mean, estimated by quadrature over the quantile function.
    pub fn mean(&self) -> f64 {
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64) as f64)
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_workloads_build() {
        for w in WorkloadKind::ALL {
            let d = w.distribution();
            assert!(d.mean() >= 1.0, "{} mean", w.name());
        }
    }

    #[test]
    fn cache_is_most_skewed() {
        // CACHE should have far more single-packet flows than DCTCP.
        let mut rng = StdRng::seed_from_u64(1);
        let count_ones = |w: WorkloadKind, rng: &mut StdRng| {
            let d = w.distribution();
            (0..10_000).filter(|_| d.sample(rng) == 1).count()
        };
        let cache_ones = count_ones(WorkloadKind::Cache, &mut rng);
        let dctcp_ones = count_ones(WorkloadKind::Dctcp, &mut rng);
        assert!(
            cache_ones > dctcp_ones * 5,
            "cache {cache_ones} vs dctcp {dctcp_ones}"
        );
    }

    #[test]
    fn samples_are_at_least_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for w in WorkloadKind::ALL {
            let d = w.distribution();
            for _ in 0..1000 {
                assert!(d.sample(&mut rng) >= 1);
            }
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let d = WorkloadKind::Vl2.distribution();
        let mut prev = 0;
        for i in 0..=100 {
            let q = d.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile decreased at {i}");
            prev = q;
        }
    }

    #[test]
    fn quantile_extremes() {
        let d = WorkloadKind::Dctcp.distribution();
        assert_eq!(d.quantile(0.0), 1);
        assert_eq!(d.quantile(1.0), 700);
    }

    #[test]
    fn bounded_pareto_tail() {
        let d = FlowSizeDistribution::bounded_pareto(1.0, 1 << 20);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mice = samples.iter().filter(|&&s| s <= 2).count();
        let big = samples.iter().filter(|&&s| s > 1000).count();
        // α = 1: P(X ≤ 2) ≈ 1/2 (the geometric interpolation between CDF
        // knots spreads some of the point mass at 1 onto 2).
        assert!(mice > 8_000, "expected many mice, got {mice}");
        assert!(big > 5, "expected some elephants, got {big}");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn invalid_cdf_panics() {
        FlowSizeDistribution::from_cdf(&[(1, 0.5), (2, 0.3), (3, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "end at 1.0")]
    fn cdf_must_end_at_one() {
        FlowSizeDistribution::from_cdf(&[(1, 0.5), (2, 0.9)]);
    }
}
