//! Trace synthesis: flow sets with packet counts, packet streams, and the
//! host-to-host assignment used on the testbed (§5.2: "we choose its source
//! and destination IP address uniformly, and therefore each server sends and
//! receives almost the same number of flows").

use crate::distributions::{FlowSizeDistribution, WorkloadKind};
use chm_common::FiveTuple;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::Hash;

/// A trace: the set of flows with their packet counts.
#[derive(Debug, Clone)]
pub struct Trace<F> {
    /// `(flow id, packets)` — unique flow IDs.
    pub flows: Vec<(F, u64)>,
}

impl<F: Copy + Eq + Hash + Ord> Trace<F> {
    /// Total packets across all flows.
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|&(_, s)| s).sum()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// The `n` largest flows by packet count (ties broken by flow ID for
    /// determinism), as a new trace. Used by §5.1: "We let the largest 10K
    /// flows pass through the link".
    pub fn top_n(&self, n: usize) -> Trace<F> {
        let mut flows = self.flows.clone();
        flows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        flows.truncate(n);
        Trace { flows }
    }

    /// Ground-truth per-flow sizes as a map.
    pub fn size_map(&self) -> HashMap<F, u64> {
        self.flows.iter().copied().collect()
    }

    /// Expands the trace into a shuffled per-packet stream. Sketch accuracy
    /// for order-sensitive baselines (ElasticSketch, HashPipe) depends on
    /// interleaving, so packets are globally shuffled with `seed`.
    pub fn packet_stream(&self, seed: u64) -> Vec<F> {
        let total = self.total_packets() as usize;
        let mut pkts = Vec::with_capacity(total);
        for &(f, s) in &self.flows {
            for _ in 0..s {
                pkts.push(f);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        pkts.shuffle(&mut rng);
        pkts
    }
}

/// Synthesizes a CAIDA-like trace with 32-bit (source-IP) flow IDs.
///
/// Calibrated to the paper's §5.1 statistics: with `n_flows = 100_000` the
/// mean flow size is ≈ 53 packets (5.3M packets total), heavy-tailed.
/// Flow IDs are distinct random u32s.
pub fn caida_like_trace(n_flows: usize, seed: u64) -> Trace<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Bounded Pareto with alpha = 0.75 over [1, 2^17]: mean ≈ 54 packets
    // per flow with the largest flows in the 10^4-10^5 packet range —
    // matching both the paper's aggregate (5.3M packets over 100K flows)
    // and a realistic CAIDA elephant tail.
    let dist = FlowSizeDistribution::bounded_pareto(0.75, 1 << 17);
    let mut seen = std::collections::HashSet::with_capacity(n_flows);
    let mut flows = Vec::with_capacity(n_flows);
    while flows.len() < n_flows {
        let id: u32 = rng.gen();
        if !seen.insert(id) {
            continue;
        }
        flows.push((id, dist.sample(&mut rng)));
    }
    Trace { flows }
}

/// Synthesizes a testbed trace of UDP 5-tuple flows for `n_flows` flows over
/// `n_hosts` servers, with flow sizes drawn from `workload`'s distribution.
pub fn testbed_trace(
    workload: WorkloadKind,
    n_flows: usize,
    n_hosts: u32,
    seed: u64,
) -> Trace<FiveTuple> {
    assert!(n_hosts >= 2, "need at least two hosts");
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = workload.distribution();
    let mut seen = std::collections::HashSet::with_capacity(n_flows);
    let mut flows = Vec::with_capacity(n_flows);
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n_hosts);
        let mut dst = rng.gen_range(0..n_hosts);
        while dst == src {
            dst = rng.gen_range(0..n_hosts);
        }
        let ft = FiveTuple {
            src_ip: host_ip(src),
            dst_ip: host_ip(dst),
            src_port: rng.gen_range(1024..=u16::MAX),
            dst_port: rng.gen_range(1024..=u16::MAX),
            proto: 17, // UDP, §5.2
        };
        if !seen.insert(ft) {
            continue;
        }
        flows.push((ft, dist.sample(&mut rng)));
    }
    Trace { flows }
}

/// The testbed's host addressing scheme: 10.0.h.1 for host `h`.
pub fn host_ip(host: u32) -> u32 {
    0x0a00_0001 | (host << 8)
}

/// Inverse of [`host_ip`].
pub fn ip_host(ip: u32) -> u32 {
    (ip >> 8) & 0xff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caida_like_matches_target_statistics() {
        let t = caida_like_trace(100_000, 42);
        assert_eq!(t.num_flows(), 100_000);
        let mean = t.total_packets() as f64 / t.num_flows() as f64;
        // Paper: 100K flows / 5.3M packets => mean 53. Allow a loose band.
        assert!((30.0..90.0).contains(&mean), "mean {mean}");
        // Heavy tail: largest flow should dwarf the median.
        let top = t.top_n(1).flows[0].1;
        assert!(top > 10_000, "largest flow only {top}");
    }

    #[test]
    fn flow_ids_are_unique() {
        let t = caida_like_trace(5_000, 1);
        let ids: std::collections::HashSet<u32> = t.flows.iter().map(|&(f, _)| f).collect();
        assert_eq!(ids.len(), 5_000);
    }

    #[test]
    fn top_n_is_sorted_and_truncated() {
        let t = caida_like_trace(1_000, 2);
        let top = t.top_n(10);
        assert_eq!(top.num_flows(), 10);
        for w in top.flows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let max_all = t.flows.iter().map(|&(_, s)| s).max().unwrap();
        assert_eq!(top.flows[0].1, max_all);
    }

    #[test]
    fn top_n_larger_than_trace() {
        let t = caida_like_trace(10, 3);
        assert_eq!(t.top_n(100).num_flows(), 10);
    }

    #[test]
    fn packet_stream_has_exact_multiplicities() {
        let t = Trace { flows: vec![(1u32, 3), (2u32, 5)] };
        let stream = t.packet_stream(7);
        assert_eq!(stream.len(), 8);
        assert_eq!(stream.iter().filter(|&&f| f == 1).count(), 3);
        assert_eq!(stream.iter().filter(|&&f| f == 2).count(), 5);
    }

    #[test]
    fn packet_stream_is_shuffled_deterministically() {
        let t = Trace { flows: vec![(1u32, 50), (2u32, 50)] };
        let a = t.packet_stream(7);
        let b = t.packet_stream(7);
        let c = t.packet_stream(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Not fully segregated: some interleaving must exist.
        let first_half_ones = a[..50].iter().filter(|&&f| f == 1).count();
        assert!(first_half_ones > 5 && first_half_ones < 45);
    }

    #[test]
    fn testbed_trace_hosts_are_uniform() {
        let t = testbed_trace(WorkloadKind::Dctcp, 8_000, 8, 11);
        assert_eq!(t.num_flows(), 8_000);
        let mut per_src = [0usize; 8];
        for &(f, _) in &t.flows {
            let h = ip_host(f.src_ip) as usize;
            per_src[h] += 1;
            assert_ne!(f.src_ip, f.dst_ip, "self-flow generated");
            assert_eq!(f.proto, 17);
        }
        for (h, &c) in per_src.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "host {h} sends {c} flows, expected ~1000"
            );
        }
    }

    #[test]
    fn host_ip_roundtrip() {
        for h in 0..8 {
            assert_eq!(ip_host(host_ip(h)), h);
        }
    }

    #[test]
    fn size_map_matches_flows() {
        let t = caida_like_trace(100, 5);
        let m = t.size_map();
        assert_eq!(m.len(), 100);
        for &(f, s) in &t.flows {
            assert_eq!(m[&f], s);
        }
    }
}
