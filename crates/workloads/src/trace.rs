//! Trace synthesis: flow sets with packet counts, packet streams, and the
//! host-to-host assignment used on the testbed (§5.2: "we choose its source
//! and destination IP address uniformly, and therefore each server sends and
//! receives almost the same number of flows").

use crate::distributions::{FlowSizeDistribution, WorkloadKind};
use chm_common::FiveTuple;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hash::Hash;

/// A trace: the set of flows with their packet counts.
#[derive(Debug, Clone)]
pub struct Trace<F> {
    /// `(flow id, packets)` — unique flow IDs.
    pub flows: Vec<(F, u64)>,
}

impl<F: Copy + Eq + Hash + Ord> Trace<F> {
    /// Total packets across all flows.
    pub fn total_packets(&self) -> u64 {
        self.flows.iter().map(|&(_, s)| s).sum()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// The `n` largest flows by packet count (ties broken by flow ID for
    /// determinism), as a new trace. Used by §5.1: "We let the largest 10K
    /// flows pass through the link".
    pub fn top_n(&self, n: usize) -> Trace<F> {
        let mut flows = self.flows.clone();
        flows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        flows.truncate(n);
        Trace { flows }
    }

    /// Ground-truth per-flow sizes as a map.
    pub fn size_map(&self) -> HashMap<F, u64> {
        self.flows.iter().copied().collect()
    }

    /// Expands the trace into a shuffled per-packet stream. Sketch accuracy
    /// for order-sensitive baselines (ElasticSketch, HashPipe) depends on
    /// interleaving, so packets are globally shuffled with `seed`.
    pub fn packet_stream(&self, seed: u64) -> Vec<F> {
        let total = self.total_packets() as usize;
        let mut pkts = Vec::with_capacity(total);
        for &(f, s) in &self.flows {
            for _ in 0..s {
                pkts.push(f);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        pkts.shuffle(&mut rng);
        pkts
    }
}

/// Synthesizes a CAIDA-like trace with 32-bit (source-IP) flow IDs.
///
/// Calibrated to the paper's §5.1 statistics: with `n_flows = 100_000` the
/// mean flow size is ≈ 53 packets (5.3M packets total), heavy-tailed.
/// Flow IDs are distinct random u32s.
pub fn caida_like_trace(n_flows: usize, seed: u64) -> Trace<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Bounded Pareto with alpha = 0.75 over [1, 2^17]: mean ≈ 54 packets
    // per flow with the largest flows in the 10^4-10^5 packet range —
    // matching both the paper's aggregate (5.3M packets over 100K flows)
    // and a realistic CAIDA elephant tail.
    let dist = FlowSizeDistribution::bounded_pareto(0.75, 1 << 17);
    let mut seen = std::collections::HashSet::with_capacity(n_flows);
    let mut flows = Vec::with_capacity(n_flows);
    while flows.len() < n_flows {
        let id: u32 = rng.gen();
        if !seen.insert(id) {
            continue;
        }
        flows.push((id, dist.sample(&mut rng)));
    }
    Trace { flows }
}

/// Synthesizes a testbed trace of UDP 5-tuple flows for `n_flows` flows over
/// `n_hosts` servers, with flow sizes drawn from `workload`'s distribution.
pub fn testbed_trace(
    workload: WorkloadKind,
    n_flows: usize,
    n_hosts: u32,
    seed: u64,
) -> Trace<FiveTuple> {
    assert!(n_hosts >= 2, "need at least two hosts");
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = workload.distribution();
    let mut seen = std::collections::HashSet::with_capacity(n_flows);
    let mut flows = Vec::with_capacity(n_flows);
    while flows.len() < n_flows {
        let src = rng.gen_range(0..n_hosts);
        let mut dst = rng.gen_range(0..n_hosts);
        while dst == src {
            dst = rng.gen_range(0..n_hosts);
        }
        let ft = FiveTuple {
            src_ip: host_ip(src),
            dst_ip: host_ip(dst),
            src_port: rng.gen_range(1024..=u16::MAX),
            dst_port: rng.gen_range(1024..=u16::MAX),
            proto: 17, // UDP, §5.2
        };
        if !seen.insert(ft) {
            continue;
        }
        flows.push((ft, dist.sample(&mut rng)));
    }
    Trace { flows }
}

/// Per-epoch flow churn: flows arrive and depart between epochs, so the
/// measured flow set drifts while the controller's load-factor targets chase
/// it. Modeled as a sliding window over a deterministic flow universe —
/// epoch `e` replaces the oldest `round(n · rate · e)` flows of the base
/// trace (capped at the whole trace) with fresh flows drawn from the same
/// workload distribution. Consecutive epochs therefore share a
/// `1 − rate` fraction of their flows, and a flow that arrived in epoch `e`
/// persists in later epochs (the fresh pool is a fixed seeded sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowChurn {
    /// Fraction of the flow set replaced per epoch, in `[0, 1]`.
    pub rate: f64,
    /// Seed of the arrival pool.
    pub seed: u64,
}

impl FlowChurn {
    /// The epoch-`epoch` flow set evolved from `base`. Epoch 0 is `base`
    /// itself; arrivals draw sizes from `workload` over `n_hosts` hosts.
    pub fn evolve(
        &self,
        base: &Trace<FiveTuple>,
        epoch: u64,
        n_hosts: u32,
        workload: WorkloadKind,
    ) -> Trace<FiveTuple> {
        assert!((0.0..=1.0).contains(&self.rate), "churn rate out of range");
        let n = base.num_flows();
        let replaced = ((n as f64 * self.rate * epoch as f64).round() as usize).min(n);
        if replaced == 0 {
            return base.clone();
        }
        let mut flows = Vec::with_capacity(n);
        flows.extend_from_slice(&base.flows[replaced..]);
        // The arrival pool is one deterministic sequence: asking for more
        // flows extends it, so earlier arrivals persist across epochs.
        let seen: std::collections::HashSet<FiveTuple> =
            base.flows.iter().map(|&(f, _)| f).collect();
        let pool = testbed_trace(workload, replaced + n, n_hosts, self.seed);
        for &(f, s) in &pool.flows {
            if flows.len() >= n {
                break;
            }
            if !seen.contains(&f) {
                flows.push((f, s));
            }
        }
        Trace { flows }
    }
}

/// Periodic heavy-hitter floods: every `period` epochs a batch of large
/// flows slams the fabric — the flow-size distribution's tail fattens
/// abruptly, stressing the controller's `Th` tracking and the HH encoder's
/// load-factor target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodModel {
    /// Flood cadence in epochs (a flood hits when
    /// `(epoch + 1) % period == 0`, so epoch 0 is always clean).
    pub period: u64,
    /// Number of injected heavy flows per flood.
    pub n_flows: usize,
    /// Packets per injected flow.
    pub pkts_per_flow: u64,
    /// Seed of the injected flow identities.
    pub seed: u64,
}

impl FloodModel {
    /// Whether `epoch` is a flood epoch.
    pub fn floods_at(&self, epoch: u64) -> bool {
        self.period > 0 && (epoch + 1).is_multiple_of(self.period)
    }

    /// The trace with this epoch's flood injected (or a plain clone on
    /// clean epochs). Injected identities are fixed per flood index, so the
    /// same epoch always floods with the same flows.
    pub fn apply(
        &self,
        base: &Trace<FiveTuple>,
        epoch: u64,
        n_hosts: u32,
    ) -> Trace<FiveTuple> {
        if !self.floods_at(epoch) || self.n_flows == 0 {
            return base.clone();
        }
        let seen: std::collections::HashSet<FiveTuple> =
            base.flows.iter().map(|&(f, _)| f).collect();
        let ids = testbed_trace(
            WorkloadKind::Dctcp,
            self.n_flows,
            n_hosts,
            self.seed ^ ((epoch + 1) / self.period),
        );
        let mut flows = base.flows.clone();
        flows.extend(
            ids.flows
                .iter()
                .filter(|(f, _)| !seen.contains(f))
                .map(|&(f, _)| (f, self.pkts_per_flow)),
        );
        Trace { flows }
    }
}

/// The testbed's host addressing scheme: 10.0.h.1 for host `h`.
pub fn host_ip(host: u32) -> u32 {
    0x0a00_0001 | (host << 8)
}

/// Inverse of [`host_ip`].
pub fn ip_host(ip: u32) -> u32 {
    (ip >> 8) & 0xff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caida_like_matches_target_statistics() {
        let t = caida_like_trace(100_000, 42);
        assert_eq!(t.num_flows(), 100_000);
        let mean = t.total_packets() as f64 / t.num_flows() as f64;
        // Paper: 100K flows / 5.3M packets => mean 53. Allow a loose band.
        assert!((30.0..90.0).contains(&mean), "mean {mean}");
        // Heavy tail: largest flow should dwarf the median.
        let top = t.top_n(1).flows[0].1;
        assert!(top > 10_000, "largest flow only {top}");
    }

    #[test]
    fn flow_ids_are_unique() {
        let t = caida_like_trace(5_000, 1);
        let ids: std::collections::HashSet<u32> = t.flows.iter().map(|&(f, _)| f).collect();
        assert_eq!(ids.len(), 5_000);
    }

    #[test]
    fn top_n_is_sorted_and_truncated() {
        let t = caida_like_trace(1_000, 2);
        let top = t.top_n(10);
        assert_eq!(top.num_flows(), 10);
        for w in top.flows.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let max_all = t.flows.iter().map(|&(_, s)| s).max().unwrap();
        assert_eq!(top.flows[0].1, max_all);
    }

    #[test]
    fn top_n_larger_than_trace() {
        let t = caida_like_trace(10, 3);
        assert_eq!(t.top_n(100).num_flows(), 10);
    }

    #[test]
    fn packet_stream_has_exact_multiplicities() {
        let t = Trace { flows: vec![(1u32, 3), (2u32, 5)] };
        let stream = t.packet_stream(7);
        assert_eq!(stream.len(), 8);
        assert_eq!(stream.iter().filter(|&&f| f == 1).count(), 3);
        assert_eq!(stream.iter().filter(|&&f| f == 2).count(), 5);
    }

    #[test]
    fn packet_stream_is_shuffled_deterministically() {
        let t = Trace { flows: vec![(1u32, 50), (2u32, 50)] };
        let a = t.packet_stream(7);
        let b = t.packet_stream(7);
        let c = t.packet_stream(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Not fully segregated: some interleaving must exist.
        let first_half_ones = a[..50].iter().filter(|&&f| f == 1).count();
        assert!(first_half_ones > 5 && first_half_ones < 45);
    }

    #[test]
    fn testbed_trace_hosts_are_uniform() {
        let t = testbed_trace(WorkloadKind::Dctcp, 8_000, 8, 11);
        assert_eq!(t.num_flows(), 8_000);
        let mut per_src = [0usize; 8];
        for &(f, _) in &t.flows {
            let h = ip_host(f.src_ip) as usize;
            per_src[h] += 1;
            assert_ne!(f.src_ip, f.dst_ip, "self-flow generated");
            assert_eq!(f.proto, 17);
        }
        for (h, &c) in per_src.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "host {h} sends {c} flows, expected ~1000"
            );
        }
    }

    #[test]
    fn host_ip_roundtrip() {
        for h in 0..8 {
            assert_eq!(ip_host(host_ip(h)), h);
        }
    }

    #[test]
    fn churn_epoch_zero_is_base_and_rate_replaces_flows() {
        let base = testbed_trace(WorkloadKind::Dctcp, 1_000, 8, 21);
        let churn = FlowChurn { rate: 0.1, seed: 77 };
        let e0 = churn.evolve(&base, 0, 8, WorkloadKind::Dctcp);
        assert_eq!(e0.flows, base.flows);
        let e1 = churn.evolve(&base, 1, 8, WorkloadKind::Dctcp);
        assert_eq!(e1.num_flows(), 1_000);
        let base_ids: std::collections::HashSet<FiveTuple> =
            base.flows.iter().map(|&(f, _)| f).collect();
        let fresh = e1.flows.iter().filter(|(f, _)| !base_ids.contains(f)).count();
        assert_eq!(fresh, 100, "10% of 1000 flows must be new at epoch 1");
    }

    #[test]
    fn churn_arrivals_persist_across_epochs() {
        let base = testbed_trace(WorkloadKind::Vl2, 500, 8, 22);
        let churn = FlowChurn { rate: 0.2, seed: 78 };
        let e1 = churn.evolve(&base, 1, 8, WorkloadKind::Vl2);
        let e2 = churn.evolve(&base, 2, 8, WorkloadKind::Vl2);
        let e2_ids: std::collections::HashSet<FiveTuple> =
            e2.flows.iter().map(|&(f, _)| f).collect();
        let base_ids: std::collections::HashSet<FiveTuple> =
            base.flows.iter().map(|&(f, _)| f).collect();
        // Every epoch-1 arrival is still present at epoch 2 (arrivals form a
        // fixed pool; only departures advance).
        for (f, _) in e1.flows.iter().filter(|(f, _)| !base_ids.contains(f)) {
            assert!(e2_ids.contains(f), "epoch-1 arrival vanished at epoch 2");
        }
    }

    #[test]
    fn churn_full_replacement_caps_at_trace_size() {
        let base = testbed_trace(WorkloadKind::Cache, 100, 8, 23);
        let churn = FlowChurn { rate: 0.5, seed: 79 };
        let late = churn.evolve(&base, 100, 8, WorkloadKind::Cache);
        let base_ids: std::collections::HashSet<FiveTuple> =
            base.flows.iter().map(|&(f, _)| f).collect();
        assert!(late.flows.iter().all(|(f, _)| !base_ids.contains(f)));
    }

    #[test]
    fn flood_hits_on_period_and_injects_heavy_flows() {
        let base = testbed_trace(WorkloadKind::Dctcp, 200, 8, 24);
        let flood = FloodModel { period: 3, n_flows: 10, pkts_per_flow: 5_000, seed: 80 };
        assert!(!flood.floods_at(0));
        assert!(!flood.floods_at(1));
        assert!(flood.floods_at(2));
        assert!(flood.floods_at(5));
        let clean = flood.apply(&base, 0, 8);
        assert_eq!(clean.num_flows(), 200);
        let hit = flood.apply(&base, 2, 8);
        assert_eq!(hit.num_flows(), 210);
        let heavy = hit.flows.iter().filter(|&&(_, s)| s == 5_000).count();
        assert_eq!(heavy, 10);
        // Same epoch floods identically.
        assert_eq!(hit.flows, flood.apply(&base, 2, 8).flows);
    }

    #[test]
    fn size_map_matches_flows() {
        let t = caida_like_trace(100, 5);
        let m = t.size_map();
        assert_eq!(m.len(), 100);
        for &(f, s) in &t.flows {
            assert_eq!(m[&f], s);
        }
    }
}
