//! Slot-shaped arrival profiles: *when inside an epoch* a flow's packets
//! arrive.
//!
//! The static congestion model treats an epoch as one homogeneous interval —
//! a link is either saturated for all of it or none of it. Real fabrics
//! misbehave on much shorter timescales: microbursts overwhelm a queue for a
//! few hundred microseconds, incasts ramp up as stragglers join, and a
//! slow-draining queue stays deep long after its burst has passed. An
//! [`ArrivalProfile`] gives the queue simulator
//! (`chm_netsim::queue`) that temporal dimension: each epoch is split into
//! `S` discrete slots, and the profile says how many of a flow's packets
//! land in each slot.
//!
//! # The closed-form contract
//!
//! Packets are assigned to slots **in packet order** (packet `i`'s slot is
//! monotone non-decreasing in `i` — index order *is* time order within an
//! epoch, the same convention `spread_drop` and clock skew already rely on),
//! and the per-slot counts are the finite differences of a cumulative
//! function:
//!
//! ```text
//! counts[t] = cum(t+1) − cum(t),   cum(x) = ⌊pkts · F(x / S)⌋,   cum(S) = pkts
//! ```
//!
//! so a flow's slot layout costs `O(S)`, never `O(pkts)` — the same
//! closed-form discipline as `TowerSketch::insert_burst` and
//! `spread_drop_prefix`. Both replay paths (per-packet and burst) and the
//! queue realization's offered-load accounting call this one function, which
//! is what keeps them byte-identical.
//!
//! All shaping is deterministic: the only randomness is the seeded burst
//! position of [`ArrivalProfile::Microburst`], derived from the slot seed
//! and the flow key — never from call order.

use chm_common::hash::mix64;

/// How a flow's packets are distributed over an epoch's time slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProfile {
    /// Uniform arrivals: `pkts / S` packets per slot (exact integer
    /// spreading, the temporal analogue of the static congestion model).
    Flat,
    /// A synchronized microburst: `frac` of every flow's packets concentrate
    /// into a `width`-slot window. The window's epoch position is seeded
    /// (per epoch), and each flow jitters its own start within the window by
    /// a keyed offset — the aggregate is a sharp fabric-wide burst with
    /// per-flow micro-structure, the classic incast/sync-app pathology.
    Microburst {
        /// Fraction of each flow's packets inside the burst window.
        frac: f64,
        /// Burst window width in slots (≥ 1).
        width: usize,
    },
    /// Ramping arrivals: instantaneous rate grows linearly across the epoch
    /// (cumulative `F(x) = x²`), peaking at ~2× the mean in the final slot —
    /// the build-up phase of an incast as stragglers join.
    IncastRamp,
    /// Front-loaded arrivals: the mirror of the ramp (`F(x) = 1 − (1−x)²`),
    /// rate ~2× the mean in the first slot then trailing off — the queue
    /// fills early and spends the rest of the epoch draining, which is where
    /// a slow-drain device shows its pathology.
    SlowDrain,
}

impl ArrivalProfile {
    /// Cumulative fraction of a flow's packets arriving in the first `x` of
    /// `n_slots` slots (`0 ≤ x ≤ n_slots`); monotone with `F(0) = 0`,
    /// `F(S) = 1`. `burst_start` positions the microburst window.
    fn cdf(&self, x: usize, n_slots: usize, burst_start: usize) -> f64 {
        let u = x as f64 / n_slots as f64;
        match *self {
            ArrivalProfile::Flat => u,
            ArrivalProfile::Microburst { frac, width } => {
                let w = width.max(1) as f64;
                let g = ((x as f64 - burst_start as f64) / w).clamp(0.0, 1.0);
                (1.0 - frac) * u + frac * g
            }
            ArrivalProfile::IncastRamp => u * u,
            ArrivalProfile::SlowDrain => 1.0 - (1.0 - u) * (1.0 - u),
        }
    }

    /// The microburst window start for one flow: the epoch-seeded global
    /// position plus a keyed per-flow jitter inside the window.
    fn burst_start(&self, flow_key: u64, slot_seed: u64, n_slots: usize) -> usize {
        let ArrivalProfile::Microburst { width, .. } = *self else {
            return 0;
        };
        let width = width.max(1).min(n_slots);
        let latest = n_slots - width;
        if latest == 0 {
            return 0;
        }
        let global = (mix64(slot_seed ^ BURST_SALT) as usize) % (latest + 1);
        let jitter = (mix64(slot_seed ^ flow_key ^ JITTER_SALT) as usize) % width;
        (global + jitter).min(latest)
    }

    /// Fills `out` with this flow's per-slot packet counts
    /// (`out.len() == n_slots`, `out.iter().sum() == pkts`). Pure function
    /// of `(self, flow_key, pkts, slot_seed, n_slots)` — the queue
    /// realization's offered-load accounting and both replay paths' fate
    /// realizations call it with identical inputs and get identical layouts.
    pub fn slot_counts(
        &self,
        flow_key: u64,
        pkts: u64,
        slot_seed: u64,
        n_slots: usize,
        out: &mut Vec<u64>,
    ) {
        assert!(n_slots >= 1, "need at least one slot");
        out.clear();
        if let ArrivalProfile::Flat = self {
            // Exact integer spreading — no float round-trip at all.
            for t in 0..n_slots as u64 {
                out.push(pkts * (t + 1) / n_slots as u64 - pkts * t / n_slots as u64);
            }
            return;
        }
        let start = self.burst_start(flow_key, slot_seed, n_slots);
        let mut prev = 0u64;
        for t in 1..=n_slots {
            let cum = if t == n_slots {
                pkts // F(S) = 1 exactly, immune to float rounding
            } else {
                (pkts as f64 * self.cdf(t, n_slots, start)).floor() as u64
            };
            out.push(cum - prev);
            prev = cum;
        }
    }
}

/// Salt of the epoch-global microburst position.
const BURST_SALT: u64 = 0x6275_7273; // "burs"
/// Salt of the per-flow jitter inside the burst window.
const JITTER_SALT: u64 = 0x6a69_7474; // "jitt"

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(p: ArrivalProfile, key: u64, pkts: u64, seed: u64, s: usize) -> Vec<u64> {
        let mut out = Vec::new();
        p.slot_counts(key, pkts, seed, s, &mut out);
        out
    }

    #[test]
    fn every_profile_conserves_packets() {
        for p in [
            ArrivalProfile::Flat,
            ArrivalProfile::Microburst { frac: 0.5, width: 2 },
            ArrivalProfile::IncastRamp,
            ArrivalProfile::SlowDrain,
        ] {
            for pkts in [0u64, 1, 7, 100, 12_345] {
                let c = counts(p, 42, pkts, 9, 8);
                assert_eq!(c.len(), 8);
                assert_eq!(c.iter().sum::<u64>(), pkts, "{p:?} pkts={pkts}");
            }
        }
    }

    #[test]
    fn flat_is_exactly_uniform() {
        let c = counts(ArrivalProfile::Flat, 1, 80, 0, 8);
        assert_eq!(c, vec![10; 8]);
        let c = counts(ArrivalProfile::Flat, 1, 10, 0, 4);
        // ⌊10(t+1)/4⌋ differences: 2,3,2,3.
        assert_eq!(c, vec![2, 3, 2, 3]);
    }

    #[test]
    fn microburst_concentrates_the_burst_fraction() {
        let p = ArrivalProfile::Microburst { frac: 0.6, width: 2 };
        let c = counts(p, 7, 10_000, 3, 8);
        // The two heaviest adjacent slots must hold ≳ the burst fraction
        // (plus their flat share).
        let max2 = c.windows(2).map(|w| w[0] + w[1]).max().unwrap();
        assert!(max2 >= 6_000, "burst window too light: {c:?}");
        // The flat floor is still everywhere.
        assert!(c.iter().all(|&n| n >= 10_000 / 8 / 3), "flat floor missing: {c:?}");
    }

    #[test]
    fn microburst_position_is_seeded_and_jittered() {
        let p = ArrivalProfile::Microburst { frac: 0.8, width: 2 };
        let a = counts(p, 7, 1_000, 3, 16);
        assert_eq!(a, counts(p, 7, 1_000, 3, 16), "determinism");
        // Different epochs (slot seeds) can move the window.
        let moved = (0..16u64).any(|s| counts(p, 7, 1_000, s, 16) != a);
        assert!(moved, "burst position must depend on the slot seed");
        // Different flows can jitter within the window.
        let jittered = (0..64u64).any(|k| counts(p, k, 1_000, 3, 16) != a);
        assert!(jittered, "burst position must carry per-flow jitter");
    }

    #[test]
    fn ramp_grows_and_slow_drain_shrinks() {
        let ramp = counts(ArrivalProfile::IncastRamp, 1, 8_000, 0, 8);
        assert!(ramp.last().unwrap() > ramp.first().unwrap());
        assert!(ramp.windows(2).all(|w| w[1] >= w[0]), "ramp must be monotone: {ramp:?}");
        let drain = counts(ArrivalProfile::SlowDrain, 1, 8_000, 0, 8);
        assert!(drain.first().unwrap() > drain.last().unwrap());
        assert!(
            drain.windows(2).all(|w| w[1] <= w[0]),
            "slow-drain must be monotone: {drain:?}"
        );
        // The two are mirrors.
        let mut rev = drain.clone();
        rev.reverse();
        assert_eq!(ramp, rev);
    }

    #[test]
    fn tiny_flows_are_valid_everywhere() {
        for p in [
            ArrivalProfile::Microburst { frac: 0.99, width: 1 },
            ArrivalProfile::IncastRamp,
        ] {
            for pkts in 0..4u64 {
                for s in 1..6usize {
                    let c = counts(p, 5, pkts, 1, s);
                    assert_eq!(c.iter().sum::<u64>(), pkts);
                    assert_eq!(c.len(), s);
                }
            }
        }
    }
}
