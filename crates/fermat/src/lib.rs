//! **FermatSketch** — the key technique of ChameleMon (§3.1, Appendix A).
//!
//! FermatSketch is an invertible sketch made of `d` equal-sized bucket
//! arrays. Each bucket holds a *count* field and an *IDsum* field; inserting
//! a packet of flow `f` increments the count and modularly adds `f` into the
//! IDsum of one mapped bucket per array. Because the IDsum arithmetic is over
//! a prime field, a bucket holding only packets of a single flow (*pure*
//! bucket) satisfies `IDsum ≡ count · f (mod p)`, and Fermat's little theorem
//! recovers the flow: `f = IDsum · count^(p−2) mod p`.
//!
//! The sketch is:
//! * **dividable** — ChameleMon carves one physical sketch into HH/HL/LL
//!   encoders by splitting the bucket range (`crates/chamelemon`);
//! * **additive/subtractive** — sketches with identical parameters can be
//!   added (to accumulate over switches) and subtracted (upstream −
//!   downstream = victim flows), see [`FermatSketch::add_assign_sketch`] /
//!   [`FermatSketch::sub_assign_sketch`];
//! * **decodable** — [`FermatSketch::decode`] peels pure buckets queue-wise
//!   (Algorithm 2), eliminating false-positive extractions automatically by
//!   letting wrongly-extracted "negative flows" cancel (§A.2).
//!
//! Memory is `Θ(M)` in the number of encoded flows; with `d = 3`, decoding
//! succeeds w.h.p. once buckets ≥ 1.23·M (Theorem 3.1).

#![forbid(unsafe_code)]

use chm_common::flowid::{FlowId, MAX_FRAGMENTS};
use chm_common::hash::{BatchHasher, FastRange, HashFamily, PairwiseHash};
use chm_common::prime::{add_mod, inv_mod, mul_mod, signed_to_mod, sub_mod};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;

/// Recommended number of bucket arrays: `d = 3` maximizes memory efficiency
/// (1.23 buckets/flow on average, footnote 3 / Theorem 3.1).
pub const RECOMMENDED_ARRAYS: usize = 3;

/// `c_d` — minimum average buckets per flow for a `d`-array sketch to decode
/// w.h.p. (Theorem 3.1): `c_3 = 1.23`, `c_4 = 1.30`, `c_5 = 1.43`.
pub fn c_d(d: usize) -> f64 {
    match d {
        3 => 1.23,
        4 => 1.30,
        5 => 1.43,
        // The 2-core threshold has no sharp constant for d < 3; extrapolate
        // conservatively for other d.
        _ => 1.23 * (1.0 + 0.1 * (d as f64 - 3.0)).max(1.0),
    }
}

/// Static configuration of a [`FermatSketch`].
///
/// Two sketches can be added/subtracted iff their configurations are equal
/// (same hash functions, array count, bucket count, fingerprint width —
/// §3.1 "Addition/Subtraction operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FermatConfig {
    /// Number of bucket arrays `d`.
    pub arrays: usize,
    /// Buckets per array `m`.
    pub buckets_per_array: usize,
    /// Optional fingerprint width `w` in bits (0 disables, §A.4). Reduces the
    /// pure-bucket false-positive rate from `1/m` to `1/(2^w · m)`.
    pub fingerprint_bits: u32,
    /// Master seed for the per-array hash functions.
    pub seed: u64,
}

impl FermatConfig {
    /// Convenience constructor with `d = 3` and no fingerprint.
    pub fn standard(buckets_per_array: usize, seed: u64) -> Self {
        FermatConfig {
            arrays: RECOMMENDED_ARRAYS,
            buckets_per_array,
            fingerprint_bits: 0,
            seed,
        }
    }

    /// Total buckets `m·d`.
    pub fn total_buckets(&self) -> usize {
        self.arrays * self.buckets_per_array
    }

    /// Bytes of one bucket under the paper's CPU-evaluation accounting
    /// (32-bit count field + one 32-bit ID lane per fragment + fingerprint
    /// bits, §5.1). Used by the figure-4/5/6 harness so memory numbers are
    /// comparable to the paper's.
    pub fn logical_bucket_bytes<F: FlowId>(&self) -> f64 {
        4.0 + 4.0 * F::FRAGMENTS as f64 + self.fingerprint_bits as f64 / 8.0
    }

    /// Total logical memory in bytes for flow-ID type `F`.
    pub fn logical_memory_bytes<F: FlowId>(&self) -> f64 {
        self.total_buckets() as f64 * self.logical_bucket_bytes::<F>()
    }

    /// Buckets-per-array needed to hold `flows` at the given `load_factor`
    /// (e.g. the controller's 70% target, §4.3).
    pub fn buckets_for(flows: usize, arrays: usize, load_factor: f64) -> usize {
        let total = (flows as f64 / load_factor).ceil() as usize;
        total.div_ceil(arrays).max(1)
    }
}

/// Outcome of a decode pass.
#[derive(Debug, Clone)]
pub struct DecodeResult<F> {
    /// Extracted flows and their (signed) sizes — the *Flowset* of
    /// Algorithm 2. Zero-size cancellation residues are removed.
    pub flows: HashMap<F, i64>,
    /// True iff every bucket drained to zero (§3.1: "if there are still
    /// non-zero buckets … the decoding is considered as failed").
    pub success: bool,
    /// Number of buckets still non-zero after peeling stopped.
    pub remaining_nonzero: usize,
}

impl<F> DecodeResult<F> {
    /// Flows with strictly positive decoded size (the usual consumer view).
    pub fn positive_flows(&self) -> impl Iterator<Item = (&F, i64)> {
        self.flows.iter().filter(|(_, &c)| c > 0).map(|(f, &c)| (f, c))
    }
}

/// The FermatSketch data structure (Figure 2).
///
/// `PartialEq` compares the full bucket state — two sketches are equal iff
/// every counter, IDsum lane and fingerprint lane matches (used by the
/// burst-vs-per-packet equivalence tests).
#[derive(Debug, Clone, PartialEq)]
pub struct FermatSketch<F: FlowId> {
    cfg: FermatConfig,
    hashes: HashFamily,
    fp_hash: PairwiseHash,
    /// Precomputed branch-free range reduction onto `[0, buckets_per_array)`.
    reducer: FastRange,
    /// Signed packet counts, `arrays × buckets` flattened row-major.
    counts: Vec<i64>,
    /// IDsum lanes mod p, `arrays × buckets × F::FRAGMENTS` flattened.
    idsums: Vec<u64>,
    /// Fingerprint-sum lane mod p (empty when fingerprints are disabled).
    fpsums: Vec<u64>,
    _id: PhantomData<F>,
}

impl<F: FlowId> FermatSketch<F> {
    /// Creates an empty sketch. `cfg.buckets_per_array` may be zero (a
    /// zero-memory encoder partition); such a sketch accepts no insertions.
    pub fn new(cfg: FermatConfig) -> Self {
        assert!(cfg.arrays >= 1, "FermatSketch needs at least one array");
        assert!(
            F::FRAGMENTS <= MAX_FRAGMENTS,
            "flow id uses more fragments than supported"
        );
        assert!(cfg.fingerprint_bits <= 32, "fingerprint wider than 32 bits");
        let n = cfg.total_buckets();
        FermatSketch {
            cfg,
            hashes: HashFamily::new(cfg.seed, cfg.arrays),
            fp_hash: PairwiseHash::from_seed(cfg.seed ^ 0xf19e_0fae_57a1_1ed5),
            reducer: FastRange::new(cfg.buckets_per_array),
            counts: vec![0; n],
            idsums: vec![0; n * F::FRAGMENTS],
            fpsums: if cfg.fingerprint_bits > 0 { vec![0; n] } else { Vec::new() },
            _id: PhantomData,
        }
    }

    /// The sketch configuration.
    pub fn config(&self) -> &FermatConfig {
        &self.cfg
    }

    /// True when this sketch can be added to / subtracted from `other`.
    pub fn compatible(&self, other: &Self) -> bool {
        self.cfg == other.cfg
    }

    /// Whether the sketch holds no packets at all.
    pub fn is_zero(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
            && self.idsums.iter().all(|&s| s == 0)
            && self.fpsums.iter().all(|&s| s == 0)
    }

    /// Resets every bucket to zero, keeping the configuration (epoch
    /// rotation re-uses the physical sketch, §B).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.idsums.fill(0);
        self.fpsums.fill(0);
    }

    #[inline]
    fn bucket_index(&self, array: usize, slot: usize) -> usize {
        array * self.cfg.buckets_per_array + slot
    }

    #[inline]
    fn fingerprint_premixed(&self, bh: BatchHasher) -> u64 {
        debug_assert!(self.cfg.fingerprint_bits > 0);
        bh.raw(&self.fp_hash) & ((1u64 << self.cfg.fingerprint_bits) - 1)
    }

    /// Encodes one packet of flow `f` (Algorithm 1).
    #[inline]
    pub fn insert(&mut self, f: &F) {
        self.insert_weighted(f, 1);
    }

    /// Like [`insert`](Self::insert) but with the flow's
    /// [`key64`](FlowId::key64) supplied by the caller — the data plane
    /// computes the key once per packet (sampler, classifier, encoder all
    /// need it) instead of re-deriving it inside every sketch.
    #[inline]
    pub fn insert_keyed(&mut self, f: &F, key: u64) {
        debug_assert_eq!(key, f.key64());
        self.insert_weighted_keyed(f, key, 1);
    }

    /// Encodes `weight` packets of flow `f` in one pass. Negative weights
    /// delete (used when the controller re-inserts decoded HH flows into the
    /// upstream HL encoder before subtraction, §4.2, and for tests).
    ///
    /// Hot path: the flow key is mixed **once** ([`BatchHasher`]); every
    /// per-array index comes from the precomputed branch-free [`FastRange`]
    /// reduction. No allocation, no division.
    #[inline]
    pub fn insert_weighted(&mut self, f: &F, weight: i64) {
        self.insert_weighted_keyed(f, f.key64(), weight);
    }

    /// [`insert_weighted`](Self::insert_weighted) with a caller-supplied
    /// [`key64`](FlowId::key64).
    #[inline]
    // chm-lint: hot
    pub fn insert_weighted_keyed(&mut self, f: &F, key: u64, weight: i64) {
        debug_assert_eq!(key, f.key64());
        assert!(
            self.cfg.buckets_per_array > 0,
            "insert into a zero-memory FermatSketch partition"
        );
        if weight == 0 {
            return;
        }
        let bh = BatchHasher::new(key);
        let wmod = signed_to_mod(weight);
        // Per-lane weighted fragments are array-independent: compute once.
        // The per-packet path has `weight == 1`, where the weighting is the
        // identity — skip the 128-bit modular multiplies entirely
        // (fragments are already `< p` by the FlowId contract).
        let mut adds = [0u64; MAX_FRAGMENTS];
        for (k, a) in adds.iter_mut().enumerate().take(F::FRAGMENTS) {
            *a = if wmod == 1 { f.fragment(k) } else { mul_mod(wmod, f.fragment(k)) };
        }
        let fp_add = if self.cfg.fingerprint_bits > 0 {
            let fpv = self.fingerprint_premixed(bh);
            if wmod == 1 {
                fpv
            } else {
                mul_mod(wmod, fpv)
            }
        } else {
            0
        };
        let m = self.cfg.buckets_per_array;
        for (i, h) in self.hashes.as_slice().iter().enumerate() {
            let j = bh.index(h, self.reducer);
            let b = i * m + j;
            self.counts[b] += weight;
            for (k, &add) in adds.iter().enumerate().take(F::FRAGMENTS) {
                let lane = b * F::FRAGMENTS + k;
                self.idsums[lane] = add_mod(self.idsums[lane], add);
            }
            if self.cfg.fingerprint_bits > 0 {
                self.fpsums[b] = add_mod(self.fpsums[b], fp_add);
            }
        }
    }

    /// Adds `other` bucket-wise (`self += other`). Panics on incompatible
    /// configurations, mirroring the paper's same-parameter requirement.
    pub fn add_assign_sketch(&mut self, other: &Self) {
        assert!(self.compatible(other), "adding incompatible FermatSketches");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.idsums.iter_mut().zip(&other.idsums) {
            *a = add_mod(*a, *b);
        }
        for (a, b) in self.fpsums.iter_mut().zip(&other.fpsums) {
            *a = add_mod(*a, *b);
        }
    }

    /// Subtracts `other` bucket-wise (`self -= other`). The result encodes
    /// the multiset difference; decoding it yields exactly the victim flows
    /// when `self` is the cumulative upstream and `other` the cumulative
    /// downstream encoder (§3.1 "Packet loss detection").
    pub fn sub_assign_sketch(&mut self, other: &Self) {
        assert!(self.compatible(other), "subtracting incompatible FermatSketches");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a -= b;
        }
        for (a, b) in self.idsums.iter_mut().zip(&other.idsums) {
            *a = sub_mod(*a, *b);
        }
        for (a, b) in self.fpsums.iter_mut().zip(&other.fpsums) {
            *a = sub_mod(*a, *b);
        }
    }

    /// Number of non-zero buckets in array `i` (for linear counting).
    pub fn nonzero_in_array(&self, i: usize) -> usize {
        let m = self.cfg.buckets_per_array;
        (0..m)
            .filter(|&j| {
                let b = self.bucket_index(i, j);
                self.counts[b] != 0
                    || (0..F::FRAGMENTS).any(|k| self.idsums[b * F::FRAGMENTS + k] != 0)
            })
            .count()
    }

    /// Linear-counting estimate of the number of distinct flows encoded,
    /// from the zero-bucket fraction of array `i`: `n̂ = −m·ln(V₀)` (§4.3,
    /// the fallback when decoding fails).
    pub fn linear_count(&self, i: usize) -> f64 {
        let m = self.cfg.buckets_per_array;
        if m == 0 {
            return 0.0;
        }
        let zero = m - self.nonzero_in_array(i);
        if zero == 0 {
            // Saturated array: linear counting diverges. Apply the standard
            // half-count continuity correction (V₀ = 0.5/m), yielding
            // m·ln(2m) — a deliberately *large* estimate so the controller
            // treats a saturated encoder as badly overloaded.
            return m as f64 * (2.0 * m as f64).ln();
        }
        -(m as f64) * ((zero as f64) / (m as f64)).ln()
    }

    /// Decodes the sketch non-destructively.
    ///
    /// Unlike earlier revisions this **never clones the sketch**: peeling
    /// runs against a scratch workspace ([`DecodeScratch`]) that shadows
    /// only the touched bucket state. This convenience form allocates a
    /// fresh scratch; epoch loops should hold one and call
    /// [`decode_with`](Self::decode_with) to reuse the queue/flows/bucket
    /// allocations across epochs.
    pub fn decode(&self) -> DecodeResult<F> {
        let mut scratch = DecodeScratch::new();
        self.decode_with(&mut scratch)
    }

    /// Decodes the sketch non-destructively, reusing `scratch`'s
    /// allocations (peeling queue, flowset map, bucket shadow).
    ///
    /// Strategy is picked by occupancy: a sparsely loaded sketch (e.g. a
    /// delta encoder holding few victims) peels through a hash-map overlay
    /// of the touched buckets only; a loaded sketch copies its bucket state
    /// into the scratch's reusable dense buffers (a memcpy, no allocation
    /// after the first epoch). Both paths run the identical peel and return
    /// bit-identical results.
    pub fn decode_with(&self, scratch: &mut DecodeScratch<F>) -> DecodeResult<F> {
        scratch.queue.clear();
        let mut flows = std::mem::take(&mut scratch.flows);
        flows.clear();
        let m = self.cfg.buckets_per_array;
        // Step 1: push all non-zero buckets.
        let mut hot = 0usize;
        for i in 0..self.cfg.arrays {
            for j in 0..m {
                if self.counts[i * m + j] != 0 {
                    scratch.queue.push_back((i as u32, j as u32));
                    hot += 1;
                }
            }
        }
        let total = self.cfg.total_buckets();
        // ≤ 1/8 occupancy: the overlay touches far less memory than a full
        // copy. Above that, the dense copy's linear memcpy wins.
        if hot * 8 <= total {
            let mut store = OverlayStore {
                base_counts: &self.counts,
                base_idsums: &self.idsums,
                base_fpsums: &self.fpsums,
                overlay: &mut scratch.overlay,
                lanes: F::FRAGMENTS,
            };
            store.overlay.clear();
            self.peel(&mut store, &mut scratch.queue, &mut flows);
            // Remaining = non-zero buckets of the base state, adjusted by
            // the overlay's touched buckets — a branchy-but-linear scan
            // plus O(|overlay|), instead of a hash lookup per bucket.
            let base_nonzero =
                |b: usize| -> bool {
                    self.counts[b] != 0
                        || self.idsums[b * F::FRAGMENTS..(b + 1) * F::FRAGMENTS]
                            .iter()
                            .any(|&s| s != 0)
                };
            let mut remaining = count_remaining(&self.counts, &self.idsums, F::FRAGMENTS);
            for (&b, o) in scratch.overlay.iter() {
                let now = o.count != 0 || o.idsums[..F::FRAGMENTS].iter().any(|&s| s != 0);
                match (base_nonzero(b), now) {
                    (true, false) => remaining -= 1,
                    (false, true) => remaining += 1,
                    _ => {}
                }
            }
            scratch.last_stats = DecodeStats {
                sparse: true,
                hot_buckets: hot,
                total_buckets: total,
                decoded_flows: flows.len(),
            };
            DecodeResult {
                flows,
                success: remaining == 0,
                remaining_nonzero: remaining,
            }
        } else {
            scratch.counts.clear();
            scratch.counts.extend_from_slice(&self.counts);
            scratch.idsums.clear();
            scratch.idsums.extend_from_slice(&self.idsums);
            scratch.fpsums.clear();
            scratch.fpsums.extend_from_slice(&self.fpsums);
            let mut store = DirectStore {
                counts: &mut scratch.counts,
                idsums: &mut scratch.idsums,
                fpsums: &mut scratch.fpsums,
                lanes: F::FRAGMENTS,
            };
            self.peel(&mut store, &mut scratch.queue, &mut flows);
            let remaining = count_remaining(&scratch.counts, &scratch.idsums, F::FRAGMENTS);
            scratch.last_stats = DecodeStats {
                sparse: false,
                hot_buckets: hot,
                total_buckets: total,
                decoded_flows: flows.len(),
            };
            DecodeResult {
                flows,
                success: remaining == 0,
                remaining_nonzero: remaining,
            }
        }
    }

    /// Decoding operation (Algorithm 2) consuming the bucket contents —
    /// the fastest path when the caller owns the sketch and is done with it.
    ///
    /// A work budget bounds the peeling: on overloaded sketches,
    /// false-positive extractions can otherwise cycle forever (a wrongly
    /// extracted flow re-creates the bucket state that triggers its own
    /// cancellation, §A.2). Exhausting the budget leaves non-zero buckets,
    /// which correctly reports decode failure.
    pub fn decode_in_place(mut self) -> DecodeResult<F> {
        let m = self.cfg.buckets_per_array;
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
        // Step 1: push all non-zero buckets.
        for i in 0..self.cfg.arrays {
            for j in 0..m {
                if self.counts[i * m + j] != 0 {
                    queue.push_back((i as u32, j as u32));
                }
            }
        }
        let mut flows: HashMap<F, i64> = HashMap::new();
        let mut store = DirectStore {
            counts: &mut self.counts,
            idsums: &mut self.idsums,
            fpsums: &mut self.fpsums,
            lanes: F::FRAGMENTS,
        };
        // Split borrows: peel needs cfg/hashes immutably, the store fields
        // mutably — route through a free function taking both.
        peel_impl(
            &self.cfg,
            &self.hashes,
            &self.fp_hash,
            self.reducer,
            &mut store,
            &mut queue,
            &mut flows,
        );
        let remaining = count_remaining(&self.counts, &self.idsums, F::FRAGMENTS);
        DecodeResult {
            flows,
            success: remaining == 0,
            remaining_nonzero: remaining,
        }
    }

    fn peel<S: BucketStore>(
        &self,
        store: &mut S,
        queue: &mut VecDeque<(u32, u32)>,
        flows: &mut HashMap<F, i64>,
    ) {
        peel_impl::<F, S>(
            &self.cfg,
            &self.hashes,
            &self.fp_hash,
            self.reducer,
            store,
            queue,
            flows,
        );
    }
}

/// Reusable decode workspace: the peeling queue, the flowset accumulator,
/// and a bucket shadow (sparse overlay or dense copy, chosen per decode).
///
/// Holding one of these across epochs makes [`FermatSketch::decode_with`]
/// allocation-free in steady state — the controller decodes every epoch's
/// encoders without cloning a single sketch.
#[derive(Debug, Clone)]
pub struct DecodeScratch<F: FlowId> {
    queue: VecDeque<(u32, u32)>,
    overlay: HashMap<usize, OverlayBucket>,
    counts: Vec<i64>,
    idsums: Vec<u64>,
    fpsums: Vec<u64>,
    flows: HashMap<F, i64>,
    /// Telemetry from the most recent [`FermatSketch::decode_with`] call
    /// through this scratch (strategy choice + peel size). Read-only for
    /// callers; observability layers fold it into span counters.
    pub last_stats: DecodeStats,
}

/// What the most recent `decode_with` did: which strategy ran and how big
/// the peel was. Purely integer/flag data, deterministic for a given
/// sketch state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// True when the sparse overlay path ran (≤ 1/8 bucket occupancy);
    /// false for the dense bucket-copy path.
    pub sparse: bool,
    /// Non-zero buckets at decode start.
    pub hot_buckets: usize,
    /// Total buckets in the sketch configuration.
    pub total_buckets: usize,
    /// Flows extracted by the peel.
    pub decoded_flows: usize,
}

impl<F: FlowId> Default for DecodeScratch<F> {
    fn default() -> Self {
        DecodeScratch {
            queue: VecDeque::new(),
            overlay: HashMap::new(),
            counts: Vec::new(),
            idsums: Vec::new(),
            fpsums: Vec::new(),
            flows: HashMap::new(),
            last_stats: DecodeStats::default(),
        }
    }
}

impl<F: FlowId> DecodeScratch<F> {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands a finished [`DecodeResult`]'s flowset allocation back to the
    /// scratch so the next decode reuses its capacity. Purely an
    /// optimization — dropping the result instead is always correct.
    pub fn recycle(&mut self, result: DecodeResult<F>) {
        if result.flows.capacity() > self.flows.capacity() {
            self.flows = result.flows;
        }
    }
}

/// Shadow state of one touched bucket in the sparse overlay.
#[derive(Debug, Clone, Copy)]
struct OverlayBucket {
    count: i64,
    idsums: [u64; MAX_FRAGMENTS],
    fpsum: u64,
}

/// Bucket state the peel reads and extracts from; implemented by the dense
/// (owned/copied arrays) and sparse (overlay of touched buckets) stores.
trait BucketStore {
    fn count(&self, b: usize) -> i64;
    fn idsum(&self, b: usize, k: usize) -> u64;
    fn fpsum(&self, b: usize) -> u64;
    /// Removes `count` packets of a flow with weighted fragment values
    /// `subs` (and weighted fingerprint `fp_sub`) from bucket `b`.
    fn extract(&mut self, b: usize, count: i64, subs: &[u64], fp_sub: Option<u64>);
}

struct DirectStore<'a> {
    counts: &'a mut [i64],
    idsums: &'a mut [u64],
    fpsums: &'a mut [u64],
    lanes: usize,
}

impl BucketStore for DirectStore<'_> {
    #[inline]
    fn count(&self, b: usize) -> i64 {
        self.counts[b]
    }
    #[inline]
    fn idsum(&self, b: usize, k: usize) -> u64 {
        self.idsums[b * self.lanes + k]
    }
    #[inline]
    fn fpsum(&self, b: usize) -> u64 {
        self.fpsums[b]
    }
    #[inline]
    fn extract(&mut self, b: usize, count: i64, subs: &[u64], fp_sub: Option<u64>) {
        self.counts[b] -= count;
        for (k, &sub) in subs.iter().enumerate() {
            let lane = b * self.lanes + k;
            self.idsums[lane] = sub_mod(self.idsums[lane], sub);
        }
        if let Some(fp) = fp_sub {
            self.fpsums[b] = sub_mod(self.fpsums[b], fp);
        }
    }
}

struct OverlayStore<'a> {
    base_counts: &'a [i64],
    base_idsums: &'a [u64],
    base_fpsums: &'a [u64],
    overlay: &'a mut HashMap<usize, OverlayBucket>,
    lanes: usize,
}

impl BucketStore for OverlayStore<'_> {
    #[inline]
    fn count(&self, b: usize) -> i64 {
        match self.overlay.get(&b) {
            Some(o) => o.count,
            None => self.base_counts[b],
        }
    }
    #[inline]
    fn idsum(&self, b: usize, k: usize) -> u64 {
        match self.overlay.get(&b) {
            Some(o) => o.idsums[k],
            None => self.base_idsums[b * self.lanes + k],
        }
    }
    #[inline]
    fn fpsum(&self, b: usize) -> u64 {
        match self.overlay.get(&b) {
            Some(o) => o.fpsum,
            None => self.base_fpsums[b],
        }
    }
    #[inline]
    fn extract(&mut self, b: usize, count: i64, subs: &[u64], fp_sub: Option<u64>) {
        let (base_counts, base_idsums, base_fpsums, lanes) =
            (self.base_counts, self.base_idsums, self.base_fpsums, self.lanes);
        let o = self.overlay.entry(b).or_insert_with(|| {
            let mut idsums = [0u64; MAX_FRAGMENTS];
            idsums[..lanes].copy_from_slice(&base_idsums[b * lanes..(b + 1) * lanes]);
            OverlayBucket {
                count: base_counts[b],
                idsums,
                fpsum: base_fpsums.get(b).copied().unwrap_or(0),
            }
        });
        o.count -= count;
        for (k, &sub) in subs.iter().enumerate() {
            o.idsums[k] = sub_mod(o.idsums[k], sub);
        }
        if let Some(fp) = fp_sub {
            o.fpsum = sub_mod(o.fpsum, fp);
        }
    }
}

/// True when a bucket still holds state after peeling.
fn count_remaining(counts: &[i64], idsums: &[u64], lanes: usize) -> usize {
    counts
        .iter()
        .enumerate()
        .filter(|&(b, &c)| {
            c != 0 || idsums[b * lanes..(b + 1) * lanes].iter().any(|&s| s != 0)
        })
        .count()
}

/// The queue-driven pure-bucket peel (Algorithm 2), generic over the bucket
/// store so the consuming and non-destructive decodes share one loop.
fn peel_impl<F: FlowId, S: BucketStore>(
    cfg: &FermatConfig,
    hashes: &HashFamily,
    fp_hash: &PairwiseHash,
    reducer: FastRange,
    store: &mut S,
    queue: &mut VecDeque<(u32, u32)>,
    flows: &mut HashMap<F, i64>,
) {
    let m = cfg.buckets_per_array;
    let fp_mask = if cfg.fingerprint_bits > 0 {
        (1u64 << cfg.fingerprint_bits) - 1
    } else {
        0
    };
    let mut budget: u64 = 32 * (cfg.total_buckets() as u64 + 64);
    while let Some((i, j)) = queue.pop_front() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let (i, j) = (i as usize, j as usize);
        let b = i * m + j;
        let count = store.count(b);
        if count == 0 && (0..F::FRAGMENTS).all(|k| store.idsum(b, k) == 0) {
            continue; // already drained by an earlier extraction
        }
        // Steps 3-4: pure-bucket verification (§3.1): recover the candidate
        // flow via Fermat's little theorem, re-hash it, check fingerprints.
        let cmod = signed_to_mod(count);
        if cmod == 0 {
            continue;
        }
        let Some(inv) = inv_mod(cmod) else { continue };
        let mut frags = [0u64; MAX_FRAGMENTS];
        for (k, frag) in frags.iter_mut().enumerate().take(F::FRAGMENTS) {
            *frag = mul_mod(store.idsum(b, k), inv);
        }
        let Some(f) = F::try_from_fragments(&frags[..F::FRAGMENTS]) else {
            continue;
        };
        let bh = BatchHasher::new(f.key64());
        if bh.index(hashes.get(i), reducer) != j {
            continue;
        }
        let fp_of_key = if cfg.fingerprint_bits > 0 {
            let fpv = bh.raw(fp_hash) & fp_mask;
            if store.fpsum(b) != mul_mod(cmod, fpv) {
                continue;
            }
            Some(fpv)
        } else {
            None
        };
        // Single-flow extraction from every mapped bucket, requeueing the
        // ones still hot (steps 4-6).
        let mut subs = [0u64; MAX_FRAGMENTS];
        for (k, s) in subs.iter_mut().enumerate().take(F::FRAGMENTS) {
            *s = if cmod == 1 { f.fragment(k) } else { mul_mod(cmod, f.fragment(k)) };
        }
        let fp_sub = fp_of_key.map(|fpv| mul_mod(cmod, fpv));
        for (i2, h) in hashes.as_slice().iter().enumerate() {
            let j2 = bh.index(h, reducer);
            let b2 = i2 * m + j2;
            store.extract(b2, count, &subs[..F::FRAGMENTS], fp_sub);
            if store.count(b2) != 0 || (0..F::FRAGMENTS).any(|k| store.idsum(b2, k) != 0) {
                queue.push_back((i2 as u32, j2 as u32));
            }
        }
        // Step 5: record in the Flowset.
        *flows.entry(f).or_insert(0) += count;
    }
    // False-positive extraction pairs cancel to zero (§A.2); drop them.
    flows.retain(|_, c| *c != 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use chm_common::flowid::FiveTuple;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cfg(m: usize) -> FermatConfig {
        FermatConfig::standard(m, 0xc0ffee)
    }

    #[test]
    fn empty_sketch_decodes_to_empty() {
        let s = FermatSketch::<u32>::new(cfg(16));
        let r = s.decode();
        assert!(r.success);
        assert!(r.flows.is_empty());
    }

    #[test]
    fn single_flow_roundtrip() {
        let mut s = FermatSketch::<u32>::new(cfg(16));
        for _ in 0..7 {
            s.insert(&0xdead_beef);
        }
        let r = s.decode();
        assert!(r.success);
        assert_eq!(r.flows.get(&0xdead_beef), Some(&7));
        assert_eq!(r.flows.len(), 1);
    }

    #[test]
    fn five_tuple_roundtrip() {
        let mut s = FermatSketch::<FiveTuple>::new(cfg(64));
        let f1 = FiveTuple { src_ip: 1, dst_ip: 2, src_port: 3, dst_port: 4, proto: 17 };
        let f2 = FiveTuple { src_ip: 9, dst_ip: 8, src_port: 7, dst_port: 6, proto: 6 };
        s.insert_weighted(&f1, 100);
        s.insert_weighted(&f2, 3);
        let r = s.decode();
        assert!(r.success);
        assert_eq!(r.flows.get(&f1), Some(&100));
        assert_eq!(r.flows.get(&f2), Some(&3));
    }

    #[test]
    fn many_flows_decode_at_target_load() {
        // 700 flows into 3×400 = 1200 buckets: 58% load, well under the
        // 81.3% ceiling — should decode.
        let mut s = FermatSketch::<u32>::new(cfg(400));
        let mut rng = StdRng::seed_from_u64(7);
        let mut truth = HashMap::new();
        for _ in 0..700 {
            let f: u32 = rng.gen();
            let w = rng.gen_range(1..50);
            *truth.entry(f).or_insert(0) += w;
            s.insert_weighted(&f, w);
        }
        let r = s.decode();
        assert!(r.success, "remaining={}", r.remaining_nonzero);
        assert_eq!(r.flows, truth);
    }

    #[test]
    fn overloaded_sketch_reports_failure() {
        // 4000 flows into 3×400 buckets: load 333% — cannot decode fully.
        let mut s = FermatSketch::<u32>::new(cfg(400));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..4000 {
            s.insert(&rng.gen());
        }
        let r = s.decode();
        assert!(!r.success);
        assert!(r.remaining_nonzero > 0);
    }

    #[test]
    fn subtraction_yields_victim_flows() {
        // Upstream sees all packets, downstream misses some: the delta
        // decodes exactly the victim flows with their lost-packet counts.
        let c = cfg(256);
        let mut up = FermatSketch::<u32>::new(c);
        let mut down = FermatSketch::<u32>::new(c);
        let mut rng = StdRng::seed_from_u64(9);
        let mut lost: HashMap<u32, i64> = HashMap::new();
        for fid in 0..1000u32 {
            let pkts: i64 = rng.gen_range(1..20);
            let dropped = if fid % 10 == 0 { rng.gen_range(1..=pkts.min(5)) } else { 0 };
            up.insert_weighted(&fid, pkts);
            down.insert_weighted(&fid, pkts - dropped);
            if dropped > 0 {
                lost.insert(fid, dropped);
            }
        }
        up.sub_assign_sketch(&down);
        let r = up.decode();
        assert!(r.success);
        assert_eq!(r.flows, lost);
    }

    #[test]
    fn addition_merges_switch_views() {
        let c = cfg(128);
        let mut a = FermatSketch::<u32>::new(c);
        let mut b = FermatSketch::<u32>::new(c);
        a.insert_weighted(&1, 5);
        b.insert_weighted(&1, 7);
        b.insert_weighted(&2, 2);
        a.add_assign_sketch(&b);
        let r = a.decode();
        assert!(r.success);
        assert_eq!(r.flows.get(&1), Some(&12));
        assert_eq!(r.flows.get(&2), Some(&2));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn add_incompatible_panics() {
        let mut a = FermatSketch::<u32>::new(cfg(128));
        let b = FermatSketch::<u32>::new(cfg(64));
        a.add_assign_sketch(&b);
    }

    #[test]
    fn negative_weight_cancels_insert() {
        let mut s = FermatSketch::<u32>::new(cfg(32));
        s.insert_weighted(&42, 9);
        s.insert_weighted(&42, -9);
        assert!(s.is_zero());
    }

    #[test]
    fn clear_resets_all_state() {
        let mut s = FermatSketch::<u32>::new(cfg(32));
        s.insert_weighted(&42, 9);
        assert!(!s.is_zero());
        s.clear();
        assert!(s.is_zero());
    }

    #[test]
    fn fingerprint_config_roundtrip() {
        let mut c = cfg(64);
        c.fingerprint_bits = 8;
        let mut s = FermatSketch::<u32>::new(c);
        for fid in 0..30u32 {
            s.insert_weighted(&fid, (fid as i64 % 5) + 1);
        }
        let r = s.decode();
        assert!(r.success);
        assert_eq!(r.flows.len(), 30);
    }

    #[test]
    fn linear_count_tracks_flow_count() {
        let mut s = FermatSketch::<u32>::new(cfg(1000));
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..300 {
            s.insert(&rng.gen());
        }
        for i in 0..3 {
            let est = s.linear_count(i);
            assert!((est - 300.0).abs() < 60.0, "array {i} estimate {est}");
        }
    }

    #[test]
    fn zero_memory_partition_is_inert() {
        let s = FermatSketch::<u32>::new(cfg(0));
        assert!(s.is_zero());
        let r = s.decode();
        assert!(r.success);
        assert_eq!(s.linear_count(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-memory")]
    fn zero_memory_insert_panics() {
        let mut s = FermatSketch::<u32>::new(cfg(0));
        s.insert(&1);
    }

    #[test]
    fn logical_memory_matches_paper_accounting() {
        // 32-bit count + 32-bit ID = 8 bytes per bucket for u32 flow IDs.
        let c = cfg(100);
        assert_eq!(c.logical_bucket_bytes::<u32>(), 8.0);
        assert_eq!(c.logical_memory_bytes::<u32>(), 300.0 * 8.0);
        let mut cf = c;
        cf.fingerprint_bits = 8;
        assert_eq!(cf.logical_bucket_bytes::<u32>(), 9.0);
    }

    #[test]
    fn buckets_for_load_factor() {
        // 700 flows at 70% load over 3 arrays = 1000 buckets total.
        assert_eq!(FermatConfig::buckets_for(700, 3, 0.7), 334);
        assert_eq!(FermatConfig::buckets_for(0, 3, 0.7), 1);
    }

    #[test]
    fn decode_is_nondestructive() {
        let mut s = FermatSketch::<u32>::new(cfg(32));
        s.insert_weighted(&5, 4);
        let r1 = s.decode();
        let r2 = s.decode();
        assert_eq!(r1.flows, r2.flows);
        assert!(!s.is_zero());
    }

    #[test]
    fn decode_with_matches_decode_in_place_across_occupancies() {
        // Sparse (overlay path), loaded (dense-copy path), and overloaded
        // (failing) sketches must all agree with the consuming decode.
        for &(m, flows) in &[(4096usize, 40u32), (400, 700), (100, 900)] {
            let mut s = FermatSketch::<u32>::new(cfg(m));
            let mut rng = StdRng::seed_from_u64(m as u64 ^ flows as u64);
            for _ in 0..flows {
                s.insert_weighted(&rng.gen(), rng.gen_range(1..9));
            }
            let mut scratch = DecodeScratch::new();
            let via_scratch = s.decode_with(&mut scratch);
            let via_fresh = s.decode();
            let consuming = s.clone().decode_in_place();
            assert_eq!(via_scratch.flows, consuming.flows, "m={m}");
            assert_eq!(via_scratch.success, consuming.success, "m={m}");
            assert_eq!(via_scratch.remaining_nonzero, consuming.remaining_nonzero);
            assert_eq!(via_fresh.flows, consuming.flows);
            // Decoding must not have mutated the sketch.
            assert_eq!(s.decode().flows, consuming.flows);
        }
    }

    #[test]
    fn decode_scratch_is_reusable_across_epochs() {
        let mut scratch = DecodeScratch::new();
        for epoch in 0..5u64 {
            let mut s = FermatSketch::<u32>::new(cfg(256));
            let mut rng = StdRng::seed_from_u64(epoch);
            let mut truth = HashMap::new();
            for _ in 0..300 {
                let f: u32 = rng.gen();
                *truth.entry(f).or_insert(0) += 1;
                s.insert(&f);
            }
            let r = s.decode_with(&mut scratch);
            assert!(r.success, "epoch {epoch}");
            assert_eq!(r.flows, truth);
            scratch.recycle(r);
        }
    }

    #[test]
    fn high_load_failure_rate_matches_threshold() {
        // Just above the 1/1.23 = 81.3% load threshold decoding should
        // mostly fail; comfortably below it should mostly succeed.
        let trials = 30;
        let mut below = 0;
        let mut above = 0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(100 + t);
            let flows = 1000usize;
            // 1.30 buckets/flow: below the load threshold.
            let mut s = FermatSketch::<u32>::new(FermatConfig::standard(
                (flows as f64 * 1.30 / 3.0).ceil() as usize,
                t,
            ));
            for _ in 0..flows {
                s.insert(&rng.gen());
            }
            if s.decode().success {
                below += 1;
            }
            // 1.10 buckets/flow: over the threshold.
            let mut s = FermatSketch::<u32>::new(FermatConfig::standard(
                (flows as f64 * 1.10 / 3.0).ceil() as usize,
                t,
            ));
            for _ in 0..flows {
                s.insert(&rng.gen());
            }
            if s.decode().success {
                above += 1;
            }
        }
        assert!(below >= trials - 2, "below-threshold successes: {below}/{trials}");
        assert!(above <= 2, "above-threshold successes: {above}/{trials}");
    }
}
