//! Property-based tests of FermatSketch invariants beyond the unit suite:
//! algebraic structure (commutativity of merging, insert/delete inversion),
//! decode exactness under duplicates, and fingerprint-compatibility rules.

use chm_fermat::{FermatConfig, FermatSketch};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

fn sum_sketch(cfg: FermatConfig, flows: &[(u32, i64)]) -> FermatSketch<u32> {
    let mut s = FermatSketch::<u32>::new(cfg);
    for &(f, w) in flows {
        if w != 0 {
            s.insert_weighted(&f, w);
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Insertion order never affects the sketch state (observable through
    /// decode results).
    #[test]
    fn insertion_order_irrelevant(
        mut flows in vec((any::<u32>(), 1i64..100), 1..60),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(96, seed);
        let a = sum_sketch(cfg, &flows);
        flows.reverse();
        let b = sum_sketch(cfg, &flows);
        let ra = a.decode();
        let rb = b.decode();
        prop_assert_eq!(ra.flows, rb.flows);
        prop_assert_eq!(ra.success, rb.success);
    }

    /// Merging two sketches then decoding equals decoding the concatenated
    /// input (additivity, §3.1).
    #[test]
    fn merge_equals_concat(
        fa in vec((any::<u32>(), 1i64..50), 0..40),
        fb in vec((any::<u32>(), 1i64..50), 0..40),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(128, seed);
        let mut merged = sum_sketch(cfg, &fa);
        merged.add_assign_sketch(&sum_sketch(cfg, &fb));
        let concat = sum_sketch(cfg, &[fa.clone(), fb.clone()].concat());
        prop_assert_eq!(merged.decode().flows, concat.decode().flows);
    }

    /// Inserting then deleting every flow leaves a zero sketch.
    #[test]
    fn insert_delete_cancels(
        flows in vec((any::<u32>(), 1i64..50), 0..50),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(64, seed);
        let mut s = FermatSketch::<u32>::new(cfg);
        for &(f, w) in &flows {
            s.insert_weighted(&f, w);
        }
        for &(f, w) in &flows {
            s.insert_weighted(&f, -w);
        }
        prop_assert!(s.is_zero());
        prop_assert!(s.decode().flows.is_empty());
    }

    /// Duplicate flow IDs in the input accumulate (multiset semantics).
    #[test]
    fn duplicates_accumulate(f in any::<u32>(), reps in 1usize..20, seed in any::<u64>()) {
        let cfg = FermatConfig::standard(32, seed);
        let mut s = FermatSketch::<u32>::new(cfg);
        for _ in 0..reps {
            s.insert(&f);
        }
        let r = s.decode();
        prop_assert!(r.success);
        prop_assert_eq!(r.flows.get(&f).copied(), Some(reps as i64));
    }

    /// Subtracting equals adding the negation.
    #[test]
    fn subtract_is_negated_add(
        fa in vec((any::<u32>(), 1i64..20), 1..30),
        fb in vec((any::<u32>(), 1i64..20), 1..30),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(128, seed);
        let a = sum_sketch(cfg, &fa);
        let b = sum_sketch(cfg, &fb);
        let mut via_sub = a.clone();
        via_sub.sub_assign_sketch(&b);
        let neg: Vec<(u32, i64)> = fb.iter().map(|&(f, w)| (f, -w)).collect();
        let mut via_neg = a.clone();
        via_neg.add_assign_sketch(&sum_sketch(cfg, &neg));
        prop_assert_eq!(via_sub.decode().flows, via_neg.decode().flows);
    }

    /// Decoded counts always sum to the inserted packet total when decoding
    /// succeeds.
    #[test]
    fn decoded_mass_conserved(
        flows in vec((any::<u32>(), 1i64..100), 1..60),
        seed in any::<u64>(),
    ) {
        let cfg = FermatConfig::standard(128, seed);
        let s = sum_sketch(cfg, &flows);
        let mut truth: HashMap<u32, i64> = HashMap::new();
        for &(f, w) in &flows {
            *truth.entry(f).or_insert(0) += w;
        }
        let inserted: i64 = truth.values().sum();
        let r = s.decode();
        if r.success {
            let decoded: i64 = r.flows.values().sum();
            prop_assert_eq!(decoded, inserted);
        }
    }

    /// Fingerprinted and plain sketches are never compatible.
    #[test]
    fn fingerprint_breaks_compat(seed in any::<u64>(), m in 1usize..100) {
        let plain = FermatSketch::<u32>::new(FermatConfig {
            arrays: 3, buckets_per_array: m, fingerprint_bits: 0, seed,
        });
        let fp = FermatSketch::<u32>::new(FermatConfig {
            arrays: 3, buckets_per_array: m, fingerprint_bits: 8, seed,
        });
        prop_assert!(!plain.compatible(&fp));
        prop_assert!(plain.compatible(&plain.clone()));
    }
}
