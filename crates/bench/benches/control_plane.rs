//! Criterion benches for the control-plane computations behind Figures 9
//! and 20: TowerSketch estimation (linear counting + MRAC), FermatSketch
//! delta construction (add/sub across switches), and threshold search.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use chamelemon::control::threshold_for_target;
use chm_fermat::{FermatConfig, FermatSketch};
use chm_tower::{mrac_em, MracConfig, TowerConfig, TowerSketch};
use chm_workloads::caida_like_trace;

fn bench_tower_estimators(c: &mut Criterion) {
    let trace = caida_like_trace(30_000, 0xc0de);
    let mut tower = TowerSketch::new(TowerConfig::paper_default(1));
    for (f, pkts) in &trace.flows {
        for _ in 0..(*pkts).min(300) {
            tower.insert_and_query(*f as u64);
        }
    }
    let mut g = c.benchmark_group("tower_estimators");
    g.bench_function("cardinality", |b| b.iter(|| black_box(tower.cardinality_estimate())));
    g.bench_function("mrac_realtime", |b| {
        b.iter(|| {
            let hist = tower.level_histogram(0);
            mrac_em(&hist, 32_768, &MracConfig::realtime())
        })
    });
    g.bench_function("mrac_full", |b| {
        b.iter(|| {
            let hist = tower.level_histogram(0);
            mrac_em(&hist, 32_768, &MracConfig::default())
        })
    });
    g.finish();
}

fn bench_delta_construction(c: &mut Criterion) {
    // 4 switches' HL encoders, cumulative add + subtract (§4.2 step 2-3).
    let cfg = FermatConfig::standard(2_560, 2);
    let mut ups = Vec::new();
    let mut downs = Vec::new();
    for s in 0..4u32 {
        let mut up = FermatSketch::<u32>::new(cfg);
        let mut down = FermatSketch::<u32>::new(cfg);
        for f in 0..1_500u32 {
            let id = s * 100_000 + f;
            up.insert_weighted(&id, 10);
            down.insert_weighted(&id, if f % 10 == 0 { 9 } else { 10 });
        }
        ups.push(up);
        downs.push(down);
    }
    c.bench_function("delta_hl_4_switches", |b| {
        b.iter(|| {
            let mut cum_up = ups[0].clone();
            for u in &ups[1..] {
                cum_up.add_assign_sketch(u);
            }
            let mut cum_down = downs[0].clone();
            for d in &downs[1..] {
                cum_down.add_assign_sketch(d);
            }
            cum_up.sub_assign_sketch(&cum_down);
            let r = cum_up.decode_in_place();
            assert!(r.success);
            r
        })
    });
}

fn bench_threshold_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_for_target");
    for size in [256usize, 65_536] {
        let mut dist = vec![0.0; size];
        for (s, d) in dist.iter_mut().enumerate().skip(1) {
            *d = 1_000.0 / (s as f64).powf(1.5);
        }
        g.bench_with_input(BenchmarkId::from_parameter(size), &dist, |b, dist| {
            b.iter(|| threshold_for_target(black_box(dist), 50_000.0, 8_000.0))
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_tower_estimators, bench_delta_construction, bench_threshold_search
}
criterion_main!(benches);
