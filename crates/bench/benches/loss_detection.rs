//! Criterion benches behind Figures 4–6: decode cost of the three loss
//! detectors at their operating points, plus the controller's full
//! analyze+reconfigure step (the engine of Figures 7–9 and 20).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chamelemon::config::DataPlaneConfig;
use chamelemon::ChameleMon;
use chm_bench::lossdet::{
    FermatLossBench, FlowRadarLossBench, LossBench, LossRadarLossBench, LossScenario,
};
use chm_workloads::{caida_like_trace, testbed_trace, LossPlan, VictimSelection, WorkloadKind};

fn bench_loss_decode(c: &mut Criterion) {
    let trace = caida_like_trace(20_000, 0xdec0).top_n(10_000);
    let sc = LossScenario::from_trace(&trace, VictimSelection::LargestN(1_000), 0.01, 3);
    let mut g = c.benchmark_group("loss_decode_1k_victims");
    g.throughput(Throughput::Elements(sc.victims() as u64));
    for bench in [
        &FermatLossBench as &dyn LossBench,
        &LossRadarLossBench,
        &FlowRadarLossBench,
    ] {
        // Give each detector ample memory; we time the decode path.
        g.bench_with_input(BenchmarkId::from_parameter(bench.name()), &sc, |b, sc| {
            b.iter(|| {
                let (ok, _, _) = bench.trial(sc, 8 << 20, 7);
                assert!(ok);
            })
        });
    }
    g.finish();
}

fn bench_controller_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller_full_epoch");
    g.sample_size(10);
    for flows in [5_000usize, 20_000] {
        let trace = testbed_trace(WorkloadKind::Dctcp, flows, 8, 1);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.01, 2);
        g.throughput(Throughput::Elements(trace.total_packets()));
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| {
                let mut sys = ChameleMon::testbed(DataPlaneConfig::paper_default(3));
                sys.run_epoch(&trace, &plan)
            })
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_loss_decode, bench_controller_epoch
}
criterion_main!(benches);
