//! Criterion micro-benchmarks: per-packet insertion and decode throughput
//! of every sketch in the workspace — the raw costs behind each figure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chm_baselines::{
    AccumulationSketch, CmSketch, CocoSketch, CountHeap, CuSketch, ElasticSketch, FcmSketch,
    HashPipe, UnivMon,
};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_tower::{TowerConfig, TowerSketch};
use chm_workloads::caida_like_trace;

fn packet_stream(n_flows: usize) -> Vec<u32> {
    caida_like_trace(n_flows, 0xbe7c).top_n(n_flows).packet_stream(1)
}

fn bench_inserts(c: &mut Criterion) {
    let stream = packet_stream(10_000);
    let mut g = c.benchmark_group("insert_per_packet");
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_function("fermat", |b| {
        b.iter(|| {
            let mut s = FermatSketch::<u32>::new(FermatConfig::standard(8192, 1));
            for f in &stream {
                s.insert(black_box(f));
            }
            s
        })
    });
    g.bench_function("tower", |b| {
        b.iter(|| {
            let mut s = TowerSketch::new(TowerConfig::sized(128 * 1024, 1));
            for f in &stream {
                s.insert_and_query(black_box(*f as u64));
            }
            s
        })
    });
    macro_rules! bench_acc {
        ($name:literal, $make:expr) => {
            g.bench_function($name, |b| {
                b.iter(|| {
                    let mut s = $make;
                    for f in &stream {
                        AccumulationSketch::<u32>::insert(&mut s, black_box(f));
                    }
                    s
                })
            });
        };
    }
    bench_acc!("cm", CmSketch::new(128 * 1024, 1));
    bench_acc!("cu", CuSketch::new(128 * 1024, 1));
    bench_acc!("elastic", ElasticSketch::<u32>::new(128 * 1024, 1));
    bench_acc!("hashpipe", HashPipe::<u32>::new(128 * 1024, 1));
    bench_acc!("coco", CocoSketch::<u32>::new(128 * 1024, 1));
    bench_acc!("fcm", FcmSketch::<u32>::new(128 * 1024, 1));
    bench_acc!("countheap", CountHeap::<u32>::new(128 * 1024, 1024, 1));
    bench_acc!("univmon", UnivMon::<u32>::new(256 * 1024, 1));
    g.finish();
}

fn bench_fermat_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("fermat_decode");
    for flows in [1_000usize, 5_000, 20_000] {
        let buckets = (flows as f64 * 1.4 / 3.0).ceil() as usize;
        let mut s = FermatSketch::<u32>::new(FermatConfig::standard(buckets, 2));
        for f in 0..flows as u32 {
            s.insert_weighted(&f, 1 + (f as i64 % 9));
        }
        g.throughput(Throughput::Elements(flows as u64));
        g.bench_with_input(BenchmarkId::from_parameter(flows), &s, |b, s| {
            b.iter(|| {
                let r = s.decode();
                assert!(r.success);
                r
            })
        });
    }
    g.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_inserts, bench_fermat_decode
}
criterion_main!(benches);
