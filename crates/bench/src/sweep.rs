//! `chm-bench scenarios --topology-sweep`: scores the full pipeline on
//! every fabric of the topology zoo — the §5.2 testbed fat-tree, k-ary
//! fat-trees (k=4, k=8), symmetric and asymmetric leaf-spines, and the
//! Abilene WAN backbone — and records per-fabric detection F1 and
//! localization top-1/top-3 hit rates against the LossRadar and FlowRadar
//! baselines in `results/TOPOLOGY_SWEEP.json`.
//!
//! Every fabric runs the *same* adversarial shape (10% random victims at
//! 5% loss, congestion coupling, one structural hot spot) so differences
//! between rows are fabric effects — path diversity, hop locality, ECMP
//! fan-out — not scenario effects. The hot spot follows the fabric: Clos
//! fabrics derate core 0; the WAN derates its hub PoP (the max-degree
//! node), where path overlap concentrates blame.
//!
//! The JSON is a pure function of the sweep seeds (no timestamps), so
//! double runs are byte-identical and CI gates regressions with
//! [`crate::scenarios::check_regressions`] — the file reuses the
//! 6-space-indented scenario-line format [`crate::scenarios::parse_golden`]
//! reads.

use crate::parallel::run_trials;
use crate::report::{json_number, json_string};
use crate::scenarios::check_regressions;
use chamelemon::config::DataPlaneConfig;
use chm_scenarios::{
    run_with_config, ReplayMode, Scenario, ScenarioResult, TopologySpec, CFG_SALT,
};
use chm_workloads::VictimSelection;
use std::fs;
use std::io;
use std::path::Path;

/// One row of the sweep: the fabric spec plus the name it reports under.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Stable row key in `TOPOLOGY_SWEEP.json`.
    pub name: &'static str,
    /// Which fabric to build.
    pub spec: TopologySpec,
    /// Sweep seed for this fabric's scenario.
    pub seed: u64,
}

/// The sweep roster: six fabrics spanning every generator family, in
/// file order. Fixed seeds keep the goldens stable when rows are added.
pub fn sweep_roster() -> Vec<SweepEntry> {
    vec![
        SweepEntry { name: "testbed", spec: TopologySpec::Testbed, seed: 0xFAB0 },
        SweepEntry {
            name: "fat-tree-k4",
            spec: TopologySpec::KaryFatTree { k: 4 },
            seed: 0xFAB1,
        },
        SweepEntry {
            name: "fat-tree-k8",
            spec: TopologySpec::KaryFatTree { k: 8 },
            seed: 0xFAB2,
        },
        SweepEntry {
            name: "leaf-spine-8x4",
            spec: TopologySpec::LeafSpine { n_leaf: 8, n_spine: 4, hosts_per_leaf: 2 },
            seed: 0xFAB3,
        },
        SweepEntry {
            name: "leaf-spine-asym",
            spec: TopologySpec::LeafSpine { n_leaf: 6, n_spine: 3, hosts_per_leaf: 4 },
            seed: 0xFAB4,
        },
        SweepEntry {
            name: "abilene-wan",
            spec: TopologySpec::AbileneWan { hosts_per_node: 2 },
            seed: 0xFAB5,
        },
    ]
}

/// Builds the sweep scenario for one fabric: the shared adversarial shape
/// on that fabric, hot spot placed by role. Clos fabrics (testbed, k-ary,
/// leaf-spine) derate core 0; the WAN derates its hub PoP — WAN nodes are
/// all [`Edge`](chm_netsim::SwitchRole::Edge)-role (every PoP runs the
/// measurement data plane), so the hot spot must name an edge there.
pub fn sweep_scenario(e: &SweepEntry, quick: bool) -> Scenario {
    let (flows, epochs) = if quick { (600, 4) } else { (2_000, 8) };
    let b = Scenario::builder(e.name)
        .seed(e.seed)
        .topology(e.spec)
        .flows(flows)
        .epochs(epochs)
        .loss(VictimSelection::RandomRatio(0.1), 0.05)
        .congestion();
    let b = match e.spec {
        TopologySpec::AbileneWan { hosts_per_node } => {
            let hub = chm_netsim::WanGraph::abilene(hosts_per_node).hub();
            b.derate_switch(chm_netsim::SwitchRole::Edge, hub, 0.3)
        }
        _ => b.derate_switch(chm_netsim::SwitchRole::Core, 0, 0.3),
    };
    b.build()
}

/// The sweep scorecard: fabric metadata plus the scenario result, in
/// roster order.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// One `(entry, result)` per fabric.
    pub rows: Vec<(SweepEntry, ScenarioResult)>,
}

fn config_for(quick: bool, seed: u64) -> DataPlaneConfig {
    if quick {
        DataPlaneConfig::small(seed ^ CFG_SALT)
    } else {
        DataPlaneConfig::paper_default(seed ^ CFG_SALT)
    }
}

/// Runs the sweep, one scenario per fabric, fanned out on the parallel
/// trial executor with ordered collection (byte-identical at any worker
/// count).
pub fn run_sweep(quick: bool, mode: ReplayMode) -> SweepRun {
    let roster = sweep_roster();
    let results: Vec<ScenarioResult> = run_trials(roster.len(), |i| {
        let s = sweep_scenario(&roster[i], quick);
        run_with_config(&s, mode, config_for(quick, s.seed))
    });
    SweepRun { rows: roster.into_iter().zip(results).collect() }
}

/// Prints the sweep scorecard as an aligned table.
pub fn print_table(run: &SweepRun) {
    println!("\n== topology sweep — one adversarial shape per fabric ==");
    println!(
        "{:>16} {:>9} {:>6} {:>6} {:>8} {:>7} {:>7} {:>8} {:>8}",
        "fabric", "switches", "hosts", "hops", "mean_f1", "loc@1", "loc@3", "lr_f1",
        "fr_f1"
    );
    for (e, r) in &run.rows {
        let t = e.spec.build(8);
        println!(
            "{:>16} {:>9} {:>6} {:>6} {:>8.4} {:>7.2} {:>7.2} {:>8.4} {:>8.4}",
            e.name,
            t.n_switches(),
            t.n_hosts(),
            t.max_hops(),
            r.mean_f1,
            r.mean_loc_top1,
            r.mean_loc_top3,
            r.lr_mean_f1,
            r.fr_mean_f1,
        );
    }
}

/// Renders the sweep as the `TOPOLOGY_SWEEP.json` document. Scenario-level
/// lines use the same 6-space indentation as `SCENARIOS.json`, so
/// [`crate::scenarios::parse_golden`] and the threshold gate apply
/// unchanged.
pub fn to_json(run: &SweepRun, quick: bool) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"id\": \"topology-sweep\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, (e, r)) in run.rows.iter().enumerate() {
        let t = e.spec.build(8);
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(e.name)));
        out.push_str(&format!("      \"kind\": {},\n", json_string(t.kind())));
        out.push_str(&format!("      \"n_switches\": {},\n", t.n_switches()));
        out.push_str(&format!("      \"n_hosts\": {},\n", t.n_hosts()));
        out.push_str(&format!("      \"n_links\": {},\n", t.links().len()));
        out.push_str(&format!("      \"max_hops\": {},\n", t.max_hops()));
        out.push_str(&format!("      \"epochs\": {},\n", r.epochs.len()));
        out.push_str(&format!("      \"mean_f1\": {},\n", json_number(r.mean_f1)));
        out.push_str(&format!("      \"mean_are\": {},\n", json_number(r.mean_are)));
        out.push_str(&format!(
            "      \"decode_success\": {},\n",
            json_number(r.decode_success)
        ));
        out.push_str(&format!(
            "      \"mean_loc_top1\": {},\n",
            json_number(r.mean_loc_top1)
        ));
        out.push_str(&format!(
            "      \"mean_loc_top3\": {},\n",
            json_number(r.mean_loc_top3)
        ));
        out.push_str("      \"lossradar\": {");
        out.push_str(&format!(
            "\"mean_f1\": {}, \"decode_success\": {}, \"mean_loc_top1\": {}, \
             \"mean_loc_top3\": {}}},\n",
            json_number(r.lr_mean_f1),
            json_number(r.lr_decode_success),
            json_number(r.lr_mean_top1),
            json_number(r.lr_mean_top3),
        ));
        out.push_str("      \"flowradar\": {");
        out.push_str(&format!(
            "\"mean_f1\": {}, \"decode_success\": {}, \"mean_loc_top1\": {}, \
             \"mean_loc_top3\": {}}},\n",
            json_number(r.fr_mean_f1),
            json_number(r.fr_decode_success),
            json_number(r.fr_mean_top1),
            json_number(r.fr_mean_top3),
        ));
        out.push_str(&format!(
            "      \"mean_qdepth_max\": {}\n",
            json_number(r.mean_qdepth_max)
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < run.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `TOPOLOGY_SWEEP.json` under `dir`.
pub fn write_json(run: &SweepRun, quick: bool, dir: impl AsRef<Path>) -> io::Result<()> {
    fs::create_dir_all(&dir)?;
    fs::write(dir.as_ref().join("TOPOLOGY_SWEEP.json"), to_json(run, quick))
}

/// The sweep threshold gate: delegates to the scenario gate (the golden
/// format is shared), tolerance [`crate::scenarios::CHECK_TOLERANCE`].
pub fn check_sweep(golden_json: &str, run: &SweepRun) -> Vec<String> {
    let results: Vec<ScenarioResult> =
        run.rows.iter().map(|(_, r)| r.clone()).collect();
    check_regressions(golden_json, &results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::parse_golden;

    #[test]
    fn roster_covers_the_required_fabrics() {
        let roster = sweep_roster();
        assert!(roster.len() >= 6, "sweep must score at least 6 fabrics");
        let names: Vec<_> = roster.iter().map(|e| e.name).collect();
        assert!(names.contains(&"fat-tree-k8"), "k=8 fat-tree is required");
        assert!(
            names.iter().any(|n| n.starts_with("leaf-spine")),
            "a leaf-spine fabric is required"
        );
        // Seeds are distinct: no two fabrics share a workload.
        let mut seeds: Vec<_> = roster.iter().map(|e| e.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), roster.len());
    }

    #[test]
    fn sweep_scenarios_build_and_size_to_their_fabric() {
        for e in sweep_roster() {
            let s = sweep_scenario(&e, true);
            let t = s.build_topology();
            assert_eq!(
                s.n_hosts as usize,
                t.n_hosts(),
                "{}: trace must address exactly the fabric's hosts",
                e.name
            );
            assert!(
                s.impairments.congestion.is_some(),
                "{}: sweep scenarios are congestion-coupled",
                e.name
            );
        }
    }

    #[test]
    fn json_roundtrips_through_the_scenario_golden_parser() {
        // One tiny fabric keeps this a unit test, not a benchmark.
        let e = SweepEntry {
            name: "fat-tree-k4",
            spec: TopologySpec::KaryFatTree { k: 4 },
            seed: 0xFAB1,
        };
        let mut s = sweep_scenario(&e, true);
        s.epochs = 2;
        s.n_flows = 150;
        let r = run_with_config(&s, ReplayMode::Burst, config_for(true, s.seed));
        let run = SweepRun { rows: vec![(e, r)] };
        let j1 = to_json(&run, true);
        let j2 = to_json(&run, true);
        assert_eq!(j1, j2, "same run must render byte-identical JSON");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(j1.matches(open).count(), j1.matches(close).count());
        }
        let golden = parse_golden(&j1);
        assert_eq!(golden.len(), 1);
        assert_eq!(golden[0].name, "fat-tree-k4");
        assert!((golden[0].mean_f1 - run.rows[0].1.mean_f1).abs() < 1e-12);
        // Fresh run vs its own golden: the gate passes.
        assert!(check_sweep(&j1, &run).is_empty());
        // A doctored regression fails it.
        let mut worse = run.clone();
        worse.rows[0].1.mean_f1 -= 0.1;
        assert_eq!(check_sweep(&j1, &worse).len(), 1);
    }
}
