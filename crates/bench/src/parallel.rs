//! Parallel trial executor for the figure/table experiments.
//!
//! Every experiment in this crate is a map over independent, deterministic
//! work items: trials differing only in their seed, sweep points differing
//! only in their parameters. This module fans those maps out over
//! `std::thread::scope` worker threads (no external dependencies) while
//! guaranteeing the three properties the harness relies on:
//!
//! 1. **Deterministic seeding** — the closure receives the item *index*;
//!    every seed is derived from it exactly as the sequential loop did, so
//!    results do not depend on which worker ran the item.
//! 2. **Ordered collection** — results come back in item order, whatever
//!    the completion order was.
//! 3. **Bit-identical fallback** — with one worker (or one item) the
//!    executor degenerates to the plain sequential loop; for deterministic
//!    experiments the outputs are byte-identical at any worker count (see
//!    `tests/parallel_determinism.rs`).
//!
//! Worker count defaults to the machine's available parallelism and is
//! overridable with the `CHM_THREADS` environment variable (`CHM_THREADS=1`
//! forces the sequential path).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Worker-thread count: `CHM_THREADS` if set, else available parallelism.
///
/// `CHM_THREADS=0` clamps to one worker (the sequential path); non-numeric
/// values abort with a clear message instead of silently falling back to
/// the machine default — a typo'd `CHM_THREADS=fulL` must not quietly
/// change how many cores a benchmark burns.
pub fn threads() -> usize {
    match threads_from(std::env::var("CHM_THREADS").ok().as_deref()) {
        Ok(n) => n,
        Err(e) => panic!("{e}"),
    }
}

/// [`threads`] with the environment lookup factored out so the parsing
/// rules are unit-testable without racing on the process environment.
///
/// `None` (unset) and whitespace-only values take the machine default;
/// numeric values are clamped to ≥ 1; anything else is an error naming the
/// offending value.
pub fn threads_from(var: Option<&str>) -> Result<usize, String> {
    let available = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match var {
        None => Ok(available()),
        Some(s) if s.trim().is_empty() => Ok(available()),
        Some(s) => s
            .trim()
            .parse::<usize>()
            .map(|n| n.max(1))
            .map_err(|_| format!("CHM_THREADS must be a non-negative integer, got {s:?}")),
    }
}

/// Maps `f` over `0..n` with the default worker count (see [`threads`]),
/// returning results in index order.
///
/// `f` must be deterministic in its index argument — derive any randomness
/// from a seed computed from the index, never from shared state.
pub fn run_trials<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_trials_with(threads(), n, f)
}

/// Maps `f` over `0..n` on exactly `workers` threads, returning results in
/// index order. `workers <= 1` runs inline with no thread machinery.
pub fn run_trials_with<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("trial worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("work-stealing counter covered every index"))
        .collect()
}

/// All-or-nothing map: `f` returns `Some(result)` on success and `None` on
/// failure; the whole call returns `Some(results)` in index order iff every
/// item succeeded.
///
/// The first failure raises a flag that makes the remaining workers stop
/// picking up new items, mirroring the sequential loop's early exit — a
/// memory-search probe below the decodable threshold fails fast instead of
/// burning the full trial budget. The outcome (`Some`/`None`) is identical
/// to the sequential loop's: items are deterministic, so a failing set
/// fails regardless of how many items were attempted.
pub fn run_trials_all<T, F>(n: usize, f: F) -> Option<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    let workers = threads();
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let f = &f;
    let next = &next;
    let failed_ref = &failed;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        if failed_ref.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match f(i) {
                            Some(v) => local.push((i, v)),
                            None => {
                                failed_ref.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, v) in h.join().expect("trial worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    if failed.load(Ordering::Relaxed) {
        return None;
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let f = |i: usize| {
            // A deterministic, seed-derived payload.
            let mut acc = chm_common::mix64(i as u64);
            for _ in 0..100 {
                acc = chm_common::mix64(acc);
            }
            (i, acc)
        };
        let seq = run_trials_with(1, 64, f);
        for workers in [2, 3, 8] {
            assert_eq!(run_trials_with(workers, 64, f), seq, "workers={workers}");
        }
        assert_eq!(run_trials(64, f), seq);
    }

    #[test]
    fn results_are_index_ordered() {
        let out = run_trials_with(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_work() {
        assert_eq!(run_trials_with(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_trials_with(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn all_or_nothing_detects_failure() {
        assert_eq!(
            run_trials_all(20, |i| (i != 13).then_some(i)),
            None::<Vec<usize>>
        );
        assert_eq!(
            run_trials_all(20, Some),
            Some((0..20).collect::<Vec<_>>())
        );
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn threads_from_unset_uses_machine_default() {
        assert!(threads_from(None).expect("unset is valid") >= 1);
        assert!(threads_from(Some("")).expect("empty is valid") >= 1);
        assert!(threads_from(Some("  ")).expect("whitespace is valid") >= 1);
    }

    #[test]
    fn threads_from_zero_clamps_to_one() {
        assert_eq!(threads_from(Some("0")), Ok(1));
    }

    #[test]
    fn threads_from_parses_positive_counts() {
        assert_eq!(threads_from(Some("1")), Ok(1));
        assert_eq!(threads_from(Some("8")), Ok(8));
        assert_eq!(threads_from(Some(" 4 ")), Ok(4));
    }

    #[test]
    fn threads_from_rejects_garbage_with_clear_error() {
        for bad in ["full", "-2", "3.5", "1e3"] {
            let err = threads_from(Some(bad)).expect_err("garbage must not fall back");
            assert!(err.contains("CHM_THREADS"), "error names the variable: {err}");
            assert!(err.contains(bad), "error names the offending value: {err}");
        }
    }
}
