//! Experiment harness shared by the figure/table binaries (`src/bin/`) and
//! the Criterion benches (`benches/`).
//!
//! The per-experiment index lives in DESIGN.md; measured-vs-paper results
//! are recorded in EXPERIMENTS.md. Every binary prints a human-readable
//! table to stdout and, when `--json <path>` conventions are used via
//! [`report::Table::write_json`], a machine-readable record under
//! `results/`.

#![forbid(unsafe_code)]

pub mod attention;
// The timing harnesses are the one place the workspace reads real time
// (clippy.toml disallows `Instant::now` everywhere else).
#[allow(clippy::disallowed_methods)]
pub mod lossdet;
pub mod parallel;
#[allow(clippy::disallowed_methods)]
pub mod perf;
#[allow(clippy::disallowed_methods)]
pub mod profile;
pub mod report;
pub mod scenarios;
#[allow(clippy::disallowed_methods)]
pub mod soak;
pub mod sweep;

pub use lossdet::{min_memory_for_success, FermatLossBench, FlowRadarLossBench, LossBench, LossRadarLossBench, LossScenario};
pub use parallel::{run_trials, run_trials_all, run_trials_with};
pub mod experiments;
