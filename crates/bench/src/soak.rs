//! **Soak harness** for the streaming runtime: drive `chm-serve`'s epoch
//! loop for thousands of epochs under the standard fault profile and
//! prove two things the unit tests cannot:
//!
//! * **allocations stay flat** — the per-epoch allocation count of the
//!   post-warmup windows does not grow (no leak, no unbounded buffer);
//!   the global counting allocator lives in the `chm-bench` binary root
//!   (the library stays `forbid(unsafe_code)`) and is injected here as a
//!   closure;
//! * **reaction latency is bounded** — real wall-clock p50/p99/p999 of
//!   the controller's analyze → reconfigure step, measured with the
//!   workspace's one allowed clock, alongside the deterministic virtual
//!   latency model's percentiles.
//!
//! Results go to `results/SOAK.json`. The wall-clock numbers vary by
//! machine; everything else in the report is deterministic.

use std::io;
use std::time::Instant;

use chm_scenarios::Scenario;
use chm_serve::{
    latency_percentiles, json_f64, FaultPlan, ServeConfig, ServeRuntime,
};

/// Soak sizing.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Measured epochs (after warm-up).
    pub epochs: u64,
    /// Warm-up epochs excluded from every gate and percentile.
    pub warmup: u64,
    /// Allocation-measurement windows the measured epochs split into.
    pub windows: usize,
    /// Master seed (scenario and fault plan).
    pub seed: u64,
    /// Fault profile name (`none`/`standard`/`stress`).
    pub profile: String,
}

impl SoakConfig {
    /// The full 10k-epoch soak.
    pub fn full() -> Self {
        SoakConfig {
            epochs: 10_000,
            warmup: 200,
            windows: 10,
            seed: 0x50a7,
            profile: "standard".to_string(),
        }
    }

    /// The CI-smoke sizing.
    pub fn quick() -> Self {
        SoakConfig { epochs: 1_000, ..Self::full() }
    }
}

/// One allocation-measurement window.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// Epochs in the window.
    pub epochs: u64,
    /// Global allocations observed during the window.
    pub allocations: u64,
}

/// Everything the soak measured.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The sizing that produced this report.
    pub config: SoakConfig,
    /// Per-window allocation counts, in run order.
    pub windows: Vec<WindowStats>,
    /// Did the allocation-flatness gate pass?
    pub alloc_flat: bool,
    /// Wall-clock per-epoch step latency percentiles (ms): p50/p99/p999.
    pub wall_ms: (f64, f64, f64),
    /// Virtual (deterministic) reaction-latency percentiles (ms).
    pub virt_ms: (f64, f64, f64),
    /// Epochs served in degraded mode.
    pub degraded_epochs: u64,
    /// Blind epochs (controller analyzed nothing).
    pub blind_epochs: u64,
    /// Mean victim-detection F1 over measured epochs.
    pub mean_f1: f64,
}

/// Growth tolerance of the flatness gate: the max window may exceed the
/// min window by this factor (fault realizations make windows unequal)
/// plus a small absolute slack.
pub const FLATNESS_RATIO: f64 = 1.25;
/// Absolute allocation slack per window (process-level noise).
pub const FLATNESS_SLACK: u64 = 5_000;

/// Whether a window series is flat under the gate. Also rejects a
/// monotone upward creep that stays inside the ratio: the last window
/// must not exceed the first by more than the same tolerance.
pub fn windows_are_flat(windows: &[WindowStats]) -> bool {
    let Some(first) = windows.first() else { return true };
    let Some(last) = windows.last() else { return true };
    let min = windows.iter().map(|w| w.allocations).min().unwrap_or(0);
    let max = windows.iter().map(|w| w.allocations).max().unwrap_or(0);
    let bound = |base: u64| (base as f64 * FLATNESS_RATIO) as u64 + FLATNESS_SLACK;
    max <= bound(min) && last.allocations <= bound(first.allocations)
}

/// The soak scenario: the serve CLI's `congested` preset under the named
/// fault profile.
fn serve_config(cfg: &SoakConfig) -> ServeConfig {
    let scenario = Scenario::builder("soak")
        .seed(cfg.seed)
        .flows(600)
        .congestion()
        .queue_model(8)
        .microburst(0.3, 2)
        .slow_drain_tor(1, 0.55)
        .build();
    let faults = match cfg.profile.as_str() {
        "none" => FaultPlan::none(cfg.seed),
        "stress" => FaultPlan::stress(cfg.seed),
        _ => FaultPlan::standard(cfg.seed),
    };
    ServeConfig::new(scenario, faults)
}

/// Runs the soak. `alloc_count` reads the process-global allocation
/// counter (injected by the binary; `|| 0` disables the flatness gate's
/// teeth but keeps the latency measurement).
pub fn run(cfg: &SoakConfig, alloc_count: &dyn Fn() -> u64) -> SoakReport {
    let mut rt = ServeRuntime::new(serve_config(cfg));
    for _ in 0..cfg.warmup {
        rt.step();
    }
    let windows = cfg.windows.max(1);
    let per_window = (cfg.epochs / windows as u64).max(1);
    let mut window_stats = Vec::with_capacity(windows);
    let mut wall = Vec::with_capacity((per_window * windows as u64) as usize);
    let mut virt = Vec::new();
    let mut degraded_epochs = 0u64;
    let mut blind_epochs = 0u64;
    let mut f1_sum = 0.0f64;
    for _ in 0..windows {
        let a0 = alloc_count();
        for _ in 0..per_window {
            let t0 = Instant::now();
            let record = rt.step();
            wall.push(t0.elapsed().as_secs_f64() * 1e3);
            if let Some(ms) = record.reaction_ms {
                virt.push(ms);
            }
            degraded_epochs += u64::from(record.state == "degraded");
            blind_epochs += u64::from(record.blind);
            f1_sum += if record.f1.is_finite() { record.f1 } else { 0.0 };
        }
        window_stats.push(WindowStats {
            epochs: per_window,
            allocations: alloc_count() - a0,
        });
    }
    let measured = per_window * windows as u64;
    SoakReport {
        config: cfg.clone(),
        alloc_flat: windows_are_flat(&window_stats),
        windows: window_stats,
        // Nearest-rank caveat: the p999 column is the sample *maximum*
        // whenever fewer than 1000 samples back it — always true of `wall`
        // on `--quick`/`--epochs <1000` runs, and of `virt` whenever clock
        // stalls thin the reaction samples below 1000 (see
        // `chm_serve::percentile`). Read quick-run p999 as "worst seen".
        wall_ms: latency_percentiles(&wall).unwrap_or((0.0, 0.0, 0.0)),
        virt_ms: latency_percentiles(&virt).unwrap_or((0.0, 0.0, 0.0)),
        degraded_epochs,
        blind_epochs,
        mean_f1: f1_sum / measured as f64,
    }
}

impl SoakReport {
    /// Human-readable summary.
    pub fn print(&self) {
        println!(
            "soak: {} epochs (+{} warmup), profile {}, seed {:#x}",
            self.config.epochs, self.config.warmup, self.config.profile, self.config.seed
        );
        println!(
            "  allocations/window: {:?} -> {}",
            self.windows.iter().map(|w| w.allocations).collect::<Vec<_>>(),
            if self.alloc_flat { "FLAT" } else { "GROWING" },
        );
        let (w50, w99, w999) = self.wall_ms;
        println!("  wall step latency ms: p50 {w50:.3} p99 {w99:.3} p999 {w999:.3}");
        let (v50, v99, v999) = self.virt_ms;
        println!("  virtual reaction ms:  p50 {v50:.3} p99 {v99:.3} p999 {v999:.3}");
        println!(
            "  degraded {} blind {} mean F1 {:.4}",
            self.degraded_epochs, self.blind_epochs, self.mean_f1
        );
    }

    /// The report as JSON (stable key order; floats via the serve crate's
    /// null-safe formatter).
    pub fn to_json(&self) -> String {
        let windows: Vec<String> = self
            .windows
            .iter()
            .map(|w| format!("{{\"epochs\":{},\"allocations\":{}}}", w.epochs, w.allocations))
            .collect();
        let (w50, w99, w999) = self.wall_ms;
        let (v50, v99, v999) = self.virt_ms;
        format!(
            concat!(
                "{{\n",
                "  \"epochs\": {},\n",
                "  \"warmup\": {},\n",
                "  \"seed\": {},\n",
                "  \"profile\": \"{}\",\n",
                "  \"windows\": [{}],\n",
                "  \"alloc_flat\": {},\n",
                "  \"wall_ms\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}},\n",
                "  \"virtual_ms\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}}},\n",
                "  \"degraded_epochs\": {},\n",
                "  \"blind_epochs\": {},\n",
                "  \"mean_f1\": {}\n",
                "}}\n"
            ),
            self.config.epochs,
            self.config.warmup,
            self.config.seed,
            self.config.profile,
            windows.join(","),
            self.alloc_flat,
            json_f64(w50),
            json_f64(w99),
            json_f64(w999),
            json_f64(v50),
            json_f64(v99),
            json_f64(v999),
            self.degraded_epochs,
            self.blind_epochs,
            json_f64(self.mean_f1),
        )
    }

    /// Writes `SOAK.json` under `out_dir`.
    pub fn write_json(&self, out_dir: &str) -> io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        std::fs::write(format!("{out_dir}/SOAK.json"), self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(allocs: &[u64]) -> Vec<WindowStats> {
        allocs.iter().map(|&a| WindowStats { epochs: 100, allocations: a }).collect()
    }

    #[test]
    fn flatness_gate_accepts_noise_and_rejects_growth() {
        assert!(windows_are_flat(&w(&[])));
        assert!(windows_are_flat(&w(&[1_000_000, 1_050_000, 990_000])));
        // Doubling across the run is a leak.
        assert!(!windows_are_flat(&w(&[1_000_000, 1_500_000, 2_100_000])));
        // Creep: last far above first even if max/min ratio is borderline.
        assert!(!windows_are_flat(&w(&[
            1_000_000, 1_100_000, 1_180_000, 1_240_000, 1_310_000
        ])));
    }

    #[test]
    fn tiny_soak_runs_and_serializes() {
        let cfg = SoakConfig {
            epochs: 8,
            warmup: 2,
            windows: 2,
            seed: 3,
            profile: "standard".to_string(),
        };
        let report = run(&cfg, &|| 0);
        assert_eq!(report.windows.len(), 2);
        assert!(report.alloc_flat, "disabled counter must read flat");
        let json = report.to_json();
        assert!(json.contains("\"alloc_flat\": true"));
        assert!(!json.contains("NaN"));
    }
}
