//! Shared runner for the testbed attention experiments (Figures 7–9, 14–19,
//! 20): sweep a workload parameter, let ChameleMon settle (footnote 7: data
//! points are collected "after ChameleMon successfully shifts measurement
//! attention and the configuration ... is stable"), then record the stable
//! operating point.

use chamelemon::config::DataPlaneConfig;
use chamelemon::control::NetworkState;
use chamelemon::ChameleMon;
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

/// One stable operating point of the system.
#[derive(Debug, Clone, Copy)]
pub struct AttentionPoint {
    /// The swept x value (#flows or victim ratio).
    pub x: f64,
    /// Upstream-encoder memory fractions (Figures 7(a)/8(a)).
    pub frac_hh: f64,
    /// HL fraction.
    pub frac_hl: f64,
    /// LL fraction.
    pub frac_ll: f64,
    /// Decoded HH candidates at edge switch 0 (Figures 7(b)/8(b)).
    pub hh_decoded: usize,
    /// Decoded HLs network-wide.
    pub hl_decoded: usize,
    /// Decoded sampled LLs network-wide.
    pub ll_decoded: usize,
    /// Threshold Th in effect (Figures 7(c)/8(c)).
    pub th: u64,
    /// Threshold Tl in effect.
    pub tl: u64,
    /// LL sample rate in effect (Figures 7(d)/8(d)).
    pub sample_rate: f64,
    /// Whether the controller is in the ill state.
    pub ill: bool,
    /// Controller response time in ms (Figure 20).
    pub response_ms: f64,
}

/// Maximum epochs run while waiting for the configuration to stabilize
/// (footnote 7: data points are collected once the configuration is
/// stable; convergence itself takes ≤ 3 epochs per §5.2).
pub const MAX_SETTLE_EPOCHS: usize = 16;
/// Minimum epochs before a point may be recorded.
pub const MIN_SETTLE_EPOCHS: usize = 6;

/// Runs one (workload, #flows, victim ratio) configuration to a stable
/// point on the paper-default data plane: stops once the staged runtime
/// stops changing (two consecutive identical configurations).
pub fn stable_point(
    workload: WorkloadKind,
    n_flows: usize,
    victim_ratio: f64,
    x: f64,
    seed: u64,
) -> AttentionPoint {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::paper_default(seed));
    let trace = testbed_trace(workload, n_flows, 8, seed ^ 0x77);
    let plan = LossPlan::build(
        &trace,
        VictimSelection::RandomRatio(victim_ratio),
        0.01,
        seed ^ 0x99,
    );
    // The bench harness is the one place allowed to read real time: inject
    // it so the library itself stays clock-free.
    #[allow(clippy::disallowed_methods)] // bench timing harness
    let epoch_start = std::time::Instant::now();
    let mut clock = move || epoch_start.elapsed().as_secs_f64();
    let mut last = None;
    for e in 0..MAX_SETTLE_EPOCHS {
        let out = sys.run_epoch_with_clock(&trace, &plan, &mut clock);
        let stable = out.staged_runtime == out.config_in_effect;
        // Footnote 7: record a data point only once attention has shifted
        // *successfully* — configuration stable and the epoch's encoders
        // actually decoded.
        let decoded = out.analysis.hh_decode_ok && out.analysis.hl_flowset.is_some();
        let done = e + 1 >= MIN_SETTLE_EPOCHS && stable && decoded;
        last = Some(out);
        if done {
            break;
        }
    }
    let out = last.unwrap();
    let rt = &out.config_in_effect;
    let total = rt.partition.total() as f64;
    AttentionPoint {
        x,
        frac_hh: rt.partition.m_hh as f64 / total,
        frac_hl: rt.partition.m_hl as f64 / total,
        frac_ll: rt.partition.m_ll as f64 / total,
        hh_decoded: out.analysis.hh_count(0),
        hl_decoded: out.analysis.hl_count(),
        ll_decoded: out.analysis.ll_count(),
        th: rt.th,
        tl: rt.tl,
        sample_rate: rt.sample_rate(),
        ill: out.analysis.state_during == NetworkState::Ill,
        // `None` = not measured (no clock injected); json_number renders the
        // resulting NaN as null rather than inventing a 0.0 response time.
        response_ms: out.response_time_s.map_or(f64::NAN, |s| s * 1000.0),
    }
}

/// The Figure-7-style sweep: #flows 10K..100K at fixed victim ratio 10%.
/// Sweep points are independent deployments and run on the parallel
/// executor (deterministic per-point seeds, ordered results).
pub fn sweep_num_flows(workload: WorkloadKind, seed: u64) -> Vec<AttentionPoint> {
    crate::parallel::run_trials(10, |i| {
        let k = i + 1;
        let flows = k * 10_000;
        stable_point(workload, flows, 0.10, flows as f64, seed + k as u64)
    })
}

/// The Figure-8-style sweep: victim ratio 2.5%..25% at fixed 50K flows.
pub fn sweep_victim_ratio(workload: WorkloadKind, seed: u64) -> Vec<AttentionPoint> {
    crate::parallel::run_trials(10, |i| {
        let k = i + 1;
        let ratio = 0.025 * k as f64;
        stable_point(workload, 50_000, ratio, ratio * 100.0, seed + k as u64)
    })
}

/// Renders a sweep as a report table with the standard columns.
pub fn to_table(
    id: &str,
    title: &str,
    x_label: &str,
    points: &[AttentionPoint],
) -> crate::report::Table {
    let mut t = crate::report::Table::new(
        id,
        title,
        &[
            x_label, "memHH", "memHL", "memLL", "decHH", "decHL", "decLL", "Th", "Tl",
            "sample", "ill", "resp_ms",
        ],
    );
    for p in points {
        t.push(vec![
            p.x,
            p.frac_hh,
            p.frac_hl,
            p.frac_ll,
            p.hh_decoded as f64,
            p.hl_decoded as f64,
            p.ll_decoded as f64,
            p.th as f64,
            p.tl as f64,
            p.sample_rate,
            if p.ill { 1.0 } else { 0.0 },
            p.response_ms,
        ]);
    }
    t
}
