//! Ablations of ChameleMon's design choices (beyond the paper's figures):
//!
//! * **Array count `d`** — Theorem 3.1 says `d = 3` maximizes memory
//!   efficiency (`c_3 = 1.23` < `c_4 = 1.30` < `c_5 = 1.43`; `d = 2` has no
//!   sharp threshold at all). We sweep `d` at equal total memory and
//!   measure decode success.
//! * **Fingerprint width** — §A.4 recommends no fingerprint unless memory
//!   is otherwise stranded; we sweep widths at equal total memory.
//! * **Load-factor target** — §4.3 targets 70% (vs the 81.3% ceiling); we
//!   sweep the target and record how often encoders fail to decode across
//!   an epoch sequence (why 70%: headroom for candidate growth and
//!   linear-counting error, footnote 4).

use crate::report::Table;
use chm_fermat::{c_d, FermatConfig, FermatSketch};
use chm_workloads::caida_like_trace;

/// Decode success rate for `flows` random flows at `total_buckets` spread
/// over `d` arrays. Trials fan out over the parallel executor.
fn success_rate(d: usize, total_buckets: usize, flows: &[u32], trials: u64) -> f64 {
    let successes = crate::parallel::run_trials(trials as usize, |t| {
        let cfg = FermatConfig {
            arrays: d,
            buckets_per_array: (total_buckets / d).max(1),
            fingerprint_bits: 0,
            seed: 0xab1a + t as u64 * 131,
        };
        let mut s = FermatSketch::<u32>::new(cfg);
        for f in flows {
            s.insert(f);
        }
        u64::from(s.decode_in_place().success)
    });
    successes.iter().sum::<u64>() as f64 / trials as f64
}

/// Ablation 1: array count at equal memory.
pub fn ablation_arrays(trials: u64) -> Vec<Table> {
    let trace = caida_like_trace(8_000, 0xab1);
    let flows: Vec<u32> = trace.flows.iter().map(|&(f, _)| f).collect();
    let mut t = Table::new(
        "ablation_arrays",
        "Ablation: decode success vs d at equal total memory (8K flows)",
        &["buckets_per_flow", "d2", "d3", "d4", "d5", "c3_threshold"],
    );
    for k in 0..6 {
        let bpf = 1.10 + 0.06 * k as f64;
        let total = (flows.len() as f64 * bpf) as usize;
        t.push(vec![
            bpf,
            success_rate(2, total, &flows, trials),
            success_rate(3, total, &flows, trials),
            success_rate(4, total, &flows, trials),
            success_rate(5, total, &flows, trials),
            if bpf >= c_d(3) { 1.0 } else { 0.0 },
        ]);
    }
    vec![t]
}

/// Ablation 2: fingerprint width at equal total memory.
pub fn ablation_fingerprint(trials: u64) -> Vec<Table> {
    let trace = caida_like_trace(8_000, 0xab2);
    let flows: Vec<u32> = trace.flows.iter().map(|&(f, _)| f).collect();
    let mut t = Table::new(
        "ablation_fingerprint",
        "Ablation: decode success vs fingerprint bits at equal memory (8K flows)",
        &["bytes_per_flow", "fp0", "fp4", "fp8", "fp16"],
    );
    for k in 0..4 {
        let bytes_pf = 10.0 + k as f64;
        let mut row = vec![bytes_pf];
        for fp_bits in [0u32, 4, 8, 16] {
            let bucket_bytes = 8.0 + fp_bits as f64 / 8.0;
            let total = (flows.len() as f64 * bytes_pf / bucket_bytes) as usize;
            let successes = crate::parallel::run_trials(trials as usize, |tr| {
                let cfg = FermatConfig {
                    arrays: 3,
                    buckets_per_array: (total / 3).max(1),
                    fingerprint_bits: fp_bits,
                    seed: 0xab2 + tr as u64 * 17,
                };
                let mut s = FermatSketch::<u32>::new(cfg);
                for f in &flows {
                    s.insert(f);
                }
                u64::from(s.decode_in_place().success)
            });
            row.push(successes.iter().sum::<u64>() as f64 / trials as f64);
        }
        t.push(row);
    }
    vec![t]
}

/// Ablation 3: the controller's load-factor target. Sweeps the implied
/// sizing rule (`buckets = victims / target`) and measures how often the
/// resulting encoder actually decodes — showing why the paper leaves ~11
/// points of headroom below the 81.3% ceiling.
pub fn ablation_load_target(trials: u64) -> Vec<Table> {
    let trace = caida_like_trace(20_000, 0xab3);
    let mut t = Table::new(
        "ablation_load_target",
        "Ablation: decode success when sizing encoders at a given load target",
        &["target_load", "success_rate", "buckets_per_flow"],
    );
    let victims: Vec<u32> = trace.flows.iter().take(5_000).map(|&(f, _)| f).collect();
    for target in [0.50, 0.60, 0.70, 0.75, 0.80, 0.813] {
        let total = (victims.len() as f64 / target).ceil() as usize;
        let rate = success_rate(3, total, &victims, trials);
        t.push(vec![target, rate, total as f64 / victims.len() as f64]);
    }
    vec![t]
}
