//! Figure 10 (Appendix A.4): decoding success rate with and without 8-bit
//! fingerprints, (a) at the same number of buckets per flow and (b) at the
//! same memory per flow, for 1K and 10K flows.

use crate::report::Table;
use chm_fermat::{FermatConfig, FermatSketch};
use chm_workloads::caida_like_trace;

/// Success rate of `trials` decodes at a given (flows, buckets/array, fp).
/// Trials are independent (per-trial seed) and run on the parallel executor.
fn success_rate(flows: &[u32], buckets_per_array: usize, fp_bits: u32, trials: u64) -> f64 {
    let successes = crate::parallel::run_trials(trials as usize, |t| {
        let cfg = FermatConfig {
            arrays: 3,
            buckets_per_array,
            fingerprint_bits: fp_bits,
            seed: 0xf1f0 + t as u64 * 31,
        };
        let mut s = FermatSketch::<u32>::new(cfg);
        for f in flows {
            s.insert(f);
        }
        u64::from(s.decode_in_place().success)
    });
    successes.iter().sum::<u64>() as f64 / trials as f64
}

/// Runs both panels.
pub fn fig10(trials: u64) -> Vec<Table> {
    let trace = caida_like_trace(10_000, 0xf1f0);
    let flows_10k: Vec<u32> = trace.flows.iter().map(|&(f, _)| f).collect();
    let flows_1k: Vec<u32> = flows_10k[..1_000].to_vec();

    // Panel (a): same number of buckets per flow (1.17 – 1.29).
    let mut a = Table::new(
        "fig10a",
        "Figure 10(a): decode success vs buckets/flow",
        &["buckets_per_flow", "10K_no_fp", "10K_fp8", "1K_no_fp", "1K_fp8"],
    );
    for k in 0..5 {
        let bpf = 1.17 + 0.03 * k as f64;
        let row: Vec<f64> = [
            (&flows_10k, 0u32),
            (&flows_10k, 8),
            (&flows_1k, 0),
            (&flows_1k, 8),
        ]
        .iter()
        .map(|(flows, fp)| {
            let m = ((flows.len() as f64 * bpf) / 3.0).ceil() as usize;
            success_rate(flows, m, *fp, trials)
        })
        .collect();
        a.push([vec![bpf], row].concat());
    }

    // Panel (b): same memory per flow (9 – 12 bytes). Plain buckets are
    // 8 B; fingerprinted buckets are 9 B, so at equal memory the fp variant
    // has fewer buckets.
    let mut b = Table::new(
        "fig10b",
        "Figure 10(b): decode success vs memory/flow (bytes)",
        &["bytes_per_flow", "10K_no_fp", "10K_fp8", "1K_no_fp", "1K_fp8"],
    );
    for k in 0..4 {
        let bytes_pf = 9.0 + k as f64;
        let row: Vec<f64> = [
            (&flows_10k, 0u32, 8.0),
            (&flows_10k, 8, 9.0),
            (&flows_1k, 0, 8.0),
            (&flows_1k, 8, 9.0),
        ]
        .iter()
        .map(|(flows, fp, bucket_bytes)| {
            let total_buckets = flows.len() as f64 * bytes_pf / bucket_bytes;
            let m = (total_buckets / 3.0).ceil() as usize;
            success_rate(flows, m, *fp, trials)
        })
        .collect();
        b.push([vec![bytes_pf], row].concat());
    }
    vec![a, b]
}
