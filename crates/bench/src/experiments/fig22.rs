//! Figure 22 (Appendix F): CDF of the data-plane reconfiguration time over
//! 10K random reconfigurations (the paper measures 2–7 ms, ~60% below 5 ms,
//! driven by how many TCAM entries the new partition requires).

use crate::report::Table;
use chamelemon::config::{DataPlaneConfig, Partition, RuntimeConfig};
use chamelemon::resources::reconfiguration_time_ms;
use chm_common::hash::mix64;

/// Generates 10K random reconfigurations and reports the timing CDF.
pub fn fig22() -> Vec<Table> {
    let cfg = DataPlaneConfig::paper_default(0x22);
    let mut times: Vec<f64> = (0..10_000u64)
        .map(|salt| {
            let mut rt = RuntimeConfig::initial(&cfg);
            let m_hl = 512 + (mix64(salt) % 2560) as usize;
            let m_ll = (mix64(salt ^ 1) % 512) as usize;
            let m_ll = m_ll.min(cfg.m_df.saturating_sub(m_hl));
            rt.partition = Partition { m_hh: cfg.m_uf - m_hl - m_ll, m_hl, m_ll };
            reconfiguration_time_ms(&cfg, &rt, salt)
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut t = Table::new(
        "fig22",
        "Figure 22: CDF of reconfiguration time (ms), 10K random reconfigurations",
        &["time_ms", "cdf"],
    );
    for q in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 1.0] {
        let idx = ((times.len() - 1) as f64 * q) as usize;
        t.push(vec![times[idx], q]);
    }
    vec![t]
}
