//! One module per paper table/figure; each exposes `run() -> Vec<Table>`.
//! The `src/bin/` wrappers call these, and `all_experiments` runs the lot.
//!
//! The per-experiment index (workload, parameters, implementing modules)
//! lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured values.

pub mod ablations;
pub mod fig04_06;
pub mod fig07_08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod table1;

/// Number of trials used when searching for the minimum memory (the paper's
/// 99.9%-success operating point; see `lossdet` docs). Override with the
/// `CHM_TRIALS` environment variable.
pub fn trials() -> u64 {
    std::env::var("CHM_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
}

/// Scale factor for expensive sweeps (1 = paper scale). `CHM_SCALE=4`
/// divides flow counts by 4 for quick runs.
pub fn scale() -> usize {
    std::env::var("CHM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}
