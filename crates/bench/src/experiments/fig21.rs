//! Figure 21 (Appendix F): collection bandwidth at the controller NIC as a
//! function of epoch length, under the §5.2 default sketch sizes. The paper
//! reports ~317 Mbps at 50 ms (0.8% of a 40 Gb NIC).

use crate::report::Table;
use chm_netsim::CollectionModel;

/// Sweeps epoch lengths 50–1000 ms.
pub fn fig21() -> Vec<Table> {
    let model = CollectionModel::paper_default();
    let mut t = Table::new(
        "fig21",
        "Figure 21: collection bandwidth (Mbps) vs epoch length (ms)",
        &["epoch_ms", "bandwidth_mbps", "pct_of_40G", "collect_time_ms"],
    );
    for epoch_ms in [50.0, 100.0, 200.0, 400.0, 600.0, 800.0, 1000.0] {
        let bw = model.bandwidth_mbps(epoch_ms);
        t.push(vec![
            epoch_ms,
            bw,
            bw / 40_000.0 * 100.0,
            model.collection_time_ms(),
        ]);
    }
    vec![t]
}
