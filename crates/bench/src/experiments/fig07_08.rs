//! Figures 7/8 (§5.2) and their other-workload twins, Figures 14–19
//! (Appendix E): measurement attention (memory division, decoded flows,
//! thresholds, sample rate) as the number of flows or the victim-flow ratio
//! changes, on the simulated testbed with the paper-default data plane.

use crate::attention::{sweep_num_flows, sweep_victim_ratio, to_table};
use crate::report::Table;
use chm_workloads::WorkloadKind;

/// Figure 7: attention vs #flows (10K–100K, 10% victims), DCTCP.
pub fn fig07() -> Vec<Table> {
    vec![to_table(
        "fig07",
        "Figure 7: attention vs # flows (DCTCP)",
        "flows",
        &sweep_num_flows(WorkloadKind::Dctcp, 700),
    )]
}

/// Figure 8: attention vs victim ratio (2.5%–25%, 50K flows), DCTCP.
pub fn fig08() -> Vec<Table> {
    vec![to_table(
        "fig08",
        "Figure 8: attention vs victim ratio (DCTCP)",
        "victim_pct",
        &sweep_victim_ratio(WorkloadKind::Dctcp, 800),
    )]
}

/// Figures 14/15: CACHE workload (Appendix E.1).
pub fn fig14_15() -> Vec<Table> {
    vec![
        to_table(
            "fig14",
            "Figure 14: attention vs # flows (CACHE)",
            "flows",
            &sweep_num_flows(WorkloadKind::Cache, 1400),
        ),
        to_table(
            "fig15",
            "Figure 15: attention vs victim ratio (CACHE)",
            "victim_pct",
            &sweep_victim_ratio(WorkloadKind::Cache, 1500),
        ),
    ]
}

/// Figures 16/17: VL2 workload (Appendix E.2).
pub fn fig16_17() -> Vec<Table> {
    vec![
        to_table(
            "fig16",
            "Figure 16: attention vs # flows (VL2)",
            "flows",
            &sweep_num_flows(WorkloadKind::Vl2, 1600),
        ),
        to_table(
            "fig17",
            "Figure 17: attention vs victim ratio (VL2)",
            "victim_pct",
            &sweep_victim_ratio(WorkloadKind::Vl2, 1700),
        ),
    ]
}

/// Figures 18/19: HADOOP workload (Appendix E.3).
pub fn fig18_19() -> Vec<Table> {
    vec![
        to_table(
            "fig18",
            "Figure 18: attention vs # flows (HADOOP)",
            "flows",
            &sweep_num_flows(WorkloadKind::Hadoop, 1800),
        ),
        to_table(
            "fig19",
            "Figure 19: attention vs victim ratio (HADOOP)",
            "victim_pct",
            &sweep_victim_ratio(WorkloadKind::Hadoop, 1900),
        ),
    ]
}
