//! Figures 4, 5, 6 (§5.1): minimum memory and decode time of FermatSketch
//! vs LossRadar vs FlowRadar for packet loss detection, swept over
//! #victim flows (Fig 4), packet loss rate (Fig 5) and #flows (Fig 6).
//!
//! Setup per §5.1: CAIDA-like trace (first 100K flows ≈ 5.3M packets),
//! 32-bit source-IP flow IDs, a single monitored link.

use crate::lossdet::{
    min_memory_for_success, FermatLossBench, FlowRadarLossBench, LossBench, LossRadarLossBench,
    LossScenario,
};
use crate::report::Table;
use chm_workloads::{caida_like_trace, Trace, VictimSelection};

const MB: f64 = 1024.0 * 1024.0;

fn benches() -> [Box<dyn LossBench>; 3] {
    [
        Box::new(FermatLossBench),
        Box::new(LossRadarLossBench),
        Box::new(FlowRadarLossBench),
    ]
}

fn sweep(
    id_mem: &str,
    id_time: &str,
    title: &str,
    x_label: &str,
    scenarios: &[(f64, LossScenario)],
    trials: u64,
) -> Vec<Table> {
    let mut mem_table = Table::new(
        id_mem,
        &format!("{title} — minimum memory (MB)"),
        &[x_label, "Fermat", "LossRadar", "FlowRadar"],
    );
    let mut time_table = Table::new(
        id_time,
        &format!("{title} — decoding time (ms)"),
        &[x_label, "Fermat", "LossRadar", "FlowRadar"],
    );
    for (x, sc) in scenarios {
        let mut mem_row = vec![*x];
        let mut time_row = vec![*x];
        for b in benches() {
            let r = min_memory_for_success(b.as_ref(), sc, trials, 256);
            mem_row.push(r.memory_bytes / MB);
            time_row.push(r.decode_time_s * 1000.0);
        }
        mem_table.push(mem_row);
        time_table.push(time_row);
    }
    vec![mem_table, time_table]
}

/// The §5.1 base trace: top 10K flows of a 100K-flow CAIDA-like trace.
fn base_trace() -> Trace<u32> {
    caida_like_trace(100_000, 0xca1d).top_n(10_000)
}

/// Figure 4: memory/time vs number of victim flows (2K–10K), loss rate 1%.
pub fn fig04(trials: u64) -> Vec<Table> {
    let trace = base_trace();
    let scenarios: Vec<(f64, LossScenario)> = (1..=5)
        .map(|k| {
            let victims = k * 2_000;
            let sc = LossScenario::from_trace(
                &trace,
                VictimSelection::RandomN(victims),
                0.01,
                40 + k as u64,
            );
            (victims as f64 / 1000.0, sc)
        })
        .collect();
    sweep(
        "fig04a",
        "fig04b",
        "Figure 4: vs # victim flows (K)",
        "victims_K",
        &scenarios,
        trials,
    )
}

/// Figure 5: memory/time vs packet loss rate (10%–50%), 100 victim flows.
pub fn fig05(trials: u64) -> Vec<Table> {
    let trace = base_trace();
    let scenarios: Vec<(f64, LossScenario)> = (1..=5)
        .map(|k| {
            let rate = 0.10 * k as f64;
            let sc = LossScenario::from_trace(
                &trace,
                VictimSelection::LargestN(100),
                rate,
                50 + k as u64,
            );
            (rate * 100.0, sc)
        })
        .collect();
    sweep(
        "fig05a",
        "fig05b",
        "Figure 5: vs loss rate (%)",
        "loss_pct",
        &scenarios,
        trials,
    )
}

/// Figure 6: memory/time vs number of flows (1K–100K, log), 100 victims,
/// loss rate 1%.
pub fn fig06(trials: u64) -> Vec<Table> {
    let full = caida_like_trace(100_000, 0xca1d);
    let scenarios: Vec<(f64, LossScenario)> = [1_000usize, 3_162, 10_000, 31_623, 100_000]
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let trace = full.top_n(n);
            let sc = LossScenario::from_trace(
                &trace,
                VictimSelection::LargestN(100),
                0.01,
                60 + i as u64,
            );
            (n as f64, sc)
        })
        .collect();
    sweep(
        "fig06a",
        "fig06b",
        "Figure 6: vs # flows",
        "flows",
        &scenarios,
        trials,
    )
}
