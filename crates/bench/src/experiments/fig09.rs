//! Figure 9 (§5.2): attention over a 45-epoch window in which the network
//! state changes 8 times (first degrading, then recovering). The paper's
//! claim: ChameleMon shifts measurement attention within ≤ 3 epochs of
//! every change.

use crate::report::Table;
use chamelemon::config::DataPlaneConfig;
use chamelemon::control::NetworkState;
use chamelemon::ChameleMon;
use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

/// The 9 phases of 5 epochs each (flows, victim ratio): degrade then
/// recover, mirroring the top sub-figure of Figure 9.
pub const PHASES: [(usize, f64); 9] = [
    (20_000, 0.025),
    (40_000, 0.05),
    (60_000, 0.10),
    (80_000, 0.15),
    (100_000, 0.20),
    (80_000, 0.15),
    (60_000, 0.10),
    (40_000, 0.05),
    (20_000, 0.025),
];

/// Runs the 45-epoch window and returns (per-epoch table, convergence
/// table: epochs needed after each of the 8 changes).
pub fn fig09() -> Vec<Table> {
    let mut sys = ChameleMon::testbed(DataPlaneConfig::paper_default(0x0909));
    let mut per_epoch = Table::new(
        "fig09",
        "Figure 9: attention vs epoch (DCTCP, 45 epochs, 8 state changes)",
        &[
            "epoch", "flows_K", "victims_K", "memHH", "memHL", "memLL", "decoded_K",
            "Th", "Tl", "sample", "ill",
        ],
    );
    // A configuration is "shifted" once it stops changing; record, per
    // phase change, how many epochs until the staged config stabilizes.
    let mut convergence = Table::new(
        "fig09_convergence",
        "Figure 9: epochs to shift attention after each change (paper: ≤ 3)",
        &["change", "epochs"],
    );
    let mut epoch = 0usize;
    let mut prev_staged = None;
    for (phase, &(flows, ratio)) in PHASES.iter().enumerate() {
        let trace = testbed_trace(WorkloadKind::Dctcp, flows, 8, 0x0909 + phase as u64);
        let plan = LossPlan::build(
            &trace,
            VictimSelection::RandomRatio(ratio),
            0.01,
            0x0909 + 100 + phase as u64,
        );
        let mut settled_at: Option<usize> = None;
        for e in 0..5 {
            let out = sys.run_epoch(&trace, &plan);
            let rt = &out.config_in_effect;
            let total = rt.partition.total() as f64;
            per_epoch.push(vec![
                epoch as f64,
                flows as f64 / 1000.0,
                flows as f64 * ratio / 1000.0,
                rt.partition.m_hh as f64 / total,
                rt.partition.m_hl as f64 / total,
                rt.partition.m_ll as f64 / total,
                out.analysis.total_decoded() as f64 / 1000.0,
                rt.th as f64,
                rt.tl as f64,
                rt.sample_rate(),
                if out.analysis.state_during == NetworkState::Ill { 1.0 } else { 0.0 },
            ]);
            // Converged when the staged config matches the previous epoch's.
            if settled_at.is_none() && prev_staged.as_ref() == Some(&out.staged_runtime) {
                settled_at = Some(e);
            }
            prev_staged = Some(out.staged_runtime);
            epoch += 1;
        }
        if phase > 0 {
            convergence.push(vec![
                phase as f64,
                settled_at.map(|e| e as f64).unwrap_or(5.0),
            ]);
        }
    }
    vec![per_epoch, convergence]
}
