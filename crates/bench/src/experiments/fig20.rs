//! Figure 20 (Appendix F): controller response time — the wall-clock time
//! between finishing collection and emitting the reconfiguration — across
//! network states, for all four workloads.
//!
//! Panel (a) varies the number of flows (victim ratio 10%); panel (b)
//! varies the victim ratio (50K flows). The paper's machine answers within
//! 30 ms on one core; the *shape* (dominated by the number of HH candidates
//! that must be decoded and re-inserted) is what we reproduce.

use crate::attention::stable_point;
use crate::report::Table;
use chm_workloads::WorkloadKind;

/// Runs both panels; `scale` divides flow counts for quick runs.
pub fn fig20(scale: usize) -> Vec<Table> {
    let workload_names: Vec<&str> = WorkloadKind::ALL.iter().map(|w| w.name()).collect();

    let mut a = Table::new(
        "fig20a",
        "Figure 20(a): response time (ms) vs # flows",
        &[["flows"].as_slice(), &workload_names].concat(),
    );
    for k in [2usize, 4, 6, 8, 10] {
        let flows = k * 10_000 / scale;
        let mut row = vec![flows as f64];
        // This figure's *output* is a wall-clock latency, so the four
        // deployments run on one worker — timing them concurrently would
        // fold cross-thread contention into the published datapoints.
        let points = crate::parallel::run_trials_with(1, WorkloadKind::ALL.len(), |i| {
            let w = WorkloadKind::ALL[i];
            stable_point(w, flows, 0.10, flows as f64, 2000 + (k * 7 + i) as u64)
        });
        row.extend(points.iter().map(|p| p.response_ms));
        a.push(row);
    }

    let mut b = Table::new(
        "fig20b",
        "Figure 20(b): response time (ms) vs victim ratio",
        &[["victim_pct"].as_slice(), &workload_names].concat(),
    );
    for k in [1usize, 3, 5, 7, 9] {
        let ratio = 0.025 * k as f64;
        let mut row = vec![ratio * 100.0];
        let points = crate::parallel::run_trials_with(1, WorkloadKind::ALL.len(), |i| {
            let w = WorkloadKind::ALL[i];
            stable_point(w, 50_000 / scale, ratio, ratio, 2100 + (k * 7 + i) as u64)
        });
        row.extend(points.iter().map(|p| p.response_ms));
        b.push(row);
    }
    vec![a, b]
}
