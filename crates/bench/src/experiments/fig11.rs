//! Figure 11 (Appendix C): accuracy of the Tower+Fermat combination vs nine
//! baselines across the six packet accumulation tasks, at 200–600 KB.
//!
//! Panels and competitors follow the paper exactly:
//! (a) heavy hitters F1 — Tower+Fermat, FCM, UnivMon, CountHeap, Elastic, HashPipe, Coco
//! (b) flow size ARE    — Tower+Fermat, FCM, CM, CU, Elastic
//! (c) heavy changes F1 — Tower+Fermat, FCM, UnivMon, CountHeap, Elastic, Coco
//! (d) size dist WMRE   — Tower+Fermat, FCM, MRAC, Elastic
//! (e) entropy RE       — Tower+Fermat, FCM, UnivMon, Elastic, MRAC
//! (f) cardinality RE   — Tower+Fermat, FCM, UnivMon, Elastic
//!
//! Δh ≈ 0.02% and Δc ≈ 0.01% of total packets (500 / 250 on the paper's
//! traces); Th = Δc = 250. Traces: CAIDA-like, 63K flows / 2.3M packets.

use crate::report::Table;
use chm_baselines::{
    AccumulationSketch, CmSketch, CocoSketch, CountHeap, CuSketch, ElasticSketch, FcmSketch,
    HashPipe, UnivMon,
};
use chm_common::metrics::{
    average_relative_error, detection_score, relative_error, size_entropy, size_histogram, wmre,
};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_tower::{mrac_em, MracConfig, TowerConfig, TowerSketch};
use chm_workloads::{caida_like_trace, Trace};
use std::collections::{HashMap, HashSet};

/// Heavy-hitter threshold Δh (§C: ~0.02% of packets).
const DELTA_H: u64 = 500;
/// Heavy-change threshold Δc (§C: ~0.01% of packets).
const DELTA_C: u64 = 250;
/// Tower+Fermat HH-candidate threshold Th = Δc (§C).
const TH: u64 = 250;

/// Results of the six tasks for one algorithm at one memory size; `None`
/// where the algorithm does not support the task (matches the paper's
/// panel membership).
#[derive(Debug, Clone, Copy, Default)]
struct TaskScores {
    hh_f1: Option<f64>,
    size_are: Option<f64>,
    hc_f1: Option<f64>,
    dist_wmre: Option<f64>,
    entropy_re: Option<f64>,
    card_re: Option<f64>,
}

/// Ground truth of one epoch.
struct Truth {
    sizes: HashMap<u32, u64>,
    hh: HashSet<u32>,
    dist: Vec<f64>,
    entropy: f64,
    cardinality: f64,
}

impl Truth {
    fn of(trace: &Trace<u32>) -> Self {
        let sizes = trace.size_map();
        let hh = sizes.iter().filter(|(_, &v)| v > DELTA_H).map(|(&f, _)| f).collect();
        let max = sizes.values().copied().max().unwrap_or(1) as usize;
        let dist = size_histogram(&sizes, max);
        let entropy = size_entropy(&dist);
        Truth { cardinality: sizes.len() as f64, sizes, hh, dist, entropy }
    }
}

/// Heavy-change ground truth between two epochs.
fn truth_changes(a: &Truth, b: &Truth) -> HashSet<u32> {
    let mut out = HashSet::new();
    for (f, &va) in &a.sizes {
        let vb = b.sizes.get(f).copied().unwrap_or(0);
        if va.abs_diff(vb) > DELTA_C {
            out.insert(*f);
        }
    }
    for (f, &vb) in &b.sizes {
        if !a.sizes.contains_key(f) && vb > DELTA_C {
            out.insert(*f);
        }
    }
    out
}

/// Generic per-flow-size scoring given an estimator closure.
fn score_sizes(truth: &Truth, est: impl Fn(&u32) -> u64) -> f64 {
    let estimates: HashMap<u32, u64> = truth.sizes.keys().map(|f| (*f, est(f))).collect();
    average_relative_error(&truth.sizes, &estimates)
}

fn f1_of(reported: Vec<u32>, truth: &HashSet<u32>) -> f64 {
    detection_score(reported, truth).f1
}

/// Heavy changes from two candidate lists + two estimators.
fn changes_from(
    cand_a: Vec<(u32, u64)>,
    cand_b: Vec<(u32, u64)>,
    est_a: impl Fn(&u32) -> u64,
    est_b: impl Fn(&u32) -> u64,
) -> Vec<u32> {
    let mut cands: HashSet<u32> = cand_a.into_iter().map(|(f, _)| f).collect();
    cands.extend(cand_b.into_iter().map(|(f, _)| f));
    cands
        .into_iter()
        .filter(|f| est_a(f).abs_diff(est_b(f)) > DELTA_C)
        .collect()
}

/// Linear counting over an integer counter slice.
fn linear_count_slice(counters_zero: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    if counters_zero == 0 {
        let w = total as f64;
        return w * (2.0 * w).ln();
    }
    -(total as f64) * (counters_zero as f64 / total as f64).ln()
}

// ---------------------------------------------------------------------
// Tower + Fermat (the paper's combination, §C configuration)
// ---------------------------------------------------------------------
fn tower_fermat(mem: usize, streams: [&[u32]; 2], truths: [&Truth; 2]) -> TaskScores {
    // §C: Fermat gets 2500 buckets (99.9% decode success at these loads),
    // Tower gets the rest.
    let fermat_buckets_total = 2_500usize;
    let fermat_bytes = fermat_buckets_total * 8;
    let run = |stream: &[u32], seed: u64| {
        let mut tower = TowerSketch::new(TowerConfig::sized(mem - fermat_bytes, seed));
        let mut fermat =
            FermatSketch::<u32>::new(FermatConfig::standard(fermat_buckets_total / 3, seed ^ 1));
        for f in stream {
            if tower.insert_and_query(*f as u64) >= TH {
                fermat.insert(f);
            }
        }
        let flowset = fermat.decode();
        (tower, flowset)
    };
    let (tower_a, hh_a) = run(streams[0], 11);
    let (tower_b, hh_b) = run(streams[1], 11);

    let est = |tower: &TowerSketch, hh: &chm_fermat::DecodeResult<u32>, f: &u32| -> u64 {
        match hh.flows.get(f) {
            Some(&q) => TH + q.max(0) as u64,
            None => tower.query_clamped(*f as u64),
        }
    };
    let est_a = |f: &u32| est(&tower_a, &hh_a, f);
    let est_b = |f: &u32| est(&tower_b, &hh_b, f);

    let reported_hh: Vec<u32> = hh_a
        .flows
        .iter()
        .filter(|(_, &q)| TH + q.max(0) as u64 > DELTA_H)
        .map(|(&f, _)| f)
        .collect();
    let cand = |hh: &chm_fermat::DecodeResult<u32>| -> Vec<(u32, u64)> {
        hh.flows.iter().map(|(&f, &q)| (f, TH + q.max(0) as u64)).collect()
    };

    let tails: Vec<u64> = hh_a.flows.values().map(|&q| TH + q.max(0) as u64).collect();
    let dist = tower_a.flow_size_distribution(&tails, &MracConfig::default());

    TaskScores {
        hh_f1: Some(f1_of(reported_hh, &truths[0].hh)),
        size_are: Some(score_sizes(truths[0], est_a)),
        hc_f1: Some(f1_of(
            changes_from(cand(&hh_a), cand(&hh_b), est_a, est_b),
            &truth_changes(truths[0], truths[1]),
        )),
        dist_wmre: Some(wmre(&truths[0].dist, &dist)),
        entropy_re: Some(relative_error(truths[0].entropy, size_entropy(&dist))),
        card_re: Some(relative_error(truths[0].cardinality, tower_a.cardinality_estimate())),
    }
}

// ---------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------
fn run_two<S>(mut make: impl FnMut(u64) -> S, streams: [&[u32]; 2]) -> (S, S)
where
    S: AccumulationSketch<u32>,
{
    let mut a = make(21);
    let mut b = make(21);
    for f in streams[0] {
        a.insert(f);
    }
    for f in streams[1] {
        b.insert(f);
    }
    (a, b)
}

fn generic_scores<S: AccumulationSketch<u32>>(
    a: &S,
    b: &S,
    truths: [&Truth; 2],
    supports_hh: bool,
    supports_hc: bool,
) -> TaskScores {
    TaskScores {
        hh_f1: supports_hh.then(|| {
            f1_of(
                a.heavy_candidates(DELTA_H + 1).into_iter().map(|(f, _)| f).collect(),
                &truths[0].hh,
            )
        }),
        size_are: Some(score_sizes(truths[0], |f| a.estimate(f))),
        hc_f1: supports_hc.then(|| {
            f1_of(
                changes_from(
                    a.heavy_candidates(DELTA_C),
                    b.heavy_candidates(DELTA_C),
                    |f| a.estimate(f),
                    |f| b.estimate(f),
                ),
                &truth_changes(truths[0], truths[1]),
            )
        }),
        ..Default::default()
    }
}

/// MRAC standalone: one 8-bit counter array + EM (panels d, e).
fn mrac_standalone(mem: usize, stream: &[u32], truth: &Truth) -> TaskScores {
    let w = mem; // 8-bit counters: one byte each
    let mut counters = vec![0u8; w.max(16)];
    let hash = chm_common::hash::PairwiseHash::from_seed(31);
    for f in stream {
        let j = hash.index(*f as u64, counters.len());
        counters[j] = counters[j].saturating_add(1);
    }
    let vmax = counters.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0.0; vmax + 1];
    for &c in &counters {
        hist[c as usize] += 1.0;
    }
    let dist = mrac_em(&hist, counters.len(), &MracConfig::default());
    TaskScores {
        dist_wmre: Some(wmre(&truth.dist, &dist)),
        entropy_re: Some(relative_error(truth.entropy, size_entropy(&dist))),
        ..Default::default()
    }
}

/// Elastic's distribution/entropy/cardinality via its light part + heavy
/// entries (panels d, e, f in the paper include Elastic).
fn elastic_extras(e: &ElasticSketch<u32>, truth: &Truth, scores: &mut TaskScores) {
    // Build a histogram from heavy entries + a light-part MRAC.
    let light = e.light_counters();
    let vmax = light.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0.0; vmax + 1];
    for &c in light {
        hist[c as usize] += 1.0;
    }
    let mut dist = mrac_em(&hist, light.len(), &MracConfig::default());
    for (_, count, _) in e.heavy_entries() {
        let s = count as usize;
        if s >= dist.len() {
            dist.resize(s + 1, 0.0);
        }
        dist[s] += 1.0;
    }
    let zero = light.iter().filter(|&&c| c == 0).count();
    let card = linear_count_slice(zero, light.len())
        + e.heavy_entries().count() as f64;
    scores.dist_wmre = Some(wmre(&truth.dist, &dist));
    scores.entropy_re = Some(relative_error(truth.entropy, size_entropy(&dist)));
    scores.card_re = Some(relative_error(truth.cardinality, card));
}

/// FCM's distribution/entropy/cardinality via its base counter level.
fn fcm_extras(s: &FcmSketch<u32>, truth: &Truth, scores: &mut TaskScores) {
    let base = s.base_level(0);
    let vmax = base.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0.0; (vmax).min(255) + 1];
    for &c in base {
        hist[(c as usize).min(255).min(vmax)] += 1.0;
    }
    let mut dist = mrac_em(&hist, base.len(), &MracConfig::default());
    for (_, count) in s.heavy_entries() {
        let c = count as usize;
        if c >= dist.len() {
            dist.resize(c + 1, 0.0);
        }
        dist[c] += 1.0;
    }
    let zero = base.iter().filter(|&&c| c == 0).count();
    let card = linear_count_slice(zero, base.len()) + s.heavy_entries().count() as f64;
    scores.dist_wmre = Some(wmre(&truth.dist, &dist));
    scores.entropy_re = Some(relative_error(truth.entropy, size_entropy(&dist)));
    scores.card_re = Some(relative_error(truth.cardinality, card));
}

/// Runs every algorithm at one memory size over two epochs.
fn run_all(mem: usize, streams: [&[u32]; 2], truths: [&Truth; 2]) -> Vec<(&'static str, TaskScores)> {
    let mut out = Vec::new();

    out.push(("Tower+Fermat", tower_fermat(mem, streams, truths)));

    let (a, b) = run_two(|s| FcmSketch::<u32>::new(mem, s), streams);
    let mut sc = generic_scores(&a, &b, truths, true, true);
    fcm_extras(&a, truths[0], &mut sc);
    out.push(("FCM", sc));

    let (a, b) = run_two(|s| UnivMon::<u32>::new(mem, s), streams);
    let mut sc = generic_scores(&a, &b, truths, true, true);
    sc.entropy_re = Some(relative_error(truths[0].entropy, a.entropy()));
    sc.card_re = Some(relative_error(truths[0].cardinality, a.cardinality()));
    sc.size_are = None; // the paper's panel (b) excludes UnivMon
    out.push(("UnivMon", sc));

    let (a, b) = run_two(|s| CountHeap::<u32>::new(mem, 4096, s), streams);
    let mut sc = generic_scores(&a, &b, truths, true, true);
    sc.size_are = None; // CountHeap appears in panels (a) and (c) only
    out.push(("CountHeap", sc));

    let (a, b) = run_two(|s| ElasticSketch::<u32>::new(mem, s), streams);
    let mut sc = generic_scores(&a, &b, truths, true, true);
    elastic_extras(&a, truths[0], &mut sc);
    out.push(("Elastic", sc));

    let (a, b) = run_two(|s| HashPipe::<u32>::new(mem, s), streams);
    let mut sc = generic_scores(&a, &b, truths, true, false);
    sc.size_are = None; // HashPipe appears in panel (a) only
    out.push(("HashPipe", sc));

    let (a, b) = run_two(|s| CocoSketch::<u32>::new(mem, s), streams);
    let sc = generic_scores(&a, &b, truths, true, true);
    out.push(("Coco", sc));

    let (a, b) = run_two(|s| CmSketch::new(mem, s), streams);
    let sc = generic_scores(&a, &b, truths, false, false);
    out.push(("CM", sc));

    let (a, b) = run_two(|s| CuSketch::new(mem, s), streams);
    let sc = generic_scores(&a, &b, truths, false, false);
    out.push(("CU", sc));

    out.push(("MRAC", mrac_standalone(mem, streams[0], truths[0])));

    out
}

/// Runs all six panels at 200–600 KB.
pub fn fig11(scale: usize) -> Vec<Table> {
    // Appendix C: traces of ~63K flows / ~2.3M packets.
    let n_flows = 63_000 / scale;
    let trace_a = caida_like_trace(n_flows, 0x11a);
    // Epoch B: same flow-ID universe, resampled sizes (what adjacent CAIDA
    // epochs look like: mostly stable, tails move).
    let trace_b = caida_like_trace(n_flows, 0x11b);
    let truth_a = Truth::of(&trace_a);
    let truth_b = Truth::of(&trace_b);
    let stream_a = trace_a.packet_stream(1);
    let stream_b = trace_b.packet_stream(2);

    type PanelGetter = fn(&TaskScores) -> Option<f64>;
    let panels: [(&str, &str, PanelGetter); 6] = [
        ("fig11a", "Figure 11(a): heavy hitters (F1)", |s| s.hh_f1),
        ("fig11b", "Figure 11(b): flow size (ARE)", |s| s.size_are),
        ("fig11c", "Figure 11(c): heavy changes (F1)", |s| s.hc_f1),
        ("fig11d", "Figure 11(d): size distribution (WMRE)", |s| s.dist_wmre),
        ("fig11e", "Figure 11(e): entropy (RE)", |s| s.entropy_re),
        ("fig11f", "Figure 11(f): cardinality (RE)", |s| s.card_re),
    ];

    // Collect scores for every memory size first; memory sizes are
    // independent and fan out over the parallel executor.
    let mems: Vec<usize> = (2..=6).map(|k| k * 100 * 1024).collect();
    let all: Vec<(usize, Vec<(&'static str, TaskScores)>)> =
        crate::parallel::run_trials(mems.len(), |i| {
            let mem = mems[i];
            (
                mem,
                run_all(mem, [&stream_a, &stream_b], [&truth_a, &truth_b]),
            )
        });

    let names: Vec<&'static str> = all[0].1.iter().map(|&(n, _)| n).collect();
    panels
        .into_iter()
        .map(|(id, title, get)| {
            // Columns: only algorithms that support this task.
            let active: Vec<usize> = (0..names.len())
                .filter(|&i| all.iter().any(|(_, row)| get(&row[i].1).is_some()))
                .collect();
            let mut cols = vec!["mem_KB"];
            for &i in &active {
                cols.push(names[i]);
            }
            let mut t = Table::new(id, title, &cols);
            for (mem, row) in &all {
                let mut r = vec![*mem as f64 / 1024.0];
                for &i in &active {
                    r.push(get(&row[i].1).unwrap_or(f64::NAN));
                }
                t.push(r);
            }
            t
        })
        .collect()
}
