//! Table 1 (Appendix D.1): Tofino resource usage of the ChameleMon data
//! plane under the §5.2 parameter settings.

use crate::report::Table;
use chamelemon::config::DataPlaneConfig;
use chamelemon::resources::resource_usage;

/// Produces the resource table (measured columns beside the paper's).
pub fn table1() -> Vec<Table> {
    let cfg = DataPlaneConfig::paper_default(0x7ab1e);
    let r = resource_usage(&cfg);
    let mut t = Table::new(
        "table1",
        "Table 1: Tofino resources (model vs paper)",
        &["row", "model_value", "model_pct", "paper_value", "paper_pct"],
    );
    // Rows: 1 = SALUs, 2 = SRAM blocks, 3 = TCAM entries, 4 = hash bits.
    t.push(vec![1.0, r.salus as f64, r.salu_pct(), 32.0, 66.67]);
    t.push(vec![
        2.0,
        r.sram_blocks as f64,
        r.sram_blocks as f64 / r.sram_total as f64 * 100.0,
        130.0,
        13.54,
    ]);
    t.push(vec![3.0, r.tcam_entries as f64, 2.78, 8.0, 2.78]);
    t.push(vec![4.0, r.hash_bits as f64, r.hash_pct(), 809.0, 16.21]);
    vec![t]
}
