//! Machinery for the §5.1 packet-loss-detection comparison (Figures 4–6):
//! a common scenario type, fast batched replay into each detector, and the
//! minimum-memory search.
//!
//! **Methodology note** (recorded in EXPERIMENTS.md): the paper reports "the
//! minimum memory required to achieve 99.9% decoding success rate". We
//! approximate that operating point as the smallest memory at which
//! `trials` independent trials (fresh hash seeds) all decode — with the
//! default 30 trials this pins the ≥97% success region, which tracks the
//! same threshold curve the paper measures (decode success has a sharp
//! phase transition in memory, Theorem 3.1).

use chm_baselines::{FlowRadar, LossDetector, LossRadar};
use chm_fermat::{FermatConfig, FermatSketch};
use chm_workloads::{LossPlan, Trace, VictimSelection};
use std::collections::HashMap;
use std::time::Instant;

/// A fixed loss scenario: who sends what, who loses what.
#[derive(Debug, Clone)]
pub struct LossScenario {
    /// Per-flow delivered packet counts.
    pub delivered: HashMap<u32, u64>,
    /// Per-victim lost packet counts.
    pub lost: HashMap<u32, u64>,
}

impl LossScenario {
    /// Builds the §5.1 setup from a trace: `victims` flows selected by
    /// `selection` each losing `loss_rate` of their packets.
    pub fn from_trace(
        trace: &Trace<u32>,
        selection: VictimSelection,
        loss_rate: f64,
        seed: u64,
    ) -> Self {
        let plan = LossPlan::build(trace, selection, loss_rate, seed);
        let (delivered, lost) = plan.apply_to_trace(trace, seed ^ 0x10ad);
        LossScenario { delivered, lost }
    }

    /// Total lost packets.
    pub fn lost_packets(&self) -> u64 {
        self.lost.values().sum()
    }

    /// Number of victim flows.
    pub fn victims(&self) -> usize {
        self.lost.len()
    }
}

/// One detector family under benchmark: construct at a memory size, replay
/// a scenario, decode. `Sync` so the parallel trial executor can share one
/// bench across workers (implementations are stateless unit structs).
pub trait LossBench: Sync {
    /// Human-readable name for tables.
    fn name(&self) -> &'static str;

    /// Runs one trial: build at `memory_bytes` with `seed`, replay, decode.
    /// Returns `(success, decode_time_seconds, actual_memory_bytes)`.
    fn trial(&self, sc: &LossScenario, memory_bytes: usize, seed: u64) -> (bool, f64, f64);
}

/// FermatSketch deployed up/down of the link (§5.1 configuration: 3 hash
/// functions, 32-bit count + 32-bit ID).
pub struct FermatLossBench;

impl LossBench for FermatLossBench {
    fn name(&self) -> &'static str {
        "Fermat"
    }

    fn trial(&self, sc: &LossScenario, memory_bytes: usize, seed: u64) -> (bool, f64, f64) {
        let cfg = FermatConfig {
            arrays: 3,
            buckets_per_array: (memory_bytes / 8 / 3).max(1),
            fingerprint_bits: 0,
            seed,
        };
        // Only the delta matters for decode: up − down contains exactly the
        // victim flows, so we insert the losses directly (bucket-state
        // identical to full two-sided replay followed by subtraction).
        let mut delta = FermatSketch::<u32>::new(cfg);
        for (f, &l) in &sc.lost {
            delta.insert_weighted(f, l as i64);
        }
        let t0 = Instant::now();
        let r = delta.decode_in_place();
        let dt = t0.elapsed().as_secs_f64();
        let ok = r.success
            && r.flows.len() == sc.lost.len()
            && r.flows.iter().all(|(f, &c)| sc.lost.get(f) == Some(&(c as u64)));
        (ok, dt, cfg.logical_memory_bytes::<u32>())
    }
}

/// FlowRadar deployed up/down of the link (§5.1 configuration).
pub struct FlowRadarLossBench;

impl LossBench for FlowRadarLossBench {
    fn name(&self) -> &'static str {
        "FlowRadar"
    }

    fn trial(&self, sc: &LossScenario, memory_bytes: usize, seed: u64) -> (bool, f64, f64) {
        let mut fr = FlowRadar::<u32>::new(memory_bytes, seed);
        for (f, &d) in &sc.delivered {
            let l = sc.lost.get(f).copied().unwrap_or(0);
            fr.observe_upstream_flow(f, d + l);
            if d > 0 {
                fr.observe_downstream_flow(f, d);
            }
        }
        let t0 = Instant::now();
        let decoded = fr.decode_losses();
        let dt = t0.elapsed().as_secs_f64();
        let ok = decoded.map(|m| m == sc.lost).unwrap_or(false);
        (ok, dt, fr.memory_bytes())
    }
}

/// LossRadar deployed up/down of the link (§5.1 configuration).
pub struct LossRadarLossBench;

impl LossBench for LossRadarLossBench {
    fn name(&self) -> &'static str {
        "LossRadar"
    }

    fn trial(&self, sc: &LossScenario, memory_bytes: usize, seed: u64) -> (bool, f64, f64) {
        let mut lr = LossRadar::<u32>::new(memory_bytes, seed);
        // The delta IBF contains exactly the lost packets; feeding only the
        // lost packets upstream produces the identical delta (delivered
        // packets cancel bucket-wise).
        for (f, &l) in &sc.lost {
            let d = sc.delivered.get(f).copied().unwrap_or(0);
            // The lost packets are the first `l` sequence numbers of the
            // flow's d+l packets (the simulator's convention).
            let _ = d;
            for seq in 0..l as u32 {
                lr.observe_upstream(f, seq);
            }
        }
        let t0 = Instant::now();
        let decoded = lr.decode_losses();
        let dt = t0.elapsed().as_secs_f64();
        let ok = decoded.map(|m| m == sc.lost).unwrap_or(false);
        (ok, dt, lr.memory_bytes())
    }
}

/// Result of a minimum-memory search.
#[derive(Debug, Clone, Copy)]
pub struct MinMemoryResult {
    /// Smallest memory (bytes, as reported by the detector) at which all
    /// trials succeeded.
    pub memory_bytes: f64,
    /// Mean decode time (seconds) at that memory.
    pub decode_time_s: f64,
}

/// Exponential + binary search for the smallest memory at which `trials`
/// trials all succeed. The per-memory trial batch fans out over the
/// parallel executor (deterministic seeds, early exit on first failure).
pub fn min_memory_for_success(
    bench: &dyn LossBench,
    sc: &LossScenario,
    trials: u64,
    floor_bytes: usize,
) -> MinMemoryResult {
    let all_ok = |mem: usize| -> Option<f64> {
        let dts = crate::parallel::run_trials_all(trials as usize, |t| {
            let (ok, dt, _) = bench.trial(sc, mem, 0x5eed_0000 + t as u64 * 7919);
            ok.then_some(dt)
        })?;
        Some(dts.iter().sum::<f64>() / trials as f64)
    };
    // Exponential phase.
    let mut hi = floor_bytes.max(64);
    let mut hi_dt;
    loop {
        match all_ok(hi) {
            Some(dt) => {
                hi_dt = dt;
                break;
            }
            None => hi *= 2,
        }
        assert!(hi < 1 << 34, "memory search diverged");
    }
    // Binary phase at 2% resolution.
    let mut lo = hi / 2;
    while hi - lo > hi / 50 + 8 {
        let mid = (lo + hi) / 2;
        match all_ok(mid) {
            Some(dt) => {
                hi = mid;
                hi_dt = dt;
            }
            None => lo = mid,
        }
    }
    // Report the detector's own memory accounting at the found size.
    let (_, _, mem) = bench.trial(sc, hi, 0x5eed_0000);
    MinMemoryResult { memory_bytes: mem, decode_time_s: hi_dt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chm_workloads::caida_like_trace;

    fn scenario() -> LossScenario {
        // Random victims at low loss: the regime of Figure 6, where
        // Fermat < LossRadar < FlowRadar in memory.
        let trace = caida_like_trace(5_000, 1).top_n(2_000);
        LossScenario::from_trace(&trace, VictimSelection::RandomN(100), 0.02, 2)
    }

    #[test]
    fn scenario_statistics() {
        let sc = scenario();
        assert_eq!(sc.victims(), 100);
        assert!(sc.lost_packets() >= 100);
    }

    #[test]
    fn all_three_benches_succeed_with_ample_memory() {
        let sc = scenario();
        for b in [
            &FermatLossBench as &dyn LossBench,
            &FlowRadarLossBench,
            &LossRadarLossBench,
        ] {
            let (ok, dt, mem) = b.trial(&sc, 4 << 20, 1);
            assert!(ok, "{} failed with 4 MiB", b.name());
            assert!(dt >= 0.0 && mem > 0.0);
        }
    }

    #[test]
    fn all_three_benches_fail_when_starved() {
        let sc = scenario();
        // 200 bytes cannot possibly hold 100 victims / 2000 flows.
        assert!(!FermatLossBench.trial(&sc, 200, 1).0);
        assert!(!FlowRadarLossBench.trial(&sc, 200, 1).0);
        assert!(!LossRadarLossBench.trial(&sc, 200, 1).0);
    }

    #[test]
    fn min_memory_ordering_matches_paper() {
        // 100 victims, many flows, low loss: Fermat needs the least memory;
        // FlowRadar (per-flow) needs the most.
        let sc = scenario();
        let fermat = min_memory_for_success(&FermatLossBench, &sc, 5, 64);
        let flowradar = min_memory_for_success(&FlowRadarLossBench, &sc, 5, 64);
        let lossradar = min_memory_for_success(&LossRadarLossBench, &sc, 5, 64);
        assert!(
            fermat.memory_bytes < lossradar.memory_bytes,
            "fermat {} vs lossradar {}",
            fermat.memory_bytes,
            lossradar.memory_bytes
        );
        assert!(
            lossradar.memory_bytes < flowradar.memory_bytes,
            "lossradar {} vs flowradar {}",
            lossradar.memory_bytes,
            flowradar.memory_bytes
        );
    }
}
