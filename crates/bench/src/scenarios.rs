//! `chm-bench scenarios`: runs the golden adversarial matrix
//! ([`chm_scenarios::standard_matrix`]) through the full measurement
//! pipeline and records per-scenario accuracy in `results/SCENARIOS.json`.
//!
//! The JSON is **deterministic**: every number derives from the scenario
//! seeds (no timestamps, no wall-clock), so the same seed produces a
//! byte-identical file on any machine — scenario regressions show up as
//! plain diffs.

use crate::report::{json_number, json_string};
use chamelemon::config::DataPlaneConfig;
use chm_scenarios::{run, run_with_config, ReplayMode, ScenarioResult};
use std::fs;
use std::io;
use std::path::Path;

/// Runs the standard matrix under `mode`. `quick` (CI smoke) pairs the
/// reduced workload sizing with the scaled-down data plane; the full matrix
/// runs the paper's §5.2 data-plane parameters.
pub fn run_matrix(quick: bool, mode: ReplayMode) -> Vec<ScenarioResult> {
    chm_scenarios::standard_matrix(quick)
        .iter()
        .map(|s| {
            if quick {
                run(s, mode)
            } else {
                run_with_config(
                    s,
                    mode,
                    DataPlaneConfig::paper_default(s.seed ^ chm_scenarios::CFG_SALT),
                )
            }
        })
        .collect()
}

/// Prints the matrix scorecard as an aligned table.
pub fn print_table(results: &[ScenarioResult]) {
    println!("\n== scenarios — adversarial matrix ==");
    println!(
        "{:>16} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "scenario", "epochs", "mean_f1", "mean_are", "decode", "reports", "victims"
    );
    for r in results {
        let victims: usize = r.epochs.iter().map(|e| e.true_victims).sum();
        println!(
            "{:>16} {:>8} {:>8.4} {:>8.4} {:>8.2} {:>10.2} {:>8}",
            r.name,
            r.epochs.len(),
            r.mean_f1,
            r.mean_are,
            r.decode_success,
            r.report_delivery,
            victims,
        );
    }
}

/// Renders the matrix as the `SCENARIOS.json` document.
pub fn to_json(results: &[ScenarioResult], quick: bool) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"id\": \"scenarios\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(&r.name)));
        out.push_str(&format!("      \"epochs\": {},\n", r.epochs.len()));
        out.push_str(&format!("      \"mean_f1\": {},\n", json_number(r.mean_f1)));
        out.push_str(&format!("      \"mean_are\": {},\n", json_number(r.mean_are)));
        out.push_str(&format!(
            "      \"decode_success\": {},\n",
            json_number(r.decode_success)
        ));
        out.push_str(&format!(
            "      \"report_delivery\": {},\n",
            json_number(r.report_delivery)
        ));
        out.push_str("      \"per_epoch\": [\n");
        for (j, e) in r.epochs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"epoch\": {}, \"f1\": {}, \"precision\": {}, \
                 \"recall\": {}, \"are\": {}, \"decode_ok\": {}, \
                 \"reports\": {}, \"true_victims\": {}, \
                 \"reported_victims\": {}, \"flows\": {}, \"packets\": {}}}{}\n",
                e.epoch,
                json_number(e.f1),
                json_number(e.precision),
                json_number(e.recall),
                json_number(e.are),
                e.decode_ok,
                e.reports_received,
                e.true_victims,
                e.reported_victims,
                e.flows,
                e.packets_sent,
                if j + 1 < r.epochs.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `SCENARIOS.json` under `dir`.
pub fn write_json(
    results: &[ScenarioResult],
    quick: bool,
    dir: impl AsRef<Path>,
) -> io::Result<()> {
    fs::create_dir_all(&dir)?;
    fs::write(dir.as_ref().join("SCENARIOS.json"), to_json(results, quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_well_formed() {
        // A tiny ad-hoc matrix keeps this a unit test, not a benchmark.
        let s = chm_scenarios::Scenario::builder("tiny")
            .seed(1)
            .flows(120)
            .epochs(2)
            .duplication(0.1)
            .build();
        let r1 = vec![run(&s, ReplayMode::Burst)];
        let r2 = vec![run(&s, ReplayMode::Burst)];
        let j1 = to_json(&r1, true);
        let j2 = to_json(&r2, true);
        assert_eq!(j1, j2, "same seed must render byte-identical JSON");
        assert!(j1.contains("\"name\": \"tiny\""));
        assert!(j1.contains("\"per_epoch\""));
        // Balanced braces/brackets (cheap well-formedness check; the repo
        // has no JSON parser by design).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j1.matches(open).count(),
                j1.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }
}
