//! `chm-bench scenarios`: runs the golden adversarial matrix
//! ([`chm_scenarios::standard_matrix`]) through the full measurement
//! pipeline and records per-scenario accuracy — victim-detection F1/ARE,
//! decode health, **victim-localization top-1/top-3 hit rates**, and the
//! LossRadar baseline's scores — in `results/SCENARIOS.json`.
//!
//! The JSON is **deterministic**: every number derives from the scenario
//! seeds (no timestamps, no wall-clock), so the same seed produces a
//! byte-identical file on any machine — scenario regressions show up as
//! plain diffs. Three extensions ride on that:
//!
//! * `--seeds N` re-runs every scenario under `N` derived seeds on the
//!   [`crate::parallel`] trial executor and appends mean/σ confidence
//!   bands per scenario (ordered collection keeps the file byte-identical
//!   at any worker count);
//! * `--check <golden.json>` compares the fresh run against a committed
//!   golden and **fails** when any scenario's mean F1 or localization
//!   top-3 hit rate regressed by more than [`CHECK_TOLERANCE`] — the CI
//!   threshold gate;
//! * seed 0 of a banded run is always the scenario's own seed, so the
//!   headline numbers never move when bands are requested.

use crate::parallel::run_trials;
use crate::report::{json_number, json_string};
use chamelemon::config::DataPlaneConfig;
use chm_common::hash::mix64;
use chm_scenarios::{run_with_config, ReplayMode, Scenario, ScenarioResult};
use std::fs;
use std::io;
use std::path::Path;

/// Regression the `--check` gate tolerates on mean F1 and localization
/// top-3 before failing.
pub const CHECK_TOLERANCE: f64 = 0.02;

/// A scenario's aggregate over `seeds` derived runs: per-metric mean and
/// population standard deviation. `results[0]` is always the scenario's
/// own seed.
#[derive(Debug, Clone)]
pub struct SeedBand {
    /// Runs, in seed-index order.
    pub results: Vec<ScenarioResult>,
}

impl SeedBand {
    fn stats(&self, metric: impl Fn(&ScenarioResult) -> f64) -> (f64, f64) {
        let n = self.results.len().max(1) as f64;
        let mean = self.results.iter().map(&metric).sum::<f64>() / n;
        let var = self
            .results
            .iter()
            .map(|r| (metric(r) - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }
}

/// The matrix scorecard: the headline (seed-0) result per scenario plus
/// optional multi-seed bands.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Seed-0 results, in matrix order.
    pub results: Vec<ScenarioResult>,
    /// One band per scenario when `--seeds N > 1`, else empty.
    pub bands: Vec<SeedBand>,
    /// Seeds per scenario this run used.
    pub n_seeds: usize,
}

fn config_for(quick: bool, seed: u64) -> DataPlaneConfig {
    if quick {
        DataPlaneConfig::small(seed ^ chm_scenarios::CFG_SALT)
    } else {
        DataPlaneConfig::paper_default(seed ^ chm_scenarios::CFG_SALT)
    }
}

/// The `i`-th derived seed variant of a scenario (`i == 0` is the scenario
/// itself). `with_seed` re-derives every dependent sub-seed (impairments,
/// churn, flood, drift, incast), so the variants sample the whole
/// pipeline's seed sensitivity.
fn seed_variant(s: &Scenario, i: usize) -> Scenario {
    if i == 0 {
        return s.clone();
    }
    s.clone().with_seed(mix64(s.seed ^ (0x5eed_ba5e + i as u64)))
}

/// Runs the standard matrix under `mode`, `n_seeds` derived runs per
/// scenario, fanned out on the parallel trial executor. `quick` (CI smoke)
/// pairs the reduced workload sizing with the scaled-down data plane; the
/// full matrix runs the paper's §5.2 data-plane parameters.
///
/// Work items are `(scenario, seed)` pairs mapped by index with ordered
/// collection, so the output is byte-identical at any worker count.
pub fn run_matrix_seeds(quick: bool, mode: ReplayMode, n_seeds: usize) -> MatrixRun {
    let n_seeds = n_seeds.max(1);
    let matrix = chm_scenarios::standard_matrix(quick);
    let flat: Vec<ScenarioResult> = run_trials(matrix.len() * n_seeds, |idx| {
        let s = seed_variant(&matrix[idx / n_seeds], idx % n_seeds);
        // Seed variants re-derive the data-plane hash seeds too: the band
        // measures the whole pipeline's seed sensitivity, not just the
        // workload's.
        run_with_config(&s, mode, config_for(quick, s.seed))
    });
    let mut results = Vec::with_capacity(matrix.len());
    let mut bands = Vec::with_capacity(matrix.len());
    for chunk in flat.chunks(n_seeds) {
        results.push(chunk[0].clone());
        if n_seeds > 1 {
            bands.push(SeedBand { results: chunk.to_vec() });
        }
    }
    MatrixRun { results, bands, n_seeds }
}

/// Runs the standard matrix under `mode`, one run per scenario (the golden
/// configuration).
pub fn run_matrix(quick: bool, mode: ReplayMode) -> Vec<ScenarioResult> {
    run_matrix_seeds(quick, mode, 1).results
}

/// Prints the matrix scorecard as an aligned table.
pub fn print_table(run: &MatrixRun) {
    println!("\n== scenarios — adversarial matrix ==");
    println!(
        "{:>17} {:>7} {:>8} {:>8} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "epochs", "mean_f1", "mean_are", "decode", "loc@1", "loc@3", "lr_f1",
        "fr_f1", "qdepth", "victims"
    );
    for (i, r) in run.results.iter().enumerate() {
        let victims: usize = r.epochs.iter().map(|e| e.true_victims).sum();
        let band = if run.n_seeds > 1 {
            let (_, sd) = run.bands[i].stats(|r| r.mean_f1);
            format!(" ±{sd:.3}")
        } else {
            String::new()
        };
        println!(
            "{:>17} {:>7} {:>8.4} {:>8.4} {:>7.2} {:>7.2} {:>7.2} {:>8.4} {:>8.4} {:>8.1} {:>8}{}",
            r.name,
            r.epochs.len(),
            r.mean_f1,
            r.mean_are,
            r.decode_success,
            r.mean_loc_top1,
            r.mean_loc_top3,
            r.lr_mean_f1,
            r.fr_mean_f1,
            r.mean_qdepth_max,
            victims,
            band,
        );
    }
}

/// Renders the matrix as the `SCENARIOS.json` document.
pub fn to_json(run: &MatrixRun, quick: bool) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n  \"id\": \"scenarios\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"seeds\": {},\n", run.n_seeds));
    out.push_str("  \"scenarios\": [\n");
    let results = &run.results;
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(&r.name)));
        out.push_str(&format!("      \"epochs\": {},\n", r.epochs.len()));
        out.push_str(&format!("      \"mean_f1\": {},\n", json_number(r.mean_f1)));
        out.push_str(&format!("      \"mean_are\": {},\n", json_number(r.mean_are)));
        out.push_str(&format!(
            "      \"decode_success\": {},\n",
            json_number(r.decode_success)
        ));
        out.push_str(&format!(
            "      \"report_delivery\": {},\n",
            json_number(r.report_delivery)
        ));
        out.push_str(&format!(
            "      \"mean_loc_top1\": {},\n",
            json_number(r.mean_loc_top1)
        ));
        out.push_str(&format!(
            "      \"mean_loc_top3\": {},\n",
            json_number(r.mean_loc_top3)
        ));
        out.push_str("      \"lossradar\": {");
        out.push_str(&format!(
            "\"mean_f1\": {}, \"decode_success\": {}, \"mean_loc_top1\": {}, \
             \"mean_loc_top3\": {}}},\n",
            json_number(r.lr_mean_f1),
            json_number(r.lr_decode_success),
            json_number(r.lr_mean_top1),
            json_number(r.lr_mean_top3),
        ));
        out.push_str("      \"flowradar\": {");
        out.push_str(&format!(
            "\"mean_f1\": {}, \"decode_success\": {}, \"mean_loc_top1\": {}, \
             \"mean_loc_top3\": {}}},\n",
            json_number(r.fr_mean_f1),
            json_number(r.fr_decode_success),
            json_number(r.fr_mean_top1),
            json_number(r.fr_mean_top3),
        ));
        out.push_str(&format!(
            "      \"mean_qdepth_max\": {},\n",
            json_number(r.mean_qdepth_max)
        ));
        if run.n_seeds > 1 {
            let b = &run.bands[i];
            let (f1_m, f1_s) = b.stats(|r| r.mean_f1);
            let (l1_m, l1_s) = b.stats(|r| r.mean_loc_top1);
            let (l3_m, l3_s) = b.stats(|r| r.mean_loc_top3);
            out.push_str("      \"seed_band\": {");
            out.push_str(&format!(
                "\"n\": {}, \"f1_mean\": {}, \"f1_std\": {}, \
                 \"loc_top1_mean\": {}, \"loc_top1_std\": {}, \
                 \"loc_top3_mean\": {}, \"loc_top3_std\": {}}},\n",
                run.n_seeds,
                json_number(f1_m),
                json_number(f1_s),
                json_number(l1_m),
                json_number(l1_s),
                json_number(l3_m),
                json_number(l3_s),
            ));
        }
        out.push_str("      \"per_epoch\": [\n");
        for (j, e) in r.epochs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"epoch\": {}, \"f1\": {}, \"precision\": {}, \
                 \"recall\": {}, \"are\": {}, \"decode_ok\": {}, \
                 \"reports\": {}, \"true_victims\": {}, \
                 \"reported_victims\": {}, \"flows\": {}, \"packets\": {}, \
                 \"loc_top1\": {}, \"loc_top3\": {}, \"lr_f1\": {}, \
                 \"lr_decode_ok\": {}, \"lr_top1\": {}, \"lr_top3\": {}, \
                 \"fr_f1\": {}, \"fr_decode_ok\": {}, \"fr_top1\": {}, \
                 \"fr_top3\": {}, \"qdepth_max\": {}}}{}\n",
                e.epoch,
                json_number(e.f1),
                json_number(e.precision),
                json_number(e.recall),
                json_number(e.are),
                e.decode_ok,
                e.reports_received,
                e.true_victims,
                e.reported_victims,
                e.flows,
                e.packets_sent,
                json_number(e.loc_top1),
                json_number(e.loc_top3),
                json_number(e.lr_f1),
                e.lr_decode_ok,
                json_number(e.lr_top1),
                json_number(e.lr_top3),
                json_number(e.fr_f1),
                e.fr_decode_ok,
                json_number(e.fr_top1),
                json_number(e.fr_top3),
                json_number(e.qdepth_max),
                if j + 1 < r.epochs.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `SCENARIOS.json` under `dir`.
pub fn write_json(run: &MatrixRun, quick: bool, dir: impl AsRef<Path>) -> io::Result<()> {
    fs::create_dir_all(&dir)?;
    fs::write(dir.as_ref().join("SCENARIOS.json"), to_json(run, quick))
}

/// The scenario-level fields the threshold gate reads from a golden file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoldenScenario {
    /// Scenario name.
    pub name: String,
    /// Committed mean F1.
    pub mean_f1: f64,
    /// Committed localization top-3 hit rate (0 for pre-localization
    /// goldens that lack the field).
    pub mean_loc_top3: f64,
}

/// Minimal extractor for the golden's scenario-level lines. The repo has no
/// JSON parser by design; this reads exactly the format [`to_json`] emits —
/// scenario-level fields are the 6-space-indented `"key": value,` lines
/// between `"name"` markers (per-epoch lines are indented deeper and never
/// start with a quoted key at that indent).
pub fn parse_golden(json: &str) -> Vec<GoldenScenario> {
    let mut out: Vec<GoldenScenario> = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.strip_prefix("      \"") else { continue };
        let Some((key, value)) = rest.split_once("\": ") else { continue };
        let value = value.trim_end().trim_end_matches(',');
        match key {
            "name" => out.push(GoldenScenario {
                name: value.trim_matches('"').to_string(),
                ..GoldenScenario::default()
            }),
            "mean_f1" => {
                if let (Some(g), Ok(v)) = (out.last_mut(), value.parse()) {
                    g.mean_f1 = v;
                }
            }
            "mean_loc_top3" => {
                if let (Some(g), Ok(v)) = (out.last_mut(), value.parse()) {
                    g.mean_loc_top3 = v;
                }
            }
            _ => {}
        }
    }
    out
}

/// The threshold gate: compares a fresh run against a committed golden and
/// returns one message per regression beyond [`CHECK_TOLERANCE`] (empty =
/// gate passes). New scenarios (absent from the golden) are allowed;
/// scenarios *removed* from the matrix are flagged.
pub fn check_regressions(golden_json: &str, results: &[ScenarioResult]) -> Vec<String> {
    let golden = parse_golden(golden_json);
    let mut problems = Vec::new();
    if golden.is_empty() {
        problems.push("golden file has no scenarios (wrong file?)".to_string());
        return problems;
    }
    for g in &golden {
        let Some(r) = results.iter().find(|r| r.name == g.name) else {
            problems.push(format!("scenario '{}' disappeared from the matrix", g.name));
            continue;
        };
        if r.mean_f1 < g.mean_f1 - CHECK_TOLERANCE {
            problems.push(format!(
                "{}: mean_f1 regressed {:.4} -> {:.4} (tolerance {})",
                g.name, g.mean_f1, r.mean_f1, CHECK_TOLERANCE
            ));
        }
        if r.mean_loc_top3 < g.mean_loc_top3 - CHECK_TOLERANCE {
            problems.push(format!(
                "{}: mean_loc_top3 regressed {:.4} -> {:.4} (tolerance {})",
                g.name, g.mean_loc_top3, r.mean_loc_top3, CHECK_TOLERANCE
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use chm_scenarios::run;

    fn tiny_run() -> MatrixRun {
        let s = chm_scenarios::Scenario::builder("tiny")
            .seed(1)
            .flows(120)
            .epochs(2)
            .duplication(0.1)
            .build();
        MatrixRun {
            results: vec![run(&s, ReplayMode::Burst)],
            bands: Vec::new(),
            n_seeds: 1,
        }
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        // A tiny ad-hoc matrix keeps this a unit test, not a benchmark.
        let j1 = to_json(&tiny_run(), true);
        let j2 = to_json(&tiny_run(), true);
        assert_eq!(j1, j2, "same seed must render byte-identical JSON");
        assert!(j1.contains("\"name\": \"tiny\""));
        assert!(j1.contains("\"per_epoch\""));
        assert!(j1.contains("\"mean_loc_top3\""));
        assert!(j1.contains("\"lossradar\""));
        // Balanced braces/brackets (cheap well-formedness check; the repo
        // has no JSON parser by design).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j1.matches(open).count(),
                j1.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn golden_roundtrip_and_gate() {
        let r = tiny_run();
        let json = to_json(&r, true);
        let golden = parse_golden(&json);
        assert_eq!(golden.len(), 1);
        assert_eq!(golden[0].name, "tiny");
        assert!((golden[0].mean_f1 - r.results[0].mean_f1).abs() < 1e-12);
        assert!(
            (golden[0].mean_loc_top3 - r.results[0].mean_loc_top3).abs() < 1e-12
        );
        // Fresh run vs its own golden: gate passes.
        assert!(check_regressions(&json, &r.results).is_empty());
        // A doctored regression fails the gate.
        let mut worse = r.results.clone();
        worse[0].mean_f1 -= 0.1;
        let problems = check_regressions(&json, &worse);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("mean_f1 regressed"));
        // A missing scenario fails the gate.
        let problems = check_regressions(&json, &[]);
        assert!(problems[0].contains("disappeared"));
        // Wobble inside the tolerance passes.
        let mut wobble = r.results.clone();
        wobble[0].mean_f1 -= 0.01;
        wobble[0].mean_loc_top3 -= 0.01;
        assert!(check_regressions(&json, &wobble).is_empty());
    }

    #[test]
    fn seed_variant_zero_is_the_identity() {
        let m = chm_scenarios::standard_matrix(true);
        let v = seed_variant(&m[0], 0);
        assert_eq!(v.seed, m[0].seed);
        let v1 = seed_variant(&m[0], 1);
        assert_ne!(v1.seed, m[0].seed);
        assert_eq!(v1.name, m[0].name);
    }

    #[test]
    fn seed_band_stats_are_mean_and_population_sigma() {
        let mut a = tiny_run().results.remove(0);
        let mut b = a.clone();
        a.mean_f1 = 0.8;
        b.mean_f1 = 0.6;
        let band = SeedBand { results: vec![a, b] };
        let (m, s) = band.stats(|r| r.mean_f1);
        assert!((m - 0.7).abs() < 1e-12);
        assert!((s - 0.1).abs() < 1e-12);
    }
}
