//! Result recording: aligned stdout tables plus JSON rows under `results/`,
//! so EXPERIMENTS.md can cite machine-readable numbers.

use serde::Serialize;
use std::fs;
use std::path::Path;

/// One experiment's output: an id (e.g. "fig04a"), axis labels, and rows.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id matching DESIGN.md's index (e.g. `fig04a`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers; first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints an aligned table to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        let width = 14;
        let header: Vec<String> =
            self.columns.iter().map(|c| format!("{c:>width$}")).collect();
        println!("{}", header.join(" "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                        format!("{v:>width$.3e}")
                    } else {
                        format!("{v:>width$.4}")
                    }
                })
                .collect();
            println!("{}", cells.join(" "));
        }
    }

    /// Writes the table as JSON under `results/<id>.json` (creating the
    /// directory if needed) and prints it.
    pub fn finish(&self) {
        self.print();
        if let Err(e) = self.write_json("results") {
            eprintln!("warning: could not write results json: {e}");
        }
    }

    /// Writes the JSON record to `<dir>/<id>.json`.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{}.json", self.id));
        fs::write(path, serde_json::to_vec_pretty(self).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("test01", "a test", &["x", "y"]);
        t.push(vec![1.0, 2.0]);
        t.push(vec![3.0, 4.5]);
        assert_eq!(t.rows.len(), 2);
        let dir = std::env::temp_dir().join("chm_bench_test");
        t.write_json(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("test01.json")).unwrap();
        assert!(s.contains("\"id\": \"test01\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", "t", &["a", "b"]);
        t.push(vec![1.0]);
    }
}
