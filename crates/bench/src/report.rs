//! Result recording: aligned stdout tables plus JSON rows under `results/`,
//! so EXPERIMENTS.md can cite machine-readable numbers.
//!
//! JSON is emitted by hand (the offline build has no serde): the schema is
//! the fixed four-field record below, so a small writer is all we need.

use std::fs;
use std::path::Path;

/// One experiment's output: an id (e.g. "fig04a"), axis labels, and rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id matching DESIGN.md's index (e.g. `fig04a`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers; first column is the x-axis.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints an aligned table to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        let width = 14;
        let header: Vec<String> =
            self.columns.iter().map(|c| format!("{c:>width$}")).collect();
        println!("{}", header.join(" "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                        format!("{v:>width$.3e}")
                    } else {
                        format!("{v:>width$.4}")
                    }
                })
                .collect();
            println!("{}", cells.join(" "));
        }
    }

    /// Writes the table as JSON under `results/<id>.json` (creating the
    /// directory if needed) and prints it.
    pub fn finish(&self) {
        self.print();
        if let Err(e) = self.write_json("results") {
            eprintln!("warning: could not write results json: {e}");
        }
    }

    /// Writes the JSON record to `<dir>/<id>.json`.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{}.json", self.id));
        fs::write(path, self.to_json())
    }

    /// Renders the table as a pretty-printed JSON object.
    fn to_json(&self) -> String {
        let columns = self
            .columns
            .iter()
            .map(|c| json_string(c))
            .collect::<Vec<_>>()
            .join(", ");
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let cells = row.iter().map(|v| json_number(*v)).collect::<Vec<_>>().join(", ");
                format!("    [{cells}]")
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"columns\": [{}],\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_string(&self.id),
            json_string(&self.title),
            columns,
            rows
        )
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf — map to null).
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("test01", "a test", &["x", "y"]);
        t.push(vec![1.0, 2.0]);
        t.push(vec![3.0, 4.5]);
        assert_eq!(t.rows.len(), 2);
        let dir = std::env::temp_dir().join("chm_bench_test");
        t.write_json(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("test01.json")).unwrap();
        assert!(s.contains("\"id\": \"test01\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", "t", &["a", "b"]);
        t.push(vec![1.0]);
    }
}
