//! **`chm-bench profile`** — a per-stage time/allocation breakdown of one
//! full pipeline epoch, measured with the `chm_obs` span profiler over the
//! sharded engine and the profiled controller entry points.
//!
//! The harness drives the serve/soak congested preset through a hand-rolled
//! epoch loop (replay → collect → analyze → reconfigure → localize) so every
//! stage the ISSUE names gets its own span: the engine's fate `prologue`,
//! `phase_a/shard_{i}` / `phase_b/shard_{i}`, the fragment `merge`
//! (absorbed from [`ShardedReplay::last_profile`]), the controller's
//! `analyze/decode/{edge_i,delta_hl,delta_ll,sparse,loaded}` split, and
//! `localize`. Alongside the spans it attributes **global allocation
//! counts** to the five coarse stages via the injected counter from the
//! binary's counting allocator.
//!
//! Two artifacts per run:
//!
//! * `PROFILE.json` — the full breakdown: span counts, wall seconds,
//!   mean µs, per-stage allocations. Wall numbers vary by machine.
//! * `PROFILE_counts.json` — the **deterministic columns only**: span
//!   counts and packet totals, no times, no allocations, no worker count.
//!   A pure function of `(seed, epochs, flows, shards)` — byte-identical
//!   across runs and worker counts, which the `obs-smoke` CI job `cmp`s
//!   against the committed golden.
//!
//! The clock is injected ([`chm_obs`] discipline): the binary passes
//! [`wall_clock`], tests pass `&|| 0.0` and get byte-identical full
//! reports too.

use std::io;
use std::time::Instant;

use chamelemon::CollectedGroup;
use chm_common::FiveTuple;
use chm_netsim::{ShardedReplay, Sharding};
use chm_obs::SpanProfiler;
use chm_scenarios::{Scenario, ScenarioStack};

use crate::report::{json_number, json_string};

/// The coarse stages allocations are attributed to, in emission order.
pub const STAGES: [&str; 5] = ["replay", "collect", "analyze", "reconfigure", "localize"];

/// Profile sizing.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Measured epochs.
    pub epochs: u64,
    /// Flows per epoch (the congested preset's sizing).
    pub flows: usize,
    /// Shard count — **fixed** across worker counts so the per-shard span
    /// paths (`phase_a/shard_{i}`) are layout-independent.
    pub shards: usize,
    /// Worker threads driving the shards (does not affect the counts file).
    pub workers: usize,
    /// Master scenario seed.
    pub seed: u64,
}

impl ProfileConfig {
    /// The full 200-epoch profile.
    pub fn full() -> Self {
        ProfileConfig { epochs: 200, flows: 600, shards: 4, workers: 1, seed: 0x0b5 }
    }

    /// The CI-smoke sizing.
    pub fn quick() -> Self {
        ProfileConfig { epochs: 40, ..Self::full() }
    }
}

/// Everything one profile run measured.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// The sizing that produced this report.
    pub config: ProfileConfig,
    /// The accumulated span tree over all measured epochs.
    pub spans: SpanProfiler,
    /// Global allocations attributed to each coarse stage, [`STAGES`] order.
    pub stage_allocs: [u64; 5],
    /// Packets replayed across all epochs.
    pub packets: u64,
    /// Epochs whose decode fully succeeded.
    pub decode_ok_epochs: u64,
}

/// The profiled workload: the serve CLI's `congested` preset (same shape
/// as the soak's), so profile numbers describe the configuration the
/// service runs.
fn profile_scenario(cfg: &ProfileConfig) -> Scenario {
    Scenario::builder("profile")
        .seed(cfg.seed)
        .flows(cfg.flows)
        .congestion()
        .queue_model(8)
        .microburst(0.3, 2)
        .slow_drain_tor(1, 0.55)
        .build()
}

/// A real wall clock for the binary (the workspace's one allowed timing
/// source outside `chm-serve`'s main loop). Tests inject `&|| 0.0` instead.
pub fn wall_clock() -> impl Fn() -> f64 + Sync {
    let t0 = Instant::now();
    move || t0.elapsed().as_secs_f64()
}

/// Runs the profile. `clock` drives every span (injected; zero clock makes
/// the whole report deterministic); `alloc_count` reads the process-global
/// allocation counter (`&|| 0` zeroes the allocation columns).
pub fn run(
    cfg: &ProfileConfig,
    clock: &(dyn Fn() -> f64 + Sync),
    alloc_count: &dyn Fn() -> u64,
) -> ProfileReport {
    let s = profile_scenario(cfg);
    let mut stack = ScenarioStack::new(&s);
    let mut eng: ShardedReplay<FiveTuple> =
        ShardedReplay::new(Sharding { shards: cfg.shards, workers: cfg.workers });
    let base = s.base_trace();
    let mut spans = SpanProfiler::new();
    let mut span_clock = || clock();
    let mut stage_allocs = [0u64; 5];
    let mut packets = 0u64;
    let mut decode_ok_epochs = 0u64;
    for _ in 0..cfg.epochs {
        let epoch = stack.simulator.current_epoch();
        let trace = s.trace_for_epoch(&base, epoch);
        let plan = s.plan_for_epoch(&trace, epoch);
        spans.enter("epoch", &mut span_clock);

        // Replay through the sharded engine; its per-shard span tree
        // (prologue, phase_a/shard_i, phase_b/shard_i, merge) is absorbed
        // under the open `epoch` span. Shard count is fixed, so the paths
        // are identical at any worker count.
        let a0 = alloc_count();
        let (report, _timing) = eng.run_epoch_burst_scenario_timed(
            &mut stack.simulator,
            &trace,
            &plan,
            &s.impairments,
            &mut stack.edges,
            clock,
        );
        spans.absorb(eng.last_profile(), &[]);
        stage_allocs[0] += alloc_count() - a0;

        // Collect: take the ended-timestamp groups off every edge. The
        // congested preset has a clean control channel, so all reports
        // arrive — profiling measures the all-delivered fast path.
        let a0 = alloc_count();
        let t0 = clock();
        let ts_bit = (report.epoch & 1) as u8;
        let collected: Vec<CollectedGroup<FiveTuple>> =
            stack.edges.iter_mut().map(|e| e.take_group(ts_bit)).collect();
        spans.record(&["collect"], clock() - t0);
        stage_allocs[1] += alloc_count() - a0;

        let a0 = alloc_count();
        let analysis =
            stack.controller.analyze_epoch_profiled(&collected, &mut spans, &mut span_clock);
        stage_allocs[2] += alloc_count() - a0;

        let a0 = alloc_count();
        let t0 = clock();
        let staged = stack.controller.reconfigure(&analysis);
        for e in &mut stack.edges {
            e.stage_runtime(staged);
            e.flip(ts_bit);
        }
        spans.record(&["reconfigure"], clock() - t0);
        stage_allocs[3] += alloc_count() - a0;

        let a0 = alloc_count();
        stack
            .controller
            .localize_with_telemetry_profiled(
                &analysis,
                &report.queue_depth,
                &mut spans,
                &mut span_clock,
            )
            .expect("stack always enables localization");
        stage_allocs[4] += alloc_count() - a0;

        spans.exit(&mut span_clock);
        packets += report.total_sent();
        let rt = analysis.runtime;
        decode_ok_epochs += u64::from(
            analysis.switches_reporting > 0
                && analysis.hh_decode_ok
                && (rt.partition.m_hl == 0 || analysis.hl_flowset.is_some())
                && (rt.partition.m_ll == 0 || analysis.ll_flowset.is_some()),
        );
    }
    assert!(spans.balanced(), "profile epochs leave no span open");
    ProfileReport { config: cfg.clone(), spans, stage_allocs, packets, decode_ok_epochs }
}

impl ProfileReport {
    /// Human-readable per-stage table, deepest spans indented by path.
    pub fn print(&self) {
        println!(
            "profile: {} epochs, {} flows, {} shards x {} workers, seed {:#x}",
            self.config.epochs,
            self.config.flows,
            self.config.shards,
            self.config.workers,
            self.config.seed
        );
        println!("  {:<40} {:>10} {:>12} {:>10}", "span", "count", "total_s", "mean_us");
        for (path, count, total) in self.spans.flatten() {
            let mean_us = if count == 0 { 0.0 } else { total / count as f64 * 1e6 };
            println!("  {path:<40} {count:>10} {total:>12.6} {mean_us:>10.2}");
        }
        println!("  allocations by stage:");
        for (name, allocs) in STAGES.iter().zip(self.stage_allocs) {
            println!("    {name:<12} {allocs}");
        }
        println!(
            "  packets {} decode_ok {}/{}",
            self.packets, self.decode_ok_epochs, self.config.epochs
        );
    }

    /// The full report as JSON: spans (count + wall seconds + mean µs),
    /// per-stage allocations, totals. Stable key order (flatten order is
    /// BTreeMap-sorted); wall and allocation columns vary by machine.
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self
            .spans
            .flatten()
            .iter()
            .map(|(path, count, total)| {
                let mean_us = if *count == 0 { 0.0 } else { total / *count as f64 * 1e6 };
                format!(
                    "    {}: {{\"count\": {}, \"total_s\": {}, \"mean_us\": {}}}",
                    json_string(path),
                    count,
                    json_number(*total),
                    json_number(mean_us)
                )
            })
            .collect();
        let allocs: Vec<String> = STAGES
            .iter()
            .zip(self.stage_allocs)
            .map(|(name, a)| format!("    {}: {}", json_string(name), a))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"epochs\": {},\n",
                "  \"flows\": {},\n",
                "  \"shards\": {},\n",
                "  \"workers\": {},\n",
                "  \"seed\": {},\n",
                "  \"packets\": {},\n",
                "  \"decode_ok_epochs\": {},\n",
                "  \"spans\": {{\n{}\n  }},\n",
                "  \"allocations\": {{\n{}\n  }}\n",
                "}}\n"
            ),
            self.config.epochs,
            self.config.flows,
            self.config.shards,
            self.config.workers,
            self.config.seed,
            self.packets,
            self.decode_ok_epochs,
            spans.join(",\n"),
            allocs.join(",\n"),
        )
    }

    /// The deterministic columns only: span **counts** and packet totals —
    /// no times, no allocations, and no worker count (the one config knob
    /// that must not change the output). This is the golden-gated file.
    pub fn counts_json(&self) -> String {
        let counts: Vec<String> = self
            .spans
            .flatten()
            .iter()
            .map(|(path, count, _)| format!("    {}: {}", json_string(path), count))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"epochs\": {},\n",
                "  \"flows\": {},\n",
                "  \"shards\": {},\n",
                "  \"seed\": {},\n",
                "  \"packets\": {},\n",
                "  \"decode_ok_epochs\": {},\n",
                "  \"span_counts\": {{\n{}\n  }}\n",
                "}}\n"
            ),
            self.config.epochs,
            self.config.flows,
            self.config.shards,
            self.config.seed,
            self.packets,
            self.decode_ok_epochs,
            counts.join(",\n"),
        )
    }

    /// Writes `PROFILE[_quick].json` + `PROFILE_counts[_quick].json` under
    /// `out_dir`.
    pub fn write_json(&self, out_dir: &str, quick: bool) -> io::Result<()> {
        std::fs::create_dir_all(out_dir)?;
        let suffix = if quick { "_quick" } else { "" };
        std::fs::write(format!("{out_dir}/PROFILE{suffix}.json"), self.to_json())?;
        std::fs::write(format!("{out_dir}/PROFILE_counts{suffix}.json"), self.counts_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(workers: usize) -> ProfileConfig {
        ProfileConfig { epochs: 3, flows: 120, shards: 2, workers, seed: 7 }
    }

    #[test]
    fn zero_clock_report_is_byte_identical_across_runs_and_workers() {
        let runs: Vec<ProfileReport> = [1, 1, 2]
            .iter()
            .map(|&w| run(&tiny(w), &|| 0.0, &|| 0))
            .collect();
        // Double run: the whole report (times all 0.0, allocs all 0).
        assert_eq!(runs[0].to_json(), runs[1].to_json());
        // Worker count: everything but the config echo is identical under
        // the zero clock, and the counts file ignores `workers` entirely.
        assert_eq!(
            runs[0].to_json().replace("\"workers\": 1", "\"workers\": 2"),
            runs[2].to_json()
        );
        assert_eq!(runs[0].counts_json(), runs[2].counts_json());
        assert!(!runs[0].counts_json().contains("workers"));
    }

    #[test]
    fn span_tree_covers_every_pipeline_stage() {
        let r = run(&tiny(1), &|| 0.0, &|| 0);
        let epochs = r.config.epochs;
        assert_eq!(r.spans.get(&["epoch"]), Some((epochs, 0.0)));
        for path in [
            ["epoch", "prologue"].as_slice(),
            &["epoch", "phase_a", "shard_0"],
            &["epoch", "phase_a", "shard_1"],
            &["epoch", "phase_b", "shard_1"],
            &["epoch", "merge"],
            &["epoch", "collect"],
            &["epoch", "analyze"],
            &["epoch", "reconfigure"],
            &["epoch", "localize"],
        ] {
            let (count, total) = r.spans.get(path).unwrap_or_else(|| {
                panic!("span {path:?} missing from the profile tree")
            });
            assert!(count >= epochs, "span {path:?} count {count} < {epochs}");
            assert_eq!(total, 0.0, "zero clock must keep {path:?} at 0.0");
        }
        // The decode strategy split is present (sparse or loaded fired;
        // only leaves carry counts — `decode` itself is a pure parent).
        let strategy_decodes = ["sparse", "loaded"]
            .iter()
            .filter_map(|s| r.spans.get(&["epoch", "analyze", "decode", s]))
            .map(|(c, _)| c)
            .sum::<u64>();
        assert!(strategy_decodes > 0, "no decode spans recorded");
        assert!(r.packets > 0);
    }

    #[test]
    fn real_clock_fills_durations_without_changing_counts() {
        let mut t = 0.0;
        let ticking = std::sync::Mutex::new(move || {
            t += 1e-3;
            t
        });
        let timed = run(&tiny(1), &move || (ticking.lock().expect("clock lock"))(), &|| 0);
        let zero = run(&tiny(1), &|| 0.0, &|| 0);
        assert_eq!(timed.counts_json(), zero.counts_json());
        let (_, epoch_total) = timed.spans.get(&["epoch"]).expect("epoch span");
        assert!(epoch_total > 0.0, "ticking clock must produce nonzero durations");
    }
}
