//! The `chm-bench perf` hot-path benchmark: packets/sec through the
//! data-plane packet engine and decode latency at the controller, measured
//! against a frozen **legacy replica** of the pre-fast-path implementation.
//!
//! The legacy replica reproduces, operation for operation, what the packet
//! engine did before the fast-path rework:
//!
//! * range reduction by `u64 %` on every hash ([`PairwiseHash::index_mod`]),
//! * the SplitMix64 key mix re-run inside **every** per-array hash call,
//! * epoch snapshots taken by deep-cloning the sketch group, and
//! * decoding by cloning the whole sketch first.
//!
//! Keeping the baseline in-tree makes the speedup self-measuring: every run
//! of `chm-bench perf` re-times both paths on the same machine and records
//! both numbers in `results/BENCH_hotpath.json`, so perf regressions show
//! up as a shrinking ratio rather than a stale anchor. Run `--quick` for
//! the CI smoke datapoint.

use crate::report::Table;
use chamelemon::config::{DataPlaneConfig, RuntimeConfig};
use chamelemon::dataplane::{EdgeDataPlane, Hierarchy};
use chm_common::hash::{mix64, HashFamily, PairwiseHash};
use chm_common::prime::{add_mod, signed_to_mod, sub_mod, MERSENNE_P};
use chm_common::{FiveTuple, FlowId};
use chm_fermat::{DecodeScratch, FermatConfig, FermatSketch};
use chm_netsim::sim::EpochReport;
use chm_netsim::{
    KaryFatTree, ShardedReplay, Sharding, SimConfig, Simulator, SiteArray, SwitchId, Topology,
};
use chm_tower::TowerConfig;
use chm_workloads::{testbed_trace, LossPlan, Trace, VictimSelection, WorkloadKind};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::time::Instant;

// ---------------------------------------------------------------------
// Legacy replica: the pre-fast-path packet engine, frozen for comparison.
// The arithmetic primitives are pinned copies of the pre-PR versions —
// the shared `chm_common::prime` functions have since been optimized, and
// a baseline that silently inherits those wins would under-report the
// speedup.
// ---------------------------------------------------------------------

/// The pre-PR `reduce128`: three 61-bit limbs summed in 128-bit arithmetic.
#[inline]
fn legacy_reduce128(x: u128) -> u64 {
    let lo = (x & MERSENNE_P as u128) as u64;
    let mid = ((x >> 61) & MERSENNE_P as u128) as u64;
    let hi = (x >> 122) as u64;
    let mut r = lo as u128 + mid as u128 + hi as u128;
    if r >= MERSENNE_P as u128 {
        r -= MERSENNE_P as u128;
    }
    if r >= MERSENNE_P as u128 {
        r -= MERSENNE_P as u128;
    }
    r as u64
}

#[inline]
fn legacy_mul_mod(a: u64, b: u64) -> u64 {
    legacy_reduce128(a as u128 * b as u128)
}

#[inline]
fn legacy_reduce64(x: u64) -> u64 {
    let r = (x >> 61) + (x & MERSENNE_P);
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

/// The pre-PR pairwise hash evaluation: key re-mixed on **every** call,
/// `mod m` range reduction. `(a, b)` are the hash function's coefficients,
/// precomputed at construction — exactly what the old `PairwiseHash` held.
#[inline]
fn legacy_index(a: u64, b: u64, key: u64, m: usize) -> usize {
    (legacy_raw(a, b, key) % m as u64) as usize
}

#[inline]
fn legacy_raw(a: u64, b: u64, key: u64) -> u64 {
    let x = legacy_reduce64(mix64(key));
    let ax = legacy_mul_mod(a, x);
    let s = ax + b;
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// Recovers a hash function's `(a, b)` coefficients (private in
/// `chm_common`) by probing: `raw_premixed(0) = b` and
/// `raw_premixed(1) = a + b (mod p)`. Used once per hash function at
/// replica construction, never in a timed loop.
fn legacy_coeffs(h: &PairwiseHash) -> (u64, u64) {
    let b = h.raw_premixed(0);
    let a_plus_b = h.raw_premixed(1);
    let a = if a_plus_b >= b { a_plus_b - b } else { a_plus_b + MERSENNE_P - b };
    (a, b)
}

/// Coefficients of every function in a family, precomputed.
fn family_coeffs(fam: &HashFamily) -> Vec<(u64, u64)> {
    fam.as_slice().iter().map(legacy_coeffs).collect()
}

/// The pre-PR modular inverse: always the 61-squaring exponentiation.
fn legacy_inv_mod(a: u64) -> Option<u64> {
    let a = legacy_reduce64(a);
    if a == 0 {
        return None;
    }
    let mut base = a;
    let mut e = MERSENNE_P - 2;
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = legacy_mul_mod(acc, base);
        }
        base = legacy_mul_mod(base, base);
        e >>= 1;
    }
    Some(acc)
}

/// TowerSketch as it was: per-level `mod` indexing, key re-mixed per level.
struct LegacyTower {
    cfg: TowerConfig,
    coeffs: Vec<(u64, u64)>,
    counters: Vec<Vec<u32>>,
}

impl LegacyTower {
    fn new(cfg: TowerConfig) -> Self {
        let hashes = HashFamily::new(cfg.seed, cfg.levels.len());
        let counters = cfg.levels.iter().map(|l| vec![0u32; l.width]).collect();
        LegacyTower { coeffs: family_coeffs(&hashes), cfg, counters }
    }

    #[inline]
    fn insert_and_query(&mut self, key: u64) -> u64 {
        let mut min = u64::MAX;
        for (i, level) in self.cfg.levels.iter().enumerate() {
            // The legacy cost model: one full hash (mix + pairwise) plus a
            // 64-bit integer division, per level.
            let (a, b) = self.coeffs[i];
            let j = legacy_index(a, b, key, level.width);
            let sat = level.saturation() as u32;
            let c = &mut self.counters[i][j];
            if *c < sat {
                *c += 1;
            }
            let v = if *c >= sat { u64::MAX } else { *c as u64 };
            min = min.min(v);
        }
        min
    }
}

/// FermatSketch as it was: per-array `mod` indexing, key re-mixed per
/// array, decode by cloning the bucket state.
///
/// Public so the hot-path equivalence tests can assert that the fast-range
/// engine decodes the **identical flowset** the `%`-based engine did — the
/// range reduction remaps which bucket each flow lands in, but the sketch's
/// decoded contents are unchanged.
#[derive(Clone)]
pub struct LegacyFermat<F: FlowId> {
    cfg: FermatConfig,
    coeffs: Vec<(u64, u64)>,
    counts: Vec<i64>,
    idsums: Vec<u64>,
    _f: std::marker::PhantomData<F>,
}

impl<F: FlowId> LegacyFermat<F> {
    /// Creates an empty legacy sketch (no fingerprint support — the
    /// comparison workloads don't use fingerprints).
    pub fn new(cfg: FermatConfig) -> Self {
        let n = cfg.total_buckets();
        let hashes = HashFamily::new(cfg.seed, cfg.arrays);
        LegacyFermat {
            cfg,
            coeffs: family_coeffs(&hashes),
            counts: vec![0; n],
            idsums: vec![0; n * F::FRAGMENTS],
            _f: std::marker::PhantomData,
        }
    }

    /// Legacy insert: key re-mixed per array, `mod m` range reduction.
    #[inline]
    pub fn insert_weighted(&mut self, f: &F, weight: i64) {
        let key = f.key64();
        let wmod = signed_to_mod(weight);
        let m = self.cfg.buckets_per_array;
        for i in 0..self.cfg.arrays {
            let (a, bb) = self.coeffs[i];
            let j = legacy_index(a, bb, key, m);
            let b = i * m + j;
            self.counts[b] += weight;
            for k in 0..F::FRAGMENTS {
                let lane = b * F::FRAGMENTS + k;
                let add = legacy_mul_mod(wmod, f.fragment(k));
                self.idsums[lane] = add_mod(self.idsums[lane], add);
            }
        }
    }

    /// Legacy unit insert.
    #[inline]
    pub fn insert(&mut self, f: &F) {
        self.insert_weighted(f, 1);
    }

    /// The legacy decode: clone the whole sketch, then peel in place with
    /// `mod` indexing and a per-flow key re-mix on every verification.
    /// Returns `(flowset, success)`.
    pub fn decode_cloned(&self) -> (HashMap<F, i64>, bool) {
        self.clone().peel_in_place()
    }

    fn peel_in_place(mut self) -> (HashMap<F, i64>, bool) {
        let m = self.cfg.buckets_per_array;
        let lanes = F::FRAGMENTS;
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        for i in 0..self.cfg.arrays {
            for j in 0..m {
                if self.counts[i * m + j] != 0 {
                    queue.push_back((i, j));
                }
            }
        }
        let mut budget: u64 = 32 * (self.cfg.total_buckets() as u64 + 64);
        let mut flows: HashMap<F, i64> = HashMap::new();
        while let Some((i, j)) = queue.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let b = i * m + j;
            let count = self.counts[b];
            if count == 0 && (0..lanes).all(|k| self.idsums[b * lanes + k] == 0) {
                continue;
            }
            let cmod = signed_to_mod(count);
            if cmod == 0 {
                continue;
            }
            let Some(inv) = legacy_inv_mod(cmod) else { continue };
            let mut frags = [0u64; chm_common::flowid::MAX_FRAGMENTS];
            for (k, frag) in frags.iter_mut().enumerate().take(lanes) {
                *frag = legacy_mul_mod(self.idsums[b * lanes + k], inv);
            }
            let Some(f) = F::try_from_fragments(&frags[..lanes]) else {
                continue;
            };
            let key = f.key64();
            let (ca, cb) = self.coeffs[i];
            if legacy_index(ca, cb, key, m) != j {
                continue;
            }
            for i2 in 0..self.cfg.arrays {
                let (ca2, cb2) = self.coeffs[i2];
                let j2 = legacy_index(ca2, cb2, key, m);
                let b2 = i2 * m + j2;
                self.counts[b2] -= count;
                for k in 0..lanes {
                    let lane = b2 * lanes + k;
                    let sub = legacy_mul_mod(cmod, f.fragment(k));
                    self.idsums[lane] = sub_mod(self.idsums[lane], sub);
                }
                if self.counts[b2] != 0 || (0..lanes).any(|k| self.idsums[b2 * lanes + k] != 0)
                {
                    queue.push_back((i2, j2));
                }
            }
            *flows.entry(f).or_insert(0) += count;
        }
        flows.retain(|_, c| *c != 0);
        let success = self
            .counts
            .iter()
            .enumerate()
            .all(|(b, &c)| c == 0 && self.idsums[b * lanes..(b + 1) * lanes].iter().all(|&s| s == 0));
        (flows, success)
    }
}

/// One legacy sketch group: classifier + the encoders a healthy-state epoch
/// exercises (`m_ll = 0`, so LL encoders are omitted in both engines).
struct LegacyGroup {
    classifier: LegacyTower,
    up_hh: LegacyFermat<FiveTuple>,
    up_hl: LegacyFermat<FiveTuple>,
    down_hl: LegacyFermat<FiveTuple>,
}

impl LegacyGroup {
    fn new(cfg: &DataPlaneConfig, rt: &RuntimeConfig) -> Self {
        LegacyGroup {
            classifier: LegacyTower::new(cfg.tower.clone()),
            up_hh: LegacyFermat::new(cfg.fermat_for(rt.partition.m_hh, 0x48_48)),
            up_hl: LegacyFermat::new(cfg.fermat_for(rt.partition.m_hl, 0x48_4c)),
            down_hl: LegacyFermat::new(cfg.fermat_for(rt.partition.m_hl, 0x48_4c)),
        }
    }

    fn deep_clone(&self) -> Self {
        LegacyGroup {
            classifier: LegacyTower {
                cfg: self.classifier.cfg.clone(),
                coeffs: self.classifier.coeffs.clone(),
                counters: self.classifier.counters.clone(),
            },
            up_hh: self.up_hh.clone(),
            up_hl: self.up_hl.clone(),
            down_hl: self.down_hl.clone(),
        }
    }
}

/// The pre-fast-path edge data plane: legacy hashing in the packet path,
/// epoch snapshots by deep clone, decode by clone, epoch flip rebuilding
/// **both** groups (exactly what the old `collect_group` + `flip` did).
struct LegacyEdge {
    cfg: DataPlaneConfig,
    rt: RuntimeConfig,
    group: LegacyGroup,
    idle_group: LegacyGroup,
    sample_coeffs: (u64, u64),
}

impl LegacyEdge {
    fn new(cfg: DataPlaneConfig) -> Self {
        let rt = RuntimeConfig::initial(&cfg);
        LegacyEdge {
            group: LegacyGroup::new(&cfg, &rt),
            idle_group: LegacyGroup::new(&cfg, &rt),
            sample_coeffs: legacy_coeffs(&PairwiseHash::from_seed(cfg.seed ^ 0x5a3b_1e00)),
            cfg,
            rt,
        }
    }

    #[inline]
    fn on_packet(&mut self, f: &FiveTuple, delivered: bool) {
        let key = f.key64();
        // Replicates the legacy ingress pipeline: sampling hash (full
        // re-mix), classifier, threshold compare, encoder insert — under
        // the initial runtime every flow is a HH candidate, exactly like
        // the real data plane's first epochs.
        let (sa, sb) = self.sample_coeffs;
        let sample16 = (legacy_raw(sa, sb, key) >> 16) as u32 & 0xffff;
        let size = self.group.classifier.insert_and_query(key);
        let h = if size >= self.rt.th {
            Hierarchy::HhCandidate
        } else if sample16 < self.rt.sample_threshold {
            Hierarchy::SampledLl
        } else {
            Hierarchy::NonSampledLl
        };
        if h == Hierarchy::HhCandidate {
            self.group.up_hh.insert(f);
            if delivered {
                self.group.down_hl.insert(f);
            }
        }
    }

    /// Legacy epoch end: snapshot the monitoring group by deep clone,
    /// decode the snapshot's HH encoder (which clones again), then rebuild
    /// **both** groups — the old flip's behavior.
    fn end_epoch(&mut self) -> usize {
        let snapshot = self.group.deep_clone();
        let (flows, _ok) = snapshot.up_hh.decode_cloned();
        let rt = self.rt;
        self.group = LegacyGroup::new(&self.cfg, &rt);
        self.idle_group = LegacyGroup::new(&self.cfg, &rt);
        flows.len()
    }
}

// ---------------------------------------------------------------------
// Fast path: the real data plane, zero-clone epoch pipeline
// ---------------------------------------------------------------------

struct FastEdge {
    dp: EdgeDataPlane<FiveTuple>,
    scratch: DecodeScratch<FiveTuple>,
}

impl FastEdge {
    fn new(cfg: DataPlaneConfig) -> Self {
        let rt = RuntimeConfig::initial(&cfg);
        FastEdge { dp: EdgeDataPlane::new(cfg, rt), scratch: DecodeScratch::new() }
    }

    /// Ingests one flow's packet burst through the batched engine,
    /// distributing `n_lost` drops across the burst with the simulator's
    /// spread formula (same observable state as per-packet replay — see
    /// `tests/burst_replay.rs` in `chamelemon`).
    #[inline]
    fn on_flow(&mut self, f: &FiveTuple, pkts: u64, n_lost: u64) {
        let runs = self.dp.on_ingress_burst(f, 0, pkts);
        let mut pos = 0u64;
        for (h, len) in runs {
            if len == 0 {
                continue;
            }
            let dropped = (pos + len) * n_lost / pkts - pos * n_lost / pkts;
            self.dp.on_egress_burst(f, 0, h, len - dropped);
            pos += len;
        }
    }

    /// Fast epoch end: take the group whole (`mem::replace`), decode through
    /// the reusable scratch, flip.
    fn end_epoch(&mut self) -> usize {
        let group = self.dp.take_group(0);
        let r = group.up_hh.decode_with(&mut self.scratch);
        let n = r.flows.len();
        self.scratch.recycle(r);
        self.dp.flip(0);
        n
    }
}

// ---------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------

/// Parameters of one perf run.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Flows in the replay trace.
    pub flows: usize,
    /// Epochs replayed end to end.
    pub epochs: usize,
    /// Keys hashed in the micro-benchmarks.
    pub hash_keys: usize,
    /// Flows for the loaded-decode latency measurement.
    pub decode_flows: usize,
    /// Repetitions of each timed section (best-of is reported, which is
    /// standard practice for throughput numbers on a shared machine).
    pub reps: usize,
}

impl PerfConfig {
    /// The full run (default). Flow count stays under the HH encoder's
    /// decodable load (≈7.5K flows at the paper-default 3×3584 buckets) so
    /// both engines fully decode every epoch and their outputs can be
    /// cross-checked.
    pub fn full() -> Self {
        PerfConfig { flows: 6_000, epochs: 8, hash_keys: 2_000_000, decode_flows: 8_000, reps: 3 }
    }

    /// The CI smoke run (`--quick`).
    pub fn quick() -> Self {
        PerfConfig { flows: 2_000, epochs: 3, hash_keys: 400_000, decode_flows: 2_000, reps: 2 }
    }
}

// ---------------------------------------------------------------------
// Multicore scaling sweep: the sharded epoch pipeline
// ---------------------------------------------------------------------

/// Parameters of the `--threads` scaling sweep over the sharded epoch
/// pipeline (`chm_netsim::ShardedReplay`).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Thread counts to sweep. Normalized to sorted + deduped and always
    /// includes 1 — the speedup baseline row.
    pub threads: Vec<usize>,
    /// Concurrent flows per epoch in the standard sweep tier.
    pub flows: usize,
    /// Concurrent flows in the large tier (`0` skips it). The large tier
    /// runs one epoch at 1 thread and at the largest swept count.
    pub big_flows: usize,
    /// Epochs replayed per measurement pass.
    pub epochs: usize,
}

impl SweepConfig {
    /// The full sweep (default): 1M concurrent flows across 1/2/4/8
    /// threads, plus the 10M-flow tier.
    pub fn full() -> Self {
        SweepConfig { threads: vec![1, 2, 4, 8], flows: 1_000_000, big_flows: 10_000_000, epochs: 2 }
    }

    /// The CI smoke sweep (`--quick`): small trace, 1 and 2 threads, no
    /// large tier.
    pub fn quick() -> Self {
        SweepConfig { threads: vec![1, 2], flows: 40_000, big_flows: 0, epochs: 1 }
    }

    /// Sorted, deduped, with the mandatory 1-thread baseline present.
    pub fn normalized(mut self) -> Self {
        self.threads.push(1);
        self.threads.sort_unstable();
        self.threads.dedup();
        self
    }
}

/// One measured point of the scaling curve.
struct SweepRow {
    threads: usize,
    flows: usize,
    packets: f64,
    wall_s: f64,
    crit_s: f64,
}

/// FNV-1a fold of one `u64` into the running digest.
fn fnv64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn switch_code(s: SwitchId) -> u64 {
    ((s.role as u64) << 32) | s.index as u64
}

/// Order-independent digest of an epoch report: every map is folded in a
/// canonical (sorted) order, so two reports digest equal iff they compare
/// equal. This is what `results/SHARD_DIGEST_T<t>.json` records and what
/// CI `cmp`s across thread counts.
fn digest_report(r: &EpochReport<FiveTuple>) -> u64 {
    let mut h = fnv64(0xcbf2_9ce4_8422_2325, r.epoch);
    let mut flows: Vec<(u64, u64)> = r.delivered.iter().map(|(f, &c)| (f.key64(), c)).collect();
    flows.sort_unstable();
    for (k, c) in flows.drain(..) {
        h = fnv64(fnv64(h, k), c);
    }
    let mut lost: Vec<(u64, u64)> = r.lost.iter().map(|(f, &c)| (f.key64(), c)).collect();
    lost.sort_unstable();
    for (k, c) in lost.drain(..) {
        h = fnv64(fnv64(h, k), c);
    }
    for (&s, &c) in &r.dropped_at {
        h = fnv64(fnv64(h, switch_code(s)), c);
    }
    let mut lost_at: Vec<(u64, &std::collections::BTreeMap<SwitchId, u64>)> =
        r.lost_at.iter().map(|(f, m)| (f.key64(), m)).collect();
    lost_at.sort_unstable_by_key(|&(k, _)| k);
    for (k, m) in lost_at {
        h = fnv64(h, k);
        for (&s, &c) in m {
            h = fnv64(fnv64(h, switch_code(s)), c);
        }
    }
    for (&hops, &c) in &r.hops_histogram {
        h = fnv64(fnv64(h, hops as u64), c);
    }
    h
}

/// The digest file's content. Deliberately free of the thread count: the
/// files written at different `--threads` values must be byte-identical,
/// which is exactly what CI's `cmp` asserts.
fn digest_json(flows: usize, epochs: usize, digests: &[u64]) -> String {
    let list =
        digests.iter().map(|d| format!("\"{d:016x}\"")).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"id\": \"SHARD_DIGEST\",\n  \"topology\": \"kary8\",\n  \
         \"flows\": {flows},\n  \"epochs\": {epochs},\n  \
         \"report_digests\": [{list}]\n}}\n"
    )
}

/// Asserts the sharded pass reproduced the unsharded reference exactly:
/// same reports, same sketch state on every edge (both groups).
fn assert_matches_reference(
    reports: &[EpochReport<FiveTuple>],
    edges: &[EdgeDataPlane<FiveTuple>],
    ref_reports: &[EpochReport<FiveTuple>],
    ref_edges: &[EdgeDataPlane<FiveTuple>],
    threads: usize,
    pass: &str,
) {
    assert_eq!(
        reports, ref_reports,
        "sharded reports diverged from unsharded reference ({threads} threads, {pass} pass)"
    );
    for (e, (a, b)) in edges.iter().zip(ref_edges).enumerate() {
        assert!(
            a.group(0) == b.group(0) && a.group(1) == b.group(1),
            "edge {e} sketch state diverged from unsharded reference \
             ({threads} threads, {pass} pass)"
        );
    }
}

/// Measures one tier of the scaling curve: an unsharded reference pass,
/// then per thread count a wall-clock pass (`shards = workers = t`) and a
/// critical-path pass (`shards = t`, `workers = 1`, per-phase timing).
///
/// The critical-path number — serial prologue + slowest shard of each
/// phase + merge — is the span of the sharded pipeline's dependency graph:
/// the epoch time with one core per shard and free threads. On a machine
/// with fewer cores than shards the wall column shows what this host
/// actually achieves while the critical-path column shows what the
/// sharding itself enables; both are recorded, clearly labeled.
fn sweep_tier(
    flows: usize,
    epochs: usize,
    threads: &[usize],
) -> (Vec<SweepRow>, Vec<u64>) {
    let topo: Topology = KaryFatTree::new(8).into();
    let cfg = DataPlaneConfig::small(0x5ca1e);
    let rt = RuntimeConfig::initial(&cfg);
    let trace = testbed_trace(WorkloadKind::Dctcp, flows, topo.n_hosts() as u32, 0xacce1);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.01), 0.02, 0x10ad);
    let packets = (trace.total_packets() * epochs as u64) as f64;

    let new_edges = || -> Vec<EdgeDataPlane<FiveTuple>> {
        (0..topo.n_edges()).map(|_| EdgeDataPlane::new(cfg.clone(), rt)).collect()
    };

    eprintln!("sweep tier: {flows} flows x {epochs} epochs on {} edges...", topo.n_edges());
    let mut ref_edges = new_edges();
    let mut sim = Simulator::new(topo.clone(), SimConfig::default());
    let mut ref_reports = Vec::new();
    for _ in 0..epochs {
        let mut hooks = SiteArray(&mut ref_edges);
        ref_reports.push(sim.run_epoch_burst(&trace, &plan, &mut hooks));
    }
    let digests: Vec<u64> = ref_reports.iter().map(digest_report).collect();

    let mut rows = Vec::new();
    for &t in threads {
        let mut edges = new_edges();
        let mut sim = Simulator::new(topo.clone(), SimConfig::default());
        let mut eng = ShardedReplay::new(Sharding { shards: t, workers: t });
        let t0 = Instant::now();
        let mut reports = Vec::new();
        for _ in 0..epochs {
            reports.push(eng.run_epoch_burst(&mut sim, &trace, &plan, &mut edges));
        }
        let wall_s = t0.elapsed().as_secs_f64();
        assert_matches_reference(&reports, &edges, &ref_reports, &ref_edges, t, "wall");

        let mut edges = new_edges();
        let mut sim = Simulator::new(topo.clone(), SimConfig::default());
        let mut eng = ShardedReplay::new(Sharding { shards: t, workers: 1 });
        let base = Instant::now();
        let clock = move || base.elapsed().as_secs_f64();
        let mut crit_s = 0.0;
        let mut reports = Vec::new();
        for _ in 0..epochs {
            let (r, timing) =
                eng.run_epoch_burst_timed(&mut sim, &trace, &plan, &mut edges, &clock);
            crit_s += timing.critical_path_s();
            reports.push(r);
        }
        assert_matches_reference(&reports, &edges, &ref_reports, &ref_edges, t, "critical-path");
        eprintln!(
            "  t={t}: wall {wall_s:.3}s, critical path {crit_s:.3}s \
             ({:.2} Mpps crit)",
            packets / crit_s / 1e6
        );
        rows.push(SweepRow { threads: t, flows, packets, wall_s, crit_s });
    }
    (rows, digests)
}

fn best_of<R>(reps: usize, mut run: impl FnMut() -> (f64, R)) -> (f64, R) {
    let mut best = run();
    for _ in 1..reps {
        let next = run();
        if next.0 < best.0 {
            best = next;
        }
    }
    best
}

/// The replay workload: each flow's packet count and its spread-dropped
/// losses (2% loss, so the egress/downstream path is exercised
/// realistically).
fn replay_flows(trace: &Trace<FiveTuple>) -> Vec<(FiveTuple, u64, u64)> {
    trace.flows.iter().map(|&(f, pkts)| (f, pkts, pkts / 50)).collect()
}

/// Runs the full measurement suite — the single-edge engine comparison
/// plus the sharded-pipeline scaling sweep — and returns the results table
/// (schema v2: row 0 is the engine row, rows 1.. are the scaling curve).
///
/// Writes one `SHARD_DIGEST_T<t>.json` per swept thread count into
/// `out_dir`; their contents are thread-count-independent by construction,
/// so CI can `cmp` them pairwise to assert cross-process byte-identity.
pub fn run(pc: PerfConfig, sweep: &SweepConfig, out_dir: &Path) -> Table {
    let cfg = DataPlaneConfig::paper_default(0x9e7f);
    let trace = testbed_trace(WorkloadKind::Dctcp, pc.flows, 8, 0x9e7f);
    let flows = replay_flows(&trace);
    let epoch_packets: u64 = flows.iter().map(|&(_, p, _)| p).sum();
    let total_packets = (epoch_packets * pc.epochs as u64) as f64;

    // --- end-to-end replay: packets/sec through the packet engine --------
    // Same logical packet stream through both engines: the legacy replica
    // processes it the only way the old engine could — one packet at a
    // time; the fast engine ingests each flow's burst through the batched
    // classifier/encoder path (state-identical, property-tested).
    eprintln!(
        "replaying {epoch_packets} packets x {} epochs through both engines...",
        pc.epochs
    );
    let (legacy_s, legacy_decoded) = best_of(pc.reps, || {
        let mut edge = LegacyEdge::new(cfg.clone());
        let t0 = Instant::now();
        let mut decoded = 0usize;
        for _ in 0..pc.epochs {
            for &(f, pkts, n_lost) in &flows {
                for i in 0..pkts {
                    let dropped = (i + 1) * n_lost / pkts > i * n_lost / pkts;
                    edge.on_packet(&f, !dropped);
                }
            }
            decoded += edge.end_epoch();
        }
        (t0.elapsed().as_secs_f64(), decoded)
    });
    let (fast_s, fast_decoded) = best_of(pc.reps, || {
        let mut edge = FastEdge::new(cfg.clone());
        let t0 = Instant::now();
        let mut decoded = 0usize;
        for _ in 0..pc.epochs {
            for &(f, pkts, n_lost) in &flows {
                edge.on_flow(&f, pkts, n_lost);
            }
            decoded += edge.end_epoch();
        }
        (t0.elapsed().as_secs_f64(), decoded)
    });
    // Both engines see identical traffic; the decode totals differing would
    // mean the replica diverged from the real pipeline.
    assert_eq!(
        legacy_decoded, fast_decoded,
        "legacy replica and fast path decoded different flow counts"
    );
    let replay_pps_legacy = total_packets / legacy_s;
    let replay_pps_fast = total_packets / fast_s;

    // --- hash micro-benchmark: 3-array index derivation ------------------
    let fam = HashFamily::new(0x1234, 3);
    let m = 4096usize;
    let reducer = chm_common::FastRange::new(m);
    let coeffs = family_coeffs(&fam);
    let (mod_s, acc1) = best_of(pc.reps, || {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for key in 0..pc.hash_keys as u64 {
            for &(a, b) in &coeffs {
                acc = acc.wrapping_add(legacy_index(a, b, key, m));
            }
        }
        (t0.elapsed().as_secs_f64(), acc)
    });
    let (fast_hash_s, acc2) = best_of(pc.reps, || {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for key in 0..pc.hash_keys as u64 {
            let bh = chm_common::BatchHasher::new(key);
            for h in fam.as_slice() {
                acc = acc.wrapping_add(bh.index(h, reducer));
            }
        }
        (t0.elapsed().as_secs_f64(), acc)
    });
    std::hint::black_box((acc1, acc2));
    let hash_mops_legacy = pc.hash_keys as f64 * 3.0 / mod_s / 1e6;
    let hash_mops_fast = pc.hash_keys as f64 * 3.0 / fast_hash_s / 1e6;

    // --- decode latency: loaded sketch (dense path) ----------------------
    let dec_cfg = FermatConfig::standard(
        (pc.decode_flows as f64 / 0.70 / 3.0).ceil() as usize,
        0xdec0,
    );
    let mut loaded = FermatSketch::<FiveTuple>::new(dec_cfg);
    let mut legacy_loaded = LegacyFermat::<FiveTuple>::new(dec_cfg);
    for &(f, _) in trace.flows.iter().take(pc.decode_flows) {
        loaded.insert(&f);
        legacy_loaded.insert(&f);
    }
    let mut scratch = DecodeScratch::new();
    let r = loaded.decode_with(&mut scratch); // warm the scratch buffers
    let decoded_flows = r.flows.len();
    scratch.recycle(r);
    let (decode_s_legacy, _) = best_of(pc.reps, || {
        let t0 = Instant::now();
        let (flows, _) = legacy_loaded.decode_cloned();
        (t0.elapsed().as_secs_f64(), std::hint::black_box(flows.len()))
    });
    let (decode_s_fast, _) = best_of(pc.reps, || {
        let t0 = Instant::now();
        let r = loaded.decode_with(&mut scratch);
        let n = r.flows.len();
        scratch.recycle(r);
        (t0.elapsed().as_secs_f64(), std::hint::black_box(n))
    });

    // --- decode latency: sparse delta (overlay path) ---------------------
    // A big encoder (the healthy-state HH geometry) holding few victims:
    // the controller's per-epoch delta decode.
    let delta_cfg = FermatConfig::standard(cfg.m_uf, 0xde17a);
    let victims = (pc.decode_flows / 40).max(32);
    let mut delta = FermatSketch::<FiveTuple>::new(delta_cfg);
    let mut legacy_delta = LegacyFermat::<FiveTuple>::new(delta_cfg);
    for &(f, _) in trace.flows.iter().take(victims) {
        delta.insert_weighted(&f, 3);
        legacy_delta.insert_weighted(&f, 3);
    }
    let (delta_s_legacy, _) = best_of(pc.reps, || {
        let t0 = Instant::now();
        let (flows, _) = legacy_delta.decode_cloned();
        (t0.elapsed().as_secs_f64(), std::hint::black_box(flows.len()))
    });
    let (delta_s_fast, _) = best_of(pc.reps, || {
        let t0 = Instant::now();
        let r = delta.decode_with(&mut scratch);
        let n = r.flows.len();
        scratch.recycle(r);
        (t0.elapsed().as_secs_f64(), std::hint::black_box(n))
    });

    // --- sharded-pipeline scaling sweep ----------------------------------
    let sweep = sweep.clone().normalized();
    let (sweep_rows, digests) = sweep_tier(sweep.flows, sweep.epochs, &sweep.threads);
    for &t in &sweep.threads {
        let path = out_dir.join(format!("SHARD_DIGEST_T{t}.json"));
        if let Err(e) =
            std::fs::create_dir_all(out_dir).and_then(|()| {
                std::fs::write(&path, digest_json(sweep.flows, sweep.epochs, &digests))
            })
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    let big_rows = if sweep.big_flows > 0 {
        // The large tier: baseline plus the widest sharding, one epoch.
        let mut big_threads = vec![1, *sweep.threads.last().expect("normalized is non-empty")];
        big_threads.dedup();
        sweep_tier(sweep.big_flows, 1, &big_threads).0
    } else {
        Vec::new()
    };

    // Schema v2: the 12 v1 columns keep their positions (row 0 stays
    // parseable by v1 consumers), followed by the sweep columns. Cells a
    // row kind does not measure are NaN, which the JSON writer emits as
    // null — "not measured", never a fake zero.
    let mut t = Table::new(
        "BENCH_hotpath",
        "Hot-path packet engine vs legacy replica, plus sharded-pipeline scaling curve",
        &[
            "replay_pps_legacy",
            "replay_pps_fast",
            "replay_speedup",
            "hash_mops_legacy",
            "hash_mops_fast",
            "decode_ms_legacy",
            "decode_ms_fast",
            "delta_decode_ms_legacy",
            "delta_decode_ms_fast",
            "replay_packets",
            "decoded_flows",
            "threads",
            "schema_version",
            "n_flows",
            "sweep_pps_wall",
            "sweep_pps_crit",
            "speedup_crit",
            "pps_per_thread",
            "scaling_efficiency",
        ],
    );
    let na = f64::NAN;
    t.push(vec![
        replay_pps_legacy,
        replay_pps_fast,
        replay_pps_fast / replay_pps_legacy,
        hash_mops_legacy,
        hash_mops_fast,
        decode_s_legacy * 1e3,
        decode_s_fast * 1e3,
        delta_s_legacy * 1e3,
        delta_s_fast * 1e3,
        total_packets,
        decoded_flows as f64,
        1.0,
        2.0,
        pc.flows as f64,
        na,
        na,
        na,
        na,
        na,
    ]);
    for tier in [&sweep_rows, &big_rows] {
        if tier.is_empty() {
            continue;
        }
        let crit_1 = tier
            .iter()
            .find(|r| r.threads == 1)
            .map(|r| r.crit_s)
            .expect("every tier sweeps the 1-thread baseline");
        for r in tier {
            let speedup_crit = crit_1 / r.crit_s;
            t.push(vec![
                na,
                na,
                na,
                na,
                na,
                na,
                na,
                na,
                na,
                r.packets,
                na,
                r.threads as f64,
                2.0,
                r.flows as f64,
                r.packets / r.wall_s,
                r.packets / r.crit_s,
                speedup_crit,
                r.packets / r.crit_s / r.threads as f64,
                speedup_crit / r.threads as f64,
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_replica_decodes_what_the_fast_path_decodes() {
        // The replica is only a valid baseline if it computes the same
        // result (mapping differs, flowsets must not).
        let cfg = FermatConfig::standard(256, 0x1e9a);
        let mut legacy = LegacyFermat::<FiveTuple>::new(cfg);
        let mut fast = FermatSketch::<FiveTuple>::new(cfg);
        let trace = testbed_trace(WorkloadKind::Dctcp, 300, 8, 7);
        for &(f, _) in trace.flows.iter().take(300) {
            legacy.insert(&f);
            fast.insert(&f);
        }
        let (lf, lok) = legacy.decode_cloned();
        let fr = fast.decode();
        assert!(lok && fr.success);
        assert_eq!(lf, fr.flows);
    }

    #[test]
    fn perf_run_produces_consistent_rows() {
        let dir = std::env::temp_dir().join("chm_bench_perf_test");
        let sweep = SweepConfig { threads: vec![1, 2], flows: 400, big_flows: 0, epochs: 1 };
        let t = run(
            PerfConfig { flows: 300, epochs: 1, hash_keys: 10_000, decode_flows: 200, reps: 1 },
            &sweep,
            &dir,
        );
        // Row 0: the engine row — v1 columns all measured.
        assert_eq!(t.rows.len(), 3, "engine row + one sweep row per thread count");
        for row in &t.rows {
            assert_eq!(row.len(), t.columns.len());
        }
        for v in &t.rows[0][..12] {
            assert!(v.is_finite() && *v > 0.0, "bad engine metric {v}");
        }
        // Sweep rows: thread counts ascend, sweep metrics measured, the
        // 1-thread row is its own baseline.
        assert_eq!(t.rows[1][11], 1.0);
        assert_eq!(t.rows[2][11], 2.0);
        assert!((t.rows[1][16] - 1.0).abs() < 1e-12, "t=1 speedup_crit is 1.0");
        for row in &t.rows[1..] {
            for v in &row[12..] {
                assert!(v.is_finite() && *v > 0.0, "bad sweep metric {v}");
            }
        }
        // Digest files exist and are byte-identical across thread counts.
        let d1 = std::fs::read(dir.join("SHARD_DIGEST_T1.json")).unwrap();
        let d2 = std::fs::read(dir.join("SHARD_DIGEST_T2.json")).unwrap();
        assert_eq!(d1, d2, "digest files must not depend on the thread count");
    }

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let trace = testbed_trace(WorkloadKind::Dctcp, 200, 8, 3);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, 4);
        let topo: Topology = chm_netsim::FatTree::testbed().into();
        let run_once = || {
            let mut sim = Simulator::new(topo.clone(), SimConfig::default());
            let cfg = DataPlaneConfig::small(7);
            let rt = RuntimeConfig::initial(&cfg);
            let mut edges: Vec<EdgeDataPlane<FiveTuple>> =
                (0..topo.n_edges()).map(|_| EdgeDataPlane::new(cfg.clone(), rt)).collect();
            let mut hooks = SiteArray(&mut edges);
            sim.run_epoch_burst(&trace, &plan, &mut hooks)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(digest_report(&a), digest_report(&b));
        let mut c = b.clone();
        *c.delivered.values_mut().next().unwrap() += 1;
        assert_ne!(digest_report(&a), digest_report(&c));
    }
}
