//! Regenerates Figures 16-17 (attention on VL2). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig07_08::fig16_17() {
        t.finish();
    }
}
