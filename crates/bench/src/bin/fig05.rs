//! Regenerates Figure 5 (memory/time vs packet loss rate). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig04_06::fig05(chm_bench::experiments::trials()) {
        t.finish();
    }
}
