//! Regenerates Table 1 (Tofino resource usage). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::table1::table1() {
        t.finish();
    }
}
