//! Regenerates Figure 20 (controller response time). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig20::fig20(chm_bench::experiments::scale()) {
        t.finish();
    }
}
