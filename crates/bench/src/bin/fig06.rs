//! Regenerates Figure 6 (memory/time vs # flows). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig04_06::fig06(chm_bench::experiments::trials()) {
        t.finish();
    }
}
