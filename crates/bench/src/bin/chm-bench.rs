//! `chm-bench` — the benchmark driver CLI.
//!
//! ```text
//! chm-bench perf [--quick] [--threads <list|auto>] [--out <dir>]
//! chm-bench scenarios [--quick] [--per-packet] [--out <dir>]
//!                     [--seeds <n>] [--check <golden.json>]
//!                     [--topology-sweep]
//! chm-bench soak [--quick] [--epochs <n>] [--seed <s>]
//!                [--profile none|standard|stress] [--out <dir>]
//! chm-bench profile [--quick] [--workers <n>] [--seed <s>] [--out <dir>]
//! ```
//!
//! `perf` measures the hot-path packet engine (packets/sec, decode latency)
//! against the in-tree legacy replica of the pre-fast-path implementation,
//! then sweeps the sharded epoch pipeline across thread counts (`--threads`
//! takes a comma list like `1,2,4,8` or `auto` for a doubling ladder up to
//! the machine) and writes the combined schema-v2 table to
//! `results/BENCH_hotpath.json` plus one thread-count-independent
//! `SHARD_DIGEST_T<t>.json` per swept count (see `chm_bench::perf`). Every
//! sweep pass is cross-checked against the unsharded replay — reports and
//! sketch state must match exactly before a number is recorded.
//!
//! `scenarios` runs the golden adversarial matrix (Gilbert–Elliott bursty
//! loss, duplication, reordering, clock skew, report loss, churn, floods,
//! victim drift, perfect storm) through the full pipeline and writes
//! `results/SCENARIOS.json` (see `chm_bench::scenarios`). The JSON is a
//! pure function of the scenario seeds — byte-identical across runs and
//! machines — so accuracy regressions are plain diffs. `--per-packet`
//! swaps the burst replay for the per-packet path (the differential tests
//! guarantee identical output; the flag exists to demonstrate it).
//!
//! `--quick` runs the reduced CI-smoke sizing; `--out` overrides the
//! results directory. `--seeds <n>` re-runs every scenario under `n`
//! derived seeds on the parallel trial executor and appends per-scenario
//! mean/σ confidence bands (byte-identical at any worker count).
//! `--check <golden.json>` is the CI threshold gate: exit 1 when any
//! scenario's mean F1 or localization top-3 hit rate regressed more than
//! the tolerance vs the committed golden.
//!
//! `profile` drives the congested serve preset through the sharded engine
//! with the `chm_obs` span profiler under a real clock and writes the
//! per-stage time/allocation breakdown to `results/PROFILE.json` plus the
//! deterministic count columns to `results/PROFILE_counts.json` (see
//! `chm_bench::profile`). The counts file is a pure function of the
//! sizing — byte-identical across runs, machines, and `--workers` — and
//! CI `cmp`-gates it against the committed golden.
//!
//! `--topology-sweep` swaps the adversarial matrix for the topology zoo:
//! one congestion-coupled scenario per fabric (testbed, k-ary fat-trees,
//! leaf-spines, Abilene WAN), written to `results/TOPOLOGY_SWEEP.json`
//! (see `chm_bench::sweep`). `--quick`, `--out`, `--per-packet`, and
//! `--check` compose; `--seeds` applies to the matrix only.

use chm_bench::perf::{self, PerfConfig};
use chm_bench::profile::{self, ProfileConfig};
use chm_bench::scenarios;
use chm_bench::soak::{self, SoakConfig};
use chm_bench::sweep;
use chm_scenarios::ReplayMode;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global allocation counter feeding the soak's flatness gate. Lives in
/// the binary root so the library keeps `forbid(unsafe_code)`; the
/// `fetch_add` costs nanoseconds and the measured hot paths are
/// allocation-free anyway (see `tests/alloc_audit.rs`).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// chm-lint: allow(unsafe-block, "counting-allocator shim: implementing GlobalAlloc is inherently unsafe and this type exists only in this binary")
unsafe impl GlobalAlloc for CountingAlloc {
    // chm-lint: allow(unsafe-block, "bumps a counter then delegates to System.alloc with the caller's layout unchanged")
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    // chm-lint: allow(unsafe-block, "pure delegation to System.dealloc; pointer and layout come straight from the caller")
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    // chm-lint: allow(unsafe-block, "bumps a counter then delegates to System.realloc with the caller's arguments unchanged")
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: chm-bench perf [--quick] [--threads <list|auto>] [--out <dir>]\n       \
         chm-bench scenarios [--quick] [--per-packet] [--out <dir>] \
         [--seeds <n>] [--check <golden.json>] [--topology-sweep]\n       \
         chm-bench soak [--quick] [--epochs <n>] [--seed <s>] \
         [--profile none|standard|stress] [--out <dir>]\n       \
         chm-bench profile [--quick] [--workers <n>] [--seed <s>] [--out <dir>]"
    );
    std::process::exit(2);
}

/// Parses `--threads`: a comma list of worker counts, or `auto` for a
/// doubling ladder (1, 2, 4, …) up to the machine's available parallelism.
/// The sweep itself re-adds the mandatory 1-thread baseline.
fn parse_threads(spec: &str) -> Vec<usize> {
    if spec == "auto" {
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let mut out = Vec::new();
        let mut t = 1;
        while t <= avail {
            out.push(t);
            t *= 2;
        }
        if *out.last().expect("ladder starts at 1") != avail {
            out.push(avail);
        }
        return out;
    }
    spec.split(',')
        .map(|s| match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: --threads expects a comma list of counts >= 1 or 'auto', got {spec:?}");
                std::process::exit(2);
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "perf" => {
            let mut pc = PerfConfig::full();
            let mut sc = perf::SweepConfig::full();
            let mut threads_arg: Option<String> = None;
            let mut out_dir = "results".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => {
                        pc = PerfConfig::quick();
                        sc = perf::SweepConfig::quick();
                    }
                    "--threads" => match it.next() {
                        Some(t) => threads_arg = Some(t.clone()),
                        None => usage(),
                    },
                    "--out" => match it.next() {
                        Some(d) => out_dir = d.clone(),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            if let Some(spec) = threads_arg {
                sc.threads = parse_threads(&spec);
            }
            let table = perf::run(pc, &sc, std::path::Path::new(&out_dir));
            table.print();
            if let Err(e) = table.write_json(&out_dir) {
                eprintln!("error: could not write {out_dir}/BENCH_hotpath.json: {e}");
                std::process::exit(1);
            }
            let row = &table.rows[0];
            let speedup = row[2];
            eprintln!(
                "\nreplay: {:.2} Mpps legacy -> {:.2} Mpps fast ({speedup:.2}x); \
                 json: {out_dir}/BENCH_hotpath.json",
                row[0] / 1e6,
                row[1] / 1e6,
            );
            // The scaling curve, one line per sweep row (columns 11..).
            for row in &table.rows[1..] {
                eprintln!(
                    "scaling: t={} n_flows={} crit {:.2} Mpps ({:.2}x, \
                     efficiency {:.0}%)",
                    row[11], row[13], row[15] / 1e6, row[16], row[18] * 100.0
                );
            }
        }
        "scenarios" => {
            let mut quick = false;
            let mut mode = ReplayMode::Burst;
            let mut out_dir = "results".to_string();
            let mut n_seeds = 1usize;
            let mut check: Option<String> = None;
            let mut topology_sweep = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--per-packet" => mode = ReplayMode::PerPacket,
                    "--topology-sweep" => topology_sweep = true,
                    "--out" => match it.next() {
                        Some(d) => out_dir = d.clone(),
                        None => usage(),
                    },
                    "--seeds" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(n) if n >= 1 => n_seeds = n,
                        _ => usage(),
                    },
                    "--check" => match it.next() {
                        Some(p) => check = Some(p.clone()),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            // Read the golden up front: a typo'd path must fail in
            // milliseconds, not after a multi-seed full-matrix run.
            let golden = check.map(|golden_path| {
                match std::fs::read_to_string(&golden_path) {
                    Ok(g) if !scenarios::parse_golden(&g).is_empty() => (golden_path, g),
                    Ok(_) => {
                        eprintln!("error: golden {golden_path} has no scenarios");
                        std::process::exit(1);
                    }
                    Err(e) => {
                        eprintln!("error: could not read golden {golden_path}: {e}");
                        std::process::exit(1);
                    }
                }
            });
            if topology_sweep {
                let run = sweep::run_sweep(quick, mode);
                sweep::print_table(&run);
                if let Err(e) = sweep::write_json(&run, quick, &out_dir) {
                    eprintln!(
                        "error: could not write {out_dir}/TOPOLOGY_SWEEP.json: {e}"
                    );
                    std::process::exit(1);
                }
                let worst = run
                    .rows
                    .iter()
                    .min_by(|a, b| a.1.mean_f1.total_cmp(&b.1.mean_f1))
                    .expect("sweep roster is non-empty");
                eprintln!(
                    "\n{} fabrics; worst mean F1 {:.4} ({}); \
                     json: {out_dir}/TOPOLOGY_SWEEP.json",
                    run.rows.len(),
                    worst.1.mean_f1,
                    worst.0.name,
                );
                if let Some((golden_path, golden)) = golden {
                    let problems = sweep::check_sweep(&golden, &run);
                    if problems.is_empty() {
                        eprintln!(
                            "threshold gate vs {golden_path}: OK (tolerance {})",
                            scenarios::CHECK_TOLERANCE
                        );
                    } else {
                        eprintln!("threshold gate vs {golden_path} FAILED:");
                        for p in &problems {
                            eprintln!("  {p}");
                        }
                        std::process::exit(1);
                    }
                }
                return;
            }
            let run = scenarios::run_matrix_seeds(quick, mode, n_seeds);
            scenarios::print_table(&run);
            if let Err(e) = scenarios::write_json(&run, quick, &out_dir) {
                eprintln!("error: could not write {out_dir}/SCENARIOS.json: {e}");
                std::process::exit(1);
            }
            let worst = run
                .results
                .iter()
                .min_by(|a, b| a.mean_f1.total_cmp(&b.mean_f1))
                .expect("matrix is non-empty");
            eprintln!(
                "\n{} scenarios; worst mean F1 {:.4} ({}); \
                 json: {out_dir}/SCENARIOS.json",
                run.results.len(),
                worst.mean_f1,
                worst.name,
            );
            if let Some((golden_path, golden)) = golden {
                let problems = scenarios::check_regressions(&golden, &run.results);
                if problems.is_empty() {
                    eprintln!(
                        "threshold gate vs {golden_path}: OK \
                         (tolerance {})",
                        scenarios::CHECK_TOLERANCE
                    );
                } else {
                    eprintln!("threshold gate vs {golden_path} FAILED:");
                    for p in &problems {
                        eprintln!("  {p}");
                    }
                    std::process::exit(1);
                }
            }
        }
        "soak" => {
            let mut cfg = SoakConfig::full();
            let mut out_dir = "results".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => cfg = SoakConfig { epochs: SoakConfig::quick().epochs, ..cfg },
                    "--epochs" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(n) if n >= 1 => cfg.epochs = n,
                        _ => usage(),
                    },
                    "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(s) => cfg.seed = s,
                        None => usage(),
                    },
                    "--profile" => match it.next() {
                        Some(p) if matches!(p.as_str(), "none" | "standard" | "stress") => {
                            cfg.profile = p.clone()
                        }
                        _ => usage(),
                    },
                    "--out" => match it.next() {
                        Some(d) => out_dir = d.clone(),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let report = soak::run(&cfg, &|| ALLOCATIONS.load(Ordering::SeqCst));
            report.print();
            if let Err(e) = report.write_json(&out_dir) {
                eprintln!("error: could not write {out_dir}/SOAK.json: {e}");
                std::process::exit(1);
            }
            eprintln!("json: {out_dir}/SOAK.json");
            if !report.alloc_flat {
                eprintln!(
                    "allocation-flatness gate FAILED: per-window allocations grew \
                     (tolerance {}x + {})",
                    soak::FLATNESS_RATIO,
                    soak::FLATNESS_SLACK
                );
                std::process::exit(1);
            }
        }
        "profile" => {
            let mut quick = false;
            let mut cfg = ProfileConfig::full();
            let mut out_dir = "results".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => {
                        quick = true;
                        cfg = ProfileConfig { epochs: ProfileConfig::quick().epochs, ..cfg };
                    }
                    "--workers" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(n) if n >= 1 => cfg.workers = n,
                        _ => usage(),
                    },
                    "--seed" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(s) => cfg.seed = s,
                        None => usage(),
                    },
                    "--out" => match it.next() {
                        Some(d) => out_dir = d.clone(),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let report = profile::run(
                &cfg,
                &profile::wall_clock(),
                &|| ALLOCATIONS.load(Ordering::SeqCst),
            );
            report.print();
            if let Err(e) = report.write_json(&out_dir, quick) {
                eprintln!("error: could not write {out_dir}/PROFILE.json: {e}");
                std::process::exit(1);
            }
            let suffix = if quick { "_quick" } else { "" };
            eprintln!(
                "json: {out_dir}/PROFILE{suffix}.json + \
                 {out_dir}/PROFILE_counts{suffix}.json"
            );
        }
        _ => usage(),
    }
}
