//! `chm-bench` — the benchmark driver CLI.
//!
//! ```text
//! chm-bench perf [--quick] [--out <dir>]
//! ```
//!
//! `perf` measures the hot-path packet engine (packets/sec, decode latency)
//! against the in-tree legacy replica of the pre-fast-path implementation
//! and writes `results/BENCH_hotpath.json` (see `chm_bench::perf`).
//! `--quick` runs the reduced CI-smoke sizing; `--out` overrides the
//! results directory.

use chm_bench::perf::{self, PerfConfig};

fn usage() -> ! {
    eprintln!("usage: chm-bench perf [--quick] [--out <dir>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "perf" => {
            let mut pc = PerfConfig::full();
            let mut out_dir = "results".to_string();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--quick" => pc = PerfConfig::quick(),
                    "--out" => match it.next() {
                        Some(d) => out_dir = d.clone(),
                        None => usage(),
                    },
                    _ => usage(),
                }
            }
            let table = perf::run(pc);
            table.print();
            if let Err(e) = table.write_json(&out_dir) {
                eprintln!("error: could not write {out_dir}/BENCH_hotpath.json: {e}");
                std::process::exit(1);
            }
            let row = &table.rows[0];
            let speedup = row[2];
            eprintln!(
                "\nreplay: {:.2} Mpps legacy -> {:.2} Mpps fast ({speedup:.2}x); \
                 json: {out_dir}/BENCH_hotpath.json",
                row[0] / 1e6,
                row[1] / 1e6,
            );
        }
        _ => usage(),
    }
}
