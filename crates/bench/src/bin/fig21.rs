//! Regenerates Figure 21 (collection bandwidth vs epoch length). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig21::fig21() {
        t.finish();
    }
}
