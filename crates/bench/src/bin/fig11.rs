//! Regenerates Figure 11 (six accumulation tasks vs baselines). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig11::fig11(chm_bench::experiments::scale()) {
        t.finish();
    }
}
