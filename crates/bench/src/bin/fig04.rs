//! Regenerates Figure 4 (memory/time vs # victim flows). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig04_06::fig04(chm_bench::experiments::trials()) {
        t.finish();
    }
}
