//! Regenerates Figure 7 (attention vs # flows, DCTCP). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig07_08::fig07() {
        t.finish();
    }
}
