//! Runs every table/figure experiment in sequence, writing JSON records
//! under `results/` as each completes. Set CHM_SCALE / CHM_TRIALS to trade
//! fidelity for time.

use chm_bench::experiments as ex;
use chm_bench::report::Table;

type Experiment<'a> = (&'a str, Box<dyn Fn() -> Vec<Table>>);

fn main() {
    let trials = ex::trials();
    let scale = ex::scale();
    eprintln!("running all experiments (trials={trials}, scale={scale})");
    // Lazy thunks: each experiment runs (and prints + persists) before the
    // next starts, so progress is visible incrementally.
    let groups: Vec<Experiment> = vec![
        ("table1", Box::new(ex::table1::table1)),
        ("fig21", Box::new(ex::fig21::fig21)),
        ("fig22", Box::new(ex::fig22::fig22)),
        ("fig10", Box::new(move || ex::fig10::fig10(trials.max(50)))),
        ("fig04", Box::new(move || ex::fig04_06::fig04(trials))),
        ("fig05", Box::new(move || ex::fig04_06::fig05(trials))),
        ("fig06", Box::new(move || ex::fig04_06::fig06(trials))),
        (
            "ablations",
            Box::new(move || {
                let mut ts = ex::ablations::ablation_arrays(trials);
                ts.extend(ex::ablations::ablation_fingerprint(trials));
                ts.extend(ex::ablations::ablation_load_target(trials));
                ts
            }),
        ),
        ("fig07", Box::new(ex::fig07_08::fig07)),
        ("fig08", Box::new(ex::fig07_08::fig08)),
        ("fig09", Box::new(ex::fig09::fig09)),
        ("fig11", Box::new(move || ex::fig11::fig11(scale))),
        ("fig14-15", Box::new(ex::fig07_08::fig14_15)),
        ("fig16-17", Box::new(ex::fig07_08::fig16_17)),
        ("fig18-19", Box::new(ex::fig07_08::fig18_19)),
        ("fig20", Box::new(move || ex::fig20::fig20(scale))),
    ];
    for (name, run) in groups {
        eprintln!("== {name} ==");
        for t in run() {
            t.finish();
        }
    }
}
