//! Regenerates Figures 18-19 (attention on HADOOP). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig07_08::fig18_19() {
        t.finish();
    }
}
