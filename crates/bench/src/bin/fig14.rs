//! Regenerates Figures 14-15 (attention on CACHE). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig07_08::fig14_15() {
        t.finish();
    }
}
