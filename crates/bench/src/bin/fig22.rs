//! Regenerates Figure 22 (reconfiguration time CDF). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig22::fig22() {
        t.finish();
    }
}
