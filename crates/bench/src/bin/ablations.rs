//! Regenerates the design-choice ablations (arrays d, fingerprint width,
//! load-factor target). See DESIGN.md.
fn main() {
    let trials = chm_bench::experiments::trials();
    for t in chm_bench::experiments::ablations::ablation_arrays(trials) {
        t.finish();
    }
    for t in chm_bench::experiments::ablations::ablation_fingerprint(trials) {
        t.finish();
    }
    for t in chm_bench::experiments::ablations::ablation_load_target(trials) {
        t.finish();
    }
}
