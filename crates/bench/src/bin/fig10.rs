//! Regenerates Figure 10 (fingerprint effect on decode success). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig10::fig10(chm_bench::experiments::trials().max(50)) {
        t.finish();
    }
}
