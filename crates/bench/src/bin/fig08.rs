//! Regenerates Figure 8 (attention vs victim ratio, DCTCP). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig07_08::fig08() {
        t.finish();
    }
}
