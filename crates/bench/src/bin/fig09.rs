//! Regenerates Figure 9 (attention vs epoch, 45-epoch window). See DESIGN.md.
fn main() {
    for t in chm_bench::experiments::fig09::fig09() {
        t.finish();
    }
}
