//! The parallel trial executor must be **bit-identical** to the sequential
//! path for the same seeds — figure outputs cannot depend on the worker
//! count. This runs real (deterministic) figure experiments at both
//! `CHM_THREADS=1` and a multi-worker setting and compares the rendered
//! JSON byte for byte. (Timing-valued experiments — decode seconds,
//! response milliseconds — are inherently non-deterministic wall-clock
//! measurements and are exercised by their own suites.)
//!
//! Single `#[test]` on purpose: the worker count is read from the process
//! environment, and integration tests within one binary run concurrently.

use chm_bench::experiments::fig10;
use chm_bench::lossdet::{min_memory_for_success, FermatLossBench, LossScenario};
use chm_bench::report::Table;
use chm_workloads::{caida_like_trace, VictimSelection};

fn render(tables: &[Table]) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!(
        "chm_parallel_determinism_{}",
        std::process::id()
    ));
    let mut out = Vec::new();
    for t in tables {
        t.write_json(&dir).expect("write json");
        out.push(
            std::fs::read_to_string(dir.join(format!("{}.json", t.id))).expect("read json"),
        );
    }
    out
}

#[test]
fn figure_outputs_are_identical_at_any_worker_count() {
    let scenario = {
        let trace = caida_like_trace(3_000, 1).top_n(1_200);
        LossScenario::from_trace(&trace, VictimSelection::RandomN(80), 0.02, 2)
    };

    std::env::set_var("CHM_THREADS", "1");
    let fig10_seq = render(&fig10::fig10(2));
    let mem_seq = min_memory_for_success(&FermatLossBench, &scenario, 4, 64).memory_bytes;

    std::env::set_var("CHM_THREADS", "4");
    let fig10_par = render(&fig10::fig10(2));
    let mem_par = min_memory_for_success(&FermatLossBench, &scenario, 4, 64).memory_bytes;
    std::env::remove_var("CHM_THREADS");

    assert_eq!(fig10_seq, fig10_par, "fig10 JSON differs by worker count");
    assert_eq!(mem_seq, mem_par, "memory search differs by worker count");
}
