//! Property tests pinning the fast-path packet engine to the legacy
//! `%`-reduction engine:
//!
//! * fast-range index selection is a pure remapping of the same full-range
//!   hash value the `mod` reduction consumed — in range, monotone in the
//!   raw value, and identical whether derived per-call or via
//!   [`BatchHasher`];
//! * a FermatSketch built with fast-range indexing decodes the **identical
//!   flowset** (same flows, same counts, same success) as the legacy
//!   `%`-based sketch fed the same stream — the bucket *positions* are
//!   remapped, the sketch *contents* as observed by any consumer are not.

use chm_bench::perf::LegacyFermat;
use chm_common::hash::{BatchHasher, FastRange, HashFamily, PairwiseHash};
use chm_common::prime::MERSENNE_P;
use chm_fermat::{FermatConfig, FermatSketch};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both reductions are functions of the same raw value; fast-range is
    /// in-range, matches its closed form, and agrees with the batched path.
    #[test]
    fn fast_range_is_a_pure_remapping_of_raw(
        seed in any::<u64>(),
        keys in vec(any::<u64>(), 1..64),
        m in 1usize..100_000,
    ) {
        let h = PairwiseHash::from_seed(seed);
        let r = FastRange::new(m);
        for &key in &keys {
            let raw = h.raw(key);
            prop_assert!(raw < MERSENNE_P);
            // Closed forms of both reductions, from the same raw value.
            let fast = ((raw as u128 * m as u128) >> 61) as usize;
            prop_assert_eq!(h.index(key, m), fast);
            prop_assert_eq!(r.reduce(raw), fast);
            prop_assert!(fast < m);
            prop_assert_eq!(h.index_mod(key, m), (raw % m as u64) as usize);
            // Batched derivation is bit-identical.
            let bh = BatchHasher::new(key);
            prop_assert_eq!(bh.raw(&h), raw);
            prop_assert_eq!(bh.index(&h, r), fast);
        }
    }

    /// Fast-range is monotone in the raw value: the remapping partitions
    /// the hash domain into `m` contiguous intervals (the structural
    /// property that makes it a valid uniform range reduction).
    #[test]
    fn fast_range_is_monotone(mut raws in vec(0..MERSENNE_P, 2..64), m in 1usize..10_000) {
        raws.sort_unstable();
        let r = FastRange::new(m);
        for w in raws.windows(2) {
            prop_assert!(r.reduce(w[0]) <= r.reduce(w[1]));
        }
    }

    /// Same flows, same hash seeds: the fast-range sketch and the legacy
    /// `%`-based sketch decode identical flowsets. Loads stay below the
    /// decodable threshold so both decodes succeed deterministically; when
    /// either engine reports failure (an all-arrays collision, possible at
    /// any load), the trial is skipped for that seed — the comparison
    /// demands agreement of *successful* contents.
    #[test]
    fn fast_and_mod_sketches_decode_identical_flowsets(
        seed in any::<u64>(),
        flows in vec((any::<u32>(), 1i64..200), 1..100),
    ) {
        // ≥ 2.4 buckets/flow: deep in the decodable regime.
        let cfg = FermatConfig::standard(80, seed);
        let mut fast = FermatSketch::<u32>::new(cfg);
        let mut legacy = LegacyFermat::<u32>::new(cfg);
        let mut truth: HashMap<u32, i64> = HashMap::new();
        for &(f, w) in &flows {
            fast.insert_weighted(&f, w);
            legacy.insert_weighted(&f, w);
            *truth.entry(f).or_insert(0) += w;
        }
        let fast_r = fast.decode();
        let (legacy_flows, legacy_ok) = legacy.decode_cloned();
        if fast_r.success && legacy_ok {
            prop_assert_eq!(&fast_r.flows, &legacy_flows);
            prop_assert_eq!(&fast_r.flows, &truth);
        }
        // Sanity: at this load at least one of the two engines decodes in
        // the overwhelming majority of trials; both failing means the flow
        // set itself is degenerate for this seed, which proptest retries
        // elsewhere. No assertion either way — agreement is the property.
    }

    /// The family-level batched index derivation matches the sequential
    /// per-function calls for every function in the family.
    #[test]
    fn batch_hasher_agrees_with_family(
        seed in any::<u64>(),
        key in any::<u64>(),
        d in 1usize..6,
        m in 1usize..50_000,
    ) {
        let fam = HashFamily::new(seed, d);
        let bh = BatchHasher::new(key);
        let r = FastRange::new(m);
        for (i, h) in fam.as_slice().iter().enumerate() {
            prop_assert_eq!(bh.index(h, r), fam.index(i, key, m));
        }
    }
}

/// Deterministic, non-proptest check on a fixed ensemble: across many
/// seeds, both engines agree on success *and* contents virtually always at
/// safe load (this catches a systematically broken remapping that the
/// skip-on-failure property above could mask).
#[test]
fn fast_and_mod_engines_agree_on_fixed_ensemble() {
    let mut both_ok = 0;
    for seed in 0..60u64 {
        let cfg = FermatConfig::standard(64, seed);
        let mut fast = FermatSketch::<u32>::new(cfg);
        let mut legacy = LegacyFermat::<u32>::new(cfg);
        for i in 0..70u32 {
            let f = i.wrapping_mul(0x9e37) ^ seed as u32;
            fast.insert_weighted(&f, 1 + (i as i64 % 7));
            legacy.insert_weighted(&f, 1 + (i as i64 % 7));
        }
        let fr = fast.decode();
        let (lf, lok) = legacy.decode_cloned();
        if fr.success && lok {
            assert_eq!(fr.flows, lf, "seed {seed}");
            both_ok += 1;
        }
    }
    assert!(both_ok >= 55, "only {both_ok}/60 trials decoded on both engines");
}
