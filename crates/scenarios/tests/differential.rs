//! The differential harness: for **every** scenario in the golden matrix,
//! the per-packet replay and the burst replay must be observationally
//! identical — same ground-truth epoch reports, same collected sketch
//! state on every edge switch every epoch, same controller decode, same
//! staged reconfigurations, same scores. This is the PR-2 burst-replay
//! equivalence contract extended across the full adversarial matrix: it
//! holds because impairments are realized above the hook boundary, never
//! inside one replay path.

use chm_scenarios::{standard_matrix, ReplayMode, Scenario, ScenarioStack};

/// Steps both replay modes epoch by epoch and asserts bit-identical
/// observables throughout.
fn assert_differential(s: &Scenario) {
    let mut per_packet = ScenarioStack::new(s);
    let mut burst = ScenarioStack::new(s);
    let base = s.base_trace();
    for _ in 0..s.epochs {
        let a = per_packet.step_epoch(s, &base, ReplayMode::PerPacket);
        let b = burst.step_epoch(s, &base, ReplayMode::Burst);
        let e = a.report.epoch;
        let name = &s.name;
        assert_eq!(a.report.epoch, b.report.epoch, "{name}: epoch index");
        assert_eq!(a.report.delivered, b.report.delivered, "{name} e{e}: delivered");
        assert_eq!(a.report.lost, b.report.lost, "{name} e{e}: lost");
        assert_eq!(a.report.dropped_at, b.report.dropped_at, "{name} e{e}: dropped_at");
        assert_eq!(a.report.lost_at, b.report.lost_at, "{name} e{e}: lost_at");
        assert_eq!(
            a.report.hops_histogram, b.report.hops_histogram,
            "{name} e{e}: hops histogram"
        );
        assert_eq!(
            a.report.queue_depth, b.report.queue_depth,
            "{name} e{e}: queue-depth telemetry"
        );
        assert_eq!(a.received, b.received, "{name} e{e}: report-loss mask");
        assert_eq!(a.collected.len(), b.collected.len(), "{name} e{e}: edges");
        for (i, (ga, gb)) in a.collected.iter().zip(&b.collected).enumerate() {
            assert_eq!(ga.runtime, gb.runtime, "{name} e{e} edge{i}: runtime");
            assert_eq!(ga.classifier, gb.classifier, "{name} e{e} edge{i}: classifier");
            assert_eq!(
                ga.ingress_pkts, gb.ingress_pkts,
                "{name} e{e} edge{i}: ingress counter"
            );
            assert_eq!(
                ga.egress_pkts, gb.egress_pkts,
                "{name} e{e} edge{i}: egress counter"
            );
            assert_eq!(ga.up_hh, gb.up_hh, "{name} e{e} edge{i}: up_hh");
            assert_eq!(ga.up_hl, gb.up_hl, "{name} e{e} edge{i}: up_hl");
            assert_eq!(ga.up_ll, gb.up_ll, "{name} e{e} edge{i}: up_ll");
            assert_eq!(ga.down_hl, gb.down_hl, "{name} e{e} edge{i}: down_hl");
            assert_eq!(ga.down_ll, gb.down_ll, "{name} e{e} edge{i}: down_ll");
        }
        assert_eq!(a.loss_report, b.loss_report, "{name} e{e}: loss report");
        assert_eq!(a.localization, b.localization, "{name} e{e}: localization");
        assert_eq!(a.staged, b.staged, "{name} e{e}: staged runtime");
        assert_eq!(a.metrics, b.metrics, "{name} e{e}: metrics");
    }
}

/// Shrinks a matrix scenario to differential-test size (the equivalence is
/// exact at any size; small keeps the full matrix fast).
fn shrink(mut s: Scenario) -> Scenario {
    s.n_flows = 300;
    s.epochs = 3;
    s
}

#[test]
fn burst_replay_is_byte_identical_across_the_whole_matrix() {
    for s in standard_matrix(true).into_iter().map(shrink) {
        assert_differential(&s);
    }
}

#[test]
fn differential_holds_under_maximal_impairment_intensity() {
    // Crank every impairment far beyond the matrix's calibrated levels —
    // equivalence is structural, not parametric.
    let s = Scenario::builder("torture")
        .seed(0xBAD)
        .flows(200)
        .epochs(4)
        .loss(chm_workloads::VictimSelection::RandomRatio(0.3), 0.2)
        .gilbert_elliott(0.2, 0.3, 0.05, 0.9)
        .duplication(0.5)
        .reordering(0.8, 32)
        .clock_skew(0.4)
        .report_loss(0.5)
        .churn(0.4)
        .flood(2, 20, 3_000)
        .victim_drift(0.5)
        .incast(0.4, 5)
        .derate_switch(chm_netsim::SwitchRole::Aggregation, 1, 0.2)
        .rolling_tor(1, 0.3)
        .build();
    assert_differential(&s);
}

#[test]
fn differential_holds_under_queue_torture() {
    // The time-resolved layer at full intensity — a synchronized microburst
    // on top of a slow-draining ToR with RED early drop, composed with
    // every channel impairment and workload dynamic. Equivalence is
    // structural: the slotted fates realize above the hook boundary like
    // everything else.
    let s = Scenario::builder("queue-torture")
        .seed(0xBA_D0_0B)
        .flows(200)
        .epochs(4)
        .loss(chm_workloads::VictimSelection::RandomRatio(0.2), 0.1)
        .queue_model(6)
        .microburst(0.6, 2)
        .slow_drain_tor(2, 0.35)
        .queue_red(0.2, 1.5, 0.3)
        .gilbert_elliott(0.1, 0.3, 0.02, 0.7)
        .duplication(0.3)
        .reordering(0.5, 16)
        .clock_skew(0.3)
        .report_loss(0.3)
        .churn(0.3)
        .flood(2, 15, 2_000)
        .victim_drift(0.4)
        .incast(0.3, 4)
        .build();
    assert_differential(&s);
}

#[test]
fn scenario_runs_are_deterministic_per_seed() {
    let s = shrink(standard_matrix(true).remove(9));
    let a = chm_scenarios::run(&s, ReplayMode::Burst);
    let b = chm_scenarios::run(&s, ReplayMode::Burst);
    assert_eq!(a, b, "same seed must reproduce bit-identical results");
    let mut s2 = s.clone();
    s2.seed ^= 1;
    let c = chm_scenarios::run(&s2, ReplayMode::Burst);
    assert_ne!(
        a.epochs, c.epochs,
        "a different seed must realize a different run"
    );
}
