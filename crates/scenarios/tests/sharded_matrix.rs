//! The sharded differential harness: a [`ScenarioStack`] running on the
//! sharded epoch pipeline (`set_sharding`) must be observationally
//! identical to the serial stack — same ground-truth reports, same
//! collected sketch state on every edge every epoch, same decode,
//! localization, staged reconfigurations, and scores — for **every**
//! scenario in the golden matrix, on **every** fabric of the topology
//! zoo, in **both** replay modes, at any shard/worker layout.

use chm_netsim::Sharding;
use chm_scenarios::{standard_matrix, ReplayMode, Scenario, ScenarioStack, TopologySpec};
use chm_workloads::VictimSelection;

/// Steps the serial and sharded stacks epoch by epoch and asserts
/// bit-identical observables throughout.
fn assert_sharded_identical(s: &Scenario, sharding: Sharding, mode: ReplayMode) {
    let mut serial = ScenarioStack::new(s);
    let mut sharded = ScenarioStack::new(s);
    sharded.set_sharding(sharding);
    let base = s.base_trace();
    for _ in 0..s.epochs {
        let a = serial.step_epoch(s, &base, mode);
        let b = sharded.step_epoch(s, &base, mode);
        let e = a.report.epoch;
        let name = &s.name;
        let tag = format!("{name} e{e} {mode:?} {sharding:?}");
        assert_eq!(a.report, b.report, "{tag}: epoch report");
        assert_eq!(a.received, b.received, "{tag}: report-loss mask");
        assert_eq!(a.collected.len(), b.collected.len(), "{tag}: edge count");
        for (i, (ga, gb)) in a.collected.iter().zip(&b.collected).enumerate() {
            assert_eq!(ga.runtime, gb.runtime, "{tag} edge{i}: runtime");
            assert_eq!(ga.classifier, gb.classifier, "{tag} edge{i}: classifier");
            assert_eq!(ga.ingress_pkts, gb.ingress_pkts, "{tag} edge{i}: ingress counter");
            assert_eq!(ga.egress_pkts, gb.egress_pkts, "{tag} edge{i}: egress counter");
            assert_eq!(ga.up_hh, gb.up_hh, "{tag} edge{i}: up_hh");
            assert_eq!(ga.up_hl, gb.up_hl, "{tag} edge{i}: up_hl");
            assert_eq!(ga.up_ll, gb.up_ll, "{tag} edge{i}: up_ll");
            assert_eq!(ga.down_hl, gb.down_hl, "{tag} edge{i}: down_hl");
            assert_eq!(ga.down_ll, gb.down_ll, "{tag} edge{i}: down_ll");
        }
        assert_eq!(a.loss_report, b.loss_report, "{tag}: loss report");
        assert_eq!(a.localization, b.localization, "{tag}: localization");
        assert_eq!(a.staged, b.staged, "{tag}: staged runtime");
        assert_eq!(a.metrics, b.metrics, "{tag}: metrics");
    }
}

/// Shrinks a matrix scenario to differential-test size (the equivalence is
/// exact at any size; small keeps the full matrix fast).
fn shrink(mut s: Scenario) -> Scenario {
    s.n_flows = 300;
    s.epochs = 2;
    s
}

/// Every scenario of the golden adversarial matrix, both replay modes, on
/// a shard count that does not divide the edge count (the asymmetric case)
/// with more workers than the host has cores.
#[test]
fn sharded_stack_matches_serial_across_the_whole_matrix() {
    for s in standard_matrix(true).into_iter().map(shrink) {
        for mode in [ReplayMode::PerPacket, ReplayMode::Burst] {
            assert_sharded_identical(&s, Sharding { shards: 3, workers: 2 }, mode);
        }
    }
}

/// The topology-sweep fabrics under the shared adversarial shape
/// (congestion coupling + a structural hot spot, like the bench sweep),
/// at several shard counts including more shards than some fabrics have
/// edge switches.
#[test]
fn sharded_stack_matches_serial_on_every_sweep_fabric() {
    let fabrics: Vec<(&str, TopologySpec)> = vec![
        ("testbed", TopologySpec::Testbed),
        ("fat-tree-k4", TopologySpec::KaryFatTree { k: 4 }),
        ("fat-tree-k8", TopologySpec::KaryFatTree { k: 8 }),
        ("leaf-spine-8x4", TopologySpec::LeafSpine { n_leaf: 8, n_spine: 4, hosts_per_leaf: 2 }),
        ("leaf-spine-asym", TopologySpec::LeafSpine { n_leaf: 6, n_spine: 3, hosts_per_leaf: 4 }),
        ("abilene-wan", TopologySpec::AbileneWan { hosts_per_node: 2 }),
    ];
    for (i, (name, spec)) in fabrics.into_iter().enumerate() {
        let b = Scenario::builder(name)
            .seed(0xFAB0 ^ i as u64)
            .topology(spec)
            .flows(300)
            .epochs(2)
            .loss(VictimSelection::RandomRatio(0.1), 0.05)
            .congestion();
        let s = match spec {
            TopologySpec::AbileneWan { hosts_per_node } => {
                let hub = chm_netsim::WanGraph::abilene(hosts_per_node).hub();
                b.derate_switch(chm_netsim::SwitchRole::Edge, hub, 0.3)
            }
            _ => b.derate_switch(chm_netsim::SwitchRole::Core, 0, 0.3),
        }
        .build();
        for sharding in [Sharding::of(2), Sharding { shards: 5, workers: 2 }] {
            assert_sharded_identical(&s, sharding, ReplayMode::Burst);
        }
        // Per-packet on one sharding keeps the fabric axis covered in both
        // modes without doubling the suite's runtime.
        assert_sharded_identical(&s, Sharding::of(3), ReplayMode::PerPacket);
    }
}
