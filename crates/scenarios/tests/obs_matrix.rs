//! Byte-identical telemetry over the full golden scenario matrix: two
//! independent runs of all 17 scenarios must render the exact same
//! Prometheus text and JSON metrics (the zero-clock determinism contract).

use chm_obs::{render_json_metrics, render_prometheus};
use chm_scenarios::{matrix_registry, run, standard_matrix, ReplayMode, Scenario, ScenarioResult};

/// Shrinks a matrix scenario to test size (determinism is exact at any
/// size; small keeps the double run of all 17 scenarios fast).
fn shrink(mut s: Scenario) -> Scenario {
    s.n_flows = 300;
    s.epochs = 2;
    s
}

fn run_matrix() -> Vec<ScenarioResult> {
    standard_matrix(true)
        .into_iter()
        .map(shrink)
        .map(|s| run(&s, ReplayMode::Burst))
        .collect()
}

#[test]
fn matrix_rendering_is_byte_identical_across_two_runs() {
    let first = run_matrix();
    let second = run_matrix();
    assert_eq!(first.len(), 17, "the golden matrix holds 17 scenarios");
    let (reg_a, reg_b) = (matrix_registry(&first), matrix_registry(&second));
    let (prom_a, prom_b) = (render_prometheus(&reg_a), render_prometheus(&reg_b));
    assert_eq!(prom_a, prom_b, "Prometheus text must be byte-identical");
    assert_eq!(
        render_json_metrics(&reg_a),
        render_json_metrics(&reg_b),
        "JSON metrics must be byte-identical"
    );
    // Sanity on the rendered content: every scenario appears as a series.
    for r in &first {
        assert!(
            prom_a.contains(&format!("scenario=\"{}\"", r.name)),
            "missing series for scenario {}",
            r.name
        );
    }
}
