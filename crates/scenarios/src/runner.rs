//! Drives a [`Scenario`] through the full measurement pipeline — trace
//! replay with impairments, zero-clone collection over a (possibly lossy)
//! control channel, controller analysis, reconfiguration, epoch flip — and
//! scores every epoch's loss detection against the simulator's ground
//! truth.
//!
//! The stack mirrors `chamelemon::ChameleMon` but keeps every stage
//! explicit so the differential tests can compare the per-packet and burst
//! replay paths epoch by epoch: [`ScenarioStack::step_epoch`] returns the
//! epoch's ground truth, the collected sketch groups of **all** switches
//! (before report loss filters them), and the controller's decoded view.

use crate::Scenario;
use chamelemon::config::DataPlaneConfig;
use chamelemon::{
    CollectedGroup, Controller, EdgeDataPlane, EpochEvidence, Localization, Localizer,
    RuntimeConfig,
};
use chm_baselines::{FlowRadar, LossDetector, LossRadar};
use chm_common::metrics::{average_relative_error, detection_score};
use chm_common::FiveTuple;
use chm_netsim::sim::EpochReport;
use chm_netsim::{ShardedReplay, Sharding, SimConfig, Simulator, SiteArray};
use chm_workloads::Trace;
use std::collections::{HashMap, HashSet};

/// Which replay path drives the epoch. Both must be observationally
/// identical under every scenario — that is the burst-replay equivalence
/// contract the impairment layer preserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// One hook call per packet ([`Simulator::run_epoch_scenario`]).
    PerPacket,
    /// One hook call per flow segment
    /// ([`Simulator::run_epoch_burst_scenario`]).
    Burst,
}

/// One epoch's scorecard.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index.
    pub epoch: u64,
    /// Victim-detection F1 (reported victims vs ground-truth victims).
    pub f1: f64,
    /// Victim-detection precision.
    pub precision: f64,
    /// Victim-detection recall.
    pub recall: f64,
    /// Average relative error of the per-victim loss estimates.
    pub are: f64,
    /// All deployed encoders decoded this epoch (HH everywhere, and each
    /// delta encoder that had memory). `false` when no report arrived.
    pub decode_ok: bool,
    /// Switch reports that reached the controller.
    pub reports_received: usize,
    /// Ground-truth victim flows.
    pub true_victims: usize,
    /// Victim flows the controller reported.
    pub reported_victims: usize,
    /// Flows live this epoch.
    pub flows: usize,
    /// Packets sent into the fabric this epoch.
    pub packets_sent: u64,
    /// Localization top-1 hit rate: the fraction of ground-truth victims
    /// whose true dominant drop switch is the controller's first-ranked
    /// candidate (1.0 when the epoch has no victims).
    pub loc_top1: f64,
    /// Localization top-3 hit rate.
    pub loc_top3: f64,
    /// LossRadar baseline: victim-detection F1 over the same epoch (0 when
    /// its IBF fails to decode).
    pub lr_f1: f64,
    /// LossRadar baseline: did the delta IBF decode?
    pub lr_decode_ok: bool,
    /// LossRadar baseline: localization top-1 hit rate (its decoded victims
    /// fed through the same blame localizer).
    pub lr_top1: f64,
    /// LossRadar baseline: localization top-3 hit rate.
    pub lr_top3: f64,
    /// FlowRadar baseline: victim-detection F1 over the same epoch (0 when
    /// either direction's counting table fails to decode).
    pub fr_f1: f64,
    /// FlowRadar baseline: did both counting tables decode? (Its memory
    /// scales with *flows*, so flow-heavy epochs are what break it.)
    pub fr_decode_ok: bool,
    /// FlowRadar baseline: localization top-1 hit rate.
    pub fr_top1: f64,
    /// FlowRadar baseline: localization top-3 hit rate.
    pub fr_top3: f64,
    /// Deepest per-switch queue this epoch (packets; 0 when the scenario
    /// runs without the queue model).
    pub qdepth_max: f64,
}

/// Everything observable from one stepped epoch — enough for the
/// differential tests to compare two replay modes bit for bit.
pub struct EpochTrace {
    /// Ground truth from the fabric.
    pub report: EpochReport<FiveTuple>,
    /// The collected groups of **all** edges (pre report-loss).
    pub collected: Vec<CollectedGroup<FiveTuple>>,
    /// Which of those reports reached the controller.
    pub received: Vec<bool>,
    /// The controller's per-victim loss estimates.
    pub loss_report: HashMap<FiveTuple, u64>,
    /// The controller's localization pass: per-victim candidate switches
    /// and the network-wide suspect ranking.
    pub localization: Localization<FiveTuple>,
    /// The runtime staged for the next epoch.
    pub staged: RuntimeConfig,
    /// The epoch's scorecard.
    pub metrics: EpochMetrics,
}

/// A whole scenario's result: per-epoch scorecards plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Replay mode that produced the result.
    pub mode: ReplayMode,
    /// Per-epoch scorecards, in epoch order.
    pub epochs: Vec<EpochMetrics>,
    /// Mean victim-detection F1 over all epochs.
    pub mean_f1: f64,
    /// Mean per-victim loss-estimate ARE over all epochs.
    pub mean_are: f64,
    /// Fraction of epochs with every deployed encoder decoding.
    pub decode_success: f64,
    /// Fraction of switch reports that survived the control channel.
    pub report_delivery: f64,
    /// Mean localization top-1 hit rate over all epochs.
    pub mean_loc_top1: f64,
    /// Mean localization top-3 hit rate over all epochs.
    pub mean_loc_top3: f64,
    /// LossRadar baseline: mean victim-detection F1.
    pub lr_mean_f1: f64,
    /// LossRadar baseline: fraction of epochs whose delta IBF decoded.
    pub lr_decode_success: f64,
    /// LossRadar baseline: mean localization top-1 hit rate.
    pub lr_mean_top1: f64,
    /// LossRadar baseline: mean localization top-3 hit rate.
    pub lr_mean_top3: f64,
    /// FlowRadar baseline: mean victim-detection F1.
    pub fr_mean_f1: f64,
    /// FlowRadar baseline: fraction of epochs whose tables decoded.
    pub fr_decode_success: f64,
    /// FlowRadar baseline: mean localization top-1 hit rate.
    pub fr_mean_top1: f64,
    /// FlowRadar baseline: mean localization top-3 hit rate.
    pub fr_mean_top3: f64,
    /// Mean over epochs of the deepest per-switch queue (packets).
    pub mean_qdepth_max: f64,
}

/// The live stack: per-edge data planes, the central controller, and the
/// simulator, stepped one epoch at a time.
pub struct ScenarioStack {
    /// One data plane per edge switch.
    pub edges: Vec<EdgeDataPlane<FiveTuple>>,
    /// The central controller.
    pub controller: Controller<FiveTuple>,
    /// The fabric simulator.
    pub simulator: Simulator,
    /// The LossRadar comparison track's localizer (its decoded victims run
    /// through the same blame accumulation as ChameleMon's).
    lr_localizer: Localizer,
    /// The FlowRadar comparison track's localizer.
    fr_localizer: Localizer,
    /// When set, epochs replay through the sharded engine instead of the
    /// serial paths — byte-identical output at any shard/worker count (the
    /// `sharded_matrix` differential suite pins it), so this is purely an
    /// execution-strategy knob.
    sharded: Option<ShardedReplay<FiveTuple>>,
}

impl ScenarioStack {
    /// Builds the stack for `s` over the §5.2 testbed topology with the
    /// scaled-down data-plane configuration (the scenario engine's default;
    /// the matrix sizes workloads to it).
    pub fn new(s: &Scenario) -> Self {
        Self::with_config(s, DataPlaneConfig::small(s.seed ^ CFG_SALT))
    }

    /// Builds the stack with an explicit data-plane configuration.
    pub fn with_config(s: &Scenario, cfg: DataPlaneConfig) -> Self {
        let topology = s.build_topology();
        let runtime = RuntimeConfig::initial(&cfg);
        let edges = (0..topology.n_edges())
            .map(|_| EdgeDataPlane::new(cfg.clone(), runtime))
            .collect();
        let mut controller = Controller::new(cfg);
        controller.enable_localization(topology.clone());
        ScenarioStack {
            edges,
            controller,
            lr_localizer: Localizer::new(topology.clone()),
            fr_localizer: Localizer::new(topology.clone()),
            simulator: Simulator::new(
                topology,
                SimConfig { epoch_ms: 50.0, seed: s.seed ^ 0x51b },
            ),
            sharded: None,
        }
    }

    /// Replays subsequent epochs through the sharded engine with `sharding`.
    /// Output is byte-identical to the serial paths at any layout; the knob
    /// only changes how the replay work is scheduled.
    pub fn set_sharding(&mut self, sharding: Sharding) {
        self.sharded = Some(ShardedReplay::new(sharding));
    }

    /// Runs one epoch of `s` under `mode`: evolve the workload, replay with
    /// impairments, collect (dropping lost reports), analyze, reconfigure,
    /// flip — returning everything observable for scoring and differential
    /// comparison.
    pub fn step_epoch(
        &mut self,
        s: &Scenario,
        base: &Trace<FiveTuple>,
        mode: ReplayMode,
    ) -> EpochTrace {
        let epoch = self.simulator.current_epoch();
        let trace = s.trace_for_epoch(base, epoch);
        let plan = s.plan_for_epoch(&trace, epoch);
        let report = match (&mut self.sharded, mode) {
            (Some(eng), ReplayMode::PerPacket) => eng.run_epoch_scenario(
                &mut self.simulator,
                &trace,
                &plan,
                &s.impairments,
                &mut self.edges,
            ),
            (Some(eng), ReplayMode::Burst) => eng.run_epoch_burst_scenario(
                &mut self.simulator,
                &trace,
                &plan,
                &s.impairments,
                &mut self.edges,
            ),
            (None, mode) => {
                let mut hooks = SiteArray(&mut self.edges);
                match mode {
                    ReplayMode::PerPacket => self.simulator.run_epoch_scenario(
                        &trace,
                        &plan,
                        &s.impairments,
                        &mut hooks,
                    ),
                    ReplayMode::Burst => self.simulator.run_epoch_burst_scenario(
                        &trace,
                        &plan,
                        &s.impairments,
                        &mut hooks,
                    ),
                }
            }
        };
        let ts_bit = (report.epoch & 1) as u8;
        let collected: Vec<CollectedGroup<FiveTuple>> =
            self.edges.iter_mut().map(|e| e.take_group(ts_bit)).collect();
        let received = s.reports_received(report.epoch, collected.len());
        // Only a lossy control channel pays for sketch clones: the common
        // all-arrived epoch analyzes the taken groups in place, preserving
        // PR 2's zero-clone collection on the paths that benchmark it.
        let analysis = if received.iter().all(|&keep| keep) {
            self.controller.analyze_epoch(&collected)
        } else {
            let arrived: Vec<CollectedGroup<FiveTuple>> = collected
                .iter()
                .zip(&received)
                .filter(|&(_, &keep)| keep)
                .map(|(g, _)| g.clone())
                .collect();
            self.controller.analyze_epoch(&arrived)
        };
        let staged = self.controller.reconfigure(&analysis);
        for e in &mut self.edges {
            e.stage_runtime(staged);
            e.flip(ts_bit);
        }
        // The switches' queue-depth exports (INT-style telemetry) ride along
        // with the sketch reports: deep queues corroborate blame. Scenarios
        // without the queue model export nothing, and the localizer is then
        // bit-identical to the telemetry-free pass.
        let localization = self
            .controller
            .localize_with_telemetry(&analysis, &report.queue_depth)
            .expect("stack always enables localization");
        let (loc_top1, loc_top3) = localization_hits(&report, &localization);

        // The LossRadar comparison track: an idealized per-packet IBF pair
        // fed from the realized ground truth (upstream sees every packet,
        // downstream the delivered ones), provisioned for ~1.5% packet
        // loss — the paper's premise that its memory scales with *lost
        // packets*, which heavy scenarios are expected to overflow.
        let (lr_report, lr_decode_ok) = lossradar_epoch(s, &trace, &report);
        let lr_score = {
            let truth: HashSet<FiveTuple> = report.lost.keys().copied().collect();
            detection_score(lr_report.keys().copied(), &truth)
        };
        // LossRadar decodes victims only — it has no flowsets to exonerate
        // with, so its localizer runs on pure victim blame. It *does* get
        // the same fabric queue telemetry as ChameleMon's localizer: the
        // INT-style exports come from the switches, not from the
        // measurement system, so a fair three-way comparison hands every
        // track the same corroborating evidence.
        let lr_loc = self.lr_localizer.observe_evidence(EpochEvidence {
            loss_report: &lr_report,
            confidence: &HashMap::new(),
            traffic: &HashMap::new(),
            queue_depth: &report.queue_depth,
        });
        let (lr_top1, lr_top3) = localization_hits(&report, &lr_loc);

        // The FlowRadar comparison track: Bloom filter + IBLT counting
        // tables recording *every flow's* exact size on both sides of the
        // fabric, provisioned for the scenario's base flow count — the
        // paper's premise that its memory scales with the number of
        // *flows* (category 3), so flow-heavy epochs (floods, churn
        // arrivals) are what overflow it, not loss-heavy ones.
        let (fr_report, fr_decode_ok) = flowradar_epoch(s, &trace, &report);
        let fr_score = {
            let truth: HashSet<FiveTuple> = report.lost.keys().copied().collect();
            detection_score(fr_report.keys().copied(), &truth)
        };
        let fr_loc = self.fr_localizer.observe_evidence(EpochEvidence {
            loss_report: &fr_report,
            confidence: &HashMap::new(),
            traffic: &HashMap::new(),
            queue_depth: &report.queue_depth,
        });
        let (fr_top1, fr_top3) = localization_hits(&report, &fr_loc);

        let truth: HashSet<FiveTuple> = report.lost.keys().copied().collect();
        let score = detection_score(analysis.loss_report.keys().copied(), &truth);
        let are = average_relative_error(&report.lost, &analysis.loss_report);
        let rt = analysis.runtime;
        let decode_ok = analysis.switches_reporting > 0
            && analysis.hh_decode_ok
            && (rt.partition.m_hl == 0 || analysis.hl_flowset.is_some())
            && (rt.partition.m_ll == 0 || analysis.ll_flowset.is_some());
        let metrics = EpochMetrics {
            epoch: report.epoch,
            f1: score.f1,
            precision: score.precision,
            recall: score.recall,
            are,
            decode_ok,
            reports_received: analysis.switches_reporting,
            true_victims: truth.len(),
            reported_victims: analysis.loss_report.len(),
            flows: trace.num_flows(),
            packets_sent: report.total_sent(),
            loc_top1,
            loc_top3,
            lr_f1: lr_score.f1,
            lr_decode_ok,
            lr_top1,
            lr_top3,
            fr_f1: fr_score.f1,
            fr_decode_ok,
            fr_top1,
            fr_top3,
            qdepth_max: report
                .queue_depth
                .values()
                .map(|d| d.max_depth)
                .fold(0.0, f64::max),
        };
        EpochTrace {
            report,
            collected,
            received,
            loss_report: analysis.loss_report,
            localization,
            staged,
            metrics,
        }
    }
}

/// Top-1/top-3 localization hit rates of one epoch: over the ground-truth
/// victims, how often the victim's true dominant drop switch leads (or
/// makes the top 3 of) its ranked candidate list. Victims the detector
/// missed entirely count as localization misses — the metric couples
/// detection and localization on purpose (an unfound victim is an
/// unlocalized one). Epochs with no victims score 1.0.
pub fn localization_hits(
    report: &EpochReport<FiveTuple>,
    loc: &Localization<FiveTuple>,
) -> (f64, f64) {
    let mut total = 0u64;
    let mut hit1 = 0u64;
    let mut hit3 = 0u64;
    // Deterministic victim order: `lost_at` is a HashMap, so sort its keys
    // before walking them (the hit counters would commute, but a fixed
    // order keeps any future per-victim output stable too).
    let mut victims: Vec<&FiveTuple> = report.lost_at.keys().collect();
    victims.sort_unstable();
    for f in victims {
        let Some(truth) = report.dominant_drop_switch(f) else { continue };
        total += 1;
        if let Some(cands) = loc.per_victim.get(f) {
            if cands.first() == Some(&truth) {
                hit1 += 1;
            }
            if cands.iter().take(3).any(|&s| s == truth) {
                hit3 += 1;
            }
        }
    }
    if total == 0 {
        (1.0, 1.0)
    } else {
        (hit1 as f64 / total as f64, hit3 as f64 / total as f64)
    }
}

/// Runs the per-epoch LossRadar baseline and returns its decoded victim
/// loss map (empty on decode failure) plus the decode outcome.
fn lossradar_epoch(
    s: &Scenario,
    trace: &Trace<FiveTuple>,
    report: &EpochReport<FiveTuple>,
) -> (HashMap<FiveTuple, u64>, bool) {
    let cells = (report.total_sent() as f64 * 0.015).max(256.0);
    let memory_bytes = (cells * 10.0) as usize;
    let mut lr: LossRadar<FiveTuple> =
        LossRadar::new(memory_bytes, s.seed ^ LR_SALT ^ report.epoch);
    for &(f, pkts) in &trace.flows {
        let lost = report.lost.get(&f).copied().unwrap_or(0);
        for seq in 0..pkts {
            lr.observe_upstream(&f, seq as u32);
        }
        for seq in lost..pkts {
            lr.observe_downstream(&f, seq as u32);
        }
    }
    match lr.decode_losses() {
        Some(m) => (m, true),
        None => (HashMap::new(), false),
    }
}

/// Runs the per-epoch FlowRadar baseline and returns its decoded victim
/// loss map (empty on decode failure) plus the decode outcome. Memory is
/// provisioned for ~1.3 cells per *base-trace flow* (decode succeeds w.h.p.
/// just above the 3-hash IBLT threshold), so the table budget tracks the
/// flow count the operator planned for — epochs with materially more flows
/// than planned are the ones that stall the peel.
fn flowradar_epoch(
    s: &Scenario,
    trace: &Trace<FiveTuple>,
    report: &EpochReport<FiveTuple>,
) -> (HashMap<FiveTuple, u64>, bool) {
    let cells = (s.n_flows as f64 * 1.3).max(64.0);
    // The counting table gets 90% of FlowRadar's memory (12 B/cell).
    let memory_bytes = (cells * 12.0 / 0.9) as usize;
    let mut fr: FlowRadar<FiveTuple> =
        FlowRadar::new(memory_bytes, s.seed ^ FR_SALT ^ report.epoch);
    for &(f, pkts) in &trace.flows {
        let lost = report.lost.get(&f).copied().unwrap_or(0);
        fr.observe_upstream_flow(&f, pkts);
        fr.observe_downstream_flow(&f, pkts - lost);
    }
    match fr.decode_losses() {
        Some(m) => (m, true),
        None => (HashMap::new(), false),
    }
}

/// Salt separating the LossRadar hash seeds from the scenario seed.
const LR_SALT: u64 = 0x10_55;

/// Salt separating the FlowRadar hash seeds from the scenario seed.
const FR_SALT: u64 = 0xf10b;

/// Salt separating the data-plane hash seeds from the scenario seed.
pub const CFG_SALT: u64 = 0xd9c0;

/// Runs `s` to completion under `mode` and aggregates the scorecards,
/// using the scaled-down data plane ([`ScenarioStack::new`]).
pub fn run(s: &Scenario, mode: ReplayMode) -> ScenarioResult {
    run_with_config(s, mode, DataPlaneConfig::small(s.seed ^ CFG_SALT))
}

/// Runs `s` under `mode` on an explicit data-plane configuration (the full
/// matrix uses the paper's §5.2 parameters; quick/CI sizing uses
/// [`DataPlaneConfig::small`]).
pub fn run_with_config(
    s: &Scenario,
    mode: ReplayMode,
    cfg: DataPlaneConfig,
) -> ScenarioResult {
    let mut stack = ScenarioStack::with_config(s, cfg);
    let base = s.base_trace();
    let mut epochs = Vec::with_capacity(s.epochs as usize);
    let mut delivered_reports = 0usize;
    let mut total_reports = 0usize;
    for _ in 0..s.epochs {
        let t = stack.step_epoch(s, &base, mode);
        delivered_reports += t.metrics.reports_received;
        total_reports += stack.edges.len();
        epochs.push(t.metrics);
    }
    let n = epochs.len().max(1) as f64;
    let mean_f1 = epochs.iter().map(|e| e.f1).sum::<f64>() / n;
    let mean_are = epochs.iter().map(|e| e.are).sum::<f64>() / n;
    let decode_success =
        epochs.iter().filter(|e| e.decode_ok).count() as f64 / n;
    let report_delivery = if total_reports == 0 {
        1.0
    } else {
        delivered_reports as f64 / total_reports as f64
    };
    let mean_loc_top1 = epochs.iter().map(|e| e.loc_top1).sum::<f64>() / n;
    let mean_loc_top3 = epochs.iter().map(|e| e.loc_top3).sum::<f64>() / n;
    let lr_mean_f1 = epochs.iter().map(|e| e.lr_f1).sum::<f64>() / n;
    let lr_decode_success =
        epochs.iter().filter(|e| e.lr_decode_ok).count() as f64 / n;
    let lr_mean_top1 = epochs.iter().map(|e| e.lr_top1).sum::<f64>() / n;
    let lr_mean_top3 = epochs.iter().map(|e| e.lr_top3).sum::<f64>() / n;
    let fr_mean_f1 = epochs.iter().map(|e| e.fr_f1).sum::<f64>() / n;
    let fr_decode_success =
        epochs.iter().filter(|e| e.fr_decode_ok).count() as f64 / n;
    let fr_mean_top1 = epochs.iter().map(|e| e.fr_top1).sum::<f64>() / n;
    let fr_mean_top3 = epochs.iter().map(|e| e.fr_top3).sum::<f64>() / n;
    let mean_qdepth_max = epochs.iter().map(|e| e.qdepth_max).sum::<f64>() / n;
    ScenarioResult {
        name: s.name.clone(),
        mode,
        epochs,
        mean_f1,
        mean_are,
        decode_success,
        report_delivery,
        mean_loc_top1,
        mean_loc_top3,
        lr_mean_f1,
        lr_decode_success,
        lr_mean_top1,
        lr_mean_top3,
        fr_mean_f1,
        fr_decode_success,
        fr_mean_top1,
        fr_mean_top3,
        mean_qdepth_max,
    }
}
