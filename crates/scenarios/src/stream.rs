//! **Epoch stream adapter** — random-access, endless workload generation
//! for streaming consumers (`chm-serve`).
//!
//! A [`Scenario`] describes a *finite* run (`epochs` bounds the matrix
//! scorer), but every generator it composes — churn, floods, drift,
//! incast, loss plans — is a pure function of `(seed, epoch)` and is
//! defined for **any** epoch. [`EpochStream`] packages that: it owns the
//! scenario and its base trace and hands out the `(trace, plan)` pair for
//! an arbitrary epoch on demand.
//!
//! Two properties matter to the streaming runtime:
//!
//! * **endless** — `epoch` may exceed `scenario.epochs`; the stream never
//!   runs dry, so a soak can run 10k epochs off a 16-epoch scenario
//!   definition;
//! * **random access** — `stream.at(k)` is pure in `k` (no iterator
//!   state), so a process restored from a snapshot at epoch `k` asks for
//!   exactly the epochs it needs and reproduces an uninterrupted run bit
//!   for bit.

use crate::Scenario;
use chm_common::FiveTuple;
use chm_workloads::{LossPlan, Trace};

/// An endless, randomly addressable stream of per-epoch workloads derived
/// from one [`Scenario`]. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct EpochStream {
    scenario: Scenario,
    base: Trace<FiveTuple>,
}

impl EpochStream {
    /// Builds the stream: materializes the base (epoch-0) trace once; every
    /// [`at`](Self::at) call evolves it from there.
    pub fn new(scenario: Scenario) -> Self {
        let base = scenario.base_trace();
        EpochStream { scenario, base }
    }

    /// The scenario this stream realizes.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The workload of epoch `epoch`: the evolved flow set and its loss
    /// plan. Pure in `epoch` — calling twice returns identical values, and
    /// epochs may be requested in any order.
    pub fn at(&self, epoch: u64) -> (Trace<FiveTuple>, LossPlan<FiveTuple>) {
        let trace = self.scenario.trace_for_epoch(&self.base, epoch);
        let plan = self.scenario.plan_for_epoch(&trace, epoch);
        (trace, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_pure_and_endless() {
        let s = Scenario::builder("stream")
            .seed(11)
            .flows(200)
            .epochs(2)
            .churn(0.2)
            .flood(3, 5, 500)
            .victim_drift(0.3)
            .build();
        let st = EpochStream::new(s);
        // Endless: well past the declared epoch budget.
        let far = 100 * st.scenario().epochs;
        let (t1, p1) = st.at(far);
        let (t2, p2) = st.at(far);
        assert_eq!(t1.flows.len(), t2.flows.len());
        assert_eq!(p1.victims.len(), p2.victims.len());
        // Random access: asking out of order changes nothing.
        let (a, _) = st.at(7);
        let _ = st.at(3);
        let (b, _) = st.at(7);
        assert_eq!(a.flows.len(), b.flows.len());
    }
}
