//! **Adversarial scenario engine** for the ChameleMon reproduction.
//!
//! The paper's evaluation (§5) exercises clean Bernoulli/spread loss on a
//! healthy fat-tree. Real networks do worse: they lose packets in
//! correlated bursts, duplicate and reorder them, disagree about what time
//! it is, drop the *measurement reports themselves*, and churn flows under
//! the controller's feet. This crate composes those pathologies into named,
//! seeded, deterministic **scenarios** and drives them through the full
//! stack — `Simulator` → `EdgeDataPlane` → `Controller` — end to end,
//! scoring every epoch's loss detection (F1, ARE) and decode health.
//!
//! Three layers compose:
//!
//! * **per-packet impairments** ([`chm_netsim::impair`]): Gilbert–Elliott
//!   bursty loss, duplication, bounded reordering, per-edge clock skew —
//!   realized per flow *above* the hook boundary, so the per-packet and
//!   burst replays stay byte-identical under every scenario (the PR-2
//!   contract, property-tested in `tests/differential.rs`);
//! * **per-epoch dynamics** ([`chm_workloads`]): flow churn
//!   ([`FlowChurn`]), heavy-hitter floods ([`FloodModel`]), victim drift
//!   ([`VictimDrift`]);
//! * **control-channel loss**: each switch's collected sketch group reaches
//!   the controller only with probability `1 − report_loss` per epoch
//!   (the controller tolerates partial and even empty collections).
//!
//! ```
//! use chm_scenarios::{ReplayMode, Scenario};
//!
//! let s = Scenario::builder("demo")
//!     .seed(7)
//!     .flows(400)
//!     .epochs(3)
//!     .gilbert_elliott(0.02, 0.25, 0.0, 0.5)
//!     .duplication(0.02)
//!     .build();
//! let r = chm_scenarios::run(&s, ReplayMode::Burst);
//! assert_eq!(r.epochs.len(), 3);
//! assert!(r.mean_f1 > 0.5, "bursty loss should still be mostly detected");
//! ```
//!
//! The [`standard_matrix`] is the golden scenario set behind
//! `chm-bench scenarios` and `results/SCENARIOS.json`.

#![forbid(unsafe_code)]

mod matrix;
mod obs;
mod runner;
mod stream;

pub use matrix::standard_matrix;
pub use obs::matrix_registry;
pub use stream::EpochStream;
pub use runner::{
    localization_hits, run, run_with_config, EpochMetrics, EpochTrace, ReplayMode,
    ScenarioResult, ScenarioStack, CFG_SALT,
};

use chm_netsim::impair::{ClockSkew, Duplication, GilbertElliott, ImpairmentSet, Reordering};
use chm_netsim::{
    CongestionModel, Derate, FatTree, KaryFatTree, LeafSpine, QueueModel, RedDrop,
    SwitchRole, Topology, WanGraph,
};
use chm_workloads::{
    testbed_trace, ArrivalProfile, FlowChurn, FloodModel, IncastModel, LossPlan, Trace,
    VictimDrift, VictimSelection, WorkloadKind,
};
use chm_common::hash::mix64;
use chm_common::FiveTuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt separating the base-trace RNG stream from the scenario seed.
const TRACE_SALT: u64 = 0x7261_6365; // "race"
/// Salt separating the loss-plan RNG stream.
const PLAN_SALT: u64 = 0x706c_616e; // "plan"
/// Salt separating the report-channel RNG stream.
const REPORT_SALT: u64 = 0x7265_7074; // "rept"

/// Default time slots per epoch for the queue-dynamics knobs.
pub const DEFAULT_SLOTS: usize = 8;

/// Which fabric from the topology zoo a scenario runs on.
///
/// [`Testbed`](TopologySpec::Testbed) derives a testbed-family fat-tree
/// from the scenario's host count — the historical behavior every existing
/// golden is pinned to. The other variants pick a generator and size the
/// host count themselves (the builder's
/// [`topology`](ScenarioBuilder::topology) setter syncs `n_hosts` so the
/// trace generator addresses every host the fabric has).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Testbed-family fat-tree sized from `n_hosts` (2 hosts per edge,
    /// edge count rounded up to even).
    Testbed,
    /// Textbook k-ary fat-tree (`k` even: `k` pods, `(k/2)²` cores,
    /// `k³/4` hosts).
    KaryFatTree {
        /// The arity.
        k: usize,
    },
    /// Two-tier leaf-spine Clos.
    LeafSpine {
        /// Leaf (ToR) switches.
        n_leaf: usize,
        /// Spine switches.
        n_spine: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
    },
    /// The Abilene WAN backbone (11 nodes, 14 links, asymmetric ECMP).
    AbileneWan {
        /// Hosts per PoP.
        hosts_per_node: usize,
    },
}

impl TopologySpec {
    /// Materializes the fabric. For [`Testbed`](Self::Testbed) the shape
    /// follows the scenario's host count exactly as the pre-zoo runner
    /// derived it (2 hosts per edge, at least one pod), rounding the edge
    /// count up to even — the validated [`FatTree::new`] rejects the odd
    /// shapes the old struct-literal silently mis-wired.
    pub fn build(&self, n_hosts: u32) -> Topology {
        match *self {
            TopologySpec::Testbed => {
                let n_edge = (n_hosts as usize).div_ceil(2).max(2);
                FatTree::new(n_edge + n_edge % 2, 2).into()
            }
            TopologySpec::KaryFatTree { k } => KaryFatTree::new(k).into(),
            TopologySpec::LeafSpine { n_leaf, n_spine, hosts_per_leaf } => {
                LeafSpine::new(n_leaf, n_spine, hosts_per_leaf).into()
            }
            TopologySpec::AbileneWan { hosts_per_node } => {
                WanGraph::abilene(hosts_per_node).into()
            }
        }
    }
}

/// A named, seeded, fully deterministic adversarial scenario: a workload, a
/// loss plan, a set of fabric impairments, per-epoch dynamics, and a
/// control-channel loss rate. Build one with [`Scenario::builder`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (stable key in `SCENARIOS.json`).
    pub name: String,
    /// Master seed; every random choice in the scenario derives from it.
    pub seed: u64,
    /// Number of epochs to run.
    pub epochs: u64,
    /// Flows in the base trace.
    pub n_flows: usize,
    /// Hosts in the fabric (testbed: 8).
    pub n_hosts: u32,
    /// Which fabric the scenario runs on.
    pub topology: TopologySpec,
    /// Flow-size distribution of the base trace.
    pub workload: WorkloadKind,
    /// Victim selection for the loss plan.
    pub selection: VictimSelection,
    /// Per-victim packet loss rate.
    pub loss_rate: f64,
    /// Fabric impairments (loss bursts, duplicates, reordering, skew).
    pub impairments: ImpairmentSet,
    /// Per-epoch flow churn.
    pub churn: Option<FlowChurn>,
    /// Periodic heavy-hitter floods.
    pub flood: Option<FloodModel>,
    /// Per-epoch victim drift.
    pub drift: Option<VictimDrift>,
    /// Many-to-one traffic concentration (pairs with the congestion model
    /// in [`Scenario::impairments`] to create fan-in hot spots).
    pub incast: Option<IncastModel>,
    /// Probability that one switch's collected report is lost in one epoch.
    pub report_loss: f64,
}

impl Scenario {
    /// Starts building a scenario with sane defaults: 8 hosts, DCTCP
    /// workload, 10% random victims at 5% loss, no impairments, no
    /// dynamics, a perfect control channel.
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            inner: Scenario {
                name: name.to_string(),
                seed: 0xc4a3,
                epochs: 4,
                n_flows: 1_000,
                n_hosts: 8,
                topology: TopologySpec::Testbed,
                workload: WorkloadKind::Dctcp,
                selection: VictimSelection::RandomRatio(0.1),
                loss_rate: 0.05,
                impairments: ImpairmentSet::none(),
                churn: None,
                flood: None,
                drift: None,
                incast: None,
                report_loss: 0.0,
            },
        }
    }

    /// Re-pins the master seed, re-deriving every dependent sub-seed the
    /// builder pins at build time (impairments, churn, flood, drift,
    /// incast) — so a seed variant really is an independent realization of
    /// the whole pipeline, not just a different base trace.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.impairments.seed = seed ^ 0x1a7a;
        if let Some(c) = &mut self.churn {
            c.seed = seed ^ 0xc447;
        }
        if let Some(f) = &mut self.flood {
            f.seed = seed ^ 0xf100d;
        }
        if let Some(d) = &mut self.drift {
            d.seed = seed ^ 0xd21f7;
        }
        if let Some(i) = &mut self.incast {
            i.seed = seed ^ 0x0001_ca57;
        }
        self
    }

    /// Materializes the fabric this scenario runs on.
    pub fn build_topology(&self) -> Topology {
        self.topology.build(self.n_hosts)
    }

    /// The base (epoch-0) trace.
    pub fn base_trace(&self) -> Trace<FiveTuple> {
        testbed_trace(
            self.workload,
            self.n_flows,
            self.n_hosts,
            self.seed ^ TRACE_SALT,
        )
    }

    /// The flow set live in `epoch`: the base trace evolved by churn, hit
    /// by any flood due this epoch, then concentrated by any incast.
    pub fn trace_for_epoch(&self, base: &Trace<FiveTuple>, epoch: u64) -> Trace<FiveTuple> {
        let evolved = match &self.churn {
            Some(c) => c.evolve(base, epoch, self.n_hosts, self.workload),
            None => base.clone(),
        };
        let flooded = match &self.flood {
            Some(f) => f.apply(&evolved, epoch, self.n_hosts),
            None => evolved,
        };
        match &self.incast {
            Some(i) => i.apply(&flooded),
            None => flooded,
        }
    }

    /// The loss plan for `epoch` over that epoch's trace.
    pub fn plan_for_epoch(&self, trace: &Trace<FiveTuple>, epoch: u64) -> LossPlan<FiveTuple> {
        match &self.drift {
            Some(d) => d.plan(trace, self.selection, self.loss_rate, epoch),
            None => LossPlan::build(trace, self.selection, self.loss_rate, self.seed ^ PLAN_SALT),
        }
    }

    /// Which of `n_edges` switches' reports reach the controller in
    /// `epoch` — seeded per epoch, independent per switch.
    pub fn reports_received(&self, epoch: u64, n_edges: usize) -> Vec<bool> {
        if self.report_loss <= 0.0 {
            return vec![true; n_edges];
        }
        let mut rng =
            StdRng::seed_from_u64(mix64(self.seed ^ REPORT_SALT).wrapping_add(epoch));
        (0..n_edges).map(|_| !rng.gen_bool(self.report_loss)).collect()
    }
}

/// Fluent [`Scenario`] constructor; every setter returns `self`.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    inner: Scenario,
}

impl ScenarioBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the epoch count.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.inner.epochs = epochs;
        self
    }

    /// Sets the base trace's flow count.
    pub fn flows(mut self, n: usize) -> Self {
        self.inner.n_flows = n;
        self
    }

    /// Sets the host count (and thereby the edge-switch fan-out).
    pub fn hosts(mut self, n: u32) -> Self {
        self.inner.n_hosts = n;
        self
    }

    /// Picks the fabric from the topology zoo. For every non-testbed spec
    /// the host count follows the fabric (the trace generator must address
    /// exactly the hosts the fabric has); [`Testbed`](TopologySpec::Testbed)
    /// keeps deriving the fat-tree from [`hosts`](Self::hosts).
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.inner.topology = spec;
        if !matches!(spec, TopologySpec::Testbed) {
            self.inner.n_hosts = spec.build(self.inner.n_hosts).n_hosts() as u32;
        }
        self
    }

    /// Sets the flow-size workload.
    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.inner.workload = w;
        self
    }

    /// Sets the victim selection and per-victim loss rate.
    pub fn loss(mut self, selection: VictimSelection, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate out of range");
        self.inner.selection = selection;
        self.inner.loss_rate = rate;
        self
    }

    /// Adds Gilbert–Elliott bursty loss.
    pub fn gilbert_elliott(
        mut self,
        p_enter_bad: f64,
        p_exit_bad: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for p in [p_enter_bad, p_exit_bad, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "GE probability out of range");
        }
        self.inner.impairments.gilbert_elliott =
            Some(GilbertElliott { p_enter_bad, p_exit_bad, loss_good, loss_bad });
        self
    }

    /// Adds fabric packet duplication.
    pub fn duplication(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "duplication prob out of range");
        self.inner.impairments.duplication = Some(Duplication { prob });
        self
    }

    /// Adds bounded packet reordering.
    pub fn reordering(mut self, prob: f64, window: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "reorder prob out of range");
        assert!(window >= 1, "reorder window must be >= 1");
        self.inner.impairments.reordering = Some(Reordering { prob, window });
        self
    }

    /// Adds per-edge 1-bit-timestamp clock skew.
    pub fn clock_skew(mut self, max_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&max_frac), "skew fraction out of range");
        self.inner.impairments.clock_skew = Some(ClockSkew { max_frac });
        self
    }

    /// Enables the per-link congestion model with its calibrated defaults
    /// (loss arises wherever the offered load saturates a link; see
    /// [`CongestionModel`]). Returns `self` with an empty derate list —
    /// follow with [`derate_switch`](Self::derate_switch) /
    /// [`rolling_tor`](Self::rolling_tor) to create structural hot spots,
    /// or pair with [`incast`](Self::incast) for a traffic-shaped one.
    pub fn congestion(mut self) -> Self {
        self.inner
            .impairments
            .congestion
            .get_or_insert_with(CongestionModel::calibrated);
        self
    }

    /// Replaces the congestion model wholesale (expert knob).
    pub fn congestion_model(mut self, model: CongestionModel) -> Self {
        self.inner.impairments.congestion = Some(model);
        self
    }

    /// Enables the time-resolved queue model with its calibrated defaults
    /// over `slots` slots per epoch (flat arrivals, tail drop, full queue
    /// coupling; see [`QueueModel::calibrated`]). Supersedes the static
    /// congestion model when both end up configured (e.g. via
    /// [`incast`](Self::incast)) — the queue layer subsumes it. Follow
    /// with [`microburst`](Self::microburst) /
    /// [`incast_ramp`](Self::incast_ramp) /
    /// [`slow_drain_tor`](Self::slow_drain_tor) to shape the dynamics.
    pub fn queue_model(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "need at least one slot");
        match &mut self.inner.impairments.queue {
            // A shaping knob may already have installed the model with the
            // default slot count — honor the explicit slots either way.
            Some(q) => q.slots = slots,
            None => self.inner.impairments.queue = Some(QueueModel::calibrated(slots)),
        }
        self
    }

    /// Replaces the queue model wholesale (expert knob).
    pub fn queue_model_custom(mut self, model: QueueModel) -> Self {
        self.inner.impairments.queue = Some(model);
        self
    }

    /// Shapes arrivals into a synchronized microburst: `frac` of every
    /// flow's packets concentrate into a seeded `width`-slot window.
    /// Enables the calibrated queue model over [`DEFAULT_SLOTS`] slots if
    /// none is configured yet.
    pub fn microburst(mut self, frac: f64, width: usize) -> Self {
        assert!((0.0..=1.0).contains(&frac), "microburst fraction out of range");
        assert!(width >= 1, "microburst width must be >= 1");
        self.inner
            .impairments
            .queue
            .get_or_insert_with(|| QueueModel::calibrated(DEFAULT_SLOTS))
            .profile = ArrivalProfile::Microburst { frac, width };
        self
    }

    /// Shapes arrivals into a linear within-epoch ramp (the incast
    /// build-up: rate ≈ 2× the mean by the final slot). Enables the
    /// calibrated queue model if needed.
    pub fn incast_ramp(mut self) -> Self {
        self.inner
            .impairments
            .queue
            .get_or_insert_with(|| QueueModel::calibrated(DEFAULT_SLOTS))
            .profile = ArrivalProfile::IncastRamp;
        self
    }

    /// Derates the *service rate* of every out-link of edge switch `index`
    /// by `factor`: the ToR's queues drain slowly, stay deep across the
    /// epoch, and drop in a time-correlated way. Enables the calibrated
    /// queue model if needed.
    pub fn slow_drain_tor(mut self, index: usize, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&factor), "derate factor out of range");
        self.inner
            .impairments
            .queue
            .get_or_insert_with(|| QueueModel::calibrated(DEFAULT_SLOTS))
            .derates
            .push(Derate::Switch { role: SwitchRole::Edge, index, factor });
        self
    }

    /// Adds RED-style early drop to the queue model (depths in slot-service
    /// units). Enables the calibrated queue model if needed.
    pub fn queue_red(mut self, min_depth: f64, max_depth: f64, max_prob: f64) -> Self {
        assert!(max_depth > min_depth, "RED depths must be ordered");
        assert!((0.0..=1.0).contains(&max_prob), "RED max prob out of range");
        self.inner
            .impairments
            .queue
            .get_or_insert_with(|| QueueModel::calibrated(DEFAULT_SLOTS))
            .red = Some(RedDrop { min_depth, max_depth, max_prob });
        self
    }

    /// Derates every out-link of one switch by `factor` (a brownout),
    /// enabling the calibrated congestion model if it is not already on.
    pub fn derate_switch(mut self, role: SwitchRole, index: usize, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&factor), "derate factor out of range");
        self.inner
            .impairments
            .congestion
            .get_or_insert_with(CongestionModel::calibrated)
            .derates
            .push(Derate::Switch { role, index, factor });
        self
    }

    /// A degradation rolling across the ToRs: every `period` epochs the
    /// derated edge switch advances to the next one. Enables the calibrated
    /// congestion model if needed.
    pub fn rolling_tor(mut self, period: u64, factor: f64) -> Self {
        assert!(period >= 1, "rolling period must be >= 1");
        assert!((0.0..=1.0).contains(&factor), "derate factor out of range");
        self.inner
            .impairments
            .congestion
            .get_or_insert_with(CongestionModel::calibrated)
            .derates
            .push(Derate::RollingEdge { period, factor });
        self
    }

    /// Concentrates a `frac` fraction of the flows on `target_host`
    /// (many-to-one incast) and enables the calibrated congestion model so
    /// the fan-in actually loses packets at the target's ToR.
    pub fn incast(mut self, frac: f64, target_host: u32) -> Self {
        assert!((0.0..=1.0).contains(&frac), "incast fraction out of range");
        self.inner.incast =
            Some(IncastModel { frac, target_host, seed: self.inner.seed ^ 0x0001_ca57 });
        self.inner
            .impairments
            .congestion
            .get_or_insert_with(CongestionModel::calibrated);
        self
    }

    /// Adds per-epoch flow churn.
    pub fn churn(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "churn rate out of range");
        self.inner.churn = Some(FlowChurn { rate, seed: self.inner.seed ^ 0xc447 });
        self
    }

    /// Adds periodic heavy-hitter floods.
    pub fn flood(mut self, period: u64, n_flows: usize, pkts_per_flow: u64) -> Self {
        assert!(period >= 1, "flood period must be >= 1");
        self.inner.flood = Some(FloodModel {
            period,
            n_flows,
            pkts_per_flow,
            seed: self.inner.seed ^ 0xf100d,
        });
        self
    }

    /// Adds per-epoch victim drift.
    pub fn victim_drift(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "drift fraction out of range");
        self.inner.drift = Some(VictimDrift { frac, seed: self.inner.seed ^ 0xd21f7 });
        self
    }

    /// Sets the per-switch per-epoch report-loss probability.
    pub fn report_loss(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "report loss out of range");
        self.inner.report_loss = prob;
        self
    }

    /// Finalizes the scenario. The dependent sub-seeds are pinned to the
    /// scenario seed here (via [`Scenario::with_seed`]) so a builder chain
    /// can set `.seed()` at any position.
    pub fn build(self) -> Scenario {
        let seed = self.inner.seed;
        self.inner.with_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_clean() {
        let s = Scenario::builder("x").build();
        assert!(s.impairments.is_none());
        assert!(s.churn.is_none() && s.flood.is_none() && s.drift.is_none());
        assert_eq!(s.report_loss, 0.0);
        assert_eq!(s.reports_received(3, 4), vec![true; 4]);
    }

    #[test]
    fn builder_seed_position_does_not_matter() {
        let a = Scenario::builder("x").seed(9).churn(0.1).build();
        let b = Scenario::builder("x").churn(0.1).seed(9).build();
        assert_eq!(a.churn, b.churn);
        assert_eq!(a.impairments, b.impairments);
    }

    #[test]
    fn with_seed_rederives_every_sub_seed() {
        let s = Scenario::builder("x")
            .seed(9)
            .churn(0.1)
            .flood(2, 5, 100)
            .victim_drift(0.2)
            .incast(0.1, 3)
            .build();
        let v = s.clone().with_seed(10);
        assert_ne!(v.impairments.seed, s.impairments.seed);
        assert_ne!(v.churn.unwrap().seed, s.churn.unwrap().seed);
        assert_ne!(v.flood.unwrap().seed, s.flood.unwrap().seed);
        assert_ne!(v.drift.unwrap().seed, s.drift.unwrap().seed);
        assert_ne!(v.incast.unwrap().seed, s.incast.unwrap().seed);
        // Re-pinning the original seed is the identity.
        let back = v.with_seed(9);
        assert_eq!(back.impairments, s.impairments);
        assert_eq!(back.incast, s.incast);
    }

    #[test]
    fn queue_knobs_compose() {
        let s = Scenario::builder("q")
            .seed(4)
            .incast(0.2, 0) // enables the static congestion model too
            .queue_model(8)
            .microburst(0.4, 2)
            .slow_drain_tor(1, 0.5)
            .queue_red(0.5, 2.0, 0.2)
            .build();
        let q = s.impairments.queue.as_ref().expect("queue model configured");
        assert_eq!(q.slots, 8);
        assert!(matches!(
            q.profile,
            chm_workloads::ArrivalProfile::Microburst { .. }
        ));
        assert_eq!(q.derates.len(), 1);
        assert!(q.red.is_some());
        // The incast knob still configures static congestion; the replay
        // paths give the queue model precedence.
        assert!(s.impairments.congestion.is_some());
        assert!(!s.impairments.is_none());
        // Knob order must not matter: an explicit slot count is honored
        // even when a shaping knob installed the model first.
        let late = Scenario::builder("q2").microburst(0.4, 2).queue_model(16).build();
        assert_eq!(late.impairments.queue.as_ref().unwrap().slots, 16);
        assert!(matches!(
            late.impairments.queue.as_ref().unwrap().profile,
            chm_workloads::ArrivalProfile::Microburst { .. }
        ));
    }

    #[test]
    fn epoch_trace_is_deterministic() {
        let s = Scenario::builder("x").seed(3).churn(0.2).flood(2, 5, 1_000).build();
        let base = s.base_trace();
        let t1 = s.trace_for_epoch(&base, 3);
        let t2 = s.trace_for_epoch(&base, 3);
        assert_eq!(t1.flows, t2.flows);
    }

    #[test]
    fn report_channel_losses_are_seeded_per_epoch() {
        let s = Scenario::builder("x").seed(5).report_loss(0.5).build();
        let a = s.reports_received(0, 4);
        assert_eq!(a, s.reports_received(0, 4));
        let distinct = (0..32).map(|e| s.reports_received(e, 4)).collect::<Vec<_>>();
        assert!(distinct.iter().any(|v| v != &a), "epochs must differ");
        let lost: usize = distinct.iter().flatten().filter(|&&k| !k).count();
        assert!((32..96).contains(&lost), "~50% of 128 reports should drop, got {lost}");
    }
}
