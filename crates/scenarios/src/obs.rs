//! Scenario-matrix exposition: folds a set of [`ScenarioResult`]s into a
//! [`chm_obs::Registry`], one labeled series set per `(scenario, mode)`.
//!
//! Everything recorded here is derived from the deterministic scorecards,
//! so the rendered Prometheus text is byte-identical across runs of the
//! same matrix — regardless of the order results are folded in (the
//! registry's emission index is sorted by `(name, labels)`).

use crate::{ReplayMode, ScenarioResult};
use chm_obs::Registry;

fn mode_label(mode: ReplayMode) -> &'static str {
    match mode {
        ReplayMode::PerPacket => "per_packet",
        ReplayMode::Burst => "burst",
    }
}

/// Build a registry over scored scenario results: per-`(scenario, mode)`
/// counters (epochs, packets, delivered reports, true victims, fully
/// decoded epochs) and score gauges (F1, decode success, report delivery,
/// localization hit rates).
pub fn matrix_registry(results: &[ScenarioResult]) -> Registry {
    let mut reg = Registry::new();
    for r in results {
        let labels = [("scenario", r.name.as_str()), ("mode", mode_label(r.mode))];
        let sums: (u64, u64, u64, u64) = r.epochs.iter().fold((0, 0, 0, 0), |acc, e| {
            (
                acc.0 + e.packets_sent,
                acc.1 + e.reports_received as u64,
                acc.2 + e.true_victims as u64,
                acc.3 + u64::from(e.decode_ok),
            )
        });
        for (name, help, v) in [
            ("chm_scenarios_epochs_total", "Epochs scored.", r.epochs.len() as u64),
            ("chm_scenarios_packets_total", "Packets replayed into the fabric.", sums.0),
            (
                "chm_scenarios_reports_received_total",
                "Switch reports that survived the control channel.",
                sums.1,
            ),
            (
                "chm_scenarios_true_victims_total",
                "Ground-truth victim flows across all epochs.",
                sums.2,
            ),
            (
                "chm_scenarios_decoded_epochs_total",
                "Epochs where every deployed encoder decoded.",
                sums.3,
            ),
        ] {
            let id = reg.register_counter(name, help, &labels);
            reg.add(id, v);
        }
        for (name, help, v) in [
            ("chm_scenarios_f1_ratio", "Mean victim-detection F1.", r.mean_f1),
            (
                "chm_scenarios_decode_success_ratio",
                "Fraction of epochs with all encoders decoding.",
                r.decode_success,
            ),
            (
                "chm_scenarios_report_delivery_ratio",
                "Fraction of switch reports delivered.",
                r.report_delivery,
            ),
            (
                "chm_scenarios_loc_top1_ratio",
                "Mean localization top-1 hit rate.",
                r.mean_loc_top1,
            ),
            (
                "chm_scenarios_loc_top3_ratio",
                "Mean localization top-3 hit rate.",
                r.mean_loc_top3,
            ),
        ] {
            let id = reg.register_gauge(name, help, &labels);
            reg.set(id, v);
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, ReplayMode, Scenario};
    use chm_obs::render_prometheus;

    #[test]
    fn registry_is_independent_of_fold_order() {
        let mk = |name: &str, seed: u64| {
            let s = Scenario::builder(name).seed(seed).flows(200).epochs(2).build();
            run(&s, ReplayMode::Burst)
        };
        let (a, b) = (mk("alpha", 3), mk("beta", 5));
        let fwd = render_prometheus(&matrix_registry(&[a.clone(), b.clone()]));
        let rev = render_prometheus(&matrix_registry(&[b, a]));
        assert_eq!(fwd, rev);
        assert!(fwd.contains("chm_scenarios_epochs_total{mode=\"burst\",scenario=\"alpha\"} 2"));
        assert!(fwd.contains("# TYPE chm_scenarios_f1_ratio gauge"));
    }
}
