//! The golden scenario matrix: the named adversarial conditions every PR is
//! scored against (`chm-bench scenarios` → `results/SCENARIOS.json`).
//!
//! Each scenario isolates one pathology; `perfect-storm` composes them all
//! at milder intensities. Seeds are fixed per scenario, so the whole matrix
//! is reproducible bit for bit — same seed, byte-identical JSON.

use crate::Scenario;
use chm_netsim::SwitchRole;
use chm_workloads::{VictimSelection, WorkloadKind};

/// The standard ≥8-scenario matrix. `quick` shrinks flow counts and epoch
/// counts to CI-smoke size without changing the scenario set.
pub fn standard_matrix(quick: bool) -> Vec<Scenario> {
    let (flows, epochs) = if quick { (600, 4) } else { (2_500, 8) };
    let sel = VictimSelection::RandomRatio(0.1);
    vec![
        // The paper's own regime: Bernoulli loss, healthy fabric. The
        // matrix's control — every other scenario degrades from here.
        Scenario::builder("baseline")
            .seed(0xA110)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(sel, 0.05)
            .build(),
        // Correlated loss bursts: victims lose runs of packets, not
        // scattered singles.
        Scenario::builder("gilbert-elliott")
            .seed(0xA111)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(sel, 0.02)
            .gilbert_elliott(0.02, 0.25, 0.0, 0.5)
            .build(),
        // Fabric duplicates traverse egress twice: downstream counts exceed
        // upstream, pushing delta-encoder buckets negative.
        Scenario::builder("duplication")
            .seed(0xA112)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Vl2)
            .loss(sel, 0.05)
            .duplication(0.05)
            .build(),
        // Bounded reordering moves losses across LL/HL/HH tag boundaries.
        Scenario::builder("reordering")
            .seed(0xA113)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(sel, 0.05)
            .reordering(0.25, 8)
            .build(),
        // Lagging edge clocks mis-stamp epoch-boundary packets into the
        // neighboring sketch group (Appendix B's failure mode).
        Scenario::builder("clock-skew")
            .seed(0xA114)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Hadoop)
            .loss(sel, 0.05)
            .clock_skew(0.05)
            .build(),
        // The control channel itself drops collected sketch reports.
        Scenario::builder("report-loss")
            .seed(0xA115)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(sel, 0.05)
            .report_loss(0.25)
            .build(),
        // Flows arrive and depart between epochs; the controller's
        // load-factor targets chase a moving population.
        Scenario::builder("flow-churn")
            .seed(0xA116)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Vl2)
            .loss(sel, 0.05)
            .churn(0.15)
            .build(),
        // Periodic heavy-hitter floods fatten the size distribution's tail
        // and slam the HH encoder's load target.
        Scenario::builder("hh-flood")
            .seed(0xA117)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Cache)
            .loss(sel, 0.05)
            .flood(3, flows / 50, 2_000)
            .build(),
        // The victim set slides every epoch: yesterday's victims recover,
        // healthy flows start losing.
        Scenario::builder("victim-drift")
            .seed(0xA118)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(sel, 0.05)
            .victim_drift(0.3)
            .build(),
        // Everything at once, milder: the fabric a pessimist expects.
        Scenario::builder("perfect-storm")
            .seed(0xA119)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Hadoop)
            .loss(sel, 0.03)
            .gilbert_elliott(0.01, 0.3, 0.0, 0.4)
            .duplication(0.02)
            .reordering(0.1, 4)
            .clock_skew(0.02)
            .report_loss(0.1)
            .churn(0.05)
            .victim_drift(0.15)
            .build(),
        // --- congestion-coupled scenarios: loss arises from the fabric's
        // per-link state, every drop is attributed to a real switch, and
        // the controller's localization pass is scored against it. -------
        //
        // Many-to-one fan-in: 20% of flows converge on host 0; its ToR's
        // downlink saturates and drops, all attributed to edge 0.
        Scenario::builder("incast-hotspot")
            .seed(0xA11A)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Cache)
            .loss(VictimSelection::RandomN(0), 0.0)
            .incast(0.2, 0)
            .build(),
        // A browned-out core: core 0's out-links run at 40% capacity, so
        // roughly a quarter of all cross-pod traffic bleeds at one switch.
        Scenario::builder("core-brownout")
            .seed(0xA11B)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(VictimSelection::RandomN(0), 0.0)
            .derate_switch(SwitchRole::Core, 0, 0.4)
            .build(),
        // A degradation rolling across the ToRs every two epochs: the
        // localization ranking must track a moving culprit.
        Scenario::builder("rolling-tor")
            .seed(0xA11C)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Vl2)
            .loss(VictimSelection::RandomN(0), 0.0)
            .rolling_tor(2, 0.35)
            .build(),
        // --- queue-dynamics scenarios: the time-resolved layer. Loss comes
        // from intra-epoch queue build-up/drain, so drops are correlated in
        // *time* (specific slots), not just in space. ------------------
        //
        // A synchronized microburst: 45% of every flow's packets land in a
        // seeded 2-slot window, overwhelming queues fabric-wide for a
        // fraction of the epoch that flat-rate accounting calls healthy.
        Scenario::builder("microburst")
            .seed(0xA11D)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Dctcp)
            .loss(VictimSelection::RandomN(0), 0.0)
            .microburst(0.45, 2)
            .build(),
        // A slow-draining ToR: edge 1's service runs at 40%, its queues
        // stay deep all epoch, and every flow through it bleeds — the
        // queue-depth telemetry names the culprit directly.
        Scenario::builder("slow-drain-tor")
            .seed(0xA11E)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Vl2)
            .loss(VictimSelection::RandomN(0), 0.0)
            .slow_drain_tor(1, 0.4)
            .build(),
        // Incast with a within-epoch ramp: fan-in concentrates load on host
        // 0's ToR while arrivals build toward the epoch's end — the
        // hotspot's drops cluster in the late slots.
        Scenario::builder("incast-ramp")
            .seed(0xA11F)
            .flows(flows)
            .epochs(epochs)
            .workload(WorkloadKind::Cache)
            .loss(VictimSelection::RandomN(0), 0.0)
            .incast(0.2, 0)
            .incast_ramp()
            .build(),
        // The incast hotspot on a k=4 fat-tree (16 hosts, 8 edge + 8 agg +
        // 4 core = 20 switches): localization measured beyond the 10-switch
        // testbed.
        Scenario::builder("incast-hotspot-k4")
            .seed(0xA120)
            .flows(flows)
            .epochs(epochs)
            .hosts(16)
            .workload(WorkloadKind::Cache)
            .loss(VictimSelection::RandomN(0), 0.0)
            .incast(0.1, 0)
            .build(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_at_least_eight_distinct_scenarios() {
        let m = standard_matrix(false);
        assert!(m.len() >= 8, "matrix too small: {}", m.len());
        let names: std::collections::HashSet<&str> =
            m.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), m.len(), "duplicate scenario names");
        for required in [
            "gilbert-elliott",
            "duplication",
            "reordering",
            "flow-churn",
            "hh-flood",
            "incast-hotspot",
            "core-brownout",
            "rolling-tor",
            "microburst",
            "slow-drain-tor",
            "incast-ramp",
            "incast-hotspot-k4",
        ] {
            assert!(names.contains(required), "missing {required}");
        }
    }

    #[test]
    fn queue_scenarios_are_time_resolved_and_fabric_coupled() {
        let m = standard_matrix(true);
        let queued: Vec<&Scenario> =
            m.iter().filter(|s| s.impairments.queue.is_some()).collect();
        assert!(queued.len() >= 3, "need >= 3 queue-dynamics scenarios");
        for s in &queued {
            // Their loss must come from the queues, not a flat plan.
            assert_eq!(s.loss_rate, 0.0, "{}: plan loss should be off", s.name);
        }
        use chm_workloads::ArrivalProfile;
        assert!(
            queued.iter().any(|s| matches!(
                s.impairments.queue.as_ref().unwrap().profile,
                ArrivalProfile::Microburst { .. }
            )),
            "a microburst scenario must be present"
        );
        assert!(
            queued.iter().any(|s| matches!(
                s.impairments.queue.as_ref().unwrap().profile,
                ArrivalProfile::IncastRamp
            )),
            "an incast-ramp scenario must be present"
        );
        assert!(
            queued
                .iter()
                .any(|s| !s.impairments.queue.as_ref().unwrap().derates.is_empty()),
            "a service-derate (slow-drain) scenario must be present"
        );
        // The k=4 tier runs a larger fabric than the 10-switch testbed.
        let k4 = m.iter().find(|s| s.name == "incast-hotspot-k4").unwrap();
        assert_eq!(k4.n_hosts, 16);
    }

    #[test]
    fn congestion_scenarios_are_congestion_coupled() {
        let m = standard_matrix(true);
        let congested: Vec<&Scenario> = m
            .iter()
            .filter(|s| s.impairments.congestion.is_some())
            .collect();
        assert!(congested.len() >= 3, "need >= 3 congestion scenarios");
        for s in &congested {
            // Their loss must come from the fabric, not a flat plan.
            assert_eq!(s.loss_rate, 0.0, "{}: plan loss should be off", s.name);
        }
        assert!(
            congested.iter().any(|s| s.incast.is_some()),
            "an incast scenario must be present"
        );
    }

    #[test]
    fn quick_matrix_is_same_set_smaller_sizing() {
        let full = standard_matrix(false);
        let quick = standard_matrix(true);
        assert_eq!(full.len(), quick.len());
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(f.name, q.name);
            assert_eq!(f.seed, q.seed);
            assert!(q.n_flows < f.n_flows);
            assert!(q.epochs <= f.epochs);
        }
    }
}
