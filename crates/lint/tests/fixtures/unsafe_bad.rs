// Fixture: un-audited `unsafe`. Expected: unsafe-block x2 (the fn
// qualifier and the inner block).

pub unsafe fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
