// Fixture: broken escape hatches. Expected: bad-allow x3 (reasonless,
// unknown rule, malformed) — and the underlying unwrap still fires
// because a reasonless allow suppresses nothing.

// chm-lint: allow(unwrap)
pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

// chm-lint: allow(made-up-rule, "sounds plausible")
pub fn second(v: &[u8]) -> u8 {
    *v.get(1).expect("bounds-checked by caller")
}

// chm-lint: allwo(unwrap, "typo in the directive name")
pub fn third(v: &[u8]) -> u8 {
    v.len() as u8
}
