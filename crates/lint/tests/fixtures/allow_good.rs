// Fixture: a well-formed reasoned allow — suppresses its rule within its
// scope and is recorded for the audit listing. Expected: no diagnostics,
// one recorded allow.

// chm-lint: allow(unwrap, "v is split from a non-empty input two lines above; emptiness is impossible")
pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
