// Fixture: entropy-drawing RNG construction. Expected: rng-discipline x2.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn seeded_badly() -> SmallRng {
    SmallRng::from_entropy()
}
