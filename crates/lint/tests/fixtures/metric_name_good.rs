// Fixture: blessed metric registrations — literal names following the
// convention, dynamic names (runtime-validated), and the registration
// functions' own definitions. Expected: no diagnostics.

pub fn register_all(r: &mut Registry) {
    r.register_counter("chm_serve_epochs_total", "epochs", &[]);
    r.register_gauge("chm_serve_f1_ratio", "detection F1", &[]);
    r.register_histogram("chm_serve_reaction_seconds", "latency", &[], &[0.1]);
    // A runtime-built name is the registry validator's job, not the lint's.
    let name = format!("chm_{}_total", "dynamic");
    r.register_counter(&name, "dynamic", &[]);
}

// The definition of a registration entry point is not a call site.
pub fn register_counter(name: &str, help: &str) -> u32 {
    let _ = (name, help);
    0
}
