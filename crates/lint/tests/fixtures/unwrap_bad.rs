// Fixture: bare `.unwrap()` and empty `.expect("")` in library code.
// Expected (under a library role): unwrap x2.

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn second(v: &[u8]) -> u8 {
    *v.get(1).expect("")
}
