// Fixture: audited `unsafe` — a reasoned allow above the fn covers its
// qualifier and body. Expected: no diagnostics, one recorded allow.

// chm-lint: allow(unsafe-block, "caller contract: v is non-empty; checked by every call site's bounds test")
pub unsafe fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
