// Fixture: wall-clock reads in library code. Expected (under a library
// role): wall-clock x2.

pub fn analyze_timed() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
