// Fixture: explicit-seed RNG construction. Expected: no diagnostics.

pub fn epoch_rng(seed: u64, epoch: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
