// Fixture: unordered HashMap iteration feeding an output surface.
// Expected (under an output-surface role): map-iter-order x2.
use std::collections::HashMap;

pub fn victim_table(lost: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut rows = Vec::new();
    for (f, n) in lost.iter() {
        rows.push((*f, *n));
    }
    rows
}

pub fn report_lines(counts: HashMap<String, u64>) -> String {
    let mut s = String::new();
    for (k, v) in &counts {
        s.push_str(&format!("{k}={v}\n"));
    }
    s
}
