// Fixture: the three blessed ways to consume a hash collection on an
// output surface. Expected: no diagnostics.
use std::collections::{BTreeMap, HashMap};

// Sorted accumulation: collect, sort, then fold (the canonical fix).
pub fn victim_table(lost: &HashMap<u64, u64>) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = lost.iter().map(|(f, n)| (*f, *n)).collect();
    rows.sort_unstable();
    rows
}

// Order-free terminal reduction.
pub fn victim_count(lost: &HashMap<u64, u64>) -> usize {
    lost.iter().filter(|(_, &n)| n > 0).count()
}

// Re-collection into an ordered container.
pub fn ordered(lost: &HashMap<u64, u64>) -> BTreeMap<u64, u64> {
    lost.iter().map(|(f, n)| (*f, *n)).collect::<BTreeMap<_, _>>()
}

// Exact integer sum: commutative, order cannot show.
pub fn total(lost: &HashMap<u64, u64>) -> u64 {
    lost.values().sum::<u64>()
}
