// Fixture: metric registrations violating the naming convention.
// Expected (under a library role): metric-name x4.

pub fn register_all(r: &mut Registry) {
    // Missing the chm_ namespace prefix.
    r.register_counter("serve_epochs_total", "epochs", &[]);
    // No unit suffix.
    r.register_gauge("chm_serve_f1", "detection F1", &[]);
    // Uppercase is not snake_case.
    r.register_counter("chm_Serve_epochs_total", "epochs", &[]);
    // Doubled underscore.
    r.register_histogram("chm_serve__reaction_seconds", "latency", &[], &[0.1]);
}
