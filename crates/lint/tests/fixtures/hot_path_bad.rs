// Fixture: hygiene breaches inside `// chm-lint: hot` functions.
// Expected: hot-path-mod x1 (the `%`), hot-path-alloc x2 (format!, clone).

// chm-lint: hot
pub fn index(key: u64, m: u64) -> u64 {
    key % m
}

// chm-lint: hot
pub fn label(key: u64, tags: &Vec<String>) -> String {
    let t = tags.clone();
    format!("{key}:{}", t.len())
}

// An unmarked function may do all of this freely.
pub fn cold_label(key: u64) -> String {
    format!("{}", key % 7)
}
