// Fixture: documented `.expect()` in library code, and free `.unwrap()`
// inside `#[cfg(test)]`. Expected: no diagnostics.

pub fn first(v: &[u8]) -> u8 {
    *v.first().expect("caller guarantees a non-empty buffer")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u8];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
