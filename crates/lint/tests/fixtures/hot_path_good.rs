// Fixture: a clean hot function — branch-free multiply-shift range
// reduction, no allocation. Expected: no diagnostics.

// chm-lint: hot
pub fn index(premixed: u64, m: u64) -> usize {
    ((premixed as u128 * m as u128) >> 61) as usize
}

// chm-lint: hot
pub fn accumulate(counters: &mut [u64], slot: usize, weight: u64) {
    counters[slot] = counters[slot].wrapping_add(weight);
}
