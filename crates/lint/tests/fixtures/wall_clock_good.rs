// Fixture: the injected-clock pattern — library code measures time only
// through a caller-supplied clock. Expected: no diagnostics.

pub fn analyze_timed(now_s: &mut dyn FnMut() -> f64) -> f64 {
    let t0 = now_s();
    now_s() - t0
}
