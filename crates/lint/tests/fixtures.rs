//! Fixture proof for every rule: each `fixtures/*_bad.rs` snippet must
//! produce exactly the expected diagnostics, and its `*_good.rs` twin must
//! produce none. The fixture's *virtual path* selects the role under which
//! it is linted (output surface, library, …) — the snippets never live at
//! those paths.

use chm_lint::lint_source;
use std::collections::BTreeSet;

/// An output-surface path (see `chm_lint::roles`): map-iter-order applies.
const SURFACE: &str = "crates/common/src/metrics.rs";
/// An ordinary library path: wall-clock/unwrap audits apply.
const LIB: &str = "crates/foo/src/lib.rs";

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Rules fired by `name` linted under `role_path`, in source order.
fn rules_fired(role_path: &str, name: &str) -> Vec<String> {
    let (diags, _) = lint_source(role_path, &fixture(name), &BTreeSet::new());
    diags.iter().map(|d| d.rule.to_string()).collect()
}

fn assert_clean(role_path: &str, name: &str) {
    let fired = rules_fired(role_path, name);
    assert!(fired.is_empty(), "{name} expected clean, fired {fired:?}");
}

#[test]
fn map_iter_order_bad_fires() {
    assert_eq!(
        rules_fired(SURFACE, "map_iter_order_bad.rs"),
        ["map-iter-order", "map-iter-order"]
    );
}

#[test]
fn map_iter_order_good_is_clean() {
    assert_clean(SURFACE, "map_iter_order_good.rs");
}

#[test]
fn map_iter_order_only_guards_output_surfaces() {
    // The same unordered iteration is fine in a role that never feeds
    // serialized output.
    assert_clean("crates/foo/src/internal.rs", "map_iter_order_bad.rs");
}

#[test]
fn rng_bad_fires() {
    assert_eq!(
        rules_fired(LIB, "rng_bad.rs"),
        ["rng-discipline", "rng-discipline"]
    );
}

#[test]
fn rng_good_is_clean() {
    assert_clean(LIB, "rng_good.rs");
}

#[test]
fn rng_discipline_applies_even_to_benches() {
    // Unlike wall-clock, there is no role exemption for entropy.
    assert_eq!(
        rules_fired("crates/bench/src/perf.rs", "rng_bad.rs"),
        ["rng-discipline", "rng-discipline"]
    );
}

#[test]
fn wall_clock_bad_fires() {
    assert_eq!(
        rules_fired(LIB, "wall_clock_bad.rs"),
        ["wall-clock", "wall-clock"]
    );
}

#[test]
fn wall_clock_good_is_clean() {
    assert_clean(LIB, "wall_clock_good.rs");
}

#[test]
fn wall_clock_exempts_the_bench_harness() {
    assert_clean("crates/bench/src/perf.rs", "wall_clock_bad.rs");
}

#[test]
fn hot_path_bad_fires() {
    let mut fired = rules_fired(LIB, "hot_path_bad.rs");
    fired.sort();
    assert_eq!(
        fired,
        ["hot-path-alloc", "hot-path-alloc", "hot-path-mod"]
    );
}

#[test]
fn hot_path_good_is_clean() {
    assert_clean(LIB, "hot_path_good.rs");
}

#[test]
fn unsafe_bad_fires() {
    assert_eq!(
        rules_fired(LIB, "unsafe_bad.rs"),
        ["unsafe-block", "unsafe-block"]
    );
}

#[test]
fn unsafe_good_is_clean_and_audited() {
    let (diags, allows) = lint_source(LIB, &fixture("unsafe_good.rs"), &BTreeSet::new());
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rule, "unsafe-block");
    assert!(allows[0].reason.contains("caller contract"));
}

#[test]
fn unwrap_bad_fires() {
    assert_eq!(rules_fired(LIB, "unwrap_bad.rs"), ["unwrap", "unwrap"]);
}

#[test]
fn unwrap_good_is_clean() {
    assert_clean(LIB, "unwrap_good.rs");
}

#[test]
fn unwrap_is_free_in_test_files() {
    assert_clean("crates/foo/tests/integration.rs", "unwrap_bad.rs");
}

#[test]
fn metric_name_bad_fires() {
    assert_eq!(
        rules_fired(LIB, "metric_name_bad.rs"),
        ["metric-name", "metric-name", "metric-name", "metric-name"]
    );
}

#[test]
fn metric_name_good_is_clean() {
    assert_clean(LIB, "metric_name_good.rs");
}

#[test]
fn metric_name_skips_test_files() {
    // Test files register deliberately bad names to pin the runtime panic.
    assert_clean("crates/obs/tests/expo.rs", "metric_name_bad.rs");
}

#[test]
fn allow_bad_fires() {
    let mut fired = rules_fired(LIB, "allow_bad.rs");
    fired.sort();
    // Three broken directives, plus the unwrap the reasonless allow failed
    // to suppress.
    assert_eq!(fired, ["bad-allow", "bad-allow", "bad-allow", "unwrap"]);
}

#[test]
fn allow_good_is_clean_and_recorded() {
    let (diags, allows) = lint_source(LIB, &fixture("allow_good.rs"), &BTreeSet::new());
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(allows.len(), 1);
    assert_eq!(allows[0].rule, "unwrap");
}
