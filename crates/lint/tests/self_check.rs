//! The gate's gate: the workspace itself must lint clean, every allow must
//! carry a reason, and the report must serialize. This is the same scan CI
//! runs via `chm-lint --check`, executed as a plain test so `cargo test`
//! alone already enforces the invariants.

use chm_lint::{find_workspace_root, scan_workspace};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the lint crate lives inside the workspace")
}

#[test]
fn workspace_is_lint_clean() {
    let report = scan_workspace(&workspace_root()).expect("scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|d| format!("{}:{}: [{}] {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        report.clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn every_allow_carries_a_real_reason() {
    let report = scan_workspace(&workspace_root()).expect("scan");
    assert!(
        !report.allows.is_empty(),
        "the workspace is expected to document at least the alloc-audit unsafe allows"
    );
    for a in &report.allows {
        assert!(
            a.reason.len() >= 15,
            "{}:{}: allow({}) reason too thin to be a justification: {:?}",
            a.file,
            a.line,
            a.rule,
            a.reason
        );
    }
}

#[test]
fn json_report_is_well_formed_enough() {
    let report = scan_workspace(&workspace_root()).expect("scan");
    let json = report.to_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"violations\""));
    assert!(json.contains("\"allows\""));
    assert!(json.contains("\"files_scanned\""));
    // Balanced quotes is a cheap smoke test for the hand-rolled escaper.
    let quotes = json.chars().filter(|&c| c == '"').count();
    assert_eq!(quotes % 2, 0, "odd number of '\"' in JSON output");
}
