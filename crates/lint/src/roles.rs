//! Path → role classification.
//!
//! Every rule is context-sensitive by crate/module role: the bench crate
//! may read wall clocks, test code may `unwrap`, the vendored dependency
//! stubs and the lint's own fixtures are not scanned at all. Roles are
//! derived purely from the workspace-relative path, so the same source
//! text lints differently depending on where it lives — which is the
//! point: the *same* `Instant::now()` is fine in a timing harness and a
//! reproducibility bug in library code.

/// The role a file plays in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Ordinary library code: every determinism rule applies.
    Lib,
    /// Files that build serialized output, metrics, or `EpochReport`
    /// content — the `map-iter-order` rule applies here on top of the
    /// library rules.
    OutputSurface,
    /// `crates/bench/**`: the timing harness. Wall-clock reads are its
    /// job; the `unwrap` audit is relaxed (benches fail loudly anyway).
    Bench,
    /// Integration-test files (`tests/` directories).
    TestFile,
    /// `examples/**`: narrative demos.
    Example,
    /// `src/bin/**`: CLI entry points of library crates.
    Bin,
    /// `vendor/**`: offline API stubs for external crates — not scanned.
    Vendor,
    /// The lint's own test fixtures — not scanned in workspace mode.
    Fixture,
}

/// Files whose contents become serialized output, committed metrics, or
/// `EpochReport` fields. `map-iter-order` (rule D1) is enforced here:
/// iterating a `HashMap`/`HashSet` in these files must be provably
/// order-independent or sorted first.
const OUTPUT_SURFACE: &[&str] = &[
    "crates/common/src/metrics.rs",
    "crates/bench/src/report.rs",
    "crates/bench/src/scenarios.rs",
    "crates/scenarios/src/runner.rs",
    "crates/netsim/src/sim.rs",
    "crates/chamelemon/src/control.rs",
    "crates/chamelemon/src/localize.rs",
    "crates/obs/src/registry.rs",
    "crates/obs/src/span.rs",
    "crates/obs/src/expo.rs",
    "crates/serve/src/obs.rs",
    "crates/scenarios/src/obs.rs",
];

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> Role {
    if rel.starts_with("vendor/") {
        return Role::Vendor;
    }
    if rel.contains("crates/lint/tests/fixtures/") || rel.starts_with("tests/fixtures/") {
        return Role::Fixture;
    }
    if OUTPUT_SURFACE.contains(&rel) {
        return Role::OutputSurface;
    }
    if rel.starts_with("crates/bench/") {
        return Role::Bench;
    }
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return Role::TestFile;
    }
    if rel.starts_with("examples/") || rel.contains("/examples/") {
        return Role::Example;
    }
    if rel.contains("/src/bin/") {
        return Role::Bin;
    }
    Role::Lib
}

impl Role {
    /// Is the file scanned at all?
    pub fn scanned(self) -> bool {
        !matches!(self, Role::Vendor | Role::Fixture)
    }

    /// Does the wall-clock rule (D3) apply? Only the bench harness may
    /// read real time.
    pub fn forbids_wall_clock(self) -> bool {
        !matches!(self, Role::Bench | Role::Vendor | Role::Fixture)
    }

    /// Does the `map-iter-order` rule (D1) apply?
    pub fn is_output_surface(self) -> bool {
        self == Role::OutputSurface
    }

    /// Does the bare-`unwrap` audit (D5) apply? Library and output-surface
    /// code must justify panics; tests, examples, benches, and CLI demos
    /// may fail loudly.
    pub fn audits_unwrap(self) -> bool {
        matches!(self, Role::Lib | Role::OutputSurface)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert_eq!(classify("crates/common/src/hash.rs"), Role::Lib);
        assert_eq!(classify("crates/common/src/metrics.rs"), Role::OutputSurface);
        assert_eq!(classify("crates/bench/src/perf.rs"), Role::Bench);
        assert_eq!(classify("crates/bench/src/report.rs"), Role::OutputSurface);
        assert_eq!(classify("crates/obs/src/expo.rs"), Role::OutputSurface);
        assert_eq!(classify("crates/serve/src/obs.rs"), Role::OutputSurface);
        assert_eq!(classify("crates/scenarios/src/obs.rs"), Role::OutputSurface);
        assert_eq!(classify("crates/chamelemon/tests/attention.rs"), Role::TestFile);
        assert_eq!(classify("tests/alloc_audit.rs"), Role::TestFile);
        assert_eq!(classify("examples/quickstart.rs"), Role::Example);
        assert_eq!(classify("crates/chamelemon/src/bin/chamelemon-sim.rs"), Role::Bin);
        assert_eq!(classify("vendor/rand/src/lib.rs"), Role::Vendor);
        assert_eq!(classify("crates/lint/tests/fixtures/d4_hot_bad.rs"), Role::Fixture);
    }
}
