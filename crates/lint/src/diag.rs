//! Diagnostics and the machine-readable report.

use std::fmt::Write as _;

/// One finding, anchored to a file/line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (one of [`crate::rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Enclosing function name, when known.
    pub function: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

/// One honored `allow` (reported so CI artifacts record every waiver).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowRecord {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the directive.
    pub line: u32,
    /// Rule id being allowed.
    pub rule: String,
    /// The written justification.
    pub reason: String,
}

/// The whole run's output.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations, sorted by (file, line, rule).
    pub violations: Vec<Diagnostic>,
    /// Allows with reasons that suppressed (or stood ready to suppress)
    /// diagnostics, sorted by (file, line).
    pub allows: Vec<AllowRecord>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as deterministic, machine-readable JSON (the CI
    /// artifact format). Hand-rolled like `chm_bench::report` — the
    /// workspace vendors no serde.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        s.push_str("  \"violations\": [\n");
        for (i, d) in self.violations.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \"message\": {}}}",
                json_str(d.rule),
                json_str(&d.file),
                d.line,
                d.function.as_deref().map(json_str).unwrap_or_else(|| "null".into()),
                json_str(&d.message),
            );
            s.push_str(if i + 1 < self.violations.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason),
            );
            s.push_str(if i + 1 < self.allows.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_wellformed_and_escaped() {
        let mut r = LintReport { files_scanned: 1, ..Default::default() };
        r.violations.push(Diagnostic {
            file: "a.rs".into(),
            line: 3,
            rule: "unwrap",
            function: Some("f".into()),
            message: "bare `unwrap()` with \"quotes\"".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"violation_count\": 1"));
        assert!(j.contains("\"function\": \"f\""));
    }
}
