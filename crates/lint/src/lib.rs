//! **chm-lint** — in-tree static analysis enforcing the workspace's
//! determinism and hot-path invariants.
//!
//! Every result this reproduction ships — byte-identical per-packet vs
//! burst replays, the CI scenario gate, the committed benchmark goldens —
//! rests on invariants that were previously enforced only by review: no
//! unordered hash iteration feeding committed metrics (the exact PR 3 bug
//! class), no entropy-seeded RNGs, no wall-clock reads in library code
//! (the `chm_obs` span profiler takes an *injected* clock for exactly this
//! reason), no `%`/allocation in hot paths, audited `unsafe`/`unwrap`, and
//! Prometheus-convention metric names at every `chm_obs` registration
//! site. This crate checks them mechanically on every CI run.
//!
//! The analyzer is a hand-rolled lexer + token-stream rule engine
//! ([`lexer`], [`model`], [`rules`]) — the vendoring policy forbids new
//! external dependencies, so there is no `syn` and no AST. Rules are
//! context-sensitive by crate/module role ([`roles`]): the bench harness
//! may read clocks, tests may `unwrap`, the vendored stubs are skipped.
//!
//! Escape hatch: `// chm-lint: allow(rule, "reason")` — the reason string
//! is mandatory and audited (see [`directives`]).
//!
//! Run locally:
//!
//! ```text
//! cargo run -p chm_lint --bin chm-lint -- --check
//! ```

#![forbid(unsafe_code)]

pub mod diag;
pub mod directives;
pub mod lexer;
pub mod model;
pub mod roles;
pub mod rules;

pub use diag::{AllowRecord, Diagnostic, LintReport};
pub use roles::Role;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Lints one source text under a workspace-relative virtual path (the
/// path only determines the file's [`Role`]). Used by the fixture tests
/// and by [`scan_workspace`].
pub fn lint_source(
    rel: &str,
    src: &str,
    ws_hash_names: &BTreeSet<String>,
) -> (Vec<Diagnostic>, Vec<AllowRecord>) {
    let role = roles::classify(rel);
    if !role.scanned() {
        return (Vec::new(), Vec::new());
    }
    let toks = lexer::lex(src);
    let model = model::build(&toks);
    let ctx = rules::FileCtx {
        rel,
        role,
        toks: &toks,
        model: &model,
        ws_hash_names,
    };
    let mut diags = rules::check_file(&ctx);
    // Apply allows: a diagnostic is suppressed by a reasoned allow of the
    // same rule whose line scope covers it. `bad-allow` itself cannot be
    // allowed away.
    diags.retain(|d| {
        d.rule == "bad-allow"
            || !model.allows.iter().any(|a| {
                a.rule == d.rule
                    && a.reason.is_some()
                    && directives::is_known_rule(&a.rule)
                    && (a.lines.0..=a.lines.1).contains(&d.line)
            })
    });
    let allows = model
        .allows
        .iter()
        .filter_map(|a| {
            a.reason.as_ref().map(|r| AllowRecord {
                file: rel.to_string(),
                line: a.line,
                rule: a.rule.clone(),
                reason: r.clone(),
            })
        })
        .collect();
    (diags, allows)
}

/// Lints a standalone snippet with no cross-file type knowledge —
/// convenience for tests and fixtures.
pub fn lint_snippet(rel: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(rel, src, &BTreeSet::new()).0
}

/// Scans the whole workspace rooted at `root`: every `.rs` file under
/// `src/`, `tests/`, `examples/`, and `crates/` (skipping `vendor/`,
/// `target/`, and the lint's own fixtures), in two passes — the first
/// collects hash-collection-typed names workspace-wide so struct fields
/// are recognized across crate boundaries, the second runs the rules.
pub fn scan_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    files.sort();

    // Pass 1: lex + model everything, union the hash-typed names.
    let mut parsed = Vec::new();
    let mut ws_hash_names = BTreeSet::new();
    for path in &files {
        let rel = rel_path(root, path);
        if !roles::classify(&rel).scanned() {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        let toks = lexer::lex(&src);
        let model = model::build(&toks);
        ws_hash_names.extend(model.hash_exports.iter().cloned());
        parsed.push((rel, src));
    }

    // Pass 2: rules with global context.
    let mut report = LintReport {
        files_scanned: parsed.len(),
        ..Default::default()
    };
    for (rel, src) in &parsed {
        let (diags, allows) = lint_source(rel, src, &ws_hash_names);
        report.violations.extend(diags);
        report.allows.extend(allows);
    }
    report.violations.sort();
    report.allows.sort();
    Ok(report)
}

/// Recursively collects `.rs` files, skipping `target`, `vendor`, `.git`,
/// and `fixtures` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_flags_wall_clock_in_lib_role() {
        let d = lint_snippet(
            "crates/foo/src/lib.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "wall-clock");
    }

    #[test]
    fn snippet_allows_wall_clock_in_bench_role() {
        let d = lint_snippet(
            "crates/bench/src/perf.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn reasoned_allow_suppresses_and_is_recorded() {
        let src = r#"
// chm-lint: allow(unwrap, "value checked non-empty one line above")
fn f(v: Vec<u8>) -> u8 { *v.first().unwrap() }
"#;
        let (d, a) = lint_source("crates/foo/src/lib.rs", src, &BTreeSet::new());
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rule, "unwrap");
    }

    #[test]
    fn reasonless_allow_is_a_violation_and_does_not_suppress() {
        let src = "
// chm-lint: allow(unwrap)
fn f(v: Vec<u8>) -> u8 { *v.first().unwrap() }
";
        let d = lint_snippet("crates/foo/src/lib.rs", src);
        let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"bad-allow"), "{d:?}");
        assert!(rules.contains(&"unwrap"), "{d:?}");
    }
}
