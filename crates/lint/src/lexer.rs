//! A minimal, offline-safe Rust lexer.
//!
//! The workspace's vendoring policy forbids pulling in `syn`/`proc-macro2`,
//! so the analyzer works on a hand-rolled token stream instead of a real
//! AST. The lexer only needs to be faithful enough that the rules never
//! mistake string/char/comment *contents* for code — it handles nested
//! block comments, raw strings (`r"…"`, `r#"…"#`), byte strings, char
//! literals vs. lifetimes, and keeps comments as first-class tokens so the
//! `// chm-lint:` directives can be read back out of the stream.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also lifetimes, lexed as `'name`).
    Ident,
    /// Numeric literal (integer or float, any base, with suffixes).
    Num,
    /// String literal (plain, raw, or byte), quotes included.
    Str,
    /// Char literal, quotes included.
    Char,
    /// `// …` comment (text includes the slashes), one per source line.
    LineComment,
    /// `/* … */` comment, possibly spanning lines; text is the whole body.
    BlockComment,
    /// Any single punctuation character (`.`, `:`, `%`, `{`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// The verbatim source text of the lexeme.
    pub text: String,
    /// 1-based line number of the first character.
    pub line: u32,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is punctuation with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// run to end-of-file, and any unrecognized byte becomes a 1-char `Punct`.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if b[i + 1] == '/' {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: b[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            if b[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
                continue;
            }
        }
        // Identifiers / keywords — with raw-string and byte-string prefixes.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let ident: String = b[start..i].iter().collect();
            // r"…", r#"…"#, b"…", br#"…"# — the "identifier" was a prefix.
            if (ident == "r" || ident == "b" || ident == "br")
                && i < n
                && (b[i] == '"' || (ident != "b" && b[i] == '#'))
            {
                let (text, nl) = lex_raw_or_byte_string(&b, start, &mut i);
                toks.push(Tok { kind: TokKind::Str, text, line });
                line += nl;
                continue;
            }
            toks.push(Tok { kind: TokKind::Ident, text: ident, line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < n {
                let d = b[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                    i += 1; // float like 1.5 — but not the range `0..`
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Plain strings.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                }
                if i < n && b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            // `'\…'` or `'x'` → char literal; otherwise a lifetime.
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char {
                let start = i;
                i += 1;
                while i < n && b[i] != '\'' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Everything else: single-char punctuation.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Consumes a raw/byte string whose prefix (`r`/`b`/`br`) starts at `start`
/// and whose body begins at `*i`. Returns the full text and how many
/// newlines it spanned.
fn lex_raw_or_byte_string(b: &[char], start: usize, i: &mut usize) -> (String, u32) {
    let n = b.len();
    let mut hashes = 0usize;
    while *i < n && b[*i] == '#' {
        hashes += 1;
        *i += 1;
    }
    let mut newlines = 0u32;
    if *i < n && b[*i] == '"' {
        *i += 1;
        let raw = hashes > 0 || b[start] == 'r' || (b[start] == 'b' && b[start + 1] == 'r');
        loop {
            if *i >= n {
                break;
            }
            if b[*i] == '\n' {
                newlines += 1;
            }
            if !raw && b[*i] == '\\' {
                *i += 2;
                continue;
            }
            if b[*i] == '"' {
                // Need `hashes` trailing #s to close a raw string.
                let mut k = 0usize;
                while k < hashes && *i + 1 + k < n && b[*i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    *i += 1 + hashes;
                    break;
                }
            }
            *i += 1;
        }
    }
    (b[start..(*i).min(n)].iter().collect(), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_numbers_puncts() {
        let t = lex("let x = a % 10;");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "a", "%", "10", ";"]);
    }

    #[test]
    fn comments_preserved_with_lines() {
        let t = lex("a\n// chm-lint: hot\nfn f() {}\n");
        assert_eq!(t[1].kind, TokKind::LineComment);
        assert_eq!(t[1].line, 2);
        assert!(t[2].is_ident("fn"));
        assert_eq!(t[2].line, 3);
    }

    #[test]
    fn nested_block_comment() {
        let t = lex("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, TokKind::BlockComment);
        assert!(t[1].is_ident("x"));
    }

    #[test]
    fn strings_hide_contents() {
        let t = lex(r#"let s = "Instant::now() % unsafe";"#);
        assert!(t.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_string_with_hashes() {
        let t = lex("let s = r#\"quote \" inside\"#; y");
        assert!(t.iter().any(|t| t.is_ident("y")));
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let t = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\\n'; }");
        let chars = t.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2);
        assert!(t.iter().any(|t| t.kind == TokKind::Ident && t.text == "'a"));
    }

    #[test]
    fn float_vs_range() {
        let t = lex("a = 1.5; for i in 0..10 {}");
        assert!(t.iter().any(|t| t.kind == TokKind::Num && t.text == "1.5"));
        assert!(t.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(t.iter().any(|t| t.kind == TokKind::Num && t.text == "10"));
    }
}
