//! The rule set.
//!
//! | id              | invariant enforced                                             |
//! |-----------------|----------------------------------------------------------------|
//! | `map-iter-order`| no unordered `HashMap`/`HashSet` iteration on output surfaces  |
//! | `rng-discipline`| no entropy-seeded RNG construction anywhere                    |
//! | `wall-clock`    | no `Instant::now`/`SystemTime` outside the bench harness       |
//! | `hot-path-mod`  | no `%` reduction inside `// chm-lint: hot` functions           |
//! | `hot-path-alloc`| no allocation-prone calls inside hot functions                 |
//! | `unsafe-block`  | every `unsafe` must carry an `allow` with a written reason     |
//! | `unwrap`        | no bare `.unwrap()` / empty `.expect("")` in library code      |
//! | `metric-name`   | registered metric names follow the Prometheus convention       |
//! | `bad-allow`     | `allow` directives must name a known rule and give a reason    |
//!
//! Each rule is a pure function of the token stream, the file's
//! [`FileModel`], its [`Role`], and the workspace-wide set of
//! hash-collection-typed names.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::model::FileModel;
use crate::roles::Role;
use std::collections::BTreeSet;

/// Every rule id the analyzer can emit (also the vocabulary `allow`
/// directives may name).
pub const RULE_IDS: &[&str] = &[
    "map-iter-order",
    "rng-discipline",
    "wall-clock",
    "hot-path-mod",
    "hot-path-alloc",
    "unsafe-block",
    "unwrap",
    "metric-name",
    "bad-allow",
];

/// `chm_obs::Registry` registration entry points whose first argument is
/// the metric name the `metric-name` rule validates.
const METRIC_REGISTER_FNS: &[&str] =
    &["register_counter", "register_gauge", "register_histogram"];

/// Iterator-producing methods on hash collections whose order is
/// instance-randomized.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "into_keys",
    "into_values", "drain",
];

/// Chain terminals whose result cannot depend on iteration order.
const ORDER_FREE_TERMINALS: &[&str] = &[
    "count", "len", "is_empty", "all", "any", "contains", "contains_key", "min", "max",
];

/// Functions known (and unit-pinned) to be order-independent consumers of
/// hash-collection iterators.
const ORDER_FREE_SINKS: &[&str] = &["detection_score"];

/// Sort-family calls: their presence in the enclosing function marks the
/// sorted-accumulation pattern (collect → sort → fold, the PR 3 fix).
const SORT_CALLS: &[&str] = &[
    "sort", "sort_by", "sort_unstable", "sort_unstable_by", "sort_by_key",
    "sort_unstable_by_key", "sort_by_cached_key",
];

/// Entropy-sourced RNG constructors (none exist in the vendored `rand`,
/// and none may be reintroduced).
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng", "ThreadRng", "from_entropy", "from_os_rng", "OsRng", "getrandom",
];

/// Allocation-prone method calls forbidden in hot functions.
const HOT_ALLOC_METHODS: &[&str] = &[
    "clone", "to_vec", "to_owned", "to_string", "collect", "push_str",
];

/// Allocation-prone macros forbidden in hot functions.
const HOT_ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Allocation-prone `Type::ctor` paths forbidden in hot functions.
const HOT_ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
];

/// Everything the rules need about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Role from [`crate::roles::classify`].
    pub role: Role,
    /// Full token stream (comments included).
    pub toks: &'a [Tok],
    /// Structural model.
    pub model: &'a FileModel,
    /// Hash-collection-typed names across the whole workspace (struct
    /// fields travel between files; `report.lost` must be recognized in
    /// `runner.rs` even though `lost` is declared in `sim.rs`).
    pub ws_hash_names: &'a BTreeSet<String>,
}

impl FileCtx<'_> {
    fn diag(&self, line: u32, tok_idx: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.rel.to_string(),
            line,
            rule,
            function: self.model.fn_at(tok_idx).map(|f| f.name.clone()),
            message,
        }
    }
}

/// Runs every rule over one file; returns unsuppressed-yet diagnostics
/// (allow application happens in the caller).
pub fn check_file(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Code view: (original token index, token), comments stripped.
    let code: Vec<(usize, &Tok)> = ctx
        .toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();

    rule_wall_clock(ctx, &code, &mut out);
    rule_rng_discipline(ctx, &code, &mut out);
    rule_unsafe(ctx, &code, &mut out);
    rule_unwrap(ctx, &code, &mut out);
    rule_map_iter_order(ctx, &code, &mut out);
    rule_hot_path(ctx, &code, &mut out);
    rule_metric_name(ctx, &code, &mut out);
    rule_bad_allow(ctx, &mut out);
    out
}

/// D3: wall-clock reads outside the bench harness.
fn rule_wall_clock(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    if !ctx.role.forbids_wall_clock() {
        return;
    }
    for i in 0..code.len() {
        let (oi, t) = code[i];
        if t.is_ident("SystemTime") {
            out.push(ctx.diag(
                t.line,
                oi,
                "wall-clock",
                "`SystemTime` is nondeterministic; only `crates/bench` timing \
                 harnesses may read real time — pass a clock into the \
                 `chm_obs` span APIs instead (they are injection sites, \
                 never clock reads)"
                    .into(),
            ));
        }
        if t.is_ident("Instant")
            && matches_seq(code, i + 1, &[":", ":", "now"])
        {
            out.push(ctx.diag(
                t.line,
                oi,
                "wall-clock",
                "`Instant::now()` outside the bench harness breaks replay \
                 determinism; inject a clock from `crates/bench` instead. \
                 The `chm_obs` span APIs (`enter`/`exit`/`record`) take \
                 `&mut dyn FnMut() -> f64` for exactly this reason: \
                 production code passes `&mut || 0.0`"
                    .into(),
            ));
        }
    }
}

/// D2: entropy-seeded RNG construction.
fn rule_rng_discipline(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for &(oi, t) in code {
        if t.kind == TokKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(ctx.diag(
                t.line,
                oi,
                "rng-discipline",
                format!(
                    "`{}` draws entropy; every RNG must be built from an explicit \
                     seed expression (`seed_from_u64`/`from_seed`)",
                    t.text
                ),
            ));
        }
    }
}

/// D5a: every `unsafe` keyword needs an allow-with-reason.
fn rule_unsafe(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for &(oi, t) in code {
        if t.is_ident("unsafe") {
            out.push(ctx.diag(
                t.line,
                oi,
                "unsafe-block",
                "`unsafe` requires `// chm-lint: allow(unsafe-block, \"reason\")` \
                 with a written justification"
                    .into(),
            ));
        }
    }
}

/// D5b: bare `.unwrap()` / empty `.expect("")` in audited roles.
fn rule_unwrap(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    if !ctx.role.audits_unwrap() {
        return;
    }
    for i in 0..code.len() {
        let (oi, t) = code[i];
        if ctx.model.in_test(t.line) {
            continue;
        }
        if t.is_punct('.') && matches_seq(code, i + 1, &["unwrap", "(", ")"]) {
            out.push(ctx.diag(
                code[i + 1].1.line,
                oi,
                "unwrap",
                "bare `.unwrap()` in library code: use `.expect(\"invariant…\")` \
                 to document why this cannot fail, or allow with a reason"
                    .into(),
            ));
        }
        if t.is_punct('.')
            && i + 2 < code.len()
            && code[i + 1].1.is_ident("expect")
            && code[i + 2].1.is_punct('(')
        {
            if let Some((_, s)) = code.get(i + 3) {
                if s.kind == TokKind::Str && s.text.trim_matches(|c| c == '"').trim().is_empty() {
                    out.push(ctx.diag(
                        s.line,
                        oi,
                        "unwrap",
                        "`.expect(\"\")` documents nothing; state the invariant".into(),
                    ));
                }
            }
        }
    }
}

/// D1: unordered hash-collection iteration on output surfaces.
fn rule_map_iter_order(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    if !ctx.role.is_output_surface() {
        return;
    }
    let is_hash = |name: &str| {
        ctx.ws_hash_names.contains(name) || ctx.model.hash_names.contains(name)
    };
    for i in 0..code.len() {
        let (oi, t) = code[i];
        if ctx.model.in_test(t.line) {
            continue;
        }
        // Pattern (a): `X.iter()` / `X.keys()` / … with X hash-typed.
        if t.kind == TokKind::Ident
            && is_hash(&t.text)
            && i + 2 < code.len()
            && code[i + 1].1.is_punct('.')
            && code[i + 2].1.kind == TokKind::Ident
            && ITER_METHODS.contains(&code[i + 2].1.text.as_str())
            && code.get(i + 3).is_some_and(|(_, p)| p.is_punct('('))
        {
            if !iteration_is_order_free(ctx, code, i) {
                out.push(ctx.diag(
                    t.line,
                    oi,
                    "map-iter-order",
                    format!(
                        "iterating `{}` (a hash collection) feeds an output surface: \
                         hash iteration order is instance-randomized — sort first, \
                         use a BTreeMap, or end in an order-free reduction",
                        t.text
                    ),
                ));
            }
            continue;
        }
        // Pattern (b): `for … in &X {` with X hash-typed and no explicit
        // iterator method (that case is pattern (a)).
        if t.is_ident("for") {
            if let Some(in_idx) = find_forward(code, i, 12, "in") {
                if let Some(body_idx) = find_block_open(code, in_idx) {
                    // `for &(a, b) in xs` only type-checks against a slice of
                    // tuples (a map's iterator yields `(&K, &V)`, which the
                    // `&(…)` pattern cannot match) — so the receiver is a Vec
                    // or array whatever its name says elsewhere.
                    let slice_pattern = code.get(i + 1).is_some_and(|(_, t)| t.is_punct('&'))
                        && code.get(i + 2).is_some_and(|(_, t)| t.is_punct('('));
                    if slice_pattern {
                        continue;
                    }
                    let seg = &code[in_idx + 1..body_idx];
                    let has_iter_call = seg
                        .iter()
                        .any(|(_, t)| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()));
                    let hash_recv = seg
                        .iter()
                        .rev()
                        .find(|(_, t)| t.kind == TokKind::Ident)
                        .filter(|(_, t)| is_hash(&t.text))
                        .filter(|(roi, t)| {
                            // A non-hash annotation in the enclosing fn's own
                            // signature shadows the workspace-wide name set.
                            ctx.model.hash_names.contains(&t.text)
                                || !signature_annotates_nonhash(ctx, code, *roi, &t.text)
                        });
                    if let (false, Some(&(roi, rt))) = (has_iter_call, hash_recv) {
                        if !fn_sorts(ctx, code, roi) {
                            out.push(ctx.diag(
                                rt.line,
                                roi,
                                "map-iter-order",
                                format!(
                                    "`for … in {}` iterates a hash collection on an \
                                     output surface in instance-random order",
                                    rt.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Decides whether the hash-iteration chain starting at code index `i`
/// (the receiver ident) is provably order-independent.
fn iteration_is_order_free(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], i: usize) -> bool {
    // The enclosing function uses the sorted-accumulation pattern.
    if fn_sorts(ctx, code, code[i].0) {
        return true;
    }
    let (start, end) = statement_bounds(code, i);
    let stmt = &code[start..end];
    let mut saw_collect = false;
    let mut saw_hash_target = false;
    for (k, (_, t)) in stmt.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        if s == "BTreeMap" || s == "BTreeSet" {
            return true; // re-collected into an ordered container
        }
        if ORDER_FREE_TERMINALS.contains(&s) {
            return true;
        }
        if ORDER_FREE_SINKS.contains(&s) {
            return true;
        }
        if s == "sum" {
            // Integer sums are exact and commutative; float sums are not.
            let turbofish: Vec<&str> = stmt[k + 1..]
                .iter()
                .take(5)
                .map(|(_, t)| t.text.as_str())
                .collect();
            if turbofish.len() >= 4
                && turbofish[..3] == [":", ":", "<"]
                && matches!(turbofish[3], "u8" | "u16" | "u32" | "u64" | "u128" | "usize"
                    | "i8" | "i16" | "i32" | "i64" | "i128" | "isize")
            {
                return true;
            }
        }
        if s == "collect" {
            saw_collect = true;
        }
        if s == "HashMap" || s == "HashSet" {
            saw_hash_target = true;
        }
    }
    // Re-collecting into another hash container is order-independent as a
    // value (equality is set-wise); its own iteration is checked at its
    // own use sites.
    saw_collect && saw_hash_target
}

/// True when the signature of the function enclosing original-token-index
/// `oi` annotates `name` with a type that is *not* a hash container —
/// e.g. `flows: impl Iterator<…>` — in which case the parameter shadows
/// any same-named hash-typed struct field elsewhere in the workspace.
fn signature_annotates_nonhash(
    ctx: &FileCtx<'_>,
    code: &[(usize, &Tok)],
    oi: usize,
    name: &str,
) -> bool {
    let Some(f) = ctx.model.fn_at(oi) else { return false };
    let Some((open, _)) = f.body else { return false };
    // Signature tokens: walk back from the body-open brace to the `fn`
    // keyword that introduces this function.
    let end = match code.iter().position(|(k, _)| *k >= open) {
        Some(e) => e,
        None => return false,
    };
    let start = code[..end]
        .iter()
        .rposition(|(_, t)| t.is_ident("fn"))
        .unwrap_or(0);
    let sig = &code[start..end];
    for j in 0..sig.len().saturating_sub(1) {
        if sig[j].1.is_ident(name) && sig[j + 1].1.is_punct(':') {
            // First meaningful type token after the `:`.
            let mut k = j + 2;
            while k < sig.len()
                && (sig[k].1.is_punct('&')
                    || sig[k].1.is_punct('\'')
                    || sig[k].1.is_punct(':')
                    || sig[k].1.is_ident("mut")
                    || sig[k].1.is_ident("std")
                    || sig[k].1.is_ident("collections")
                    || sig[k].1.kind == crate::lexer::TokKind::Char)
            {
                k += 1;
            }
            let is_hash_ty = sig
                .get(k)
                .is_some_and(|(_, t)| t.is_ident("HashMap") || t.is_ident("HashSet"));
            return !is_hash_ty;
        }
    }
    false
}

/// Does the function enclosing original-token-index `oi` call a
/// sort-family method anywhere? (The collect → sort → fold pattern.)
fn fn_sorts(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], oi: usize) -> bool {
    let Some(f) = ctx.model.fn_at(oi) else { return false };
    let Some((a, b)) = f.body else { return false };
    code.iter()
        .filter(|(k, _)| (a..=b).contains(k))
        .any(|(_, t)| t.kind == TokKind::Ident && SORT_CALLS.contains(&t.text.as_str()))
}

/// D4: hot-function hygiene — no `%`, no allocation-prone calls.
fn rule_hot_path(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    for f in ctx.model.fns.iter().filter(|f| f.hot) {
        let Some((a, b)) = f.body else { continue };
        let body: Vec<&(usize, &Tok)> =
            code.iter().filter(|(k, _)| (a..=b).contains(k)).collect();
        for (w, &&(oi, t)) in body.iter().enumerate() {
            if t.is_punct('%') {
                out.push(ctx.diag(
                    t.line,
                    oi,
                    "hot-path-mod",
                    format!(
                        "`%` reduction in hot function `{}`: use the precomputed \
                         `FastRange` multiply-shift instead (the `index_mod` legacy \
                         reference lives outside hot paths)",
                        f.name
                    ),
                ));
            }
            if t.kind != TokKind::Ident {
                continue;
            }
            let s = t.text.as_str();
            let prev_dot = w > 0 && body[w - 1].1.is_punct('.');
            let next = body.get(w + 1).map(|&&(_, t)| t);
            if prev_dot
                && HOT_ALLOC_METHODS.contains(&s)
                && next.is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
            {
                out.push(ctx.diag(
                    t.line,
                    oi,
                    "hot-path-alloc",
                    format!("`.{s}(…)` allocates; hot function `{}` must stay allocation-free", f.name),
                ));
            }
            if HOT_ALLOC_MACROS.contains(&s) && next.is_some_and(|t| t.is_punct('!')) {
                out.push(ctx.diag(
                    t.line,
                    oi,
                    "hot-path-alloc",
                    format!("`{s}!` allocates; hot function `{}` must stay allocation-free", f.name),
                ));
            }
            for &(ty, ctor) in HOT_ALLOC_PATHS {
                if s == ty && matches_seq_refs(&body, w + 1, &[":", ":", ctor]) {
                    out.push(ctx.diag(
                        t.line,
                        oi,
                        "hot-path-alloc",
                        format!(
                            "`{ty}::{ctor}` allocates; hot function `{}` must stay \
                             allocation-free",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// D6: metric names at `chm_obs::Registry` registration call sites must
/// follow the Prometheus convention the runtime validator
/// (`chm_obs::metric_name_error`) enforces: `snake_case` ASCII
/// `[a-z0-9_]`, a `chm_` namespace prefix, and a final unit-suffix
/// segment. The static twin catches bad names at lint time instead of at
/// first registration, and covers call sites tests never reach.
///
/// Only literal first arguments are checked (a name built at runtime is
/// the registry's job to reject); the `fn register_counter(…)` definitions
/// themselves and `#[cfg(test)]` regions are skipped, as are test files
/// (which register deliberately bad names to pin the runtime panic).
fn rule_metric_name(ctx: &FileCtx<'_>, code: &[(usize, &Tok)], out: &mut Vec<Diagnostic>) {
    if matches!(ctx.role, Role::TestFile | Role::Fixture | Role::Vendor) {
        return;
    }
    for i in 0..code.len() {
        let (_, t) = code[i];
        if t.kind != TokKind::Ident || !METRIC_REGISTER_FNS.contains(&t.text.as_str()) {
            continue;
        }
        if ctx.model.in_test(t.line) {
            continue;
        }
        // Skip the definitions of the registration functions themselves.
        if i > 0 && code[i - 1].1.is_ident("fn") {
            continue;
        }
        if !code.get(i + 1).is_some_and(|(_, p)| p.is_punct('(')) {
            continue;
        }
        let Some(&(oi, arg)) = code.get(i + 2) else { continue };
        if arg.kind != TokKind::Str {
            continue; // dynamic name — validated at registration time
        }
        let name = arg.text.trim_matches('"');
        if let Some(reason) = metric_name_problem(name) {
            out.push(ctx.diag(arg.line, oi, "metric-name", reason));
        }
    }
}

/// Prometheus base-unit suffixes a metric name must end in (the static
/// twin of `chm_obs::UNIT_SUFFIXES` — keep in sync).
const METRIC_UNIT_SUFFIXES: &[&str] = &["total", "seconds", "bytes", "ratio", "count", "info"];

/// The static twin of `chm_obs::metric_name_error`. `None` = acceptable.
fn metric_name_problem(name: &str) -> Option<String> {
    if name.is_empty() {
        return Some("metric name is empty".into());
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'))
    {
        return Some(format!(
            "metric name {name:?} contains {bad:?}; names must be snake_case \
             ASCII ([a-z0-9_])"
        ));
    }
    if name.starts_with('_') || name.ends_with('_') || name.contains("__") {
        return Some(format!(
            "metric name {name:?} has a leading, trailing, or doubled underscore"
        ));
    }
    if !name.starts_with("chm_") {
        return Some(format!("metric name {name:?} lacks the `chm_` namespace prefix"));
    }
    let last = name.rsplit('_').next().unwrap_or("");
    if !METRIC_UNIT_SUFFIXES.contains(&last) {
        return Some(format!(
            "metric name {name:?} must end in a Prometheus unit suffix ({})",
            METRIC_UNIT_SUFFIXES.join("|")
        ));
    }
    None
}

/// The meta-rule: `allow` without a reason, naming an unknown rule, or a
/// malformed directive.
fn rule_bad_allow(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for a in &ctx.model.allows {
        if a.reason.is_none() {
            out.push(Diagnostic {
                file: ctx.rel.to_string(),
                line: a.line,
                rule: "bad-allow",
                function: None,
                message: format!(
                    "`allow({})` without a reason: write \
                     `// chm-lint: allow({}, \"why this is sound\")`",
                    a.rule, a.rule
                ),
            });
        } else if !crate::directives::is_known_rule(&a.rule) {
            out.push(Diagnostic {
                file: ctx.rel.to_string(),
                line: a.line,
                rule: "bad-allow",
                function: None,
                message: format!("`allow({})` names an unknown rule", a.rule),
            });
        }
    }
    for (line, snippet) in &ctx.model.malformed {
        out.push(Diagnostic {
            file: ctx.rel.to_string(),
            line: *line,
            rule: "bad-allow",
            function: None,
            message: format!("unparseable `chm-lint:` directive: `{snippet}`"),
        });
    }
}

/// True when the code tokens starting at `i` match `pat` textually.
fn matches_seq(code: &[(usize, &Tok)], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| code.get(i + k).is_some_and(|(_, t)| t.text == *p))
}

/// [`matches_seq`] over a pre-filtered `Vec<&(usize, &Tok)>` body view.
fn matches_seq_refs(body: &[&(usize, &Tok)], i: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| body.get(i + k).is_some_and(|(_, t)| t.text == *p))
}

/// Finds ident `what` within the next `window` code tokens after `i`.
fn find_forward(code: &[(usize, &Tok)], i: usize, window: usize, what: &str) -> Option<usize> {
    (i + 1..(i + 1 + window).min(code.len())).find(|&k| code[k].1.is_ident(what))
}

/// Finds the `{` opening the block after a `for … in` header, skipping
/// struct-literal-free expression tokens (tracks nesting so closures or
/// index expressions don't fool it).
fn find_block_open(code: &[(usize, &Tok)], from: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, &(_, t)) in code.iter().enumerate().skip(from + 1) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some(k);
        } else if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Inclusive-exclusive code-index bounds of the statement containing `i`:
/// from just after the previous `;`/`{`/`}` to the next `;` or
/// block-opening `{` at the same nesting depth.
fn statement_bounds(code: &[(usize, &Tok)], i: usize) -> (usize, usize) {
    let mut start = i;
    while start > 0 {
        let t = code[start - 1].1;
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    let mut depth = 0i64;
    let mut end = i;
    while end < code.len() {
        let t = code[end].1;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                break; // statement was a call argument — stop at its edge
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            break;
        }
        end += 1;
    }
    (start, end.min(code.len()))
}
