//! `// chm-lint:` comment directives.
//!
//! A directive must start the comment: `// chm-lint: …` (after the
//! slashes, an optional `!`, and whitespace). Mentions of `chm-lint:`
//! elsewhere in a comment — prose, doc bullets, examples — are ignored,
//! so documentation can talk about the syntax without invoking it.
//!
//! Two forms are recognized:
//!
//! * `// chm-lint: hot` — marks the next function as a hot-path function:
//!   the `hot-path-mod` and `hot-path-alloc` rules apply to its body.
//! * `// chm-lint: allow(rule, "reason")` — suppresses diagnostics of
//!   `rule`. Placed in the comment block directly above an `fn`, it covers
//!   the whole function; anywhere else it covers its own line and the next
//!   code line. The reason string is **mandatory**: an `allow` without one
//!   (or naming an unknown rule) is itself a violation (`bad-allow`).

use crate::rules::RULE_IDS;

/// One parsed directive occurrence.
#[derive(Debug, Clone)]
pub enum Directive {
    /// `chm-lint: hot`
    Hot,
    /// `chm-lint: allow(rule, "reason")` — `reason` is `None` when missing.
    Allow {
        /// The rule id being allowed (verbatim, may be unknown).
        rule: String,
        /// The quoted justification, if one was given.
        reason: Option<String>,
    },
    /// `chm-lint:` followed by something unparseable.
    Malformed(String),
}

/// Parses the directive opening one comment's text, if any. Returns an
/// empty vec for ordinary comments (including ones that merely *mention*
/// `chm-lint:` mid-prose).
pub fn parse(comment: &str) -> Vec<Directive> {
    // Strip the comment opener: `//`, `///`, `//!` and whitespace.
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = body.strip_prefix("chm-lint:") else {
        return Vec::new();
    };
    let body = rest.trim_start();
    let d = if body.starts_with("hot") {
        Directive::Hot
    } else if let Some(args) = body.strip_prefix("allow") {
        parse_allow(args)
    } else {
        Directive::Malformed(body.chars().take(40).collect())
    };
    vec![d]
}

/// Parses the `(rule, "reason")` tail of an allow directive.
fn parse_allow(args: &str) -> Directive {
    let args = args.trim_start();
    let Some(inner) = args.strip_prefix('(') else {
        return Directive::Malformed(format!("allow{}", args.chars().take(30).collect::<String>()));
    };
    let Some(close) = inner.find(')') else {
        return Directive::Malformed("allow( missing )".into());
    };
    let inner = &inner[..close];
    let (rule, tail) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), inner[c + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let reason = if tail.len() >= 2 && tail.starts_with('"') && tail.ends_with('"') {
        let r = tail[1..tail.len() - 1].trim();
        if r.is_empty() {
            None
        } else {
            Some(r.to_string())
        }
    } else {
        None
    };
    Directive::Allow {
        rule: rule.to_string(),
        reason,
    }
}

/// True when `rule` is one of the analyzer's rule ids.
pub fn is_known_rule(rule: &str) -> bool {
    RULE_IDS.contains(&rule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hot() {
        let d = parse("// chm-lint: hot");
        assert!(matches!(d.as_slice(), [Directive::Hot]));
    }

    #[test]
    fn parses_allow_with_reason() {
        let d = parse(r#"// chm-lint: allow(unwrap, "index is bounds-checked above")"#);
        match &d[0] {
            Directive::Allow { rule, reason } => {
                assert_eq!(rule, "unwrap");
                assert_eq!(reason.as_deref(), Some("index is bounds-checked above"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn allow_without_reason_is_reasonless() {
        let d = parse("// chm-lint: allow(unwrap)");
        assert!(matches!(
            &d[0],
            Directive::Allow { reason: None, .. }
        ));
    }

    #[test]
    fn ordinary_comment_is_ignored() {
        assert!(parse("// nothing to see").is_empty());
    }

    #[test]
    fn malformed_directive_detected() {
        let d = parse("// chm-lint: allwo(unwrap)");
        assert!(matches!(&d[0], Directive::Malformed(_)));
    }
}
