//! Structural view of one lexed file: function extents, `#[cfg(test)]`
//! regions, directive scopes, and hash-collection-typed names.
//!
//! This is deliberately *not* an AST. The rules need four structural
//! facts a token stream alone doesn't give: which function a token is in
//! (and whether it is `// chm-lint: hot`), whether a line sits inside a
//! `#[cfg(test)]` module, which lines an `allow` directive covers, and
//! which identifiers name `HashMap`/`HashSet` values. All four fall out
//! of one linear pass with brace matching.

use crate::directives::{self, Directive};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeSet;

/// One `fn` item: name, token extent of its body, line extent, hot flag.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, inclusive of both braces
    /// (`None` for bodyless trait-method declarations).
    pub body: Option<(usize, usize)>,
    /// First/last line covered by the item (leading comments excluded).
    pub lines: (u32, u32),
    /// Marked `// chm-lint: hot` in its leading comments.
    pub hot: bool,
}

/// One `allow` directive with its resolved line scope.
#[derive(Debug, Clone)]
pub struct AllowScope {
    /// The rule id being allowed (verbatim; may be unknown).
    pub rule: String,
    /// The mandatory justification (`None` = violation).
    pub reason: Option<String>,
    /// Line the directive itself is on.
    pub line: u32,
    /// Inclusive line range the allow covers.
    pub lines: (u32, u32),
}

/// The analyzed structure of one file.
#[derive(Debug)]
pub struct FileModel {
    /// Every function item, in source order.
    pub fns: Vec<FnInfo>,
    /// Inclusive line ranges inside `#[cfg(test)]` items.
    pub test_lines: Vec<(u32, u32)>,
    /// Every `allow` directive with its scope.
    pub allows: Vec<AllowScope>,
    /// Lines carrying a malformed `chm-lint:` directive, with a snippet.
    pub malformed: Vec<(u32, String)>,
    /// Identifiers declared (anywhere in this file) with a
    /// `HashMap`/`HashSet` type or constructed from one.
    pub hash_names: BTreeSet<String>,
    /// The subset of [`hash_names`](Self::hash_names) worth exporting
    /// workspace-wide: struct fields and fn params (type-annotated, not
    /// `let`-bound). `let` locals stay file-scoped so a local named
    /// `flows` in one crate cannot taint a `Vec` field named `flows`
    /// elsewhere.
    pub hash_exports: BTreeSet<String>,
}

impl FileModel {
    /// True when `line` falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.iter().any(|&(a, b)| (a..=b).contains(&line))
    }

    /// The innermost hot function whose body covers token index `i`.
    pub fn hot_fn_at(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .rfind(|f| f.hot && f.body.is_some_and(|(a, b)| (a..=b).contains(&i)))
    }

    /// The innermost function whose body covers token index `i`.
    pub fn fn_at(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .rfind(|f| f.body.is_some_and(|(a, b)| (a..=b).contains(&i)))
    }
}

/// Builds the [`FileModel`] for a token stream.
pub fn build(toks: &[Tok]) -> FileModel {
    let mut m = FileModel {
        fns: Vec::new(),
        test_lines: Vec::new(),
        allows: Vec::new(),
        malformed: Vec::new(),
        hash_names: BTreeSet::new(),
        hash_exports: BTreeSet::new(),
    };
    find_fns_and_directives(toks, &mut m);
    find_test_regions(toks, &mut m);
    find_hash_names(toks, &mut m);
    m
}

/// Scans for `fn` items, binds leading-comment directives to them, and
/// resolves line-scoped directives everywhere else.
fn find_fns_and_directives(toks: &[Tok], m: &mut FileModel) {
    // First: every fn item with its body extent.
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Find the body `{` or the declaration-terminating `;`.
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                if toks[j].is_punct(';') {
                    break;
                }
                if toks[j].is_punct('{') {
                    body = Some((j, match_brace(toks, j)));
                    break;
                }
                j += 1;
            }
            let end_line = match body {
                Some((_, e)) => toks.get(e).map(|t| t.line).unwrap_or(line),
                None => toks.get(j).map(|t| t.line).unwrap_or(line),
            };
            // Leading comments: walk back over comments and attribute
            // tokens until real code.
            let (hot, fn_allows) = leading_directives(toks, i);
            for (rule, reason, dline) in fn_allows {
                m.allows.push(AllowScope {
                    rule,
                    reason,
                    line: dline,
                    lines: (line.min(dline), end_line),
                });
            }
            m.fns.push(FnInfo {
                name,
                line,
                body,
                lines: (line, end_line),
                hot,
            });
            // Advance only past `fn name` so functions nested inside this
            // body are discovered too.
            i += 2;
            continue;
        }
        i += 1;
    }
    // Second: directives not bound to a fn header (line-scoped), plus
    // malformed ones.
    for (k, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        for d in directives::parse(&t.text) {
            match d {
                Directive::Allow { rule, reason } => {
                    if bound_to_fn(toks, k) {
                        continue; // already scoped to the fn above
                    }
                    // Scope: this line through the next code line.
                    let next_code = toks[k + 1..]
                        .iter()
                        .find(|t| !t.is_comment())
                        .map(|t| t.line)
                        .unwrap_or(t.line);
                    m.allows.push(AllowScope {
                        rule,
                        reason,
                        line: t.line,
                        lines: (t.line, next_code.max(t.line)),
                    });
                }
                Directive::Malformed(s) => m.malformed.push((t.line, s)),
                Directive::Hot => {} // consumed by leading_directives
            }
        }
    }
}

/// Is the comment at token index `k` part of a fn item's leading comment
/// block (comments/attributes only between it and the `fn` keyword)?
fn bound_to_fn(toks: &[Tok], k: usize) -> bool {
    let mut j = k + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('#') {
            // Skip an attribute `#[…]`.
            if j + 1 < toks.len() && toks[j + 1].is_punct('[') {
                j = match_bracket(toks, j + 1) + 1;
                continue;
            }
            return false;
        }
        // Qualifiers that may precede `fn`.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "pub" | "const" | "unsafe" | "extern" | "async" | "crate")
        {
            j += 1;
            continue;
        }
        if t.is_punct('(') {
            // `pub(crate)` etc.
            j = match_paren(toks, j) + 1;
            continue;
        }
        return t.is_ident("fn");
    }
    false
}

/// Collects `hot` and `allow` directives from the comment block directly
/// above the `fn` keyword at token index `fi`.
fn leading_directives(
    toks: &[Tok],
    fi: usize,
) -> (bool, Vec<(String, Option<String>, u32)>) {
    let mut hot = false;
    let mut allows = Vec::new();
    let mut j = fi;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_comment() {
            for d in directives::parse(&t.text) {
                match d {
                    Directive::Hot => hot = true,
                    Directive::Allow { rule, reason } => allows.push((rule, reason, t.line)),
                    Directive::Malformed(_) => {}
                }
            }
            j -= 1;
            continue;
        }
        // Attributes and qualifiers between comments and `fn`.
        if t.is_punct(']') {
            // Walk back to the matching `[` and its `#`.
            let mut depth = 1;
            let mut k = j - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                }
            }
            j = k.saturating_sub(1);
            if j == 0 {
                break;
            }
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "pub" | "const" | "unsafe" | "extern" | "async" | "crate")
        {
            j -= 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct('(') {
            j -= 1; // inside `pub(crate)` etc.
            continue;
        }
        break;
    }
    (hot, allows)
}

/// Marks the line ranges of `#[cfg(test)]`-gated items (typically the
/// in-file `mod tests`).
fn find_test_regions(toks: &[Tok], m: &mut FileModel) {
    let code: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let mut i = 0usize;
    while i + 6 < code.len() {
        let w = &code[i..];
        if w[0].1.is_punct('#')
            && w[1].1.is_punct('[')
            && w[2].1.is_ident("cfg")
            && w[3].1.is_punct('(')
            && w[4].1.is_ident("test")
            && w[5].1.is_punct(')')
            && w[6].1.is_punct(']')
        {
            // The gated item runs to the matching `}` of its first `{`.
            let mut j = i + 7;
            while j < code.len() && !code[j].1.is_punct('{') {
                if code[j].1.is_punct(';') {
                    break; // `#[cfg(test)] use …;`
                }
                j += 1;
            }
            if j < code.len() && code[j].1.is_punct('{') {
                let open = code[j].0;
                let close = match_brace(toks, open);
                m.test_lines.push((
                    toks[code[i].0].line,
                    toks.get(close).map(|t| t.line).unwrap_or(u32::MAX),
                ));
                // Skip past the region.
                while i < code.len() && code[i].0 <= close {
                    i += 1;
                }
                continue;
            }
        }
        i += 1;
    }
}

/// Records names declared with a hash-collection type or constructor:
/// `name: HashMap<…>`, `name: &HashSet<…>`, and
/// `let [mut] name = HashMap::new()/with_capacity/from…`.
fn find_hash_names(toks: &[Tok], m: &mut FileModel) {
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // `name :  [&] [mut] [std::collections::] HashMap`
        let mut j = i;
        while j > 0 {
            let p = code[j - 1];
            if p.is_ident("collections") || p.is_ident("std") || p.is_punct(':')
                || p.is_ident("mut") || p.is_punct('&')
            {
                j -= 1;
                continue;
            }
            break;
        }
        // After unwinding the path/ref prefix, `code[j]` is the first
        // consumed token; a type annotation looks like `name : <prefix>`.
        if j >= 1 && j < code.len() && code[j].is_punct(':') && code[j - 1].kind == TokKind::Ident {
            let name = &code[j - 1].text;
            if name != "Option" && name != "Some" {
                m.hash_names.insert(name.clone());
                // `let [mut] name: HashMap…` is a local; everything else
                // (field, param) is a cross-file fact.
                let k = j - 1;
                let let_bound = (k >= 1 && code[k - 1].is_ident("let"))
                    || (k >= 2 && code[k - 1].is_ident("mut") && code[k - 2].is_ident("let"));
                if !let_bound {
                    m.hash_exports.insert(name.clone());
                }
            }
        }
        // `let [mut] name = HashMap::…`
        if j >= 2 && code[j - 1].is_punct('=') && code[j - 2].kind == TokKind::Ident {
            let k = j - 2;
            let is_let = (k >= 1 && code[k - 1].is_ident("let"))
                || (k >= 2 && code[k - 1].is_ident("mut") && code[k - 2].is_ident("let"));
            if is_let {
                m.hash_names.insert(code[k].text.clone());
            }
        }
    }
}

/// Returns the index of the `}` matching the `{` at `open` (or the last
/// token index if unbalanced).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    match_delim(toks, open, '{', '}')
}

fn match_bracket(toks: &[Tok], open: usize) -> usize {
    match_delim(toks, open, '[', ']')
}

fn match_paren(toks: &[Tok], open: usize) -> usize {
    match_delim(toks, open, '(', ')')
}

fn match_delim(toks: &[Tok], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_fns_and_hot_marker() {
        let src = "
/// Docs.
// chm-lint: hot
#[inline]
pub fn fast(x: u64) -> u64 { x }

fn slow() {}
";
        let m = build(&lex(src));
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].hot);
        assert_eq!(m.fns[0].name, "fast");
        assert!(!m.fns[1].hot);
    }

    #[test]
    fn fn_scoped_allow_covers_whole_body() {
        let src = r#"
// chm-lint: allow(unwrap, "demo covers body")
fn f() {
    let x: Option<u8> = None;
    x.unwrap();
}
"#;
        let m = build(&lex(src));
        assert_eq!(m.allows.len(), 1);
        let a = &m.allows[0];
        assert!(a.lines.0 <= 3 && a.lines.1 >= 5, "scope {:?}", a.lines);
    }

    #[test]
    fn line_scoped_allow_covers_next_line() {
        let src = r#"
fn f() {
    // chm-lint: allow(unwrap, "bounded above")
    foo.unwrap();
    bar.unwrap();
}
"#;
        let m = build(&lex(src));
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].lines, (3, 4));
    }

    #[test]
    fn cfg_test_region_found() {
        let src = "
fn lib() {}

#[cfg(test)]
mod tests {
    fn t() {}
}
";
        let m = build(&lex(src));
        assert_eq!(m.test_lines.len(), 1);
        assert!(m.in_test(6));
        assert!(!m.in_test(2));
    }

    #[test]
    fn hash_names_from_annotations_and_ctors() {
        let src = "
struct S { lost: HashMap<u32, u64>, ok: BTreeMap<u32, u64> }
fn f(seen: &std::collections::HashSet<u8>) {
    let mut acc = HashMap::new();
    let sorted: Vec<u8> = vec![];
}
";
        let m = build(&lex(src));
        assert!(m.hash_names.contains("lost"));
        assert!(m.hash_names.contains("seen"));
        assert!(m.hash_names.contains("acc"));
        assert!(!m.hash_names.contains("ok"));
        assert!(!m.hash_names.contains("sorted"));
    }
}
