//! `chm-lint` — the CLI gate.
//!
//! ```text
//! chm-lint [--check] [--json PATH] [ROOT]
//! ```
//!
//! Scans the workspace (found by walking up from the current directory,
//! or `ROOT` when given), prints every violation, optionally writes the
//! machine-readable JSON report, and exits non-zero when the workspace is
//! not clean. `--check` is the CI mode: compact per-violation lines, no
//! allow listing. There is deliberately no `--fix` — fixes are code
//! review's job; the analyzer only refuses.

#![forbid(unsafe_code)]

use chm_lint::{find_workspace_root, scan_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("chm-lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: chm-lint [--check] [--json PATH] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ => root = Some(PathBuf::from(a)),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("chm-lint: no workspace root found (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };
    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chm-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &json {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("chm-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for d in &report.violations {
        let f = d
            .function
            .as_deref()
            .map(|f| format!(" (in `{f}`)"))
            .unwrap_or_default();
        println!("{}:{}: [{}]{} {}", d.file, d.line, d.rule, f, d.message);
    }
    if !check && !report.allows.is_empty() {
        println!("\n{} reasoned allow(s):", report.allows.len());
        for a in &report.allows {
            println!("  {}:{}: allow({}) — {}", a.file, a.line, a.rule, a.reason);
        }
    }
    println!(
        "chm-lint: {} file(s) scanned, {} violation(s), {} reasoned allow(s)",
        report.files_scanned,
        report.violations.len(),
        report.allows.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
