//! Metric registry: counters, gauges, and fixed-bucket histograms behind
//! static [`MetricId`] handles.
//!
//! Determinism contract:
//!
//! * registration validates names against the workspace convention (see
//!   [`metric_name_error`]) and *sorts* label pairs, so a series'
//!   identity is independent of the label order at the call site;
//! * the emission index is a `BTreeMap` keyed on `(name, rendered
//!   labels)` — iteration order is bit-stable across runs and across
//!   insertion orders;
//! * per-shard deltas accumulate in [`ShardBuf`]s and fold back in with
//!   commutative integer/bucket adds ([`Registry::absorb`]), the same
//!   order-independent reduction discipline the shard engine uses for
//!   its `ReportFragment`s.

use std::collections::BTreeMap;

/// Handle to one registered series. Cheap to copy; obtained once at
/// setup time and used on the hot path without any map lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(pub(crate) u32);

/// The three supported metric kinds, mirroring the Prometheus core types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone `u64`; name must end in `_total`.
    Counter,
    /// Free `f64` set-point; name must *not* end in `_total`.
    Gauge,
    /// Fixed upper-bound buckets plus `sum`/`count`; cumulative on render.
    Histogram,
}

/// Prometheus base-unit suffixes accepted by [`metric_name_error`].
///
/// `total` is the counter suffix; the rest follow the Prometheus
/// base-unit conventions (`seconds` not `ms`, `bytes` not `kb`,
/// `ratio` for 0..1 fractions, `count` for unit-less tallies, `info`
/// for constant metadata gauges).
pub const UNIT_SUFFIXES: [&str; 6] = ["total", "seconds", "bytes", "ratio", "count", "info"];

/// Validate a metric name against the workspace convention. Returns
/// `None` when the name is acceptable, `Some(reason)` otherwise.
///
/// Rules: lowercase ASCII `[a-z0-9_]`, no leading/trailing/double
/// underscore, a `chm_` namespace prefix, and a final segment drawn
/// from [`UNIT_SUFFIXES`]. The chm-lint `metric-name` rule enforces the
/// same predicate statically on registration call sites.
pub fn metric_name_error(name: &str) -> Option<String> {
    if name.is_empty() {
        return Some("metric name is empty".into());
    }
    if let Some(bad) = name
        .chars()
        .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'))
    {
        return Some(format!(
            "metric name {name:?} contains {bad:?}; only [a-z0-9_] are allowed"
        ));
    }
    if name.starts_with('_') || name.ends_with('_') || name.contains("__") {
        return Some(format!(
            "metric name {name:?} has a leading, trailing, or doubled underscore"
        ));
    }
    if !name.starts_with("chm_") {
        return Some(format!("metric name {name:?} lacks the chm_ namespace prefix"));
    }
    let last = name.rsplit('_').next().unwrap_or("");
    if !UNIT_SUFFIXES.contains(&last) {
        return Some(format!(
            "metric name {name:?} must end in a unit suffix ({})",
            UNIT_SUFFIXES.join("|")
        ));
    }
    None
}

/// Escape a label value for the Prometheus text format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render sorted label pairs as `{k1="v1",k2="v2"}` (empty string for
/// no labels). Values are escaped here, once, at registration time.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Per-bucket (non-cumulative) hit counts; one slot per bound
        /// plus the trailing overflow (`+Inf`) slot.
        hits: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct Family {
    pub kind: MetricKind,
    pub help: String,
    /// Upper bounds for histograms (strictly increasing, finite);
    /// empty for counters and gauges.
    pub buckets: Vec<f64>,
}

#[derive(Debug, Clone)]
pub(crate) struct Series {
    pub name: String,
    /// Pre-rendered `{k="v",...}` label block (empty for no labels).
    pub labels: String,
    pub value: Value,
}

/// The metric registry. Single-threaded by design — per-shard code uses
/// [`ShardBuf`]s and merges via [`Registry::absorb`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    pub(crate) families: BTreeMap<String, Family>,
    pub(crate) series: Vec<Series>,
    /// `(name, rendered labels)` → series index. The render path walks
    /// this map so emission order is sorted and bit-stable.
    pub(crate) index: BTreeMap<(String, String), u32>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &mut self,
        kind: MetricKind,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> MetricId {
        if let Some(err) = metric_name_error(name) {
            panic!("chm_obs: {err}");
        }
        match kind {
            MetricKind::Counter => assert!(
                name.ends_with("_total"),
                "chm_obs: counter {name:?} must end in _total"
            ),
            MetricKind::Gauge | MetricKind::Histogram => assert!(
                !name.ends_with("_total"),
                "chm_obs: the _total suffix is reserved for counters, got {name:?}"
            ),
        }
        for (k, _) in labels {
            assert!(
                !k.is_empty()
                    && k.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
                    && !k.starts_with(|c: char| c.is_ascii_digit()),
                "chm_obs: label key {k:?} must be snake_case ASCII"
            );
            assert!(*k != "le", "chm_obs: the le label is reserved for histogram buckets");
        }
        if kind == MetricKind::Histogram {
            assert!(!buckets.is_empty(), "chm_obs: histogram {name:?} needs bounds");
            assert!(
                buckets.windows(2).all(|w| w[0] < w[1]) && buckets.iter().all(|b| b.is_finite()),
                "chm_obs: histogram {name:?} bounds must be finite and strictly increasing"
            );
        }
        match self.families.get(name) {
            Some(fam) => {
                assert!(
                    fam.kind == kind && fam.help == help && fam.buckets == buckets,
                    "chm_obs: metric {name:?} re-registered with a different kind, help, or buckets"
                );
            }
            None => {
                self.families.insert(
                    name.to_string(),
                    Family { kind, help: help.to_string(), buckets: buckets.to_vec() },
                );
            }
        }
        let rendered = render_labels(labels);
        let key = (name.to_string(), rendered.clone());
        if let Some(&id) = self.index.get(&key) {
            return MetricId(id);
        }
        let id = u32::try_from(self.series.len()).expect("chm_obs: series count fits in u32");
        let value = match kind {
            MetricKind::Counter => Value::Counter(0),
            MetricKind::Gauge => Value::Gauge(0.0),
            MetricKind::Histogram => Value::Histogram {
                hits: vec![0; buckets.len() + 1],
                sum: 0.0,
                count: 0,
            },
        };
        self.series.push(Series { name: name.to_string(), labels: rendered, value });
        self.index.insert(key, id);
        MetricId(id)
    }

    /// Register (or look up, idempotently) a counter series. Panics on a
    /// name-convention violation or a kind/help mismatch with a prior
    /// registration.
    pub fn register_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(MetricKind::Counter, name, help, labels, &[])
    }

    /// Register (or look up) a gauge series.
    pub fn register_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> MetricId {
        self.register(MetricKind::Gauge, name, help, labels, &[])
    }

    /// Register (or look up) a histogram series with the given strictly
    /// increasing finite upper bounds (an implicit `+Inf` bucket is
    /// always appended on render).
    pub fn register_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> MetricId {
        self.register(MetricKind::Histogram, name, help, labels, buckets)
    }

    /// Increment a counter by 1.
    pub fn inc(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Add `n` to a counter.
    pub fn add(&mut self, id: MetricId, n: u64) {
        match &mut self.series[id.0 as usize].value {
            Value::Counter(c) => *c += n,
            other => panic!("chm_obs: add on non-counter series {other:?}"),
        }
    }

    /// Set a gauge.
    pub fn set(&mut self, id: MetricId, v: f64) {
        match &mut self.series[id.0 as usize].value {
            Value::Gauge(g) => *g = v,
            other => panic!("chm_obs: set on non-gauge series {other:?}"),
        }
    }

    /// Observe one histogram sample.
    pub fn observe(&mut self, id: MetricId, v: f64) {
        let (slot, bounds_len) = {
            let name = &self.series[id.0 as usize].name;
            let buckets = &self.families[name].buckets;
            (bucket_index(buckets, v), buckets.len())
        };
        match &mut self.series[id.0 as usize].value {
            Value::Histogram { hits, sum, count } => {
                debug_assert_eq!(hits.len(), bounds_len + 1);
                hits[slot] += 1;
                *sum += v;
                *count += 1;
            }
            other => panic!("chm_obs: observe on non-histogram series {other:?}"),
        }
    }

    /// Current counter value (test/inspection helper).
    pub fn counter_value(&self, id: MetricId) -> u64 {
        match &self.series[id.0 as usize].value {
            Value::Counter(c) => *c,
            other => panic!("chm_obs: counter_value on {other:?}"),
        }
    }

    /// Current gauge value (test/inspection helper).
    pub fn gauge_value(&self, id: MetricId) -> f64 {
        match &self.series[id.0 as usize].value {
            Value::Gauge(g) => *g,
            other => panic!("chm_obs: gauge_value on {other:?}"),
        }
    }

    /// Histogram `(sum, count)` (test/inspection helper).
    pub fn histogram_totals(&self, id: MetricId) -> (f64, u64) {
        match &self.series[id.0 as usize].value {
            Value::Histogram { sum, count, .. } => (*sum, *count),
            other => panic!("chm_obs: histogram_totals on {other:?}"),
        }
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Fold a shard-local delta buffer back in and reset it. Counter and
    /// histogram merges are commutative integer adds, so any absorb
    /// order over a set of buffers yields the same registry — the same
    /// reduction discipline as the shard engine's `ReportFragment`s.
    /// Gauges carry no deltas ([`ShardBuf`] has no gauge ops), so
    /// absorb order never races a set-point.
    pub fn absorb(&mut self, buf: &mut ShardBuf) {
        for (i, d) in buf.counters.iter_mut().enumerate() {
            if *d == 0 {
                continue;
            }
            match &mut self.series[i].value {
                Value::Counter(c) => *c += *d,
                other => panic!("chm_obs: shard delta for non-counter series {other:?}"),
            }
            *d = 0;
        }
        for (id, delta) in &mut buf.hists {
            if delta.count == 0 {
                continue;
            }
            match &mut self.series[*id as usize].value {
                Value::Histogram { hits, sum, count } => {
                    for (h, d) in hits.iter_mut().zip(delta.hits.iter()) {
                        *h += *d;
                    }
                    *sum += delta.sum;
                    *count += delta.count;
                }
                other => panic!("chm_obs: shard delta for non-histogram series {other:?}"),
            }
            delta.hits.iter_mut().for_each(|h| *h = 0);
            delta.sum = 0.0;
            delta.count = 0;
        }
    }
}

/// First bucket whose upper bound admits `v`; `bounds.len()` means the
/// overflow (`+Inf`) slot.
fn bucket_index(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

#[derive(Debug, Clone, Default)]
pub(crate) struct HistDelta {
    pub hits: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

/// Shard-local delta buffer: counters and histogram observations only
/// (gauges are set-points and stay on the owning registry). Built
/// against a registry snapshot via [`ShardBuf::for_registry`]; merged
/// back with [`Registry::absorb`].
#[derive(Debug, Clone, Default)]
pub struct ShardBuf {
    /// Per-series counter deltas, indexed by `MetricId`.
    counters: Vec<u64>,
    /// Histogram deltas keyed by series id.
    hists: BTreeMap<u32, HistDelta>,
    /// Bucket bounds per histogram series id (copied at creation so
    /// observe() needs no registry access).
    bounds: BTreeMap<u32, Vec<f64>>,
}

impl ShardBuf {
    /// Create a buffer sized for `reg`'s current series set. Series
    /// registered *after* this call are not addressable from the buffer.
    pub fn for_registry(reg: &Registry) -> Self {
        let mut bounds = BTreeMap::new();
        for (i, s) in reg.series.iter().enumerate() {
            if reg.families[&s.name].kind == MetricKind::Histogram {
                bounds.insert(i as u32, reg.families[&s.name].buckets.clone());
            }
        }
        Self { counters: vec![0; reg.series.len()], hists: BTreeMap::new(), bounds }
    }

    /// Increment a counter delta by 1.
    pub fn inc(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Add `n` to a counter delta.
    pub fn add(&mut self, id: MetricId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Observe one histogram sample into the local delta.
    pub fn observe(&mut self, id: MetricId, v: f64) {
        let bounds = self
            .bounds
            .get(&id.0)
            .expect("chm_obs: ShardBuf::observe on a series that is not a histogram");
        let slot = bucket_index(bounds, v);
        let delta = self.hists.entry(id.0).or_insert_with(|| HistDelta {
            hits: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        });
        delta.hits[slot] += 1;
        delta.sum += v;
        delta.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_convention() {
        assert!(metric_name_error("chm_serve_epochs_total").is_none());
        assert!(metric_name_error("chm_replay_phase_a_seconds").is_none());
        assert!(metric_name_error("chm_inbox_depth_count").is_none());
        // missing prefix
        assert!(metric_name_error("serve_epochs_total").is_some());
        // bad charset
        assert!(metric_name_error("chm_Epochs_total").is_some());
        assert!(metric_name_error("chm-epochs-total").is_some());
        // underscore shape
        assert!(metric_name_error("chm__epochs_total").is_some());
        assert!(metric_name_error("_chm_epochs_total").is_some());
        assert!(metric_name_error("chm_epochs_total_").is_some());
        // unit suffix
        assert!(metric_name_error("chm_epochs").is_some());
        assert!(metric_name_error("chm_latency_ms").is_some());
        assert!(metric_name_error("").is_some());
    }

    #[test]
    fn registration_is_idempotent_and_label_order_free() {
        let mut r = Registry::new();
        let a = r.register_counter(
            "chm_x_packets_total",
            "Packets.",
            &[("edge", "0"), ("dir", "up")],
        );
        let b = r.register_counter(
            "chm_x_packets_total",
            "Packets.",
            &[("dir", "up"), ("edge", "0")],
        );
        assert_eq!(a, b);
        assert_eq!(r.series_count(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut r = Registry::new();
        r.register_gauge("chm_x_depth_count", "Depth.", &[]);
        r.register_histogram("chm_x_depth_count", "Depth.", &[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "must end in _total")]
    fn counter_requires_total_suffix() {
        let mut r = Registry::new();
        r.register_counter("chm_x_depth_count", "Depth.", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved for counters")]
    fn gauge_rejects_total_suffix() {
        let mut r = Registry::new();
        r.register_gauge("chm_x_packets_total", "Packets.", &[]);
    }

    #[test]
    fn histogram_buckets_fill_correctly() {
        let mut r = Registry::new();
        let h = r.register_histogram(
            "chm_x_reaction_seconds",
            "Reaction.",
            &[],
            &[0.001, 0.01, 0.1],
        );
        for v in [0.0005, 0.002, 0.05, 7.0, 0.001] {
            r.observe(h, v);
        }
        // boundary 0.001 lands in the le=0.001 bucket (inclusive upper bound)
        let (sum, count) = r.histogram_totals(h);
        assert_eq!(count, 5);
        assert!((sum - 7.0535).abs() < 1e-12);
        match &r.series[h.0 as usize].value {
            Value::Histogram { hits, .. } => assert_eq!(hits, &vec![2, 1, 1, 1]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn absorb_is_order_independent() {
        let build = |order: [usize; 3]| {
            let mut r = Registry::new();
            let c = r.register_counter("chm_x_events_total", "Events.", &[]);
            let h = r.register_histogram("chm_x_lat_seconds", "Lat.", &[], &[1.0, 10.0]);
            let mut bufs: Vec<ShardBuf> =
                (0..3).map(|_| ShardBuf::for_registry(&r)).collect();
            for (i, buf) in bufs.iter_mut().enumerate() {
                buf.add(c, (i as u64 + 1) * 10);
                buf.observe(h, i as f64 * 5.0);
            }
            for i in order {
                r.absorb(&mut bufs[i]);
            }
            (r.counter_value(c), r.histogram_totals(h))
        };
        assert_eq!(build([0, 1, 2]), build([2, 0, 1]));
        assert_eq!(build([0, 1, 2]).0, 60);
    }

    #[test]
    fn absorb_resets_the_buffer() {
        let mut r = Registry::new();
        let c = r.register_counter("chm_x_events_total", "Events.", &[]);
        let mut buf = ShardBuf::for_registry(&r);
        buf.inc(c);
        r.absorb(&mut buf);
        r.absorb(&mut buf); // second absorb is a no-op
        assert_eq!(r.counter_value(c), 1);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("x\ny"), r"x\ny");
    }
}
