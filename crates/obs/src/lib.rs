//! **`chm_obs`** — the deterministic telemetry core of the ChameleMon
//! reproduction.
//!
//! Every layer of the stack reports through this crate: the shard engine's
//! per-phase timing, the controller's decode spans, the streaming
//! runtime's service counters, and the scenario matrix's scorecards. Three
//! pieces compose:
//!
//! * [`Registry`] — counters, gauges, and fixed-bucket histograms behind
//!   static [`MetricId`] handles. Metric names are validated at
//!   registration against the workspace naming convention (snake-case
//!   ASCII, `chm_` namespace prefix, Prometheus unit suffix — enforced
//!   statically too, by chm-lint's `metric-name` rule). Per-shard deltas
//!   accumulate in [`ShardBuf`]s and merge with the same
//!   order-independent reduction discipline as the shard engine's
//!   `ReportFragment`s.
//! * [`SpanProfiler`] — nested named spans (`epoch/phase_a/shard_3`,
//!   `decode/edge_12`, `localize`) driven entirely by an **injected**
//!   `&mut dyn FnMut() -> f64` clock. The crate never reads real time:
//!   under the zero clock (`&mut || 0.0`) every duration is exactly
//!   `0.0`, span *counts* still accumulate, and all rendered output is
//!   byte-identical across runs — the PR 6 wall-clock rule stays intact
//!   (real clocks only ever come from `crates/bench`).
//! * [`expo`] — Prometheus text-format 0.0.4 rendering
//!   ([`render_prometheus`]) and JSONL sinks, all iteration
//!   BTreeMap-backed so emission is bit-stable.
//!
//! ```
//! use chm_obs::{Registry, SpanProfiler};
//!
//! let mut reg = Registry::new();
//! let epochs = reg.register_counter(
//!     "chm_demo_epochs_total", "Epochs served.", &[]);
//! reg.inc(epochs);
//!
//! let mut spans = SpanProfiler::new();
//! let mut zero = || 0.0; // the injected clock — no wall time in here
//! spans.enter("epoch", &mut zero);
//! spans.record(&["replay"], 0.0);
//! spans.exit(&mut zero);
//!
//! let text = chm_obs::render_prometheus(&reg);
//! assert!(text.contains("chm_demo_epochs_total 1"));
//! assert_eq!(spans.get(&["epoch", "replay"]), Some((1, 0.0)));
//! ```

#![forbid(unsafe_code)]

pub mod expo;
pub mod registry;
pub mod span;

pub use expo::{render_json_metrics, render_prometheus};
pub use registry::{
    metric_name_error, MetricId, MetricKind, Registry, ShardBuf, UNIT_SUFFIXES,
};
pub use span::SpanProfiler;
