//! Exposition: Prometheus text-format 0.0.4 and flat JSON rendering.
//!
//! Both renderers walk the registry's `(name, labels)` BTreeMap index,
//! so output is sorted and bit-stable regardless of registration or
//! update order. Float formatting is deterministic: plain `{}` for
//! finite values, `NaN`/`+Inf`/`-Inf` spelled the Prometheus way (JSON
//! uses `null` for non-finite, matching the rest of the workspace).

use crate::registry::{MetricKind, Registry, Value};

/// Deterministic float rendering for the Prometheus text format.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escape a HELP line: `\` → `\\`, newline → `\n` (quotes stay as-is
/// per the text-format spec — only label values escape quotes).
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Splice `le="..."` into a pre-rendered label block, keeping it last.
fn labels_with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // labels is "{k=\"v\",...}" — drop the closing brace and append.
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// Render the whole registry in Prometheus text-format 0.0.4.
///
/// `# HELP` / `# TYPE` headers are emitted once per family, at the
/// family's first series in index order. Histograms render cumulative
/// `_bucket` series (monotone in `le`), a terminal `le="+Inf"` bucket
/// equal to `_count`, then `_sum` and `_count`.
pub fn render_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    let mut current: Option<&str> = None;
    for ((name, _), &id) in &reg.index {
        let series = &reg.series[id as usize];
        let fam = &reg.families[name.as_str()];
        if current != Some(name.as_str()) {
            current = Some(name.as_str());
            let kind = match fam.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
        match &series.value {
            Value::Counter(c) => {
                out.push_str(&format!("{name}{} {c}\n", series.labels));
            }
            Value::Gauge(g) => {
                out.push_str(&format!("{name}{} {}\n", series.labels, fmt_f64(*g)));
            }
            Value::Histogram { hits, sum, count } => {
                let mut cumulative = 0u64;
                for (bound, hit) in fam.buckets.iter().zip(hits.iter()) {
                    cumulative += hit;
                    out.push_str(&format!(
                        "{name}_bucket{} {cumulative}\n",
                        labels_with_le(&series.labels, &fmt_f64(*bound))
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{} {count}\n",
                    labels_with_le(&series.labels, "+Inf")
                ));
                out.push_str(&format!("{name}_sum{} {}\n", series.labels, fmt_f64(*sum)));
                out.push_str(&format!("{name}_count{} {count}\n", series.labels));
            }
        }
    }
    out
}

/// Render the registry as one flat JSON object in index order:
/// counters as integers, gauges as numbers (`null` when non-finite),
/// histograms as `{"sum":...,"count":...}`. Keys are
/// `name{rendered,labels}` exactly as Prometheus would print them.
pub fn render_json_metrics(reg: &Registry) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(reg.index.len());
    for ((name, _), &id) in &reg.index {
        let series = &reg.series[id as usize];
        let key = json_escape(&format!("{name}{}", series.labels));
        let val = match &series.value {
            Value::Counter(c) => format!("{c}"),
            Value::Gauge(g) => json_f64(*g),
            Value::Histogram { sum, count, .. } => {
                format!("{{\"sum\":{},\"count\":{count}}}", json_f64(*sum))
            }
        };
        rows.push(format!("\"{key}\":{val}"));
    }
    format!("{{{}}}", rows.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let mut r = Registry::new();
        let c = r.register_counter("chm_x_events_total", "Events seen.", &[("kind", "a")]);
        let g = r.register_gauge("chm_x_f1_ratio", "F1.", &[]);
        r.add(c, 42);
        r.set(g, 0.5);
        let text = render_prometheus(&r);
        assert_eq!(
            text,
            "# HELP chm_x_events_total Events seen.\n\
             # TYPE chm_x_events_total counter\n\
             chm_x_events_total{kind=\"a\"} 42\n\
             # HELP chm_x_f1_ratio F1.\n\
             # TYPE chm_x_f1_ratio gauge\n\
             chm_x_f1_ratio 0.5\n"
        );
    }

    #[test]
    fn histogram_renders_cumulative_with_inf_equal_to_count() {
        let mut r = Registry::new();
        let h = r.register_histogram("chm_x_lat_seconds", "Latency.", &[], &[0.01, 0.1, 1.0]);
        for v in [0.005, 0.02, 0.05, 0.5, 3.0] {
            r.observe(h, v);
        }
        let text = render_prometheus(&r);
        assert!(text.contains("chm_x_lat_seconds_bucket{le=\"0.01\"} 1\n"));
        assert!(text.contains("chm_x_lat_seconds_bucket{le=\"0.1\"} 3\n"));
        assert!(text.contains("chm_x_lat_seconds_bucket{le=\"1\"} 4\n"));
        assert!(text.contains("chm_x_lat_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("chm_x_lat_seconds_count 5\n"));
    }

    #[test]
    fn help_escaping() {
        let mut r = Registry::new();
        r.register_gauge("chm_x_odd_ratio", "line\\one\nline two", &[]);
        let text = render_prometheus(&r);
        assert!(text.contains("# HELP chm_x_odd_ratio line\\\\one\\nline two\n"));
    }

    #[test]
    fn non_finite_gauges() {
        let mut r = Registry::new();
        let g = r.register_gauge("chm_x_odd_ratio", "Odd.", &[]);
        r.set(g, f64::NAN);
        assert!(render_prometheus(&r).contains("chm_x_odd_ratio NaN\n"));
        assert!(render_json_metrics(&r).contains("\"chm_x_odd_ratio\":null"));
        r.set(g, f64::INFINITY);
        assert!(render_prometheus(&r).contains("chm_x_odd_ratio +Inf\n"));
    }

    #[test]
    fn json_metrics_shape() {
        let mut r = Registry::new();
        let c = r.register_counter("chm_x_events_total", "E.", &[]);
        let h = r.register_histogram("chm_x_lat_seconds", "L.", &[], &[1.0]);
        r.add(c, 7);
        r.observe(h, 0.5);
        assert_eq!(
            render_json_metrics(&r),
            "{\"chm_x_events_total\":7,\"chm_x_lat_seconds\":{\"sum\":0.5,\"count\":1}}"
        );
    }
}
