//! Nested span profiler driven by an **injected** clock.
//!
//! The profiler never reads real time. Every duration comes either from
//! an explicit `record(path, seconds)` or from an `enter`/`exit` pair
//! around a caller-supplied `&mut dyn FnMut() -> f64`. Production code
//! passes the zero clock (`&mut || 0.0`): span *counts* accumulate
//! deterministically while every duration stays exactly `0.0`, so all
//! rendered output is byte-identical across runs and thread counts.
//! Only `crates/bench` (and `chm-serve`'s outermost main loop) may
//! inject a wall clock — the same rule chm-lint enforces since PR 6.
//!
//! Nodes live in an arena; children hang off a `BTreeMap<String, usize>`
//! so every traversal ([`SpanProfiler::flatten`], the JSON emitters) is
//! bit-stable.

use std::collections::BTreeMap;

#[derive(Debug, Clone, Default)]
struct SpanNode {
    children: BTreeMap<String, usize>,
    count: u64,
    total_s: f64,
}

/// Hierarchical span accumulator. See the module docs for the clock
/// contract.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    /// Arena; node 0 is the unnamed root.
    nodes: Vec<SpanNode>,
    /// Open spans: `(node index, start timestamp)`.
    stack: Vec<(usize, f64)>,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanProfiler {
    pub fn new() -> Self {
        Self { nodes: vec![SpanNode::default()], stack: Vec::new() }
    }

    /// Drop all recorded spans (arena and stack), keeping capacity.
    pub fn clear(&mut self) {
        self.nodes.truncate(1);
        self.nodes[0].children.clear();
        self.nodes[0].count = 0;
        self.nodes[0].total_s = 0.0;
        self.stack.clear();
    }

    fn child_of(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent].children.get(name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode::default());
        self.nodes[parent].children.insert(name.to_string(), idx);
        idx
    }

    fn resolve(&mut self, base: usize, path: &[&str]) -> usize {
        let mut at = base;
        for seg in path {
            at = self.child_of(at, seg);
        }
        at
    }

    fn top(&self) -> usize {
        self.stack.last().map_or(0, |&(idx, _)| idx)
    }

    /// Open a span named `name` under the current stack top, sampling
    /// the injected clock for its start time.
    pub fn enter(&mut self, name: &str, clock: &mut dyn FnMut() -> f64) {
        let idx = self.child_of(self.top(), name);
        let t = clock();
        self.stack.push((idx, t));
    }

    /// Close the innermost open span, charging `clock() - start` to it.
    /// Panics if no span is open.
    pub fn exit(&mut self, clock: &mut dyn FnMut() -> f64) {
        let (idx, start) = self
            .stack
            .pop()
            .expect("chm_obs: span exit without a matching enter");
        let t = clock();
        self.nodes[idx].count += 1;
        self.nodes[idx].total_s += t - start;
    }

    /// Record one completed span at `path`, **relative to the current
    /// stack top** (the root when no span is open), charging `dur_s`.
    pub fn record(&mut self, path: &[&str], dur_s: f64) {
        self.record_n(path, 1, dur_s);
    }

    /// Like [`record`](Self::record) but charging `n` occurrences at once.
    pub fn record_n(&mut self, path: &[&str], n: u64, dur_s: f64) {
        let base = self.top();
        let idx = self.resolve(base, path);
        self.nodes[idx].count += n;
        self.nodes[idx].total_s += dur_s;
    }

    /// Look up `(count, total seconds)` at an **absolute** path from the
    /// root. `None` when the path was never recorded.
    pub fn get(&self, path: &[&str]) -> Option<(u64, f64)> {
        let mut at = 0usize;
        for seg in path {
            at = *self.nodes[at].children.get(*seg)?;
        }
        Some((self.nodes[at].count, self.nodes[at].total_s))
    }

    /// Merge another profiler's whole tree under the current stack top,
    /// nested below `prefix` (may be empty). Counts and durations add,
    /// so absorbing shard-local profilers in any order yields the same
    /// tree.
    pub fn absorb(&mut self, other: &SpanProfiler, prefix: &[&str]) {
        let base = self.top();
        let at = self.resolve(base, prefix);
        self.absorb_node(other, 0, at);
    }

    fn absorb_node(&mut self, other: &SpanProfiler, from: usize, into: usize) {
        // Clone the child map up front: `child_of` needs `&mut self` and
        // `other` may alias patterns we cannot borrow across.
        let children: Vec<(String, usize)> = other.nodes[from]
            .children
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        for (name, src) in children {
            let dst = self.child_of(into, &name);
            self.nodes[dst].count += other.nodes[src].count;
            self.nodes[dst].total_s += other.nodes[src].total_s;
            self.absorb_node(other, src, dst);
        }
    }

    /// True when every `enter` has been matched by an `exit`.
    pub fn balanced(&self) -> bool {
        self.stack.is_empty()
    }

    /// Depth-first flattening to `("a/b/c", count, total seconds)`
    /// rows, sorted by the BTreeMap child order at every level.
    pub fn flatten(&self) -> Vec<(String, u64, f64)> {
        let mut out = Vec::new();
        self.flatten_node(0, "", &mut out);
        out
    }

    fn flatten_node(&self, at: usize, prefix: &str, out: &mut Vec<(String, u64, f64)>) {
        for (name, &idx) in &self.nodes[at].children {
            let path = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            let node = &self.nodes[idx];
            out.push((path.clone(), node.count, node.total_s));
            self.flatten_node(idx, &path, out);
        }
    }

    /// Flat JSON object `{"a/b": {"count": N, "total_s": S}, ...}` in
    /// flatten order. Non-finite totals render as `null` (hand-rolled
    /// JSON, same convention as the rest of the workspace).
    pub fn json_object(&self) -> String {
        let rows: Vec<String> = self
            .flatten()
            .iter()
            .map(|(path, count, total)| {
                format!(
                    "\"{}\":{{\"count\":{},\"total_s\":{}}}",
                    json_escape(path),
                    count,
                    json_f64(*total)
                )
            })
            .collect();
        format!("{{{}}}", rows.join(","))
    }

    /// One JSONL line per span row, for the trace sink:
    /// `{"span":"a/b","count":N,"total_s":S}`.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for (path, count, total) in self.flatten() {
            out.push_str(&format!(
                "{{\"span\":\"{}\",\"count\":{},\"total_s\":{}}}\n",
                json_escape(&path),
                count,
                json_f64(total)
            ));
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_nests_and_times() {
        let mut p = SpanProfiler::new();
        let mut t = 0.0_f64;
        let mut clock = move || {
            t += 1.0;
            t
        };
        p.enter("epoch", &mut clock); // start 1
        p.enter("replay", &mut clock); // start 2
        p.exit(&mut clock); // end 3 → replay 1.0
        p.exit(&mut clock); // end 4 → epoch 3.0
        assert!(p.balanced());
        assert_eq!(p.get(&["epoch"]), Some((1, 3.0)));
        assert_eq!(p.get(&["epoch", "replay"]), Some((1, 1.0)));
        assert_eq!(p.get(&["replay"]), None);
    }

    #[test]
    fn record_is_relative_to_stack_top() {
        let mut p = SpanProfiler::new();
        let mut zero = || 0.0;
        p.enter("epoch", &mut zero);
        p.record(&["phase_a", "shard_3"], 0.25);
        p.exit(&mut zero);
        p.record(&["prologue"], 0.5); // stack empty → rooted
        assert_eq!(p.get(&["epoch", "phase_a", "shard_3"]), Some((1, 0.25)));
        assert_eq!(p.get(&["prologue"]), Some((1, 0.5)));
    }

    #[test]
    fn zero_clock_keeps_counts_and_zero_durations() {
        let mut p = SpanProfiler::new();
        let mut zero = || 0.0;
        for _ in 0..3 {
            p.enter("epoch", &mut zero);
            p.record(&["decode", "edge_0"], 0.0);
            p.exit(&mut zero);
        }
        assert_eq!(p.get(&["epoch"]), Some((3, 0.0)));
        assert_eq!(p.get(&["epoch", "decode", "edge_0"]), Some((3, 0.0)));
    }

    #[test]
    fn absorb_merges_under_prefix_and_is_order_independent() {
        let mk = |d: f64| {
            let mut s = SpanProfiler::new();
            s.record(&["phase_a", "shard_0"], d);
            s.record(&["merge"], d * 2.0);
            s
        };
        let (a, b) = (mk(1.0), mk(10.0));
        let run = |order: [&SpanProfiler; 2]| {
            let mut p = SpanProfiler::new();
            let mut zero = || 0.0;
            p.enter("epoch", &mut zero);
            for s in order {
                p.absorb(s, &[]);
            }
            p.exit(&mut zero);
            p.flatten()
        };
        assert_eq!(run([&a, &b]), run([&b, &a]));
        let rows = run([&a, &b]);
        assert!(rows.contains(&("epoch/phase_a/shard_0".to_string(), 2, 11.0)));
        assert!(rows.contains(&("epoch/merge".to_string(), 2, 22.0)));
    }

    #[test]
    fn flatten_is_sorted_and_stable() {
        let mut p = SpanProfiler::new();
        p.record(&["b"], 0.0);
        p.record(&["a", "z"], 0.0);
        p.record(&["a", "k"], 0.0);
        let paths: Vec<String> = p.flatten().into_iter().map(|(s, _, _)| s).collect();
        assert_eq!(paths, vec!["a", "a/k", "a/z", "b"]);
    }

    #[test]
    fn json_renderings() {
        let mut p = SpanProfiler::new();
        p.record(&["localize"], 0.5);
        assert_eq!(p.json_object(), "{\"localize\":{\"count\":1,\"total_s\":0.5}}");
        assert_eq!(
            p.trace_jsonl(),
            "{\"span\":\"localize\",\"count\":1,\"total_s\":0.5}\n"
        );
    }

    #[test]
    #[should_panic(expected = "without a matching enter")]
    fn unbalanced_exit_panics() {
        let mut p = SpanProfiler::new();
        p.exit(&mut || 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut p = SpanProfiler::new();
        p.record(&["x"], 1.0);
        p.clear();
        assert!(p.flatten().is_empty());
        assert_eq!(p.get(&["x"]), None);
    }
}
