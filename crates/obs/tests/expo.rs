//! Integration coverage for the Prometheus exposition (satellite: label
//! escaping, bucket cumulativity, byte-identical rendering).

use chm_obs::{render_json_metrics, render_prometheus, Registry, ShardBuf, SpanProfiler};

fn busy_registry(absorb_order: &[usize]) -> Registry {
    let mut r = Registry::new();
    let packets = r.register_counter(
        "chm_t_packets_total",
        "Packets replayed.",
        &[("path", "per\\packet"), ("note", "line\nbreak \"quoted\"")],
    );
    let f1 = r.register_gauge("chm_t_f1_ratio", "Detection F1.", &[]);
    let lat = r.register_histogram(
        "chm_t_reaction_seconds",
        "Reaction latency.",
        &[("mode", "burst")],
        &[0.001, 0.01, 0.1, 1.0],
    );
    r.set(f1, 0.9375);
    let mut bufs: Vec<ShardBuf> = (0..3).map(|_| ShardBuf::for_registry(&r)).collect();
    for (i, buf) in bufs.iter_mut().enumerate() {
        buf.add(packets, 100 + i as u64);
        for k in 0..=i {
            buf.observe(lat, 0.0005 * (k + 1) as f64 * 10f64.powi(i as i32));
        }
    }
    for &i in absorb_order {
        r.absorb(&mut bufs[i]);
    }
    r
}

#[test]
fn label_values_are_escaped() {
    let text = render_prometheus(&busy_registry(&[0, 1, 2]));
    // backslash, newline, and quote all escaped per text-format 0.0.4
    assert!(text.contains(r#"path="per\\packet""#), "got:\n{text}");
    assert!(text.contains(r#"note="line\nbreak \"quoted\"""#), "got:\n{text}");
    // label pairs are sorted by key regardless of call-site order
    let line = text
        .lines()
        .find(|l| l.starts_with("chm_t_packets_total{"))
        .expect("counter series rendered");
    assert!(line.find("note=").expect("note label") < line.find("path=").expect("path label"));
}

/// Parse every `_bucket` line of one histogram family and check the
/// text-format invariants: cumulative counts monotone in `le`, and the
/// terminal `+Inf` bucket equal to `_count`.
#[test]
fn histogram_buckets_are_cumulative_and_inf_matches_count() {
    let text = render_prometheus(&busy_registry(&[0, 1, 2]));
    let mut bucket_counts: Vec<u64> = Vec::new();
    let mut inf = None;
    let mut count = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("chm_t_reaction_seconds_bucket{") {
            let v: u64 = rest
                .rsplit(' ')
                .next()
                .and_then(|n| n.parse().ok())
                .expect("bucket line ends in an integer");
            if rest.contains("le=\"+Inf\"") {
                inf = Some(v);
            } else {
                bucket_counts.push(v);
            }
        } else if let Some(rest) = line.strip_prefix("chm_t_reaction_seconds_count") {
            count = rest.rsplit(' ').next().and_then(|n| n.parse().ok());
        }
    }
    assert_eq!(bucket_counts.len(), 4, "one line per finite bound:\n{text}");
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "bucket counts must be monotone in le: {bucket_counts:?}"
    );
    let inf = inf.expect("+Inf bucket rendered");
    let count: u64 = count.expect("_count rendered");
    assert_eq!(inf, count, "le=\"+Inf\" must equal _count");
    assert_eq!(count, 6, "3 shards observed 1+2+3 samples");
    assert!(*bucket_counts.last().expect("nonempty") <= inf);
}

#[test]
fn rendering_is_byte_identical_across_runs_and_absorb_orders() {
    let a = busy_registry(&[0, 1, 2]);
    let b = busy_registry(&[2, 0, 1]);
    assert_eq!(render_prometheus(&a), render_prometheus(&b));
    assert_eq!(render_json_metrics(&a), render_json_metrics(&b));
}

#[test]
fn span_tree_renders_byte_identically_under_zero_clock() {
    let run = || {
        let mut p = SpanProfiler::new();
        let mut zero = || 0.0;
        for e in 0..5 {
            p.enter("epoch", &mut zero);
            p.record(&["replay"], 0.0);
            for s in 0..3 {
                p.record(&["phase_a", &format!("shard_{s}")], 0.0);
            }
            p.record_n(&["decode", &format!("edge_{}", e % 2)], 2, 0.0);
            p.exit(&mut zero);
        }
        assert!(p.balanced());
        (p.json_object(), p.trace_jsonl())
    };
    assert_eq!(run(), run());
    let (obj, trace) = run();
    assert!(obj.contains("\"epoch/phase_a/shard_2\":{\"count\":5,\"total_s\":0}"));
    assert!(trace.contains("{\"span\":\"epoch/decode/edge_0\",\"count\":6,\"total_s\":0}\n"));
}
