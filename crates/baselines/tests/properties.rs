//! Property-based tests of baseline-sketch invariants: estimator bounds
//! (CM/CU never underestimate; HashPipe never overestimates), loss-detector
//! exactness when adequately sized, and XOR-structure self-inverses.

use chm_baselines::{
    AccumulationSketch, CmSketch, CocoSketch, CuSketch, FlowRadar, HashPipe, LossDetector,
    LossRadar,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// CM and CU are one-sided overestimators; CU ≤ CM pointwise.
    #[test]
    fn cm_cu_bounds(stream in vec(0u32..500, 1..2000), seed in any::<u64>()) {
        let mut cm = CmSketch::new(4096, seed);
        let mut cu = CuSketch::new(4096, seed);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for f in &stream {
            AccumulationSketch::<u32>::insert(&mut cm, f);
            AccumulationSketch::<u32>::insert(&mut cu, f);
            *truth.entry(*f).or_insert(0) += 1;
        }
        for (f, &v) in &truth {
            let ecm = AccumulationSketch::<u32>::estimate(&cm, f);
            let ecu = AccumulationSketch::<u32>::estimate(&cu, f);
            prop_assert!(ecm >= v);
            prop_assert!(ecu >= v);
            prop_assert!(ecu <= ecm, "CU {} must not exceed CM {}", ecu, ecm);
        }
    }

    /// HashPipe never overestimates any flow.
    #[test]
    fn hashpipe_one_sided(stream in vec(0u32..300, 1..1500), seed in any::<u64>()) {
        let mut hp = HashPipe::<u32>::new(2048, seed);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for f in &stream {
            hp.insert(f);
            *truth.entry(*f).or_insert(0) += 1;
        }
        for (f, &v) in &truth {
            prop_assert!(hp.estimate(f) <= v);
        }
    }

    /// CocoSketch conserves total packet mass across its buckets.
    #[test]
    fn coco_mass_conserved(stream in vec(any::<u32>(), 1..1000), seed in any::<u64>()) {
        let mut coco = CocoSketch::<u32>::new(1024, seed);
        for f in &stream {
            coco.insert(f);
        }
        let total: u64 = coco.entries().map(|(_, c)| c).sum();
        prop_assert_eq!(total, stream.len() as u64);
    }

    /// FlowRadar with generous memory decodes losses exactly, whatever the
    /// loss pattern.
    #[test]
    fn flowradar_exact_when_sized(
        specs in vec((1u64..20, 0u64..5), 1..150),
        seed in any::<u64>(),
    ) {
        let mut fr = FlowRadar::<u32>::new(64 * 1024, seed);
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (i, &(pkts, lost_raw)) in specs.iter().enumerate() {
            let f = i as u32;
            let lost = lost_raw.min(pkts);
            for s in 0..pkts {
                fr.observe_upstream(&f, s as u32);
                if s >= lost {
                    fr.observe_downstream(&f, s as u32);
                }
            }
            if lost > 0 {
                expected.insert(f, lost);
            }
        }
        prop_assert_eq!(fr.decode_losses(), Some(expected));
    }

    /// LossRadar likewise, with memory proportional to lost packets.
    #[test]
    fn lossradar_exact_when_sized(
        specs in vec((1u64..20, 0u64..5), 1..100),
        seed in any::<u64>(),
    ) {
        let total_lost: u64 = specs.iter().map(|&(p, l)| l.min(p)).sum();
        let mem = ((total_lost + 8) * 10 * 4) as usize;
        let mut lr = LossRadar::<u32>::new(mem, seed);
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (i, &(pkts, lost_raw)) in specs.iter().enumerate() {
            let f = i as u32;
            let lost = lost_raw.min(pkts);
            for s in 0..pkts {
                lr.observe_upstream(&f, s as u32);
                if s >= lost {
                    lr.observe_downstream(&f, s as u32);
                }
            }
            if lost > 0 {
                expected.insert(f, lost);
            }
        }
        prop_assert_eq!(lr.decode_losses(), Some(expected));
    }

    /// A loss-free network always decodes to the empty victim set, however
    /// tiny the detector (the delta is identically zero).
    #[test]
    fn no_loss_always_empty(
        flows in vec((any::<u32>(), 1u64..30), 1..200),
        seed in any::<u64>(),
        mem in 64usize..1024,
    ) {
        let mut lr = LossRadar::<u32>::new(mem, seed);
        for &(f, pkts) in &flows {
            for s in 0..pkts as u32 {
                lr.observe_upstream(&f, s);
                lr.observe_downstream(&f, s);
            }
        }
        prop_assert_eq!(lr.decode_losses(), Some(HashMap::new()));
    }
}
