//! UnivMon (Liu et al., SIGCOMM 2016): universal sketching. `L` levels of
//! Count sketch + top-k heaps over progressively half-sampled substreams;
//! any G-sum `Σ g(|f|)` is estimated by the recursive unbiased estimator,
//! which yields heavy hitters, cardinality, and entropy from one structure.
//!
//! Configuration per Appendix C: 14 levels, each level records up to 1000
//! heavy hitters.

use crate::count_sketch::CountSketch;
use crate::AccumulationSketch;
use chm_common::hash::PairwiseHash;
use chm_common::FlowId;
use std::collections::HashMap;

/// Number of levels (Appendix C).
const LEVELS: usize = 14;
/// Per-level heap capacity (Appendix C).
const HEAP_K: usize = 1000;
/// Heap entry bytes: 32-bit key + 32-bit estimate.
const HEAP_ENTRY_BYTES: usize = 8;

#[derive(Debug, Clone)]
struct Level<F> {
    sketch: CountSketch,
    heap: HashMap<F, i64>,
}

/// The UnivMon data structure.
#[derive(Debug, Clone)]
pub struct UnivMon<F: FlowId> {
    levels: Vec<Level<F>>,
    sample_hash: PairwiseHash,
    /// Total packets seen (for entropy normalization).
    total_packets: u64,
}

impl<F: FlowId> UnivMon<F> {
    /// Creates a UnivMon splitting `memory_bytes` across 14 levels.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let per_level = (memory_bytes / LEVELS).max(64);
        let sketch_bytes = per_level.saturating_sub(HEAP_K * HEAP_ENTRY_BYTES).max(48);
        UnivMon {
            levels: (0..LEVELS)
                .map(|i| Level {
                    sketch: CountSketch::new(sketch_bytes, seed.wrapping_add(i as u64 * 77)),
                    heap: HashMap::new(),
                })
                .collect(),
            sample_hash: PairwiseHash::from_seed(seed ^ 0x0417_17e5),
            total_packets: 0,
        }
    }

    /// The deepest level flow `key` is sampled into: level `i` contains the
    /// flow iff the low `i` bits of its sampling hash are all ones.
    fn depth(&self, key: u64) -> usize {
        let h = self.sample_hash.raw(key);
        ((h.trailing_ones() as usize) + 1).min(LEVELS)
    }

    fn track(level: &mut Level<F>, f: &F, est: i64) {
        if est <= 0 {
            return;
        }
        if level.heap.contains_key(f) || level.heap.len() < HEAP_K {
            level.heap.insert(*f, est);
            return;
        }
        if let Some((&min_f, &min_v)) = level.heap.iter().min_by_key(|(_, &v)| v) {
            if est > min_v {
                level.heap.remove(&min_f);
                level.heap.insert(*f, est);
            }
        }
    }

    /// Estimates `Σ_flows g(size)` with the recursive estimator:
    /// `Y_L = Σ_{f∈Q_L} g(w_f)`;
    /// `Y_i = 2·Y_{i+1} + Σ_{f∈Q_i} (1 − 2·s_{i+1}(f))·g(w_f)`.
    pub fn g_sum(&self, g: impl Fn(f64) -> f64) -> f64 {
        let mut y = 0.0;
        for i in (0..LEVELS).rev() {
            let contribution: f64 = self.levels[i]
                .heap
                .iter()
                .map(|(f, &w)| {
                    let gw = g(w.max(0) as f64);
                    if i + 1 == LEVELS {
                        // top level: plain sum (initialized below)
                        gw
                    } else {
                        let sampled_next = self.depth(f.key64()) > i + 1;
                        let ind = if sampled_next { 1.0 } else { 0.0 };
                        (1.0 - 2.0 * ind) * gw
                    }
                })
                .sum();
            y = if i + 1 == LEVELS { contribution } else { 2.0 * y + contribution };
        }
        y.max(0.0)
    }

    /// Cardinality estimate: G-sum with `g ≡ 1`.
    pub fn cardinality(&self) -> f64 {
        self.g_sum(|_| 1.0)
    }

    /// Entropy estimate: `H = log2(N) − (1/N)·Σ w·log2(w)`.
    pub fn entropy(&self) -> f64 {
        let n = self.total_packets as f64;
        if n <= 0.0 {
            return 0.0;
        }
        let g = self.g_sum(|w| if w > 0.0 { w * w.log2() } else { 0.0 });
        (n.log2() - g / n).max(0.0)
    }

    /// Total packets inserted so far.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }
}

impl<F: FlowId> AccumulationSketch<F> for UnivMon<F> {
    fn insert(&mut self, f: &F) {
        self.total_packets += 1;
        let key = f.key64();
        let depth = self.depth(key);
        for i in 0..depth {
            self.levels[i].sketch.add(key);
            let est = self.levels[i].sketch.query(key);
            Self::track(&mut self.levels[i], f, est);
        }
    }

    fn estimate(&self, f: &F) -> u64 {
        // Level 0 sees every packet.
        self.levels[0].sketch.query(f.key64()).max(0) as u64
    }

    fn memory_bytes(&self) -> f64 {
        self.levels
            .iter()
            .map(|l| l.sketch.memory_bytes() + (HEAP_K * HEAP_ENTRY_BYTES) as f64)
            .sum()
    }

    fn heavy_candidates(&self, threshold: u64) -> Vec<(F, u64)> {
        self.levels[0]
            .heap
            .iter()
            .filter(|(_, &v)| v.max(0) as u64 >= threshold)
            .map(|(&f, &v)| (f, v.max(0) as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn build(n_flows: u32, seed: u64) -> (UnivMon<u32>, HashMap<u32, u64>) {
        let mut um = UnivMon::<u32>::new(256 * 1024, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut truth = HashMap::new();
        let mut stream = Vec::new();
        for f in 0..n_flows {
            let n = if f < 10 { 2000 } else { rng.gen_range(1..10) };
            truth.insert(f, n as u64);
            for _ in 0..n {
                stream.push(f);
            }
        }
        stream.shuffle(&mut rng);
        for f in &stream {
            um.insert(f);
        }
        (um, truth)
    }

    #[test]
    fn sampling_halves_per_level() {
        let um = UnivMon::<u32>::new(64 * 1024, 1);
        let mut counts = [0usize; 5];
        for k in 0..100_000u64 {
            let d = um.depth(k);
            for lvl in counts.iter_mut().take(d.min(5)) {
                *lvl += 1;
            }
        }
        for i in 1..5 {
            let ratio = counts[i] as f64 / counts[i - 1] as f64;
            assert!((ratio - 0.5).abs() < 0.05, "level {i} ratio {ratio}");
        }
    }

    #[test]
    fn heavy_hitters_detected() {
        let (um, _) = build(3000, 2);
        let hh = um.heavy_candidates(1000);
        let found: std::collections::HashSet<u32> = hh.iter().map(|&(f, _)| f).collect();
        assert!(found.iter().filter(|&&f| f < 10).count() >= 9, "{found:?}");
    }

    #[test]
    fn cardinality_estimate_in_band() {
        let (um, truth) = build(3000, 3);
        let est = um.cardinality();
        let re = (est - truth.len() as f64).abs() / truth.len() as f64;
        assert!(re < 0.35, "cardinality {est} vs {} (re {re:.2})", truth.len());
    }

    #[test]
    fn entropy_estimate_in_band() {
        let (um, truth) = build(3000, 4);
        let n: u64 = truth.values().sum();
        let true_h: f64 = {
            let nf = n as f64;
            truth
                .values()
                .map(|&w| {
                    let p = w as f64 / nf;
                    -p * p.log2()
                })
                .sum()
        };
        let est = um.entropy();
        let re = (est - true_h).abs() / true_h;
        assert!(re < 0.25, "entropy {est:.3} vs {true_h:.3}");
    }

    #[test]
    fn total_packets_counted() {
        let (um, truth) = build(500, 5);
        assert_eq!(um.total_packets(), truth.values().sum::<u64>());
    }
}
