//! Baseline algorithms that ChameleMon is evaluated against.
//!
//! §5.1 compares FermatSketch with **FlowRadar** and **LossRadar** for packet
//! loss detection; Appendix C compares the Tower+Fermat combination with
//! **CM**, **CU**, **CountHeap**, **UnivMon**, **ElasticSketch**,
//! **FCM-sketch**, **HashPipe**, **CocoSketch**, and **MRAC** across six
//! packet accumulation tasks. Every one of those competitors is implemented
//! here from its original paper's description, with the exact configurations
//! §C lists (e.g. FlowRadar's 10%-memory Bloom filter with 10 hash
//! functions, LossRadar's 48-bit xorSum, Elastic's 4-stage heavy part).
//!
//! Two small traits give the experiment harness a uniform view:
//! [`LossDetector`] for the loss-detection trio and [`AccumulationSketch`]
//! for the per-flow-size family.

#![forbid(unsafe_code)]

pub mod cm;
pub mod coco;
pub mod count_sketch;
pub mod elastic;
pub mod fcm;
pub mod flowradar;
pub mod hashpipe;
pub mod lossradar;
pub mod univmon;

pub use cm::{CmSketch, CuSketch};
pub use coco::CocoSketch;
pub use count_sketch::{CountHeap, CountSketch};
pub use elastic::ElasticSketch;
pub use fcm::FcmSketch;
pub use flowradar::FlowRadar;
pub use hashpipe::HashPipe;
pub use lossradar::LossRadar;
pub use univmon::UnivMon;

use std::collections::HashMap;
use std::hash::Hash;

/// Uniform interface for the packet-loss-detection comparison (Figures 4–6).
///
/// The detector watches the same packet twice — once entering the link
/// (upstream) and, unless it was dropped, once exiting (downstream) — and is
/// finally asked to decode the set of victim flows with lost-packet counts.
pub trait LossDetector<F> {
    /// Record a packet entering the measured segment. `seq` is the packet's
    /// order within its flow (LossRadar's per-packet identifier; flow-level
    /// detectors may ignore it).
    fn observe_upstream(&mut self, f: &F, seq: u32);

    /// Record a packet exiting the measured segment.
    fn observe_downstream(&mut self, f: &F, seq: u32);

    /// Decode the victim flows. `None` means the decode failed (structure
    /// over capacity); `Some(map)` maps each victim flow to its lost-packet
    /// count.
    fn decode_losses(&self) -> Option<HashMap<F, u64>>;

    /// Memory footprint in bytes under the paper's accounting (§5.1 field
    /// widths), counted once per direction or for the pair as the original
    /// system defines it — the harness doubles what needs doubling.
    fn memory_bytes(&self) -> f64;
}

/// Uniform interface for packet-accumulation sketches (Figure 11).
pub trait AccumulationSketch<F: Copy + Eq + Hash> {
    /// Process one packet of flow `f`.
    fn insert(&mut self, f: &F);

    /// Estimated size of flow `f`.
    fn estimate(&self, f: &F) -> u64;

    /// Memory footprint in bytes under the paper's accounting.
    fn memory_bytes(&self) -> f64;

    /// Flows with estimated size ≥ `threshold`, for heavy-hitter /
    /// heavy-change tasks. Default: not supported (empty).
    fn heavy_candidates(&self, _threshold: u64) -> Vec<(F, u64)> {
        Vec::new()
    }
}
