//! CocoSketch (Zhang et al., SIGCOMM 2021), hardware version with one hash
//! function (Appendix C). Each bucket keeps a `(key, count)` pair; every
//! packet increments its bucket's count and then replaces the key with
//! probability `1/count` — the *stochastic variance minimization* that makes
//! the per-key estimate unbiased.

use crate::AccumulationSketch;
use chm_common::hash::{HashFamily, PairwiseHash};
use chm_common::FlowId;

/// Bucket bytes: 32-bit key + 32-bit count.
const BUCKET_BYTES: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Bucket<F> {
    key: Option<F>,
    count: u64,
}

impl<F> Default for Bucket<F> {
    fn default() -> Self {
        Bucket { key: None, count: 0 }
    }
}

/// The CocoSketch data structure (single-hash hardware version).
#[derive(Debug, Clone)]
pub struct CocoSketch<F: FlowId> {
    buckets: Vec<Bucket<F>>,
    hash: HashFamily,
    /// Deterministic replacement randomness (hardware uses a LFSR; we use a
    /// counter-seeded pairwise hash so runs reproduce exactly).
    replace_hash: PairwiseHash,
    ticks: u64,
}

impl<F: FlowId> CocoSketch<F> {
    /// Creates a CocoSketch with roughly `memory_bytes`.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let n = (memory_bytes / BUCKET_BYTES).max(1);
        CocoSketch {
            buckets: vec![Bucket::default(); n],
            hash: HashFamily::new(seed, 1),
            replace_hash: PairwiseHash::from_seed(seed ^ 0xc0c0_0000),
            ticks: 0,
        }
    }

    /// All tracked `(flow, count)` pairs.
    pub fn entries(&self) -> impl Iterator<Item = (F, u64)> + '_ {
        self.buckets.iter().filter_map(|b| b.key.map(|k| (k, b.count)))
    }
}

impl<F: FlowId> AccumulationSketch<F> for CocoSketch<F> {
    fn insert(&mut self, f: &F) {
        self.ticks += 1;
        let j = self.hash.index(0, f.key64(), self.buckets.len());
        let b = &mut self.buckets[j];
        b.count += 1;
        match b.key {
            Some(k) if k == *f => {}
            None => b.key = Some(*f),
            Some(_) => {
                // Replace with probability 1/count.
                let r = self.replace_hash.raw(self.ticks) % b.count;
                if r == 0 {
                    b.key = Some(*f);
                }
            }
        }
    }

    fn estimate(&self, f: &F) -> u64 {
        let j = self.hash.index(0, f.key64(), self.buckets.len());
        let b = &self.buckets[j];
        if b.key == Some(*f) {
            b.count
        } else {
            0
        }
    }

    fn memory_bytes(&self) -> f64 {
        (self.buckets.len() * BUCKET_BYTES) as f64
    }

    fn heavy_candidates(&self, threshold: u64) -> Vec<(F, u64)> {
        self.entries().filter(|&(_, c)| c >= threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lone_flow_exact() {
        let mut c = CocoSketch::<u32>::new(8 * 1024, 1);
        for _ in 0..33 {
            c.insert(&5);
        }
        assert_eq!(c.estimate(&5), 33);
    }

    #[test]
    fn heavy_flows_own_their_buckets() {
        let mut c = CocoSketch::<u32>::new(64 * 1024, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stream = Vec::new();
        for f in 0..10u32 {
            for _ in 0..2000 {
                stream.push(f);
            }
        }
        for f in 100..4000u32 {
            for _ in 0..rng.gen_range(1..3) {
                stream.push(f);
            }
        }
        stream.shuffle(&mut rng);
        for f in &stream {
            c.insert(f);
        }
        let hh = c.heavy_candidates(1000);
        let found: std::collections::HashSet<u32> = hh.iter().map(|&(f, _)| f).collect();
        assert!(
            found.iter().filter(|&&f| f < 10).count() >= 8,
            "heavy flows lost their buckets: {found:?}"
        );
    }

    #[test]
    fn bucket_count_is_total_packets_in_bucket() {
        // The count field accumulates all packets in the bucket regardless
        // of key churn — the estimator's bias comes from key ownership.
        let mut c = CocoSketch::<u32>::new(8, 3); // single bucket
        for _ in 0..10 {
            c.insert(&1);
        }
        for _ in 0..5 {
            c.insert(&2);
        }
        let total: u64 = c.entries().map(|(_, n)| n).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn memory_accounting() {
        let c = CocoSketch::<u32>::new(4096, 0);
        assert_eq!(AccumulationSketch::<u32>::memory_bytes(&c), 4096.0);
    }
}
