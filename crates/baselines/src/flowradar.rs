//! FlowRadar (Li et al., NSDI 2016): a Bloom *flow filter* plus an
//! IBLT-style *counting table* that records exact IDs and sizes of **all**
//! flows — hence its memory is linear in the number of flows, the very
//! property ChameleMon improves on (§1, category 3).
//!
//! Configuration follows §5.1: 10% of memory for the flow filter (a Bloom
//! filter with 10 hash functions), 90% for the counting table (FlowXOR /
//! FlowCount / PacketCount fields of 32 bits each, 3 hash functions).

use crate::LossDetector;
use chm_common::hash::HashFamily;
use chm_common::FlowId;
use std::collections::{HashMap, VecDeque};

/// One counting-table cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    /// XOR of the (64-bit-keyed) IDs of flows mapped here.
    flow_xor: u64,
    /// Number of distinct flows mapped here (signed to survive subtraction).
    flow_count: i64,
    /// Total packets mapped here (signed to survive subtraction).
    packet_count: i64,
}

impl Cell {
    fn is_zero(&self) -> bool {
        self.flow_xor == 0 && self.flow_count == 0 && self.packet_count == 0
    }
}

/// One direction's FlowRadar instance (filter + counting table).
#[derive(Debug, Clone)]
struct Radar<F: FlowId> {
    bloom_bits: Vec<bool>,
    bloom_hashes: HashFamily,
    cells: Vec<Cell>,
    cell_hashes: HashFamily,
    /// Exact IDs seen (keyed) — only for reconstructing `F` from the 64-bit
    /// key after decode; sized O(flows), *not* counted as sketch memory.
    key_to_flow: HashMap<u64, F>,
}

/// FlowRadar deployed upstream + downstream of a link for loss detection,
/// per the §5.1 setup.
#[derive(Debug, Clone)]
pub struct FlowRadar<F: FlowId> {
    up: Radar<F>,
    down: Radar<F>,
    memory_bytes: f64,
}

/// Number of Bloom hash functions (§5.1).
const BLOOM_HASHES: usize = 10;
/// Number of counting-table hash functions (§5.1).
const CELL_HASHES: usize = 3;
/// Bytes per counting-table cell: 32-bit FlowXOR + FlowCount + PacketCount.
const CELL_BYTES: usize = 12;

impl<F: FlowId> Radar<F> {
    fn new(memory_bytes: usize, seed: u64) -> Self {
        // 10% of memory to the flow filter, 90% to the counting table (§5.1).
        let bloom_bytes = memory_bytes / 10;
        let bloom_bits = (bloom_bytes * 8).max(8);
        let cell_count = ((memory_bytes - bloom_bytes) / CELL_BYTES).max(1);
        Radar {
            bloom_bits: vec![false; bloom_bits],
            bloom_hashes: HashFamily::new(seed ^ 0xb100_f11e, BLOOM_HASHES),
            cells: vec![Cell::default(); cell_count],
            cell_hashes: HashFamily::new(seed, CELL_HASHES),
            key_to_flow: HashMap::new(),
        }
    }

    fn insert(&mut self, f: &F) {
        self.insert_weighted(f, 1);
    }

    /// Batch-encodes `pkts` packets of flow `f` (equivalent to `pkts`
    /// repeated single-packet inserts — the cell updates are additive).
    fn insert_weighted(&mut self, f: &F, pkts: i64) {
        if pkts == 0 {
            return;
        }
        let key = f.key64();
        let m = self.bloom_bits.len();
        let mut is_new = false;
        for i in 0..BLOOM_HASHES {
            let j = self.bloom_hashes.index(i, key, m);
            if !self.bloom_bits[j] {
                is_new = true;
                self.bloom_bits[j] = true;
            }
        }
        let n = self.cells.len();
        for i in 0..CELL_HASHES {
            let j = self.cell_hashes.index(i, key, n);
            let c = &mut self.cells[j];
            if is_new {
                c.flow_xor ^= key;
                c.flow_count += 1;
            }
            c.packet_count += pkts;
        }
        if is_new {
            self.key_to_flow.insert(key, *f);
        }
    }

    /// SingleDecode: peel cells with `flow_count == 1`. Returns
    /// `(decoded flows → packet counts, fully decoded?)`.
    fn decode(&self) -> (HashMap<u64, i64>, bool) {
        let mut cells = self.cells.clone();
        let n = cells.len();
        let mut queue: VecDeque<usize> =
            (0..n).filter(|&j| cells[j].flow_count == 1).collect();
        let mut flows = HashMap::new();
        // Work budget: on over-capacity tables, peeling garbage keys (no
        // checksum verification in this IBLT variant) can cycle; exhausting
        // the budget leaves dirty cells, i.e. reports failure.
        let mut budget: u64 = 32 * (n as u64 + 64);
        while let Some(j) = queue.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if cells[j].flow_count != 1 {
                continue;
            }
            let key = cells[j].flow_xor;
            let pkts = cells[j].packet_count;
            flows.insert(key, pkts);
            for i in 0..CELL_HASHES {
                let j2 = self.cell_hashes.index(i, key, n);
                let c = &mut cells[j2];
                c.flow_xor ^= key;
                c.flow_count -= 1;
                c.packet_count -= pkts;
                if c.flow_count == 1 {
                    queue.push_back(j2);
                }
            }
        }
        let clean = cells.iter().all(Cell::is_zero);
        (flows, clean)
    }
}

impl<F: FlowId> FlowRadar<F> {
    /// Creates an upstream/downstream pair, each with `memory_bytes` of
    /// sketch memory.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        FlowRadar {
            // The two directions must share hash functions so their decoded
            // views are comparable; they do via the same seed.
            up: Radar::new(memory_bytes, seed),
            down: Radar::new(memory_bytes, seed),
            memory_bytes: memory_bytes as f64,
        }
    }

    /// Batch-encodes a flow's packets upstream (experiment fast path:
    /// identical cell state to per-packet observation).
    pub fn observe_upstream_flow(&mut self, f: &F, pkts: u64) {
        self.up.insert_weighted(f, pkts as i64);
    }

    /// Batch-encodes a flow's packets downstream.
    pub fn observe_downstream_flow(&mut self, f: &F, pkts: u64) {
        self.down.insert_weighted(f, pkts as i64);
    }

    /// Decoded flow sets of both directions (for tests / direct use).
    pub fn decode_both(&self) -> Option<(HashMap<u64, i64>, HashMap<u64, i64>)> {
        let (u, ok_u) = self.up.decode();
        let (d, ok_d) = self.down.decode();
        if ok_u && ok_d {
            Some((u, d))
        } else {
            None
        }
    }
}

impl<F: FlowId> LossDetector<F> for FlowRadar<F> {
    fn observe_upstream(&mut self, f: &F, _seq: u32) {
        self.up.insert(f);
    }

    fn observe_downstream(&mut self, f: &F, _seq: u32) {
        self.down.insert(f);
    }

    fn decode_losses(&self) -> Option<HashMap<F, u64>> {
        // FlowRadar recovers per-flow counters on both sides, then diffs.
        let (up, down) = self.decode_both()?;
        let mut out = HashMap::new();
        for (key, up_pkts) in up {
            let down_pkts = down.get(&key).copied().unwrap_or(0);
            if up_pkts > down_pkts {
                let f = *self.up.key_to_flow.get(&key)?;
                out.insert(f, (up_pkts - down_pkts) as u64);
            }
        }
        Some(out)
    }

    fn memory_bytes(&self) -> f64 {
        // Per direction; the harness reports the per-direction figure as the
        // paper does.
        self.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mem: usize, flows: u32, loss_every: u32) -> Option<HashMap<u32, u64>> {
        let mut fr = FlowRadar::<u32>::new(mem, 99);
        for f in 0..flows {
            let pkts = 3 + f % 5;
            for s in 0..pkts {
                fr.observe_upstream(&f, s);
                let lost = loss_every != 0 && f % loss_every == 0 && s == 0;
                if !lost {
                    fr.observe_downstream(&f, s);
                }
            }
        }
        fr.decode_losses()
    }

    #[test]
    fn no_loss_decodes_empty() {
        let losses = run(64 * 1024, 1000, 0).expect("decode");
        assert!(losses.is_empty());
    }

    #[test]
    fn detects_exact_losses() {
        let losses = run(64 * 1024, 1000, 10).expect("decode");
        assert_eq!(losses.len(), 100);
        for (f, l) in losses {
            assert_eq!(f % 10, 0);
            assert_eq!(l, 1);
        }
    }

    #[test]
    fn undersized_table_fails_decode() {
        // 1000 flows in ~80 cells cannot decode.
        assert!(run(1200, 1000, 10).is_none());
    }

    #[test]
    fn memory_scales_with_flows_not_losses() {
        // Same flow count, wildly different loss counts: decode feasibility
        // is unchanged (this is FlowRadar's defining property).
        assert!(run(64 * 1024, 1000, 2).is_some());
        assert!(run(64 * 1024, 1000, 1000).is_some());
    }

    #[test]
    fn duplicate_packets_accumulate() {
        let mut fr = FlowRadar::<u32>::new(32 * 1024, 1);
        for _ in 0..5 {
            fr.observe_upstream(&7, 0);
        }
        fr.observe_downstream(&7, 0);
        let losses = fr.decode_losses().unwrap();
        assert_eq!(losses.get(&7), Some(&4));
    }
}
