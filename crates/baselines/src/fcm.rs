//! FCM-sketch (Song et al., CoNEXT 2020), top-k version as configured in
//! Appendix C: an ElasticSketch-style heavy part in front of a 16-ary FCM
//! light part of depth 2 (two independent trees). Each tree stacks counter
//! levels of increasing width (8 → 16 → 32 bits); when a level saturates,
//! the overflow continues in the 16×-smaller next level.

use crate::AccumulationSketch;
use chm_common::hash::HashFamily;
use chm_common::FlowId;

/// Tree fan-in between levels (16-ary, per the FCM paper and §C).
const K_ARY: usize = 16;
/// Number of independent trees ("depth is set to 2").
const DEPTH: usize = 2;
/// Heavy-part stages (same shape as ElasticSketch's heavy part).
const HEAVY_STAGES: usize = 4;
/// Heavy bucket bytes: key + vote+ + vote− + flag.
const HEAVY_BUCKET_BYTES: usize = 13;
/// Counter level widths in bits, bottom-up.
const LEVEL_BITS: [u32; 3] = [8, 16, 32];

#[derive(Debug, Clone, Copy)]
struct HeavyBucket<F> {
    key: Option<F>,
    pos_vote: u32,
    neg_vote: u32,
}

impl<F> Default for HeavyBucket<F> {
    fn default() -> Self {
        HeavyBucket { key: None, pos_vote: 0, neg_vote: 0 }
    }
}

/// One 16-ary counter tree.
#[derive(Debug, Clone)]
struct Tree {
    /// levels[l][j]: value of counter j at level l.
    levels: Vec<Vec<u64>>,
}

impl Tree {
    fn new(base_width: usize) -> Self {
        let mut levels = Vec::new();
        let mut w = base_width.max(K_ARY);
        for _ in LEVEL_BITS {
            levels.push(vec![0u64; w.max(1)]);
            w /= K_ARY;
        }
        Tree { levels }
    }

    fn saturation(l: usize) -> u64 {
        (1u64 << LEVEL_BITS[l]) - 1
    }

    fn insert(&mut self, j0: usize) {
        let mut j = j0;
        for l in 0..self.levels.len() {
            let sat = Self::saturation(l);
            let c = &mut self.levels[l][j];
            if *c < sat {
                *c += 1;
                return;
            }
            // Saturated: carry into the parent counter.
            j /= K_ARY;
            if l + 1 >= self.levels.len() {
                return; // top level saturated; stuck at max
            }
        }
    }

    fn query(&self, j0: usize) -> u64 {
        let mut total = 0u64;
        let mut j = j0;
        for l in 0..self.levels.len() {
            let sat = Self::saturation(l);
            let c = self.levels[l][j];
            if c < sat {
                return total + c;
            }
            total += sat;
            j /= K_ARY;
        }
        total
    }

    fn memory_bytes(&self) -> f64 {
        self.levels
            .iter()
            .zip(LEVEL_BITS)
            .map(|(lv, bits)| lv.len() as f64 * bits as f64 / 8.0)
            .sum()
    }
}

/// The FCM-sketch (heavy part + 2 counter trees).
#[derive(Debug, Clone)]
pub struct FcmSketch<F: FlowId> {
    heavy_width: usize,
    heavy: Vec<HeavyBucket<F>>,
    heavy_hashes: HashFamily,
    trees: Vec<Tree>,
    tree_hashes: HashFamily,
}

/// Eviction threshold, as in ElasticSketch.
const LAMBDA: u32 = 8;

impl<F: FlowId> FcmSketch<F> {
    /// Creates an FCM-sketch using roughly `memory_bytes` (¼ heavy, ¾ light,
    /// the same split as our ElasticSketch for comparability).
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let heavy_bytes = memory_bytes / 4;
        let heavy_width = (heavy_bytes / (HEAVY_STAGES * HEAVY_BUCKET_BYTES)).max(1);
        let light_bytes = memory_bytes - heavy_bytes;
        // Per tree: base level dominates (8-bit counters + 16-bit/16 +
        // 32-bit/256 ≈ 1.141 bytes per base slot).
        let per_slot = 1.0 + 2.0 / K_ARY as f64 + 4.0 / (K_ARY * K_ARY) as f64;
        let base_width =
            ((light_bytes as f64 / DEPTH as f64 / per_slot) as usize).max(K_ARY);
        FcmSketch {
            heavy_width,
            heavy: vec![HeavyBucket::default(); HEAVY_STAGES * heavy_width],
            heavy_hashes: HashFamily::new(seed, HEAVY_STAGES),
            trees: (0..DEPTH).map(|_| Tree::new(base_width)).collect(),
            tree_hashes: HashFamily::new(seed ^ 0xfc00_0000, DEPTH),
        }
    }

    fn light_insert(&mut self, key: u64, times: u64) {
        for t in 0..DEPTH {
            let j = self.tree_hashes.index(t, key, self.trees[t].levels[0].len());
            for _ in 0..times {
                self.trees[t].insert(j);
            }
        }
    }

    fn light_query(&self, key: u64) -> u64 {
        (0..DEPTH)
            .map(|t| {
                let j = self.tree_hashes.index(t, key, self.trees[t].levels[0].len());
                self.trees[t].query(j)
            })
            .min()
            .unwrap_or(0)
    }

    /// Raw base-level counters of tree `t` — used for MRAC-based
    /// distribution/entropy estimation and linear counting.
    pub fn base_level(&self, t: usize) -> &[u64] {
        &self.trees[t].levels[0]
    }

    /// Tracked heavy flows.
    pub fn heavy_entries(&self) -> impl Iterator<Item = (F, u64)> + '_ {
        self.heavy
            .iter()
            .filter_map(|b| b.key.map(|k| (k, b.pos_vote as u64)))
    }
}

impl<F: FlowId> AccumulationSketch<F> for FcmSketch<F> {
    fn insert(&mut self, f: &F) {
        let key = f.key64();
        for i in 0..HEAVY_STAGES {
            let j = self.heavy_hashes.index(i, key, self.heavy_width);
            let idx = i * self.heavy_width + j;
            let b = &mut self.heavy[idx];
            match b.key {
                None => {
                    *b = HeavyBucket { key: Some(*f), pos_vote: 1, neg_vote: 0 };
                    return;
                }
                Some(k) if k == *f => {
                    b.pos_vote += 1;
                    return;
                }
                Some(k) => {
                    b.neg_vote += 1;
                    if b.neg_vote >= LAMBDA * b.pos_vote {
                        let evicted = (k.key64(), b.pos_vote as u64);
                        *b = HeavyBucket { key: Some(*f), pos_vote: 1, neg_vote: 0 };
                        self.light_insert(evicted.0, evicted.1);
                        return;
                    }
                }
            }
        }
        self.light_insert(key, 1);
    }

    fn estimate(&self, f: &F) -> u64 {
        let key = f.key64();
        for i in 0..HEAVY_STAGES {
            let j = self.heavy_hashes.index(i, key, self.heavy_width);
            let b = &self.heavy[i * self.heavy_width + j];
            if b.key == Some(*f) {
                return b.pos_vote as u64 + self.light_query(key);
            }
        }
        self.light_query(key)
    }

    fn memory_bytes(&self) -> f64 {
        (HEAVY_STAGES * self.heavy_width * HEAVY_BUCKET_BYTES) as f64
            + self.trees.iter().map(Tree::memory_bytes).sum::<f64>()
    }

    fn heavy_candidates(&self, threshold: u64) -> Vec<(F, u64)> {
        self.heavy_entries()
            .map(|(f, _)| (f, self.estimate(&f)))
            .filter(|&(_, est)| est >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tree_overflow_carries_to_parent() {
        let mut t = Tree::new(64);
        for _ in 0..500 {
            t.insert(17);
        }
        assert_eq!(t.query(17), 500);
        // The overflow beyond the 8-bit saturation lives in the parent.
        assert_eq!(t.levels[0][17], 255);
        assert_eq!(t.levels[1][1], 245); // 17/16 == 1
        // A sibling whose own base counter is not saturated reads only its
        // own value — the shared parent is invisible to it.
        assert_eq!(t.query(16), 0);
    }

    #[test]
    fn lone_flow_exact() {
        let mut s = FcmSketch::<u32>::new(32 * 1024, 1);
        for _ in 0..40 {
            s.insert(&9);
        }
        assert_eq!(s.estimate(&9), 40);
    }

    #[test]
    fn estimates_track_truth_with_noise() {
        let mut s = FcmSketch::<u32>::new(128 * 1024, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stream = Vec::new();
        let mut truth = std::collections::HashMap::new();
        for f in 0..2000u32 {
            let n = rng.gen_range(1..30);
            truth.insert(f, n as u64);
            for _ in 0..n {
                stream.push(f);
            }
        }
        stream.shuffle(&mut rng);
        for f in &stream {
            s.insert(f);
        }
        let mut are = 0.0;
        for (&f, &v) in &truth {
            are += (s.estimate(&f) as f64 - v as f64).abs() / v as f64;
        }
        are /= truth.len() as f64;
        assert!(are < 0.5, "ARE {are}");
    }

    #[test]
    fn heavy_hitter_recall() {
        let mut s = FcmSketch::<u32>::new(64 * 1024, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stream = Vec::new();
        for f in 0..12u32 {
            for _ in 0..1500 {
                stream.push(f);
            }
        }
        for f in 100..5000u32 {
            stream.push(f);
        }
        stream.shuffle(&mut rng);
        for f in &stream {
            s.insert(f);
        }
        let hh = s.heavy_candidates(750);
        let found: std::collections::HashSet<u32> = hh.iter().map(|&(f, _)| f).collect();
        assert!(found.iter().filter(|&&f| f < 12).count() >= 10);
    }

    #[test]
    fn memory_accounting_close() {
        let s = FcmSketch::<u32>::new(200_000, 4);
        let m = AccumulationSketch::<u32>::memory_bytes(&s);
        assert!((m - 200_000.0).abs() / 200_000.0 < 0.1, "memory {m}");
    }
}
