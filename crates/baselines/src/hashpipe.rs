//! HashPipe (Sivaraman et al., SOSR 2017): a pipeline of `(key, count)`
//! stages that keeps heavy hitters entirely in the data plane by always
//! inserting at the first stage and "kicking" the displaced minimum down
//! the pipeline.
//!
//! Configuration per Appendix C: 6 stages.

use crate::AccumulationSketch;
use chm_common::hash::HashFamily;
use chm_common::FlowId;

/// Number of pipeline stages (Appendix C).
const STAGES: usize = 6;
/// Slot bytes: 32-bit key + 32-bit count.
const SLOT_BYTES: usize = 8;

#[derive(Debug, Clone, Copy)]
struct Slot<F> {
    key: Option<F>,
    count: u64,
}

impl<F> Default for Slot<F> {
    fn default() -> Self {
        Slot { key: None, count: 0 }
    }
}

/// The HashPipe data structure.
#[derive(Debug, Clone)]
pub struct HashPipe<F: FlowId> {
    slots_per_stage: usize,
    slots: Vec<Slot<F>>, // STAGES × slots_per_stage
    hashes: HashFamily,
}

impl<F: FlowId> HashPipe<F> {
    /// Creates a HashPipe using roughly `memory_bytes`.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let slots_per_stage = (memory_bytes / (STAGES * SLOT_BYTES)).max(1);
        HashPipe {
            slots_per_stage,
            slots: vec![Slot::default(); STAGES * slots_per_stage],
            hashes: HashFamily::new(seed, STAGES),
        }
    }

    /// All tracked `(flow, count)` pairs, merging duplicate keys across
    /// stages (a flow can occupy several stages after evictions).
    pub fn entries(&self) -> std::collections::HashMap<F, u64> {
        let mut out = std::collections::HashMap::new();
        for s in &self.slots {
            if let Some(k) = s.key {
                *out.entry(k).or_insert(0) += s.count;
            }
        }
        out
    }
}

impl<F: FlowId> AccumulationSketch<F> for HashPipe<F> {
    fn insert(&mut self, f: &F) {
        // Stage 1: always insert; displace the incumbent.
        let j0 = self.hashes.index(0, f.key64(), self.slots_per_stage);
        let slot = &mut self.slots[j0];
        let mut carried: Slot<F> = match slot.key {
            Some(k) if k == *f => {
                slot.count += 1;
                return;
            }
            None => {
                *slot = Slot { key: Some(*f), count: 1 };
                return;
            }
            Some(_) => {
                let old = *slot;
                *slot = Slot { key: Some(*f), count: 1 };
                old
            }
        };
        // Stages 2..: merge, fill, or swap-with-smaller; drop at the end.
        for i in 1..STAGES {
            let Some(ck) = carried.key else { return };
            let j = self.hashes.index(i, ck.key64(), self.slots_per_stage);
            let slot = &mut self.slots[i * self.slots_per_stage + j];
            match slot.key {
                Some(k) if k == ck => {
                    slot.count += carried.count;
                    return;
                }
                None => {
                    *slot = carried;
                    return;
                }
                Some(_) if carried.count > slot.count => {
                    std::mem::swap(slot, &mut carried);
                }
                Some(_) => {}
            }
        }
        // Pipeline exhausted: the carried (smallest) flow's count is lost —
        // HashPipe's deliberate trade-off.
    }

    fn estimate(&self, f: &F) -> u64 {
        let mut total = 0;
        for i in 0..STAGES {
            let j = self.hashes.index(i, f.key64(), self.slots_per_stage);
            let s = &self.slots[i * self.slots_per_stage + j];
            if s.key == Some(*f) {
                total += s.count;
            }
        }
        total
    }

    fn memory_bytes(&self) -> f64 {
        (STAGES * self.slots_per_stage * SLOT_BYTES) as f64
    }

    fn heavy_candidates(&self, threshold: u64) -> Vec<(F, u64)> {
        self.entries()
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lone_flow_is_exact() {
        let mut hp = HashPipe::<u32>::new(16 * 1024, 1);
        for _ in 0..50 {
            hp.insert(&7);
        }
        assert_eq!(hp.estimate(&7), 50);
    }

    #[test]
    fn finds_heavy_hitters_under_noise() {
        let mut hp = HashPipe::<u32>::new(32 * 1024, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut stream = Vec::new();
        for f in 0..15u32 {
            for _ in 0..800 {
                stream.push(f);
            }
        }
        for f in 1000..6000u32 {
            stream.push(f);
        }
        stream.shuffle(&mut rng);
        for f in &stream {
            hp.insert(f);
        }
        let hh = hp.heavy_candidates(400);
        let found: std::collections::HashSet<u32> = hh.iter().map(|&(f, _)| f).collect();
        assert!(found.iter().filter(|&&f| f < 15).count() >= 13, "recall too low: {found:?}");
    }

    #[test]
    fn never_overestimates_single_keys() {
        // HashPipe may undercount (dropped carries) but matching slots only
        // contain real packets of that flow.
        let mut hp = HashPipe::<u32>::new(4 * 1024, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let f: u32 = rng.gen_range(0..3000);
            hp.insert(&f);
            *truth.entry(f).or_insert(0u64) += 1;
        }
        for (f, v) in truth {
            assert!(hp.estimate(&f) <= v, "overestimate for {f}");
        }
    }

    #[test]
    fn memory_accounting() {
        let hp = HashPipe::<u32>::new(48_000, 0);
        let m = AccumulationSketch::<u32>::memory_bytes(&hp);
        assert!((m - 48_000.0).abs() <= SLOT_BYTES as f64 * STAGES as f64);
    }
}
