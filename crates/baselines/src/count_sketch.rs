//! Count sketch (Charikar et al., 2002) and **CountHeap** — Count sketch
//! paired with a top-k heap for heavy-hitter reporting, as configured in
//! Appendix C (3 hash functions, 32-bit counters, heap capacity 4096).

use crate::AccumulationSketch;
use chm_common::hash::HashFamily;
use chm_common::FlowId;
use std::collections::HashMap;

/// Number of counter arrays.
const ARRAYS: usize = 3;
/// Bytes per counter (32-bit signed).
const COUNTER_BYTES: usize = 4;

/// The Count sketch: signed updates, median query (unbiased estimator).
#[derive(Debug, Clone)]
pub struct CountSketch {
    width: usize,
    counters: Vec<i64>,
    index_hashes: HashFamily,
    sign_hashes: HashFamily,
}

impl CountSketch {
    /// Creates a Count sketch with roughly `memory_bytes` of counters.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let width = (memory_bytes / (ARRAYS * COUNTER_BYTES)).max(1);
        CountSketch {
            width,
            counters: vec![0; ARRAYS * width],
            index_hashes: HashFamily::new(seed, ARRAYS),
            sign_hashes: HashFamily::new(seed ^ 0x5161_0000, ARRAYS),
        }
    }

    /// Adds one packet of the flow with mixed key `key`.
    pub fn add(&mut self, key: u64) {
        for i in 0..ARRAYS {
            let j = self.index_hashes.index(i, key, self.width);
            let sign = if self.sign_hashes.get(i).raw(key) & 1 == 1 { 1 } else { -1 };
            self.counters[i * self.width + j] += sign;
        }
    }

    /// Median-of-signed-counters estimate (can be negative; clamp at 0 for
    /// size queries).
    pub fn query(&self, key: u64) -> i64 {
        let mut vals = [0i64; ARRAYS];
        for (i, v) in vals.iter_mut().enumerate() {
            let j = self.index_hashes.index(i, key, self.width);
            let sign = if self.sign_hashes.get(i).raw(key) & 1 == 1 { 1 } else { -1 };
            *v = sign * self.counters[i * self.width + j];
        }
        vals.sort_unstable();
        vals[ARRAYS / 2]
    }

    /// Memory in bytes.
    pub fn memory_bytes(&self) -> f64 {
        (ARRAYS * self.width * COUNTER_BYTES) as f64
    }
}

impl<F: FlowId> AccumulationSketch<F> for CountSketch {
    fn insert(&mut self, f: &F) {
        self.add(f.key64());
    }

    fn estimate(&self, f: &F) -> u64 {
        self.query(f.key64()).max(0) as u64
    }

    fn memory_bytes(&self) -> f64 {
        CountSketch::memory_bytes(self)
    }
}

/// CountHeap: Count sketch + a bounded min-heap of the current top flows.
#[derive(Debug, Clone)]
pub struct CountHeap<F: FlowId> {
    sketch: CountSketch,
    /// Heap capacity (Appendix C: 4096).
    capacity: usize,
    /// Tracked flows → last sketch estimate.
    heap: HashMap<F, i64>,
}

/// Per-entry heap bytes: 32-bit key + 32-bit counter.
const HEAP_ENTRY_BYTES: usize = 8;

impl<F: FlowId> CountHeap<F> {
    /// Creates a CountHeap; `memory_bytes` covers sketch + heap (heap uses
    /// `capacity · 8` bytes of the budget).
    pub fn new(memory_bytes: usize, capacity: usize, seed: u64) -> Self {
        let heap_bytes = capacity * HEAP_ENTRY_BYTES;
        let sketch_bytes = memory_bytes.saturating_sub(heap_bytes).max(ARRAYS * COUNTER_BYTES);
        CountHeap {
            sketch: CountSketch::new(sketch_bytes, seed),
            capacity,
            heap: HashMap::with_capacity(capacity),
        }
    }

    fn maybe_track(&mut self, f: &F, est: i64) {
        if est <= 0 {
            return;
        }
        if self.heap.contains_key(f) {
            self.heap.insert(*f, est);
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.insert(*f, est);
            return;
        }
        // Replace the smallest tracked flow if we now exceed it.
        if let Some((&min_f, &min_v)) = self.heap.iter().min_by_key(|(_, &v)| v) {
            if est > min_v {
                self.heap.remove(&min_f);
                self.heap.insert(*f, est);
            }
        }
    }
}

impl<F: FlowId> AccumulationSketch<F> for CountHeap<F> {
    fn insert(&mut self, f: &F) {
        self.sketch.add(f.key64());
        let est = self.sketch.query(f.key64());
        self.maybe_track(f, est);
    }

    fn estimate(&self, f: &F) -> u64 {
        self.heap
            .get(f)
            .copied()
            .unwrap_or_else(|| self.sketch.query(f.key64()))
            .max(0) as u64
    }

    fn memory_bytes(&self) -> f64 {
        self.sketch.memory_bytes() + (self.capacity * HEAP_ENTRY_BYTES) as f64
    }

    fn heavy_candidates(&self, threshold: u64) -> Vec<(F, u64)> {
        self.heap
            .iter()
            .filter(|(_, &v)| v.max(0) as u64 >= threshold)
            .map(|(&f, &v)| (f, v.max(0) as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn count_sketch_is_roughly_unbiased() {
        let mut cs = CountSketch::new(8192, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let f: u64 = rng.gen_range(0..3000);
            cs.add(f);
            *truth.entry(f).or_insert(0i64) += 1;
        }
        // Signed errors should roughly cancel across flows.
        let mut total_err = 0i64;
        for (&f, &v) in &truth {
            total_err += cs.query(f) - v;
        }
        let mean_err = total_err as f64 / truth.len() as f64;
        assert!(mean_err.abs() < 2.0, "mean signed error {mean_err}");
    }

    #[test]
    fn exact_without_collisions() {
        let mut cs = CountSketch::new(1 << 18, 2);
        for _ in 0..25 {
            cs.add(9);
        }
        assert_eq!(cs.query(9), 25);
    }

    #[test]
    fn heap_tracks_heavy_flows() {
        let mut ch = CountHeap::<u32>::new(64 * 1024, 64, 3);
        let mut rng = StdRng::seed_from_u64(4);
        // 20 heavy flows of 500 packets among 2000 mice of 1-5 packets.
        for f in 0..20u32 {
            for _ in 0..500 {
                ch.insert(&f);
            }
        }
        for f in 1000..3000u32 {
            for _ in 0..rng.gen_range(1..=5) {
                ch.insert(&f);
            }
        }
        let hh = ch.heavy_candidates(250);
        let found: std::collections::HashSet<u32> = hh.iter().map(|&(f, _)| f).collect();
        for f in 0..20u32 {
            assert!(found.contains(&f), "missing heavy flow {f}");
        }
        for &(f, _) in &hh {
            assert!(f < 20, "false positive {f}");
        }
    }

    #[test]
    fn heap_respects_capacity() {
        let mut ch = CountHeap::<u32>::new(32 * 1024, 8, 5);
        for f in 0..100u32 {
            for _ in 0..(f + 1) {
                ch.insert(&f);
            }
        }
        assert!(ch.heap.len() <= 8);
        // The largest flows should have won the heap slots.
        let tracked: Vec<u32> = ch.heap.keys().copied().collect();
        let min_tracked = tracked.iter().min().copied().unwrap();
        assert!(min_tracked >= 80, "small flow {min_tracked} occupies heap");
    }
}
