//! ElasticSketch, hardware version (Yang et al., SIGCOMM 2018): a multi-
//! stage *heavy part* that keeps elephant flows in exact `(key, vote+,
//! vote−)` buckets with vote-based eviction, backed by a one-layer 8-bit CM
//! *light part* for mice and evicted residue.
//!
//! Configuration per Appendix C: heavy part of 4 stages × 3072 buckets
//! (scaled to the memory budget, keeping the 4-stage shape), light part a
//! one-layer CM with 8-bit counters; eviction threshold λ = 8.

use crate::AccumulationSketch;
use chm_common::hash::HashFamily;
use chm_common::FlowId;

/// Vote-ratio eviction threshold λ from the ElasticSketch paper.
const LAMBDA: u32 = 8;
/// Heavy-part stages (Appendix C: 4 stages).
const STAGES: usize = 4;
/// Heavy bucket bytes: 32-bit key + 32-bit vote+ + 32-bit vote− + flag.
const BUCKET_BYTES: usize = 13;

#[derive(Debug, Clone, Copy)]
struct Bucket<F> {
    key: Option<F>,
    pos_vote: u32,
    neg_vote: u32,
    /// True when the owner flow may have residue in the light part.
    flag: bool,
}

impl<F> Default for Bucket<F> {
    fn default() -> Self {
        Bucket { key: None, pos_vote: 0, neg_vote: 0, flag: false }
    }
}

/// The ElasticSketch data structure.
#[derive(Debug, Clone)]
pub struct ElasticSketch<F: FlowId> {
    buckets_per_stage: usize,
    heavy: Vec<Bucket<F>>, // STAGES × buckets_per_stage
    heavy_hashes: HashFamily,
    light: Vec<u8>,
    light_hash: HashFamily,
}

impl<F: FlowId> ElasticSketch<F> {
    /// Creates an ElasticSketch splitting `memory_bytes` between the heavy
    /// part (≈ 25%, the ratio implied by §C's 4×3072×13B heavy vs 8-bit CM
    /// light at 600 KB) and the light part.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let heavy_bytes = memory_bytes / 4;
        let buckets_per_stage = (heavy_bytes / (STAGES * BUCKET_BYTES)).max(1);
        let light_counters = (memory_bytes - heavy_bytes).max(1);
        ElasticSketch {
            buckets_per_stage,
            heavy: vec![Bucket::default(); STAGES * buckets_per_stage],
            heavy_hashes: HashFamily::new(seed, STAGES),
            light: vec![0; light_counters],
            light_hash: HashFamily::new(seed ^ 0x1191_7000, 1),
        }
    }

    fn light_insert(&mut self, key: u64, times: u32) {
        let j = self.light_hash.index(0, key, self.light.len());
        self.light[j] = self.light[j].saturating_add(times.min(255) as u8);
    }

    fn light_query(&self, key: u64) -> u64 {
        self.light[self.light_hash.index(0, key, self.light.len())] as u64
    }

    /// Raw light-part counters (8-bit CM layer) — used for MRAC-based
    /// distribution/entropy estimation and linear counting.
    pub fn light_counters(&self) -> &[u8] {
        &self.light
    }

    /// All heavy-part entries `(flow, heavy-count, flag)`.
    pub fn heavy_entries(&self) -> impl Iterator<Item = (F, u64, bool)> + '_ {
        self.heavy
            .iter()
            .filter_map(|b| b.key.map(|k| (k, b.pos_vote as u64, b.flag)))
    }
}

impl<F: FlowId> AccumulationSketch<F> for ElasticSketch<F> {
    fn insert(&mut self, f: &F) {
        let key = f.key64();
        // Try each heavy stage in order (the hardware pipeline).
        for i in 0..STAGES {
            let j = self.heavy_hashes.index(i, key, self.buckets_per_stage);
            let idx = i * self.buckets_per_stage + j;
            let b = &mut self.heavy[idx];
            match b.key {
                None => {
                    *b = Bucket { key: Some(*f), pos_vote: 1, neg_vote: 0, flag: false };
                    return;
                }
                Some(k) if k == *f => {
                    b.pos_vote += 1;
                    return;
                }
                Some(k) => {
                    b.neg_vote += 1;
                    if b.neg_vote >= LAMBDA * b.pos_vote {
                        // Evict the incumbent into the light part and claim
                        // the bucket for the newcomer.
                        let evicted_votes = b.pos_vote;
                        *b = Bucket { key: Some(*f), pos_vote: 1, neg_vote: 0, flag: true };
                        let ek = k.key64();
                        self.light_insert(ek, evicted_votes);
                        return;
                    }
                    // fall through to the next stage
                }
            }
        }
        // Rejected by every heavy stage: count in the light part.
        self.light_insert(key, 1);
    }

    fn estimate(&self, f: &F) -> u64 {
        let key = f.key64();
        for i in 0..STAGES {
            let j = self.heavy_hashes.index(i, key, self.buckets_per_stage);
            let b = &self.heavy[i * self.buckets_per_stage + j];
            if b.key == Some(*f) {
                let mut v = b.pos_vote as u64;
                if b.flag {
                    v += self.light_query(key);
                }
                return v;
            }
        }
        self.light_query(key)
    }

    fn memory_bytes(&self) -> f64 {
        (STAGES * self.buckets_per_stage * BUCKET_BYTES + self.light.len()) as f64
    }

    fn heavy_candidates(&self, threshold: u64) -> Vec<(F, u64)> {
        self.heavy_entries()
            .map(|(f, _, _)| {
                let est = self.estimate(&f);
                (f, est)
            })
            .filter(|&(_, est)| est >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_flow_exact_in_heavy() {
        let mut e = ElasticSketch::<u32>::new(64 * 1024, 1);
        for _ in 0..100 {
            e.insert(&5);
        }
        assert_eq!(e.estimate(&5), 100);
    }

    #[test]
    fn heavy_hitters_survive_mice_pressure() {
        let mut e = ElasticSketch::<u32>::new(64 * 1024, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut stream = Vec::new();
        for f in 0..10u32 {
            for _ in 0..1000 {
                stream.push(f);
            }
        }
        for f in 100..5000u32 {
            for _ in 0..rng.gen_range(1..4) {
                stream.push(f);
            }
        }
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        for f in &stream {
            e.insert(f);
        }
        for f in 0..10u32 {
            let est = e.estimate(&f);
            let re = (est as f64 - 1000.0).abs() / 1000.0;
            assert!(re < 0.2, "heavy flow {f} estimate {est}");
        }
        let hh = e.heavy_candidates(500);
        let found: std::collections::HashSet<u32> = hh.iter().map(|&(f, _)| f).collect();
        assert!(found.len() >= 9, "found {} of 10 HHs", found.len());
    }

    #[test]
    fn mice_fall_to_light_part() {
        let mut e = ElasticSketch::<u32>::new(8 * 1024, 3);
        // Fill heavy buckets with heavy flows first.
        for f in 0..2000u32 {
            for _ in 0..3 {
                e.insert(&f);
            }
        }
        // Every flow should still produce a non-zero (over-)estimate.
        for f in 0..2000u32 {
            assert!(e.estimate(&f) >= 1, "flow {f} lost");
        }
    }

    #[test]
    fn memory_accounting_close_to_budget() {
        let e = ElasticSketch::<u32>::new(100_000, 4);
        let m = AccumulationSketch::<u32>::memory_bytes(&e);
        assert!((m - 100_000.0).abs() / 100_000.0 < 0.05, "memory {m}");
    }
}
