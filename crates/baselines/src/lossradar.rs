//! LossRadar (Li et al., CoNEXT 2016): an Invertible Bloom Filter that
//! records **every packet** (flow ID ⊕ per-packet index), so the upstream −
//! downstream difference contains exactly the lost packets. Memory is
//! proportional to the number of *lost packets* — cheap when losses are
//! rare, expensive when they are not (Figure 5).
//!
//! Configuration follows §5.1: 32-bit count field, 48-bit xorSum (32-bit
//! flow ID ⊕ 16-bit packet index), 3 hash functions.

use crate::LossDetector;
use chm_common::hash::HashFamily;
use chm_common::FlowId;
use std::collections::{HashMap, VecDeque};

/// One IBF cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    count: i64,
    /// XOR of 48-bit packet signatures (flow key low 32 bits ‖ 16-bit seq).
    xor_sum: u64,
}

impl Cell {
    fn is_zero(&self) -> bool {
        self.count == 0 && self.xor_sum == 0
    }
}

/// Number of hash functions (§5.1).
const HASHES: usize = 3;
/// Bytes per cell: 32-bit count + 48-bit xorSum.
const CELL_BYTES: f64 = 4.0 + 6.0;

/// The upstream−downstream IBF pair.
#[derive(Debug, Clone)]
pub struct LossRadar<F: FlowId> {
    up: Vec<Cell>,
    down: Vec<Cell>,
    hashes: HashFamily,
    /// Maps the 32-bit packed flow hash back to the flow (bookkeeping only,
    /// not sketch memory — the real system recovers IDs from the 48 bits).
    key_to_flow: HashMap<u32, F>,
    cells_per_side: usize,
}

impl<F: FlowId> LossRadar<F> {
    /// Creates a detector with `memory_bytes` per direction.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        let cells = ((memory_bytes as f64 / CELL_BYTES) as usize).max(1);
        LossRadar {
            up: vec![Cell::default(); cells],
            down: vec![Cell::default(); cells],
            hashes: HashFamily::new(seed, HASHES),
            key_to_flow: HashMap::new(),
            cells_per_side: cells,
        }
    }

    /// 48-bit per-packet signature: 32-bit flow word + 16-bit sequence.
    fn signature(flow_word: u32, seq: u32) -> u64 {
        ((flow_word as u64) << 16) | (seq as u64 & 0xffff)
    }

    fn flow_word(f: &F) -> u32 {
        // The paper uses the 32-bit source IP directly; for wider IDs we use
        // the low 32 bits of the mixed key (a packet-identifying word).
        f.key64() as u32
    }

    fn insert(cells: &mut [Cell], hashes: &HashFamily, sig: u64) {
        let m = cells.len();
        for i in 0..HASHES {
            let j = hashes.index(i, sig, m);
            cells[j].count += 1;
            cells[j].xor_sum ^= sig;
        }
    }
}

impl<F: FlowId> LossDetector<F> for LossRadar<F> {
    fn observe_upstream(&mut self, f: &F, seq: u32) {
        let w = Self::flow_word(f);
        self.key_to_flow.entry(w).or_insert(*f);
        let sig = Self::signature(w, seq);
        Self::insert(&mut self.up, &self.hashes, sig);
    }

    fn observe_downstream(&mut self, f: &F, seq: u32) {
        let sig = Self::signature(Self::flow_word(f), seq);
        Self::insert(&mut self.down, &self.hashes, sig);
    }

    fn decode_losses(&self) -> Option<HashMap<F, u64>> {
        // Delta IBF = upstream − downstream: contains exactly the lost
        // packets (each with count +1).
        let m = self.cells_per_side;
        let mut delta: Vec<Cell> = (0..m)
            .map(|j| Cell {
                count: self.up[j].count - self.down[j].count,
                xor_sum: self.up[j].xor_sum ^ self.down[j].xor_sum,
            })
            .collect();
        let mut queue: VecDeque<usize> =
            (0..m).filter(|&j| delta[j].count == 1).collect();
        let mut lost: HashMap<F, u64> = HashMap::new();
        // Work budget against peeling cycles on over-capacity IBFs (the
        // 48-bit signature is not re-verified); exhaustion = failure.
        let mut budget: u64 = 32 * (m as u64 + 64);
        while let Some(j) = queue.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            if delta[j].count != 1 {
                continue;
            }
            let sig = delta[j].xor_sum;
            let flow_word = (sig >> 16) as u32;
            let f = self.key_to_flow.get(&flow_word)?;
            *lost.entry(*f).or_insert(0) += 1;
            for i in 0..HASHES {
                let j2 = self.hashes.index(i, sig, m);
                delta[j2].count -= 1;
                delta[j2].xor_sum ^= sig;
                if delta[j2].count == 1 {
                    queue.push_back(j2);
                }
            }
        }
        if delta.iter().all(Cell::is_zero) {
            Some(lost)
        } else {
            None
        }
    }

    fn memory_bytes(&self) -> f64 {
        self.cells_per_side as f64 * CELL_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mem: usize, flows: u32, pkts_per_flow: u32, drop_per_victim: u32, victims: u32) -> Option<HashMap<u32, u64>> {
        let mut lr = LossRadar::<u32>::new(mem, 5);
        for f in 0..flows {
            for s in 0..pkts_per_flow {
                lr.observe_upstream(&f, s);
                let lost = f < victims && s < drop_per_victim;
                if !lost {
                    lr.observe_downstream(&f, s);
                }
            }
        }
        lr.decode_losses()
    }

    #[test]
    fn no_loss_is_empty_delta() {
        let l = run(4 * 1024, 500, 10, 0, 0).expect("decode");
        assert!(l.is_empty());
    }

    #[test]
    fn exact_per_flow_loss_counts() {
        let l = run(16 * 1024, 500, 10, 3, 40).expect("decode");
        assert_eq!(l.len(), 40);
        for (f, c) in l {
            assert!(f < 40);
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn memory_scales_with_lost_packets() {
        // Tiny IBF decodes few losses but fails on many (its defining cost).
        assert!(run(600, 500, 10, 1, 20).is_some());
        assert!(run(600, 500, 10, 5, 200).is_none());
    }

    #[test]
    fn flow_count_does_not_matter() {
        // 10x flows, same losses: still decodes (contrast with FlowRadar).
        assert!(run(2 * 1024, 100, 10, 1, 30).is_some());
        assert!(run(2 * 1024, 5000, 10, 1, 30).is_some());
    }

    #[test]
    fn multiple_losses_same_flow_accumulate() {
        let mut lr = LossRadar::<u32>::new(4096, 1);
        for s in 0..10 {
            lr.observe_upstream(&77, s);
        }
        for s in 5..10 {
            lr.observe_downstream(&77, s);
        }
        let l = lr.decode_losses().unwrap();
        assert_eq!(l.get(&77), Some(&5));
    }
}
