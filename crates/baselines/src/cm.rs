//! Count-Min sketch (Cormode & Muthukrishnan, 2005) and its
//! conservative-update variant **CU** (Estan & Varghese, 2003).
//!
//! Configuration per Appendix C: 3 hash functions, 32-bit counters.

use crate::AccumulationSketch;
use chm_common::hash::HashFamily;
use chm_common::FlowId;

/// Number of counter arrays (Appendix C: "3 hash functions").
const ARRAYS: usize = 3;
/// Bytes per counter (32-bit).
const COUNTER_BYTES: usize = 4;

/// Shared storage of CM/CU.
#[derive(Debug, Clone)]
struct MinSketch {
    width: usize,
    counters: Vec<u32>, // ARRAYS × width
    hashes: HashFamily,
}

impl MinSketch {
    fn new(memory_bytes: usize, seed: u64) -> Self {
        let width = (memory_bytes / (ARRAYS * COUNTER_BYTES)).max(1);
        MinSketch {
            width,
            counters: vec![0; ARRAYS * width],
            hashes: HashFamily::new(seed, ARRAYS),
        }
    }

    #[inline]
    fn slots(&self, key: u64) -> [usize; ARRAYS] {
        let mut out = [0; ARRAYS];
        for (i, o) in out.iter_mut().enumerate() {
            *o = i * self.width + self.hashes.index(i, key, self.width);
        }
        out
    }

    fn query(&self, key: u64) -> u64 {
        self.slots(key)
            .iter()
            .map(|&s| self.counters[s] as u64)
            .min()
            .unwrap_or(0)
    }

    fn memory_bytes(&self) -> f64 {
        (ARRAYS * self.width * COUNTER_BYTES) as f64
    }
}

/// The Count-Min sketch: increment every mapped counter; query the minimum.
#[derive(Debug, Clone)]
pub struct CmSketch {
    inner: MinSketch,
}

impl CmSketch {
    /// Creates a CM sketch with roughly `memory_bytes` of counters.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        CmSketch { inner: MinSketch::new(memory_bytes, seed) }
    }
}

impl<F: FlowId> AccumulationSketch<F> for CmSketch {
    fn insert(&mut self, f: &F) {
        for s in self.inner.slots(f.key64()) {
            self.inner.counters[s] = self.inner.counters[s].saturating_add(1);
        }
    }

    fn estimate(&self, f: &F) -> u64 {
        self.inner.query(f.key64())
    }

    fn memory_bytes(&self) -> f64 {
        self.inner.memory_bytes()
    }
}

/// The CU sketch: like CM, but only the minimum-valued mapped counters are
/// incremented (conservative update), halving typical overestimation.
#[derive(Debug, Clone)]
pub struct CuSketch {
    inner: MinSketch,
}

impl CuSketch {
    /// Creates a CU sketch with roughly `memory_bytes` of counters.
    pub fn new(memory_bytes: usize, seed: u64) -> Self {
        CuSketch { inner: MinSketch::new(memory_bytes, seed) }
    }
}

impl<F: FlowId> AccumulationSketch<F> for CuSketch {
    fn insert(&mut self, f: &F) {
        let slots = self.inner.slots(f.key64());
        let min = slots
            .iter()
            .map(|&s| self.inner.counters[s])
            .min()
            .expect("sketch geometry guarantees at least one row, so the slot set is non-empty");
        for s in slots {
            if self.inner.counters[s] == min {
                self.inner.counters[s] = self.inner.counters[s].saturating_add(1);
            }
        }
    }

    fn estimate(&self, f: &F) -> u64 {
        self.inner.query(f.key64())
    }

    fn memory_bytes(&self) -> f64 {
        self.inner.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cm_never_underestimates() {
        let mut cm = CmSketch::new(4096, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..5000 {
            let f: u32 = rng.gen_range(0..300);
            AccumulationSketch::<u32>::insert(&mut cm, &f);
            *truth.entry(f).or_insert(0u64) += 1;
        }
        for (f, v) in truth {
            assert!(AccumulationSketch::<u32>::estimate(&cm, &f) >= v);
        }
    }

    #[test]
    fn cu_never_underestimates_and_beats_cm() {
        let mut cm = CmSketch::new(2048, 2);
        let mut cu = CuSketch::new(2048, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let f: u32 = rng.gen_range(0..2000);
            AccumulationSketch::<u32>::insert(&mut cm, &f);
            AccumulationSketch::<u32>::insert(&mut cu, &f);
            *truth.entry(f).or_insert(0u64) += 1;
        }
        let mut err_cm = 0.0;
        let mut err_cu = 0.0;
        for (f, v) in truth {
            let ecm = AccumulationSketch::<u32>::estimate(&cm, &f);
            let ecu = AccumulationSketch::<u32>::estimate(&cu, &f);
            assert!(ecu >= v, "CU underestimated");
            err_cm += (ecm - v) as f64;
            err_cu += (ecu - v) as f64;
        }
        assert!(err_cu < err_cm, "CU {err_cu} not better than CM {err_cm}");
    }

    #[test]
    fn exact_when_no_collisions() {
        let mut cm = CmSketch::new(1 << 16, 3);
        for _ in 0..9 {
            AccumulationSketch::<u32>::insert(&mut cm, &42);
        }
        assert_eq!(AccumulationSketch::<u32>::estimate(&cm, &42), 9);
        assert_eq!(AccumulationSketch::<u32>::estimate(&cm, &43), 0);
    }

    #[test]
    fn memory_accounting() {
        let cm = CmSketch::new(12_000, 0);
        assert!((AccumulationSketch::<u32>::memory_bytes(&cm) - 12_000.0).abs() <= 12.0);
    }
}
