//! Time-resolved per-link queueing: the intra-epoch layer under the fabric
//! replay.
//!
//! The static [`CongestionModel`](crate::congestion::CongestionModel) treats
//! an epoch as one homogeneous interval — a link is saturated for the whole
//! epoch or not at all, so drop *timing* inside an epoch is only
//! approximated (Gilbert–Elliott's correlated channel is a proxy, not a
//! queue). This module models what actually happens at a switch egress
//! port: each epoch splits into `S` discrete slots, every flow's
//! [`ArrivalProfile`] lays its packets into slots in closed form, the
//! per-(link, slot) offered load feeds a **fluid queue** with a
//! class-calibrated service rate, and the queue's occupancy turns into
//! time-correlated drop probabilities — a microburst overwhelms a queue for
//! two slots and is gone, a slow-drain ToR stays deep all epoch, an incast
//! ramp pushes its drops toward the epoch's end.
//!
//! # Calibration: a strict superset of the static model
//!
//! Service is self-calibrating exactly like the static model's capacity:
//! a link's per-slot service is `headroom ×` its link class's mean per-slot
//! offered load, scaled by the same [`Derate`]s. The per-slot drop
//! probability uses the same knee/slope mapping, applied to the slot's
//! *pressure* — offered arrivals plus `queue_coupling ×` the queue carried
//! in from earlier slots:
//!
//! ```text
//! pressure(t) = (arrivals(t) + queue_coupling · q(t−1)) / service
//! p(t)        = clamp(slope · (pressure(t) − knee), 0, max_drop)   (+ RED)
//! q(t)        = q(t−1) + arrivals(t)·(1 − p(t)) − served(t)
//! ```
//!
//! With a [`Flat`](ArrivalProfile::Flat) profile and `queue_coupling = 0`
//! the per-slot pressure *is* the static utilization, so the queue model
//! reproduces the static model's per-link loss exactly (property-tested in
//! `tests/properties.rs`); the coupling term is precisely the temporal
//! dynamics the static model lacks. Under sustained overload the coupled
//! queue converges to the loss that stabilizes it (`1 − 1/util`), which
//! sits *above* the static knee-slope approximation — queues remember,
//! knees don't.
//!
//! # Conservation
//!
//! The fluid accounting is exactly conservative per link and per epoch:
//! `arrivals = served + dropped + residual` (the residual is whatever is
//! still buffered when the epoch ends), pinned by
//! [`QueueLinkStats`] and property-tested.
//!
//! # Determinism and the burst-replay contract
//!
//! A realization is a pure function of
//! `(model, topology, trace, epoch, seed)`: arrivals accumulate as
//! integers (order-independent), every float reduction runs in sorted link
//! order, and the only seeded quantity is the microburst window position.
//! Per-flow slot layouts come from the same
//! [`ArrivalProfile::slot_counts`] closed form the offered-load accounting
//! uses, so both replay paths hand
//! [`ImpairmentSet::realize_flow`](crate::impair::ImpairmentSet::realize_flow)
//! identical [`LinkLoss::Slotted`](crate::impair::LinkLoss) views and stay
//! byte-identical.

use crate::congestion::{derate_factor, link_class_to, Derate};
use crate::sim::Routable;
use crate::topology::{SwitchId, SwitchRole, Topology};
use chm_common::hash::mix64;
use chm_workloads::{ArrivalProfile, Trace};
use std::collections::{BTreeMap, HashMap};

pub use crate::congestion::{Hop, LinkId};

/// RED-style early drop: once the queue carried into a slot exceeds
/// `min_depth` (in units of one slot's service), an extra drop probability
/// ramps linearly up to `max_prob` at `max_depth` — drops begin *before*
/// the tail of the buffer, spreading loss over more flows and slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedDrop {
    /// Queue depth (in slot-service units) where early drop begins.
    pub min_depth: f64,
    /// Depth where early drop reaches `max_prob`.
    pub max_depth: f64,
    /// Early-drop probability ceiling.
    pub max_prob: f64,
}

impl RedDrop {
    /// The extra early-drop probability at `depth` slot-service units.
    fn prob(&self, depth: f64) -> f64 {
        if depth <= self.min_depth {
            return 0.0;
        }
        let span = (self.max_depth - self.min_depth).max(f64::MIN_POSITIVE);
        self.max_prob * ((depth - self.min_depth) / span).min(1.0)
    }
}

/// The discrete-slot fluid-queue model of every directed link. See the
/// module docs for the calibration contract.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueModel {
    /// Time slots per epoch (≥ 1).
    pub slots: usize,
    /// How flows lay their packets into slots.
    pub profile: ArrivalProfile,
    /// Per-slot service relative to the link class's mean per-slot load
    /// (the static model's `headroom`, per slot).
    pub headroom: f64,
    /// Pressure at which drops begin.
    pub knee: f64,
    /// Drop probability per unit of pressure above the knee.
    pub slope: f64,
    /// Ceiling on the knee/slope (tail) drop probability.
    pub max_drop: f64,
    /// Weight of carried queue in the pressure term (0 = memoryless slots,
    /// 1 = full fluid coupling).
    pub queue_coupling: f64,
    /// Optional RED-style early drop on top of the tail rule.
    pub red: Option<RedDrop>,
    /// Structural hot spots (service derates), same knobs as the static
    /// model's capacity derates.
    pub derates: Vec<Derate>,
}

impl QueueModel {
    /// The calibrated default over `slots` slots: the static model's
    /// `2×`/knee-1.0/slope-0.3/cap-0.5 operating point with full queue
    /// coupling, a flat profile, tail drop only.
    pub fn calibrated(slots: usize) -> Self {
        assert!(slots >= 1, "need at least one slot");
        QueueModel {
            slots,
            profile: ArrivalProfile::Flat,
            headroom: 2.0,
            knee: 1.0,
            slope: 0.3,
            max_drop: 0.5,
            queue_coupling: 1.0,
            red: None,
            derates: Vec::new(),
        }
    }

    /// Realizes the model for one epoch over one trace: per-flow slot
    /// layouts from the arrival profile, per-(link, slot) offered load from
    /// every flow's ECMP route, class-mean service rates, and the fluid
    /// queue's per-slot drop probabilities and depth telemetry. Pure
    /// function of `(self, topology, trace, epoch, seed)`.
    pub fn realize<F: Routable>(
        &self,
        topology: &Topology,
        trace: &Trace<F>,
        epoch: u64,
        seed: u64,
    ) -> QueueRealization {
        let s = self.slots;
        let slot_seed = mix64(seed ^ QSLOT_SALT).wrapping_add(epoch);
        // Per-(link, slot) arrivals, in packets. Integer accumulation is
        // order-independent, so a HashMap is safe here (as in the static
        // model's load accounting).
        let mut arrivals: HashMap<LinkId, Vec<u64>> = HashMap::new();
        let mut route = Vec::with_capacity(topology.max_hops());
        let mut counts = Vec::with_capacity(s);
        for &(f, pkts) in &trace.flows {
            let (src, dst) = (f.src_host(), f.dst_host());
            topology.route_into(src, dst, f.key64(), &mut route);
            self.profile.slot_counts(f.key64(), pkts, slot_seed, s, &mut counts);
            let mut add = |link: LinkId| {
                let a = arrivals.entry(link).or_insert_with(|| vec![0; s]);
                for (t, &n) in counts.iter().enumerate() {
                    a[t] += n;
                }
            };
            for w in route.windows(2) {
                add((w[0], Hop::Switch(w[1])));
            }
            add((route[route.len() - 1], Hop::Host(dst)));
        }
        // Sorted link order from here on: every float reduction below must
        // be order-deterministic.
        let arrivals: BTreeMap<LinkId, Vec<u64>> = arrivals.into_iter().collect();
        let mut class_sum: BTreeMap<(SwitchRole, Option<SwitchRole>), (u64, u64)> =
            BTreeMap::new();
        for (&(from, to), a) in &arrivals {
            let e = class_sum.entry((from.role, link_class_to(to))).or_insert((0, 0));
            e.0 += a.iter().sum::<u64>();
            e.1 += 1;
        }
        let mut probs = BTreeMap::new();
        let mut stats = BTreeMap::new();
        let mut depth_by_switch: BTreeMap<SwitchId, Vec<f64>> = BTreeMap::new();
        let mut drops_by_switch: BTreeMap<SwitchId, Vec<f64>> = BTreeMap::new();
        for (&(from, to), a) in &arrivals {
            let (sum, count) = class_sum[&(from.role, link_class_to(to))];
            let mean_slot = sum as f64 / count as f64 / s as f64;
            let service = self.headroom
                * mean_slot
                * derate_factor(&self.derates, from, epoch, topology.n_edges());
            let mut link_probs = vec![0.0f64; s];
            let mut depth_series = vec![0.0f64; s];
            let mut drop_series = vec![0.0f64; s];
            let mut q = 0.0f64;
            let mut dropped_total = 0.0f64;
            let mut served_total = 0.0f64;
            for (t, &arr_pkts) in a.iter().enumerate() {
                let arr = arr_pkts as f64;
                let p = if service <= 0.0 {
                    // A fully-derated link: everything offered drops, as in
                    // the static model's zero-capacity clamp.
                    self.max_drop
                } else {
                    let pressure = (arr + self.queue_coupling * q) / service;
                    let tail = (self.slope * (pressure - self.knee)).clamp(0.0, self.max_drop);
                    let early = match self.red {
                        Some(red) => red.prob(q / service),
                        None => 0.0,
                    };
                    (tail + early).min(MAX_TOTAL_DROP)
                };
                let dropped = arr * p;
                let avail = q + arr - dropped;
                let served = avail.min(service.max(0.0));
                q = avail - served;
                link_probs[t] = p;
                depth_series[t] = q;
                drop_series[t] = dropped;
                dropped_total += dropped;
                served_total += served;
            }
            let arrivals_total: u64 = a.iter().sum();
            if link_probs.iter().any(|&p| p > 0.0) {
                probs.insert((from, to), link_probs);
                stats.insert(
                    (from, to),
                    QueueLinkStats {
                        arrivals: arrivals_total,
                        served: served_total,
                        dropped: dropped_total,
                        residual: q,
                        service,
                    },
                );
            }
            if depth_series.iter().any(|&d| d > 0.0) {
                let per_switch =
                    depth_by_switch.entry(from).or_insert_with(|| vec![0.0; s]);
                for (t, &d) in depth_series.iter().enumerate() {
                    per_switch[t] += d;
                }
            }
            if drop_series.iter().any(|&d| d > 0.0) {
                let per_switch =
                    drops_by_switch.entry(from).or_insert_with(|| vec![0.0; s]);
                for (t, &d) in drop_series.iter().enumerate() {
                    per_switch[t] += d;
                }
            }
        }
        let mut depth: BTreeMap<SwitchId, QueueDepthStat> = BTreeMap::new();
        for (sw, series) in depth_by_switch {
            let max = series.iter().copied().fold(0.0, f64::max);
            let mean = series.iter().sum::<f64>() / s as f64;
            let stat = depth.entry(sw).or_default();
            stat.max_depth = max;
            stat.mean_depth = mean;
        }
        for (sw, series) in drops_by_switch {
            depth.entry(sw).or_default().slot_drops = series;
        }
        QueueRealization {
            n_slots: s,
            profile: self.profile,
            slot_seed,
            probs,
            stats,
            depth,
        }
    }
}

/// Hard ceiling on the combined tail + RED drop probability of one slot.
const MAX_TOTAL_DROP: f64 = 0.95;

/// Salt separating the slot-seed stream from other impairment derivations.
const QSLOT_SALT: u64 = 0x5107_7ed0;

/// Queue telemetry of one switch over one epoch: buffered packets summed
/// over its loaded out-links (max and mean across the epoch's slots) plus
/// the per-slot drop series. This is what a real switch exports via
/// INT/queue-occupancy and drop counters — the controller's localizer may
/// consume it as corroborating evidence, and the slot-resolved drop
/// *timing* lets it tell a two-slot microburst culprit from a switch that
/// bleeds uniformly all epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueDepthStat {
    /// Deepest per-slot occupancy (packets).
    pub max_depth: f64,
    /// Mean per-slot occupancy (packets).
    pub mean_depth: f64,
    /// Expected packets dropped per slot across this switch's out-links
    /// (empty when the switch dropped nothing this epoch, or when the
    /// exporter only provides per-epoch aggregates).
    pub slot_drops: Vec<f64>,
}

impl QueueDepthStat {
    /// Total expected drops this epoch (sum of the slot series).
    pub fn drop_mass(&self) -> f64 {
        self.slot_drops.iter().sum()
    }

    /// Temporal concentration of the drops in `[0, 1]`: the share of the
    /// epoch's drop mass landing in the single worst slot. `1.0` means all
    /// drops hit one slot (a microburst signature); `1/slots` means the
    /// switch bled uniformly. `0.0` when the switch dropped nothing or no
    /// slot series was exported.
    pub fn drop_concentration(&self) -> f64 {
        let mass = self.drop_mass();
        if mass <= 0.0 {
            return 0.0;
        }
        self.slot_drops.iter().copied().fold(0.0, f64::max) / mass
    }
}

/// Exact fluid accounting of one loaded link over one epoch:
/// `arrivals = served + dropped + residual`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueLinkStats {
    /// Offered packets over the epoch.
    pub arrivals: u64,
    /// Packets serviced (fluid).
    pub served: f64,
    /// Packets dropped (fluid).
    pub dropped: f64,
    /// Packets still buffered at epoch end.
    pub residual: f64,
    /// Per-slot service rate the link ran at.
    pub service: f64,
}

/// One epoch's realized queue dynamics: per-(link, slot) drop
/// probabilities (links that never drop are absent), per-link conservation
/// stats, and per-switch depth telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRealization {
    n_slots: usize,
    profile: ArrivalProfile,
    slot_seed: u64,
    probs: BTreeMap<LinkId, Vec<f64>>,
    stats: BTreeMap<LinkId, QueueLinkStats>,
    depth: BTreeMap<SwitchId, QueueDepthStat>,
}

impl QueueRealization {
    /// Time slots per epoch.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// True when no link in the fabric drops in any slot (replay can take
    /// the congestion-free path).
    pub fn is_lossless(&self) -> bool {
        self.probs.is_empty()
    }

    /// Fills `out` with the row-major `[hop][slot]` drop probabilities of
    /// `route` (the link *out of* `route[i]`; the last hop is the link to
    /// `dst_host`). `out` is cleared first; its final length is
    /// `route.len() × n_slots`.
    pub fn hop_slot_probs(&self, route: &[SwitchId], dst_host: usize, out: &mut Vec<f64>) {
        out.clear();
        let mut push = |link: LinkId| match self.probs.get(&link) {
            Some(ps) => out.extend_from_slice(ps),
            None => out.extend(std::iter::repeat_n(0.0, self.n_slots)),
        };
        for w in route.windows(2) {
            push((w[0], Hop::Switch(w[1])));
        }
        if let Some(&last) = route.last() {
            push((last, Hop::Host(dst_host)));
        }
    }

    /// This flow's per-slot packet layout — the same closed form the
    /// offered-load accounting used, so fates and loads always agree.
    pub fn flow_slot_counts(&self, flow_key: u64, pkts: u64, out: &mut Vec<u64>) {
        self.profile
            .slot_counts(flow_key, pkts, self.slot_seed, self.n_slots, out);
    }

    /// Per-switch queue-depth telemetry (switches whose out-links never
    /// buffered are absent).
    pub fn depths(&self) -> &BTreeMap<SwitchId, QueueDepthStat> {
        &self.depth
    }

    /// Exact per-link conservation stats of every dropping link.
    pub fn link_stats(&self) -> &BTreeMap<LinkId, QueueLinkStats> {
        &self.stats
    }

    /// The dropping links with their epoch-aggregate drop probability
    /// (`dropped / arrivals`), highest first (ties in link order).
    pub fn hot_links(&self) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .stats
            .iter()
            .map(|(&l, st)| (l, st.dropped / (st.arrivals.max(1) as f64)))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTree;
    use chm_common::FlowId;
    use chm_workloads::{testbed_trace, WorkloadKind};

    fn realize(model: &QueueModel, epoch: u64) -> QueueRealization {
        let topo: Topology = FatTree::testbed().into();
        let trace = testbed_trace(WorkloadKind::Dctcp, 800, 8, 42);
        model.realize(&topo, &trace, epoch, 0x1234)
    }

    #[test]
    fn calibrated_flat_traffic_is_lossless() {
        let r = realize(&QueueModel::calibrated(8), 0);
        assert!(r.is_lossless(), "2x headroom, flat load: {:?}", r.hot_links());
        assert!(r.depths().is_empty(), "no queue should ever build");
    }

    #[test]
    fn derated_switch_drops_and_buffers_only_there() {
        let mut m = QueueModel::calibrated(8);
        m.derates.push(Derate::Switch {
            role: SwitchRole::Core,
            index: 0,
            factor: 0.4,
        });
        let r = realize(&m, 0);
        assert!(!r.is_lossless(), "a 0.4x core must saturate");
        for ((from, _), _) in r.hot_links() {
            assert_eq!(from, SwitchId { role: SwitchRole::Core, index: 0 });
        }
        assert!(
            r.depths().keys().all(|&s| s
                == SwitchId { role: SwitchRole::Core, index: 0 }),
            "only the derated core may buffer: {:?}",
            r.depths()
        );
        let d = &r.depths()[&SwitchId { role: SwitchRole::Core, index: 0 }];
        assert!(d.max_depth > 0.0 && d.mean_depth > 0.0 && d.max_depth >= d.mean_depth);
        // The per-slot drop series agrees with the link-level accounting.
        let link_drops: f64 = r.link_stats().values().map(|s| s.dropped).sum();
        assert!((d.drop_mass() - link_drops).abs() <= 1e-9 * link_drops.max(1.0));
        assert!(d.drop_concentration() > 0.0 && d.drop_concentration() <= 1.0);
    }

    #[test]
    fn microburst_drop_timing_is_concentrated() {
        let mut m = QueueModel::calibrated(8);
        m.profile = ArrivalProfile::Microburst { frac: 0.6, width: 2 };
        let r = realize(&m, 0);
        assert!(!r.is_lossless());
        // A two-slot burst's drops concentrate far above the uniform 1/8
        // floor on every bleeding switch.
        for (sw, d) in r.depths() {
            if d.drop_mass() > 0.0 {
                assert!(
                    d.drop_concentration() > 0.3,
                    "{sw:?}: burst drops must be time-concentrated, got {:?}",
                    d.slot_drops
                );
            }
        }
    }

    #[test]
    fn queue_coupling_raises_sustained_overload_loss() {
        let mut memoryless = QueueModel::calibrated(8);
        memoryless.queue_coupling = 0.0;
        memoryless.derates.push(Derate::Switch {
            role: SwitchRole::Core,
            index: 1,
            factor: 0.4,
        });
        let mut coupled = memoryless.clone();
        coupled.queue_coupling = 1.0;
        let lm = realize(&memoryless, 0);
        let lc = realize(&coupled, 0);
        let drop = |r: &QueueRealization| {
            r.link_stats().values().map(|s| s.dropped).sum::<f64>()
        };
        assert!(
            drop(&lc) > drop(&lm),
            "carried queue must add pressure: {} vs {}",
            drop(&lc),
            drop(&lm)
        );
    }

    #[test]
    fn microburst_confines_drops_to_the_burst_slots() {
        let mut m = QueueModel::calibrated(8);
        m.profile = ArrivalProfile::Microburst { frac: 0.6, width: 2 };
        let r = realize(&m, 0);
        assert!(!r.is_lossless(), "a 60%-in-2-slots burst must overflow 2x headroom");
        for (link, ps) in &r.probs {
            let loss_slots = ps.iter().filter(|&&p| p > 0.0).count();
            assert!(
                loss_slots <= 4,
                "{link:?}: drops must be time-confined, got {ps:?}"
            );
        }
        // The flat profile under the same model is clean — the *timing* is
        // the whole difference.
        assert!(realize(&QueueModel::calibrated(8), 0).is_lossless());
    }

    #[test]
    fn red_starts_dropping_before_tail() {
        let mut tail = QueueModel::calibrated(8);
        tail.derates.push(Derate::Switch {
            role: SwitchRole::Edge,
            index: 1,
            factor: 0.45,
        });
        let mut red = tail.clone();
        red.red = Some(RedDrop { min_depth: 0.1, max_depth: 2.0, max_prob: 0.3 });
        let rt = realize(&tail, 0);
        let rr = realize(&red, 0);
        let total = |r: &QueueRealization| {
            r.link_stats().values().map(|s| s.dropped).sum::<f64>()
        };
        assert!(total(&rr) > total(&rt), "RED must add early drops");
        // RED drains the queue: residual depth must not grow.
        let resid = |r: &QueueRealization| {
            r.link_stats().values().map(|s| s.residual).sum::<f64>()
        };
        assert!(resid(&rr) <= resid(&rt) + 1e-9);
    }

    #[test]
    fn realization_is_deterministic_and_epoch_sensitive() {
        let mut m = QueueModel::calibrated(8);
        m.profile = ArrivalProfile::Microburst { frac: 0.5, width: 2 };
        assert_eq!(realize(&m, 3), realize(&m, 3));
        // The burst window moves with the epoch for at least some epoch.
        let r3 = realize(&m, 3);
        assert!(
            (0..8u64).any(|e| realize(&m, e).probs != r3.probs),
            "burst position must be epoch-seeded"
        );
    }

    #[test]
    fn hop_slot_probs_align_with_route() {
        let mut m = QueueModel::calibrated(4);
        m.derates.push(Derate::Switch {
            role: SwitchRole::Core,
            index: 1,
            factor: 0.2,
        });
        let topo: Topology = FatTree::testbed().into();
        let trace = testbed_trace(WorkloadKind::Dctcp, 800, 8, 42);
        let r = m.realize(&topo, &trace, 0, 0x1234);
        let mut probs = Vec::new();
        for &(f, _) in &trace.flows {
            let route = topo.route(f.src_host(), f.dst_host(), f.key64());
            r.hop_slot_probs(&route, f.dst_host(), &mut probs);
            assert_eq!(probs.len(), route.len() * 4);
            for (i, &p) in probs.iter().enumerate() {
                if p > 0.0 {
                    assert_eq!(
                        route[i / 4],
                        SwitchId { role: SwitchRole::Core, index: 1 },
                        "only the derated core's out-links may drop"
                    );
                }
            }
        }
    }
}
