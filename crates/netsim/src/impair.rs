//! Per-packet impairment models: the adversarial conditions a real fabric
//! inflicts that the paper's clean evaluation (§5.2: Bernoulli loss on a
//! healthy fat-tree) never exercises — correlated bursty loss, duplication,
//! bounded reordering, and per-edge clock skew.
//!
//! # The burst-replay equivalence contract
//!
//! Every impairment is realized **per flow, above the hook boundary**: an
//! [`ImpairmentSet`] compiles, for each `(flow, epoch)` pair, a deterministic
//! [`FabricFates`] record — which packet indices are delivered, **at which
//! hop of the flow's ECMP route each lost packet died**, which delivered
//! packets carry a duplicate, and how many leading packets are mis-stamped
//! by clock skew.
//! Both replay paths ([`run_epoch_scenario`](crate::Simulator::run_epoch_scenario)
//! and [`run_epoch_burst_scenario`](crate::Simulator::run_epoch_burst_scenario))
//! consult the *same* realization, so the per-packet and burst replays stay
//! byte-identical under any scenario (property-tested in
//! `chm_scenarios/tests/differential.rs`). Nothing impairment-specific is
//! bolted into either path.
//!
//! Loss has two sources here: the flat plan/channel losses (spread drops,
//! Gilbert–Elliott bursts), whose drop hop is a seeded hash over the route,
//! and the [`CongestionModel`]'s
//! per-link losses, whose drop hop *is* the saturated link. Either way the
//! hop lands in [`FabricFates::drop_hop`], which
//! [`EpochReport`](crate::sim::EpochReport) turns into per-switch drop
//! attribution — the ground truth for victim localization.
//!
//! All randomness is derived from the impairment seed, the epoch seed, and
//! the flow key — never from call order — so a scenario is reproducible
//! bit-for-bit from its seed alone.

use crate::congestion::CongestionModel;
use crate::queue::QueueModel;
use crate::sim::spread_drop;
use chm_common::hash::mix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gilbert–Elliott two-state Markov loss model: packets traverse a channel
/// that alternates between a *Good* and a *Bad* state with per-packet
/// transition probabilities; each state drops packets at its own rate.
/// The classic model of correlated (bursty) loss — long loss-free stretches
/// punctuated by dense loss bursts, unlike Bernoulli loss which spreads
/// drops uniformly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(Good → Bad) per packet.
    pub p_enter_bad: f64,
    /// P(Bad → Good) per packet.
    pub p_exit_bad: f64,
    /// Drop probability while in the Good state (usually 0).
    pub loss_good: f64,
    /// Drop probability while in the Bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A typical bursty profile: rare entry into Bad (2%), mean burst length
    /// 4 packets, half the packets in a burst lost.
    pub fn bursty() -> Self {
        GilbertElliott {
            p_enter_bad: 0.02,
            p_exit_bad: 0.25,
            loss_good: 0.0,
            loss_bad: 0.5,
        }
    }
}

/// Packet duplication: each delivered packet is duplicated in the fabric
/// with probability `prob`. The duplicate traverses the egress pipeline a
/// second time (same hierarchy tag, same timestamp bit) but never the
/// ingress pipeline — exactly what a fabric-level retransmit or a flaky
/// link-layer does to a measurement system that counts at the edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duplication {
    /// Per-delivered-packet duplication probability.
    pub prob: f64,
}

/// Bounded reordering: with probability `prob`, a packet swaps fates with a
/// packet up to `window` positions later in its flow. Reordering does not
/// change *how many* packets are lost, only *which positions* in the flow's
/// packet sequence the losses land on — which moves losses across the
/// LL/HL/HH hierarchy-tag boundaries the classifier assigns, the exact
/// effect in-fabric reordering has on ChameleMon's edge encoders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reordering {
    /// Per-packet swap probability.
    pub prob: f64,
    /// Maximum displacement in packets (≥ 1).
    pub window: u64,
}

/// Per-edge clock skew (Appendix B): an edge switch whose clock lags the
/// fabric stamps the first packets of an epoch with the *previous* epoch's
/// 1-bit timestamp, steering them into the sketch group that monitors the
/// neighboring epoch. Each ingress edge gets a deterministic skew fraction
/// in `[0, max_frac)`; a flow entering at a skewed edge has a prefix of its
/// packets mis-stamped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockSkew {
    /// Upper bound on the per-edge skew, as a fraction of the epoch length.
    pub max_frac: f64,
}

/// A composable set of impairments, realized deterministically per
/// `(flow, epoch)`. [`ImpairmentSet::none`] is the clean fabric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpairmentSet {
    /// Seed folded into every realization (scenario identity).
    pub seed: u64,
    /// Per-link utilization-driven loss (congestion-coupled drops at the
    /// saturated switch), static over the epoch. Ignored when
    /// [`queue`](Self::queue) is set — the queue model subsumes it.
    pub congestion: Option<CongestionModel>,
    /// Time-resolved per-link queue dynamics: intra-epoch queue
    /// build-up/drain producing per-(link, slot) drop probabilities and
    /// queue-depth telemetry. Supersedes [`congestion`](Self::congestion)
    /// when both are configured.
    pub queue: Option<QueueModel>,
    /// Correlated bursty loss, applied on top of the epoch's loss plan.
    pub gilbert_elliott: Option<GilbertElliott>,
    /// Fabric packet duplication.
    pub duplication: Option<Duplication>,
    /// Bounded packet reordering.
    pub reordering: Option<Reordering>,
    /// Per-edge 1-bit-timestamp clock skew.
    pub clock_skew: Option<ClockSkew>,
}

/// Salt distinguishing the per-edge skew hash from other derivations.
const SKEW_SALT: u64 = 0x0f00_5c1f_fa11_c10c;
/// Salt for the per-flow epoch phase used by clock skew.
const PHASE_SALT: u64 = 0x9a5e_0f10;
/// Salt for the hash-assigned drop hop of plan/channel losses.
const HOP_SALT: u64 = 0xd20b_40b5;

/// The deterministic drop hop of a non-congestion loss: plan and
/// Gilbert–Elliott drops have no saturated link to blame, so each dropped
/// packet picks a switch uniformly (by hash) along its flow's route — the
/// same rule the retired `run_detailed` path used. Never consumes RNG
/// state, so enabling attribution cannot shift any existing realization.
#[inline]
pub fn hash_hop(epoch_seed: u64, flow_key: u64, i: u64, route_len: usize) -> u8 {
    ((mix64(epoch_seed ^ flow_key ^ i ^ HOP_SALT) as usize) % route_len.max(1)) as u8
}

/// The link-level (fabric's own) loss view one flow replays under — how
/// the congestion layer, if any, expresses itself to the fate realization.
#[derive(Debug, Clone, Copy)]
pub enum LinkLoss<'a> {
    /// No link-level loss: only the plan and the channel impairments drop.
    None,
    /// Static per-hop drop probabilities — the epoch-homogeneous
    /// [`CongestionModel`] (one probability per route hop; see
    /// [`CongestionRealization::hop_probs`](crate::congestion::CongestionRealization::hop_probs)).
    Static(&'a [f64]),
    /// Time-resolved per-(hop, slot) drop probabilities from the
    /// [`QueueModel`]: `probs` is row-major
    /// `[hop][slot]` (`route_len × n_slots` entries), and `slot_counts` is
    /// this flow's per-slot packet layout (summing to the flow's packet
    /// count) — packet `i`'s seeded slot is where the cumulative layout
    /// places it, so a packet dies with the probability of the link *in its
    /// slot*, which is what makes drops time-correlated.
    Slotted {
        /// Row-major `[hop][slot]` drop probabilities.
        probs: &'a [f64],
        /// This flow's per-slot packet counts.
        slot_counts: &'a [u64],
        /// Slots per epoch.
        n_slots: usize,
    },
}

impl LinkLoss<'_> {
    /// True when no link on this flow's route can drop (the realization
    /// consumes no RNG for link loss).
    fn is_lossless(&self) -> bool {
        match self {
            LinkLoss::None => true,
            LinkLoss::Static(ps) => ps.iter().all(|&p| p <= 0.0),
            LinkLoss::Slotted { probs, .. } => probs.iter().all(|&p| p <= 0.0),
        }
    }
}

impl ImpairmentSet {
    /// The clean fabric: no impairments at all.
    pub fn none() -> Self {
        ImpairmentSet::default()
    }

    /// True when no impairment is configured (the clean fast paths apply).
    pub fn is_none(&self) -> bool {
        self.congestion.is_none()
            && self.queue.is_none()
            && self.gilbert_elliott.is_none()
            && self.duplication.is_none()
            && self.reordering.is_none()
            && self.clock_skew.is_none()
    }

    /// The deterministic skew fraction of `edge`'s clock in `[0, max_frac)`.
    pub fn edge_skew_frac(&self, edge: usize) -> f64 {
        match self.clock_skew {
            Some(cs) => {
                let u = mix64(self.seed ^ SKEW_SALT ^ (edge as u64)) >> 11;
                cs.max_frac * (u as f64 / (1u64 << 53) as f64)
            }
            None => 0.0,
        }
    }

    /// Realizes every impairment for one flow of `pkts` packets in the epoch
    /// identified by `epoch_seed`, writing the outcome into `out` (buffers
    /// are reused across calls). `base_lost` is the loss plan's realized
    /// drop count for this flow; plan drops are spread over the flow exactly
    /// as [`spread_drop`] spreads them, then the impairments perturb the
    /// pattern.
    ///
    /// `route_len` is the number of switches on the flow's ECMP route
    /// (every drop is attributed to one of them); `link_loss` is the
    /// congestion layer's view of this flow's route — static per-hop
    /// probabilities, time-resolved per-(hop, slot) probabilities, or
    /// nothing. The realization is a pure function of
    /// `(self, flow_key, pkts, base_lost, epoch_seed, in_edge, route_len, link_loss)`.
    #[allow(clippy::too_many_arguments)]
    pub fn realize_flow(
        &self,
        out: &mut FabricFates,
        flow_key: u64,
        pkts: u64,
        base_lost: u64,
        epoch_seed: u64,
        in_edge: usize,
        route_len: usize,
        link_loss: LinkLoss<'_>,
    ) {
        if let LinkLoss::Static(hop_probs) = link_loss {
            debug_assert!(
                hop_probs.is_empty() || hop_probs.len() == route_len,
                "hop_probs must cover the route"
            );
        }
        if let LinkLoss::Slotted { probs, slot_counts, n_slots } = link_loss {
            debug_assert_eq!(probs.len(), route_len * n_slots, "probs must cover route x slots");
            debug_assert_eq!(slot_counts.iter().sum::<u64>(), pkts, "slots must cover the flow");
        }
        out.delivered_mask.clear();
        out.dup.clear();
        out.drop_hop.clear();
        out.drop_hop.resize(pkts as usize, 0);
        for i in 0..pkts {
            let dead = spread_drop(i, pkts, base_lost);
            out.delivered_mask.push(!dead);
            if dead {
                out.drop_hop[i as usize] = hash_hop(epoch_seed, flow_key, i, route_len);
            }
        }
        let mut rng = StdRng::seed_from_u64(
            mix64(self.seed ^ epoch_seed).wrapping_add(mix64(flow_key)),
        );
        // Link loss first: it is the fabric's own loss (the saturated
        // link/queue), everything below is channel/plan noise on top. A
        // packet already claimed by the plan is not offered to later links.
        // When no link on this route can drop, no RNG state is consumed, so
        // congestion-free scenarios realize exactly as before.
        if !link_loss.is_lossless() {
            match link_loss {
                LinkLoss::Static(hop_probs) => {
                    for i in 0..pkts as usize {
                        if !out.delivered_mask[i] {
                            continue;
                        }
                        for (h, &p) in hop_probs.iter().enumerate() {
                            if p > 0.0 && rng.gen_bool(p) {
                                out.delivered_mask[i] = false;
                                out.drop_hop[i] = h as u8;
                                break;
                            }
                        }
                    }
                }
                LinkLoss::Slotted { probs, slot_counts, n_slots } => {
                    // Packets occupy slots in index order (index order is
                    // time order within an epoch), so each packet tests the
                    // drop probability of every hop *in its slot*.
                    let mut i = 0usize;
                    for (t, &cnt) in slot_counts.iter().enumerate() {
                        for _ in 0..cnt {
                            if out.delivered_mask[i] {
                                for h in 0..route_len {
                                    let p = probs[h * n_slots + t];
                                    if p > 0.0 && rng.gen_bool(p) {
                                        out.delivered_mask[i] = false;
                                        out.drop_hop[i] = h as u8;
                                        break;
                                    }
                                }
                            }
                            i += 1;
                        }
                    }
                }
                LinkLoss::None => unreachable!("lossless is handled above"),
            }
        }
        if let Some(ge) = self.gilbert_elliott {
            // Start the chain in its stationary distribution so short flows
            // see the same loss statistics as long ones.
            let denom = ge.p_enter_bad + ge.p_exit_bad;
            let p_bad0 = if denom > 0.0 { ge.p_enter_bad / denom } else { 0.0 };
            let mut bad = rng.gen_bool(p_bad0);
            for i in 0..pkts as usize {
                let p = if bad { ge.loss_bad } else { ge.loss_good };
                if p > 0.0 && rng.gen_bool(p) && out.delivered_mask[i] {
                    out.delivered_mask[i] = false;
                    out.drop_hop[i] = hash_hop(epoch_seed, flow_key, i as u64, route_len);
                }
                bad = if bad {
                    !rng.gen_bool(ge.p_exit_bad)
                } else {
                    rng.gen_bool(ge.p_enter_bad)
                };
            }
        }
        if let Some(ro) = self.reordering {
            let w = ro.window.max(1);
            for i in 0..pkts {
                if rng.gen_bool(ro.prob) {
                    let j = i + rng.gen_range(1..=w);
                    if j < pkts {
                        // The whole fate moves with the packet: delivery
                        // flag and drop point swap together.
                        out.delivered_mask.swap(i as usize, j as usize);
                        out.drop_hop.swap(i as usize, j as usize);
                    }
                }
            }
        }
        match self.duplication {
            Some(du) => {
                out.dup.extend(
                    (0..pkts as usize)
                        .map(|i| out.delivered_mask[i] && rng.gen_bool(du.prob)),
                );
            }
            None => out.dup.extend((0..pkts).map(|_| false)),
        }
        out.skew_split = {
            let frac = self.edge_skew_frac(in_edge);
            if frac > 0.0 && pkts > 0 {
                // Packets are uniformly spread over the epoch; the flow's
                // phase acts as stochastic rounding so a 5% skew mis-stamps
                // ~5% of packets in expectation even for tiny flows.
                let phase =
                    (mix64(flow_key ^ epoch_seed ^ PHASE_SALT) >> 11) as f64
                        / (1u64 << 53) as f64;
                ((frac * pkts as f64 + phase).floor() as u64).min(pkts)
            } else {
                0
            }
        };
    }
}

/// The realized fate of one flow's packets in one epoch: which indices are
/// delivered, **where on the route** each lost packet died, which delivered
/// indices are duplicated in the fabric, and how many leading packets carry
/// the previous epoch's timestamp bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FabricFates {
    /// `delivered_mask[i]` — packet `i` exits the network.
    pub delivered_mask: Vec<bool>,
    /// `drop_hop[i]` — the route position (0 = ingress ToR) whose switch
    /// dropped packet `i`. Meaningful only where `delivered_mask[i]` is false.
    pub drop_hop: Vec<u8>,
    /// `dup[i]` — packet `i` additionally traverses egress a second time
    /// (only ever true for delivered packets).
    pub dup: Vec<bool>,
    /// The first `skew_split` packets are stamped with the previous epoch's
    /// timestamp bit at ingress (and carry it to egress).
    pub skew_split: u64,
}

impl FabricFates {
    /// Packets of the flow that exit the network (duplicates not counted).
    pub fn n_delivered(&self) -> u64 {
        self.delivered_mask.iter().filter(|&&d| d).count() as u64
    }

    /// Delivered packets with index in `[start, start + len)`.
    pub fn delivered_in(&self, start: u64, len: u64) -> u64 {
        self.delivered_mask[start as usize..(start + len) as usize]
            .iter()
            .filter(|&&d| d)
            .count() as u64
    }

    /// Fabric duplicates with index in `[start, start + len)`.
    pub fn dups_in(&self, start: u64, len: u64) -> u64 {
        self.dup[start as usize..(start + len) as usize]
            .iter()
            .filter(|&&d| d)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realize(imp: &ImpairmentSet, key: u64, pkts: u64, lost: u64) -> FabricFates {
        let mut f = FabricFates::default();
        imp.realize_flow(&mut f, key, pkts, lost, 0x1234, 0, 5, LinkLoss::None);
        f
    }

    #[test]
    fn none_reproduces_spread_drop() {
        let imp = ImpairmentSet::none();
        assert!(imp.is_none());
        let f = realize(&imp, 7, 100, 13);
        assert_eq!(f.n_delivered(), 87);
        for i in 0..100u64 {
            assert_eq!(!f.delivered_mask[i as usize], spread_drop(i, 100, 13));
        }
        assert_eq!(f.skew_split, 0);
        assert!(f.dup.iter().all(|&d| !d));
    }

    #[test]
    fn realization_is_deterministic() {
        let imp = ImpairmentSet {
            seed: 9,
            congestion: None,
            queue: None,
            gilbert_elliott: Some(GilbertElliott::bursty()),
            duplication: Some(Duplication { prob: 0.1 }),
            reordering: Some(Reordering { prob: 0.2, window: 4 }),
            clock_skew: Some(ClockSkew { max_frac: 0.1 }),
        };
        let a = realize(&imp, 42, 500, 20);
        let b = realize(&imp, 42, 500, 20);
        assert_eq!(a.delivered_mask, b.delivered_mask);
        assert_eq!(a.drop_hop, b.drop_hop);
        assert_eq!(a.dup, b.dup);
        assert_eq!(a.skew_split, b.skew_split);
        // A different flow sees a different realization.
        let c = realize(&imp, 43, 500, 20);
        assert_ne!(a.delivered_mask, c.delivered_mask);
    }

    #[test]
    fn gilbert_elliott_adds_losses_in_bursts() {
        let imp = ImpairmentSet {
            seed: 3,
            gilbert_elliott: Some(GilbertElliott {
                p_enter_bad: 0.05,
                p_exit_bad: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            ..ImpairmentSet::none()
        };
        let f = realize(&imp, 11, 5_000, 0);
        let lost = 5_000 - f.n_delivered();
        assert!(lost > 0, "GE must drop something over 5000 packets");
        // Burstiness: among lost packets, the fraction whose successor is
        // also lost must far exceed the marginal loss rate.
        let mut runs_of_two = 0u64;
        for i in 0..4_999 {
            if !f.delivered_mask[i] && !f.delivered_mask[i + 1] {
                runs_of_two += 1;
            }
        }
        let marginal = lost as f64 / 5_000.0;
        assert!(
            runs_of_two as f64 / lost as f64 > 2.0 * marginal,
            "losses not bursty: {runs_of_two} adjacent pairs, {lost} lost"
        );
    }

    #[test]
    fn reordering_preserves_loss_count() {
        let imp = ImpairmentSet {
            seed: 5,
            reordering: Some(Reordering { prob: 0.5, window: 16 }),
            ..ImpairmentSet::none()
        };
        let f = realize(&imp, 21, 400, 40);
        assert_eq!(f.n_delivered(), 360, "reordering must not change counts");
        // But the drop pattern must differ from the clean spread.
        let clean = realize(&ImpairmentSet::none(), 21, 400, 40);
        assert_ne!(f.delivered_mask, clean.delivered_mask);
    }

    #[test]
    fn duplication_only_hits_delivered_packets() {
        let imp = ImpairmentSet {
            seed: 6,
            duplication: Some(Duplication { prob: 1.0 }),
            ..ImpairmentSet::none()
        };
        let f = realize(&imp, 31, 100, 30);
        for i in 0..100 {
            assert_eq!(f.dup[i], f.delivered_mask[i]);
        }
    }

    #[test]
    fn clock_skew_is_per_edge_and_bounded() {
        let imp = ImpairmentSet {
            seed: 7,
            clock_skew: Some(ClockSkew { max_frac: 0.25 }),
            ..ImpairmentSet::none()
        };
        let fracs: Vec<f64> = (0..4).map(|e| imp.edge_skew_frac(e)).collect();
        assert!(fracs.iter().all(|&f| (0.0..0.25).contains(&f)));
        assert!(
            fracs.windows(2).any(|w| w[0] != w[1]),
            "edges must not share one skew"
        );
        let mut f = FabricFates::default();
        imp.realize_flow(&mut f, 77, 1_000, 0, 1, 2, 5, LinkLoss::None);
        assert!(f.skew_split <= 1_000);
        let expected = imp.edge_skew_frac(2) * 1_000.0;
        assert!(
            (f.skew_split as f64 - expected).abs() <= 1.0,
            "split {} vs expected {expected}",
            f.skew_split
        );
    }

    #[test]
    fn congestion_hop_probs_drop_at_the_saturated_hop() {
        let imp = ImpairmentSet { seed: 12, ..ImpairmentSet::none() };
        let mut f = FabricFates::default();
        // Only hop 2 is saturated: every congestion drop must blame it.
        imp.realize_flow(
            &mut f,
            55,
            2_000,
            0,
            0x99,
            0,
            5,
            LinkLoss::Static(&[0.0, 0.0, 0.4, 0.0, 0.0]),
        );
        let lost = 2_000 - f.n_delivered();
        assert!(lost > 500, "a 0.4 link must drop plenty, got {lost}");
        for i in 0..2_000usize {
            if !f.delivered_mask[i] {
                assert_eq!(f.drop_hop[i], 2, "packet {i} blamed the wrong hop");
            }
        }
    }

    #[test]
    fn congestion_free_realization_consumes_no_rng() {
        // An all-zero hop_probs vector must leave the downstream RNG stream
        // (GE, duplication, …) exactly where an empty one does.
        let imp = ImpairmentSet {
            seed: 13,
            gilbert_elliott: Some(GilbertElliott::bursty()),
            duplication: Some(Duplication { prob: 0.2 }),
            ..ImpairmentSet::none()
        };
        let mut a = FabricFates::default();
        let mut b = FabricFates::default();
        imp.realize_flow(&mut a, 7, 600, 11, 0x42, 1, 5, LinkLoss::None);
        imp.realize_flow(&mut b, 7, 600, 11, 0x42, 1, 5, LinkLoss::Static(&[0.0; 5]));
        assert_eq!(a, b);
    }

    #[test]
    fn plan_drops_get_on_route_hash_hops() {
        let f = realize(&ImpairmentSet::none(), 31, 200, 17);
        for i in 0..200usize {
            if !f.delivered_mask[i] {
                assert!(f.drop_hop[i] < 5, "hop out of route");
                assert_eq!(
                    f.drop_hop[i],
                    hash_hop(0x1234, 31, i as u64, 5),
                    "plan drops must use the shared hash rule"
                );
            }
        }
    }

    #[test]
    fn range_helpers_sum_to_totals() {
        let imp = ImpairmentSet {
            seed: 8,
            gilbert_elliott: Some(GilbertElliott::bursty()),
            duplication: Some(Duplication { prob: 0.3 }),
            ..ImpairmentSet::none()
        };
        let f = realize(&imp, 99, 257, 19);
        let mut del = 0;
        let mut dups = 0;
        let mut pos = 0;
        for len in [0u64, 57, 100, 100] {
            del += f.delivered_in(pos, len);
            dups += f.dups_in(pos, len);
            pos += len;
        }
        assert_eq!(del, f.n_delivered());
        assert_eq!(dups, f.dup.iter().filter(|&&d| d).count() as u64);
    }
}
