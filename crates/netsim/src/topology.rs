//! The topology zoo: the fabrics the replay stack runs on.
//!
//! The original reproduction modeled exactly one network — the §5.2 testbed
//! fat-tree of 10 Tofino switches (4 ToR/edge, 4 aggregation, 2 core)
//! interconnecting 8 servers. This module generalizes that into a
//! [`Fabric`] contract (routes, hop counts, link enumeration, role-tagged
//! switch ids) with four implementations behind the [`Topology`] enum:
//!
//! * [`FatTree`] — the testbed shape: 2 edges + 2 aggs per pod, `n_edge/2`
//!   cores, parity-wired ECMP. The validated constructor rejects the shapes
//!   the old hard-coded wiring silently mis-wired (odd edge counts) or
//!   paniced on (`n_edge < 2` divided by zero in core selection).
//! * [`KaryFatTree`] — the textbook k-ary fat-tree: `k` pods of `k/2` edge
//!   and `k/2` aggregation switches, `(k/2)²` cores, `k/2` hosts per edge
//!   (k = 8 → 128 hosts / 80 switches, k = 16 → 1024 hosts / 320 switches).
//! * [`LeafSpine`] — a two-tier Clos: every leaf connects to every spine,
//!   flows hash across all spines (spines carry [`SwitchRole::Core`]).
//! * [`WanGraph`] — an imported asymmetric WAN graph routed by hop-by-hop
//!   ECMP over BFS shortest paths ([`WanGraph::abilene`] ships the classic
//!   11-node / 14-link Abilene backbone). Unlike the Clos fabrics, parallel
//!   paths here are *not* parity-symmetric — the localizer's
//!   ECMP-parity ties no longer save its exoneration pass.
//!
//! Only edge switches run ChameleMon; the fabric's role in the evaluation is
//! to connect edges and drop packets at attributable switches. Every route
//! is a pure function of `(topology, src_host, dst_host, flow_key)` — real
//! ECMP hashes the 5-tuple, so a flow always takes one path — and hop
//! counts are **definitionally** the route length (they can never drift
//! from the wiring again; property-tested in `tests/properties.rs`).

use chm_common::hash::mix64;

/// Switch roles in the fabric. The derived order (Edge < Aggregation <
/// Core) gives [`SwitchId`] a total order, which the per-switch drop maps
/// rely on for deterministic (sorted) emission into JSON goldens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SwitchRole {
    /// Top-of-rack switch running the ChameleMon data plane. WAN routers
    /// carry this role too: every WAN node hosts servers and runs the
    /// measurement data plane (an edge deployment covers the whole graph).
    Edge,
    /// Pod aggregation switch (fat-trees only).
    Aggregation,
    /// Core switch (fat-tree cores and leaf-spine spines).
    Core,
}

impl SwitchRole {
    /// Short stable label for reports and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchRole::Edge => "edge",
            SwitchRole::Aggregation => "agg",
            SwitchRole::Core => "core",
        }
    }
}

/// A switch identifier: role + index within the role. Totally ordered
/// (by layer, then index) so per-switch maps can be `BTreeMap`s with a
/// stable iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId {
    /// The role layer.
    pub role: SwitchRole,
    /// Index within the layer.
    pub index: usize,
}

/// The contract every fabric offers the replay stack: host/edge mapping,
/// deterministic per-flow ECMP routes, hop counts, and link enumeration.
///
/// The stack stores the concrete [`Topology`] enum (not `dyn Fabric`) so
/// the hot loops stay monomorphic; the trait exists to pin the contract the
/// property suite checks on every implementation.
pub trait Fabric {
    /// Short stable name of the fabric family (`"fat-tree"`, `"k-ary"`,
    /// `"leaf-spine"`, or the WAN graph's own name).
    fn kind(&self) -> &'static str;

    /// Total number of hosts.
    fn n_hosts(&self) -> usize;

    /// Number of edge (measurement) switches.
    fn n_edges(&self) -> usize;

    /// Total number of switches across all roles.
    fn n_switches(&self) -> usize;

    /// Upper bound on any route's length (switches traversed); lets replay
    /// buffers size themselves once per epoch.
    fn max_hops(&self) -> usize;

    /// The edge switch serving `host`.
    fn edge_of_host(&self, host: usize) -> usize;

    /// Allocation-free routing: clears `out` and fills it with the
    /// switch-level path from `src_host` to `dst_host`, ECMP-resolved
    /// deterministically by `flow_key`. The replay hot loops reuse one
    /// buffer across every flow of an epoch.
    fn route_into(&self, src_host: usize, dst_host: usize, flow_key: u64, out: &mut Vec<SwitchId>);

    /// The switch-level path as a fresh vector.
    fn route(&self, src_host: usize, dst_host: usize, flow_key: u64) -> Vec<SwitchId> {
        let mut out = Vec::with_capacity(self.max_hops());
        self.route_into(src_host, dst_host, flow_key, &mut out);
        out
    }

    /// Hop count (switches traversed) between two hosts for a given flow —
    /// **definitionally** the route length, so it can never drift from the
    /// wiring.
    fn hops(&self, src_host: usize, dst_host: usize, flow_key: u64) -> usize {
        self.route(src_host, dst_host, flow_key).len()
    }

    /// Every directed switch-to-switch link of the fabric, in sorted order
    /// (host attachment links are implicit: one per host at its edge).
    fn links(&self) -> Vec<(SwitchId, SwitchId)>;
}

/// Convenience: a role-tagged switch id.
#[inline]
fn sw(role: SwitchRole, index: usize) -> SwitchId {
    SwitchId { role, index }
}

/// Pushes `a ↔ b` as both directed links.
fn both_ways(links: &mut Vec<(SwitchId, SwitchId)>, a: SwitchId, b: SwitchId) {
    links.push((a, b));
    links.push((b, a));
}

/// Sorts and returns a link list (the [`Fabric`] contract promises sorted
/// emission so downstream folds are deterministic).
fn sorted_links(mut links: Vec<(SwitchId, SwitchId)>) -> Vec<(SwitchId, SwitchId)> {
    links.sort_unstable();
    links
}

// ---------------------------------------------------------------------------
// FatTree — the §5.2 testbed family.
// ---------------------------------------------------------------------------

/// The testbed fat-tree family: pods of exactly 2 edge + 2 aggregation
/// switches, `n_edge / 2` parity-wired cores.
///
/// Layout: pod `p` contains edge switches `2p`, `2p+1` and aggregation
/// switches `2p`, `2p+1`; core `c` connects to the aggregation switch of
/// matching parity (`a % 2 == c % 2`) in every pod. Host `h` attaches to
/// edge `h / hosts_per_edge`.
///
/// The fields are private behind [`FatTree::new`]: the wiring above is only
/// consistent for an even `n_edge ≥ 2`, and the old public-field struct let
/// callers build shapes the router then silently mis-wired (odd `n_edge`
/// floors the core count below what `pod_of_edge` implies) or paniced on
/// (`n_edge < 2` divides by zero in core selection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTree {
    n_edge: usize,
    hosts_per_edge: usize,
}

impl FatTree {
    /// Builds a validated fat-tree of `n_edge` ToRs with `hosts_per_edge`
    /// hosts each.
    ///
    /// # Panics
    /// When `n_edge` is zero or odd (pods hold exactly 2 edges, and the
    /// parity wiring needs `n_edge / 2 ≥ 1` cores), or `hosts_per_edge`
    /// is zero.
    pub fn new(n_edge: usize, hosts_per_edge: usize) -> Self {
        assert!(n_edge >= 2, "fat-tree needs at least 2 edge switches (one pod)");
        assert!(n_edge.is_multiple_of(2), "fat-tree pods hold exactly 2 edges: n_edge must be even");
        assert!(hosts_per_edge >= 1, "each edge switch must serve at least one host");
        FatTree { n_edge, hosts_per_edge }
    }

    /// The §5.2 testbed: 4 edge + 4 aggregation + 2 core switches, 8 hosts.
    pub fn testbed() -> Self {
        FatTree::new(4, 2)
    }

    /// Number of edge switches.
    pub fn n_edge(&self) -> usize {
        self.n_edge
    }

    /// Hosts attached to each edge switch.
    pub fn hosts_per_edge(&self) -> usize {
        self.hosts_per_edge
    }

    /// Number of core switches (one per pair of aggregation parities per
    /// pod pair — `n_edge / 2`, exact because the constructor enforces an
    /// even `n_edge`).
    pub fn n_cores(&self) -> usize {
        self.n_edge / 2
    }

    /// Total number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_edge * self.hosts_per_edge
    }

    /// Total number of switches (edge + agg + core).
    pub fn n_switches(&self) -> usize {
        self.n_edge + self.n_edge + self.n_cores()
    }

    /// The edge switch serving `host`.
    pub fn edge_of_host(&self, host: usize) -> usize {
        assert!(host < self.n_hosts(), "host {host} out of range");
        host / self.hosts_per_edge
    }

    /// The pod containing edge switch `edge` (2 edges per pod, by
    /// construction).
    pub fn pod_of_edge(&self, edge: usize) -> usize {
        edge / 2
    }

    /// The switch-level path from `src_host` to `dst_host`, ECMP-resolved
    /// deterministically by `flow_key`.
    pub fn route(&self, src_host: usize, dst_host: usize, flow_key: u64) -> Vec<SwitchId> {
        let mut out = Vec::with_capacity(5);
        self.route_into(src_host, dst_host, flow_key, &mut out);
        out
    }

    /// Allocation-free form of [`route`](Self::route): clears `out` and
    /// fills it with the path.
    pub fn route_into(
        &self,
        src_host: usize,
        dst_host: usize,
        flow_key: u64,
        out: &mut Vec<SwitchId>,
    ) {
        out.clear();
        let se = self.edge_of_host(src_host);
        let de = self.edge_of_host(dst_host);
        if se == de {
            // Same rack: single hop through the shared ToR.
            out.push(sw(SwitchRole::Edge, se));
            return;
        }
        let sp = self.pod_of_edge(se);
        let dp = self.pod_of_edge(de);
        let h = mix64(flow_key);
        if sp == dp {
            // Same pod: edge → (one of 2 aggs) → edge.
            let agg = sp * 2 + (h as usize & 1);
            out.push(sw(SwitchRole::Edge, se));
            out.push(sw(SwitchRole::Aggregation, agg));
            out.push(sw(SwitchRole::Edge, de));
        } else {
            // Cross-pod: edge → agg → core → agg → edge. The chosen core
            // pins the aggregation switch in each pod (parity wiring).
            let core = (h as usize >> 1) % self.n_cores();
            let up_agg = sp * 2 + core % 2;
            let down_agg = dp * 2 + core % 2;
            out.push(sw(SwitchRole::Edge, se));
            out.push(sw(SwitchRole::Aggregation, up_agg));
            out.push(sw(SwitchRole::Core, core));
            out.push(sw(SwitchRole::Aggregation, down_agg));
            out.push(sw(SwitchRole::Edge, de));
        }
    }

    /// Hop count between two hosts for a given flow — the route's length.
    pub fn hops(&self, src_host: usize, dst_host: usize, flow_key: u64) -> usize {
        self.route(src_host, dst_host, flow_key).len()
    }

    /// Every directed switch-to-switch link: each edge to both pod aggs,
    /// each agg to the cores of its parity.
    pub fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        let mut links = Vec::new();
        for e in 0..self.n_edge {
            let pod = self.pod_of_edge(e);
            for a in [pod * 2, pod * 2 + 1] {
                both_ways(&mut links, sw(SwitchRole::Edge, e), sw(SwitchRole::Aggregation, a));
            }
        }
        for a in 0..self.n_edge {
            for c in 0..self.n_cores() {
                if c % 2 == a % 2 || self.n_cores() == 1 {
                    both_ways(
                        &mut links,
                        sw(SwitchRole::Aggregation, a),
                        sw(SwitchRole::Core, c),
                    );
                }
            }
        }
        sorted_links(links)
    }
}

impl Fabric for FatTree {
    fn kind(&self) -> &'static str {
        "fat-tree"
    }
    fn n_hosts(&self) -> usize {
        self.n_hosts()
    }
    fn n_edges(&self) -> usize {
        self.n_edge
    }
    fn n_switches(&self) -> usize {
        self.n_switches()
    }
    fn max_hops(&self) -> usize {
        5
    }
    fn edge_of_host(&self, host: usize) -> usize {
        self.edge_of_host(host)
    }
    fn route_into(&self, src: usize, dst: usize, key: u64, out: &mut Vec<SwitchId>) {
        self.route_into(src, dst, key, out)
    }
    fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        self.links()
    }
}

// ---------------------------------------------------------------------------
// KaryFatTree — the textbook k-ary fat-tree.
// ---------------------------------------------------------------------------

/// The textbook k-ary fat-tree: `k` pods, each with `k/2` edge and `k/2`
/// aggregation switches; `(k/2)²` cores in `k/2` groups of `k/2`;
/// aggregation switch `j` of every pod connects to core group `j`. Each
/// edge switch serves `k/2` hosts.
///
/// | k  | hosts | switches           |
/// |----|-------|--------------------|
/// | 4  | 16    | 20 (8 + 8 + 4)     |
/// | 8  | 128   | 80 (32 + 32 + 16)  |
/// | 16 | 1024  | 320 (128 + 128 + 64) |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KaryFatTree {
    k: usize,
}

impl KaryFatTree {
    /// Builds the k-ary fat-tree.
    ///
    /// # Panics
    /// When `k` is odd or `< 2` (the construction needs `k/2 ≥ 1` switches
    /// per tier per pod).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-ary fat-tree needs k >= 2");
        assert!(k.is_multiple_of(2), "k-ary fat-tree needs an even k");
        KaryFatTree { k }
    }

    /// The arity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `k / 2`: switches per tier per pod, hosts per edge, cores per group.
    fn half(&self) -> usize {
        self.k / 2
    }

    /// Number of core switches: `(k/2)²`.
    pub fn n_cores(&self) -> usize {
        self.half() * self.half()
    }

    /// The pod containing edge (or aggregation) switch `index`.
    pub fn pod_of_edge(&self, edge: usize) -> usize {
        edge / self.half()
    }
}

impl Fabric for KaryFatTree {
    fn kind(&self) -> &'static str {
        "k-ary"
    }
    fn n_hosts(&self) -> usize {
        self.k * self.half() * self.half()
    }
    fn n_edges(&self) -> usize {
        self.k * self.half()
    }
    fn n_switches(&self) -> usize {
        2 * self.k * self.half() + self.n_cores()
    }
    fn max_hops(&self) -> usize {
        5
    }
    fn edge_of_host(&self, host: usize) -> usize {
        assert!(host < self.n_hosts(), "host {host} out of range");
        host / self.half()
    }
    fn route_into(&self, src: usize, dst: usize, key: u64, out: &mut Vec<SwitchId>) {
        out.clear();
        let half = self.half();
        let se = self.edge_of_host(src);
        let de = self.edge_of_host(dst);
        if se == de {
            out.push(sw(SwitchRole::Edge, se));
            return;
        }
        let sp = se / half;
        let dp = de / half;
        let h = mix64(key) as usize;
        if sp == dp {
            // Same pod: any of the pod's k/2 aggs.
            let agg = sp * half + h % half;
            out.push(sw(SwitchRole::Edge, se));
            out.push(sw(SwitchRole::Aggregation, agg));
            out.push(sw(SwitchRole::Edge, de));
        } else {
            // Cross-pod: any of the (k/2)² cores; the core's group pins the
            // aggregation switch in both pods.
            let core = h % self.n_cores();
            let group = core / half;
            out.push(sw(SwitchRole::Edge, se));
            out.push(sw(SwitchRole::Aggregation, sp * half + group));
            out.push(sw(SwitchRole::Core, core));
            out.push(sw(SwitchRole::Aggregation, dp * half + group));
            out.push(sw(SwitchRole::Edge, de));
        }
    }
    fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        let half = self.half();
        let mut links = Vec::new();
        for e in 0..self.n_edges() {
            let pod = e / half;
            for j in 0..half {
                both_ways(
                    &mut links,
                    sw(SwitchRole::Edge, e),
                    sw(SwitchRole::Aggregation, pod * half + j),
                );
            }
        }
        for pod in 0..self.k {
            for j in 0..half {
                for c in j * half..(j + 1) * half {
                    both_ways(
                        &mut links,
                        sw(SwitchRole::Aggregation, pod * half + j),
                        sw(SwitchRole::Core, c),
                    );
                }
            }
        }
        sorted_links(links)
    }
}

// ---------------------------------------------------------------------------
// LeafSpine — the two-tier Clos.
// ---------------------------------------------------------------------------

/// A two-tier leaf-spine Clos: every leaf (ToR, [`SwitchRole::Edge`])
/// connects to every spine ([`SwitchRole::Core`] — there is no aggregation
/// tier). Flows between different leaves hash across all spines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafSpine {
    n_leaf: usize,
    n_spine: usize,
    hosts_per_leaf: usize,
}

impl LeafSpine {
    /// Builds the leaf-spine fabric.
    ///
    /// # Panics
    /// When any dimension is zero (a route between two leaves needs at
    /// least one spine).
    pub fn new(n_leaf: usize, n_spine: usize, hosts_per_leaf: usize) -> Self {
        assert!(n_leaf >= 1, "leaf-spine needs at least one leaf");
        assert!(n_spine >= 1, "leaf-spine needs at least one spine");
        assert!(hosts_per_leaf >= 1, "each leaf must serve at least one host");
        LeafSpine { n_leaf, n_spine, hosts_per_leaf }
    }

    /// Number of leaf switches.
    pub fn n_leaf(&self) -> usize {
        self.n_leaf
    }

    /// Number of spine switches.
    pub fn n_spine(&self) -> usize {
        self.n_spine
    }
}

impl Fabric for LeafSpine {
    fn kind(&self) -> &'static str {
        "leaf-spine"
    }
    fn n_hosts(&self) -> usize {
        self.n_leaf * self.hosts_per_leaf
    }
    fn n_edges(&self) -> usize {
        self.n_leaf
    }
    fn n_switches(&self) -> usize {
        self.n_leaf + self.n_spine
    }
    fn max_hops(&self) -> usize {
        3
    }
    fn edge_of_host(&self, host: usize) -> usize {
        assert!(host < self.n_hosts(), "host {host} out of range");
        host / self.hosts_per_leaf
    }
    fn route_into(&self, src: usize, dst: usize, key: u64, out: &mut Vec<SwitchId>) {
        out.clear();
        let sl = self.edge_of_host(src);
        let dl = self.edge_of_host(dst);
        if sl == dl {
            out.push(sw(SwitchRole::Edge, sl));
            return;
        }
        let spine = mix64(key) as usize % self.n_spine;
        out.push(sw(SwitchRole::Edge, sl));
        out.push(sw(SwitchRole::Core, spine));
        out.push(sw(SwitchRole::Edge, dl));
    }
    fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        let mut links = Vec::new();
        for l in 0..self.n_leaf {
            for s in 0..self.n_spine {
                both_ways(&mut links, sw(SwitchRole::Edge, l), sw(SwitchRole::Core, s));
            }
        }
        sorted_links(links)
    }
}

// ---------------------------------------------------------------------------
// WanGraph — imported asymmetric WAN topologies.
// ---------------------------------------------------------------------------

/// Salt separating the per-node WAN ECMP hash stream from other mixes.
const WAN_HOP_SALT: u64 = 0x3a4e_0709;

/// An imported WAN-style graph: arbitrary connected wiring, every node a
/// measurement edge ([`SwitchRole::Edge`]) serving `hosts_per_node` hosts.
///
/// Routing is hop-by-hop ECMP over BFS shortest paths: at each node the
/// flow hashes over the neighbors that strictly decrease the BFS distance
/// to the destination, so a flow always takes one shortest path but
/// parallel shortest paths share load. Unlike the Clos fabrics these
/// parallel paths are **asymmetric** — no parity wiring ties the candidate
/// switches' blame together, which is exactly the regime that stresses the
/// localizer's exoneration pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WanGraph {
    name: &'static str,
    hosts_per_node: usize,
    /// Sorted adjacency lists.
    adj: Vec<Vec<usize>>,
    /// All-pairs BFS distances, `dist[u][v]` in hops.
    dist: Vec<Vec<u32>>,
    n_links: usize,
}

impl WanGraph {
    /// Builds a WAN graph from an undirected edge list over `n_nodes`
    /// nodes.
    ///
    /// # Panics
    /// When the graph is empty, disconnected, has out-of-range or self-loop
    /// edges, or `hosts_per_node` is zero.
    pub fn new(
        name: &'static str,
        n_nodes: usize,
        edges: &[(usize, usize)],
        hosts_per_node: usize,
    ) -> Self {
        assert!(n_nodes >= 1, "WAN graph needs at least one node");
        assert!(hosts_per_node >= 1, "each WAN node must serve at least one host");
        let mut adj = vec![Vec::new(); n_nodes];
        for &(a, b) in edges {
            assert!(a < n_nodes && b < n_nodes, "edge ({a}, {b}) out of range");
            assert!(a != b, "self-loop at node {a}");
            adj[a].push(b);
            adj[b].push(a);
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
            nbrs.dedup();
        }
        // All-pairs BFS (the graphs are small — tens of nodes).
        let mut dist = vec![vec![u32::MAX; n_nodes]; n_nodes];
        let mut queue = std::collections::VecDeque::new();
        for (s, dist_s) in dist.iter_mut().enumerate() {
            dist_s[s] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist_s[v] == u32::MAX {
                        dist_s[v] = dist_s[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            assert!(
                dist_s.iter().all(|&d| d != u32::MAX),
                "WAN graph must be connected (node {s} cannot reach every node)"
            );
        }
        let n_links = adj.iter().map(|n| n.len()).sum::<usize>() / 2;
        WanGraph { name, hosts_per_node, adj, dist, n_links }
    }

    /// The classic Abilene (Internet2) backbone: 11 PoPs, 14 links.
    ///
    /// Nodes: 0 Seattle, 1 Sunnyvale, 2 Denver, 3 Los Angeles, 4 Houston,
    /// 5 Kansas City, 6 Indianapolis, 7 Atlanta, 8 Chicago, 9 Washington,
    /// 10 New York.
    pub fn abilene(hosts_per_node: usize) -> Self {
        WanGraph::new(
            "abilene",
            11,
            &[
                (0, 1),  // Seattle – Sunnyvale
                (0, 2),  // Seattle – Denver
                (1, 2),  // Sunnyvale – Denver
                (1, 3),  // Sunnyvale – Los Angeles
                (2, 5),  // Denver – Kansas City
                (3, 4),  // Los Angeles – Houston
                (4, 5),  // Houston – Kansas City
                (4, 7),  // Houston – Atlanta
                (5, 6),  // Kansas City – Indianapolis
                (6, 7),  // Indianapolis – Atlanta
                (6, 8),  // Indianapolis – Chicago
                (7, 9),  // Atlanta – Washington
                (8, 10), // Chicago – New York
                (9, 10), // Washington – New York
            ],
            hosts_per_node,
        )
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected links.
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// The graph's diameter in hops.
    pub fn diameter(&self) -> usize {
        self.dist
            .iter()
            .flat_map(|row| row.iter())
            .copied()
            .max()
            .unwrap_or(0) as usize
    }

    /// The node of highest degree (ties toward the smaller index) — the
    /// natural hub to derate in WAN hot-spot scenarios.
    pub fn hub(&self) -> usize {
        (0..self.n_nodes())
            .max_by_key(|&u| (self.adj[u].len(), usize::MAX - u))
            .unwrap_or(0)
    }
}

impl Fabric for WanGraph {
    fn kind(&self) -> &'static str {
        self.name
    }
    fn n_hosts(&self) -> usize {
        self.n_nodes() * self.hosts_per_node
    }
    fn n_edges(&self) -> usize {
        self.n_nodes()
    }
    fn n_switches(&self) -> usize {
        self.n_nodes()
    }
    fn max_hops(&self) -> usize {
        self.diameter() + 1
    }
    fn edge_of_host(&self, host: usize) -> usize {
        assert!(host < self.n_hosts(), "host {host} out of range");
        host / self.hosts_per_node
    }
    fn route_into(&self, src: usize, dst: usize, key: u64, out: &mut Vec<SwitchId>) {
        out.clear();
        let s = self.edge_of_host(src);
        let d = self.edge_of_host(dst);
        let mut u = s;
        out.push(sw(SwitchRole::Edge, u));
        while u != d {
            // ECMP over the neighbors that strictly decrease the BFS
            // distance; the per-(flow, node) hash makes the whole path a
            // pure function of (key, src, dst).
            let down = self.dist[u][d] - 1;
            let n_cand = self.adj[u].iter().filter(|&&v| self.dist[v][d] == down).count();
            let pick = mix64(key ^ mix64(u as u64 ^ WAN_HOP_SALT)) as usize % n_cand;
            let v = self.adj[u]
                .iter()
                .filter(|&&v| self.dist[v][d] == down)
                .nth(pick)
                .copied()
                .expect("BFS guarantees a distance-decreasing neighbor");
            out.push(sw(SwitchRole::Edge, v));
            u = v;
        }
    }
    fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        let mut links = Vec::new();
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                links.push((sw(SwitchRole::Edge, u), sw(SwitchRole::Edge, v)));
            }
        }
        sorted_links(links)
    }
}

// ---------------------------------------------------------------------------
// Topology — the enum the replay stack carries.
// ---------------------------------------------------------------------------

/// The concrete fabric a replay runs on. The stack stores this enum (not a
/// trait object) so the per-flow routing calls stay monomorphic and
/// allocation-free; every constructor site takes `impl Into<Topology>`, so
/// passing a bare [`FatTree::testbed()`] keeps working.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// The testbed fat-tree family (2 edges/pod).
    FatTree(FatTree),
    /// The textbook k-ary fat-tree.
    KaryFatTree(KaryFatTree),
    /// A two-tier leaf-spine Clos.
    LeafSpine(LeafSpine),
    /// An imported WAN-style graph.
    Wan(WanGraph),
}

impl From<FatTree> for Topology {
    fn from(t: FatTree) -> Self {
        Topology::FatTree(t)
    }
}

impl From<KaryFatTree> for Topology {
    fn from(t: KaryFatTree) -> Self {
        Topology::KaryFatTree(t)
    }
}

impl From<LeafSpine> for Topology {
    fn from(t: LeafSpine) -> Self {
        Topology::LeafSpine(t)
    }
}

impl From<WanGraph> for Topology {
    fn from(t: WanGraph) -> Self {
        Topology::Wan(t)
    }
}

/// Dispatches one method call to the active variant.
macro_rules! dispatch {
    ($self:expr, $f:ident ( $($arg:expr),* )) => {
        match $self {
            Topology::FatTree(t) => Fabric::$f(t, $($arg),*),
            Topology::KaryFatTree(t) => Fabric::$f(t, $($arg),*),
            Topology::LeafSpine(t) => Fabric::$f(t, $($arg),*),
            Topology::Wan(t) => Fabric::$f(t, $($arg),*),
        }
    };
}

impl Topology {
    /// Short stable name of the fabric family.
    pub fn kind(&self) -> &'static str {
        dispatch!(self, kind())
    }

    /// Total number of hosts.
    pub fn n_hosts(&self) -> usize {
        dispatch!(self, n_hosts())
    }

    /// Number of edge (measurement) switches.
    pub fn n_edges(&self) -> usize {
        dispatch!(self, n_edges())
    }

    /// Total number of switches.
    pub fn n_switches(&self) -> usize {
        dispatch!(self, n_switches())
    }

    /// Upper bound on any route's length.
    pub fn max_hops(&self) -> usize {
        dispatch!(self, max_hops())
    }

    /// The edge switch serving `host`.
    pub fn edge_of_host(&self, host: usize) -> usize {
        dispatch!(self, edge_of_host(host))
    }

    /// The switch-level path from `src_host` to `dst_host`, ECMP-resolved
    /// deterministically by `flow_key`.
    pub fn route(&self, src_host: usize, dst_host: usize, flow_key: u64) -> Vec<SwitchId> {
        let mut out = Vec::with_capacity(self.max_hops());
        self.route_into(src_host, dst_host, flow_key, &mut out);
        out
    }

    /// Allocation-free form of [`route`](Self::route).
    pub fn route_into(
        &self,
        src_host: usize,
        dst_host: usize,
        flow_key: u64,
        out: &mut Vec<SwitchId>,
    ) {
        dispatch!(self, route_into(src_host, dst_host, flow_key, out))
    }

    /// Hop count between two hosts for a given flow — the route's length.
    pub fn hops(&self, src_host: usize, dst_host: usize, flow_key: u64) -> usize {
        dispatch!(self, hops(src_host, dst_host, flow_key))
    }

    /// Every directed switch-to-switch link, sorted.
    pub fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        dispatch!(self, links())
    }
}

impl Fabric for Topology {
    fn kind(&self) -> &'static str {
        Topology::kind(self)
    }
    fn n_hosts(&self) -> usize {
        Topology::n_hosts(self)
    }
    fn n_edges(&self) -> usize {
        Topology::n_edges(self)
    }
    fn n_switches(&self) -> usize {
        Topology::n_switches(self)
    }
    fn max_hops(&self) -> usize {
        Topology::max_hops(self)
    }
    fn edge_of_host(&self, host: usize) -> usize {
        Topology::edge_of_host(self, host)
    }
    fn route_into(&self, src: usize, dst: usize, key: u64, out: &mut Vec<SwitchId>) {
        Topology::route_into(self, src, dst, key, out)
    }
    fn links(&self) -> Vec<(SwitchId, SwitchId)> {
        Topology::links(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_dimensions() {
        let t = FatTree::testbed();
        assert_eq!(t.n_hosts(), 8);
        assert_eq!(t.n_switches(), 10); // 4 edge + 4 agg + 2 core
    }

    #[test]
    fn host_to_edge_mapping() {
        let t = FatTree::testbed();
        assert_eq!(t.edge_of_host(0), 0);
        assert_eq!(t.edge_of_host(1), 0);
        assert_eq!(t.edge_of_host(2), 1);
        assert_eq!(t.edge_of_host(7), 3);
    }

    #[test]
    fn same_rack_route_is_one_switch() {
        let t = FatTree::testbed();
        let r = t.route(0, 1, 42);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: 0 });
    }

    #[test]
    fn same_pod_route_is_three_switches() {
        let t = FatTree::testbed();
        let r = t.route(0, 2, 42); // edge 0 -> edge 1, pod 0
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].role, SwitchRole::Edge);
        assert_eq!(r[1].role, SwitchRole::Aggregation);
        assert!(r[1].index < 2, "agg must be in pod 0");
        assert_eq!(r[2], SwitchId { role: SwitchRole::Edge, index: 1 });
    }

    #[test]
    fn cross_pod_route_is_five_switches() {
        let t = FatTree::testbed();
        let r = t.route(0, 7, 42); // edge 0 (pod 0) -> edge 3 (pod 1)
        assert_eq!(r.len(), 5);
        assert_eq!(r[2].role, SwitchRole::Core);
        assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: 0 });
        assert_eq!(r[4], SwitchId { role: SwitchRole::Edge, index: 3 });
        // Up/down aggregation switches live in the right pods.
        assert!(r[1].index < 2 && r[3].index >= 2);
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let t = FatTree::testbed();
        assert_eq!(t.route(0, 7, 9), t.route(0, 7, 9));
    }

    #[test]
    fn ecmp_spreads_flows() {
        let t = FatTree::testbed();
        let mut cores_used = std::collections::HashSet::new();
        for k in 0..64u64 {
            let r = t.route(0, 7, k);
            cores_used.insert(r[2].index);
        }
        assert_eq!(cores_used.len(), 2, "both cores should carry traffic");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_host_panics() {
        FatTree::testbed().edge_of_host(8);
    }

    #[test]
    #[should_panic(expected = "at least 2 edge switches")]
    fn fat_tree_rejects_degenerate_edge_count() {
        // The old public-field struct divided by zero in core selection
        // here; the validated constructor rejects the shape up front.
        FatTree::new(0, 2);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn fat_tree_rejects_odd_edge_count() {
        // The old wiring silently mis-wired odd shapes: `pod_of_edge`
        // implied ceil(n/2) pods but the core count floored to n/2,
        // under-sizing per-switch maps relative to what routes emit.
        FatTree::new(5, 2);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn fat_tree_rejects_zero_hosts() {
        FatTree::new(4, 0);
    }

    #[test]
    fn hops_is_route_len_for_every_pair() {
        let t = FatTree::new(8, 3);
        for src in 0..t.n_hosts() {
            for dst in 0..t.n_hosts() {
                for key in [0u64, 7, 0xdead_beef] {
                    assert_eq!(t.hops(src, dst, key), t.route(src, dst, key).len());
                }
            }
        }
    }

    #[test]
    fn fat_tree_links_are_sorted_and_symmetric() {
        let t = FatTree::testbed();
        let links = t.links();
        assert!(links.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        for &(a, b) in &links {
            assert!(links.contains(&(b, a)), "{a:?} -> {b:?} must be bidirectional");
        }
        // 4 edges x 2 aggs + 4 aggs x 1 core each, both directions.
        assert_eq!(links.len(), 2 * (4 * 2 + 4));
    }

    #[test]
    fn kary_dimensions_match_the_textbook() {
        for (k, hosts, switches) in [(4usize, 16usize, 20usize), (8, 128, 80), (16, 1024, 320)] {
            let t = KaryFatTree::new(k);
            assert_eq!(Fabric::n_hosts(&t), hosts, "k={k}");
            assert_eq!(Fabric::n_switches(&t), switches, "k={k}");
        }
    }

    #[test]
    fn kary_routes_are_wired_to_pods_and_groups() {
        let t = KaryFatTree::new(8);
        let half = 4;
        let src = 0; // edge 0, pod 0
        let dst = Fabric::n_hosts(&t) - 1; // last edge, last pod
        for key in 0..64u64 {
            let r = Fabric::route(&t, src, dst, key);
            assert_eq!(r.len(), 5);
            assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: 0 });
            assert_eq!(r[2].role, SwitchRole::Core);
            let group = r[2].index / half;
            assert_eq!(r[1], SwitchId { role: SwitchRole::Aggregation, index: group });
            assert_eq!(
                r[3],
                SwitchId { role: SwitchRole::Aggregation, index: 7 * half + group }
            );
        }
    }

    #[test]
    fn kary_ecmp_uses_every_core() {
        let t = KaryFatTree::new(4);
        let mut cores = std::collections::HashSet::new();
        for key in 0..512u64 {
            let r = Fabric::route(&t, 0, Fabric::n_hosts(&t) - 1, key);
            cores.insert(r[2].index);
        }
        assert_eq!(cores.len(), t.n_cores(), "all 4 cores must carry traffic");
    }

    #[test]
    fn leaf_spine_routes_and_spreads() {
        let t = LeafSpine::new(8, 4, 2);
        assert_eq!(Fabric::n_hosts(&t), 16);
        assert_eq!(Fabric::n_switches(&t), 12);
        assert_eq!(Fabric::route(&t, 0, 1, 3).len(), 1, "same leaf stays local");
        let mut spines = std::collections::HashSet::new();
        for key in 0..256u64 {
            let r = Fabric::route(&t, 0, 15, key);
            assert_eq!(r.len(), 3);
            assert_eq!(r[1].role, SwitchRole::Core);
            spines.insert(r[1].index);
        }
        assert_eq!(spines.len(), 4, "all spines must carry traffic");
    }

    #[test]
    fn abilene_shape_and_routes() {
        let w = WanGraph::abilene(2);
        assert_eq!(w.n_nodes(), 11);
        assert_eq!(w.n_links(), 14);
        assert_eq!(Fabric::n_hosts(&w), 22);
        assert!(w.diameter() >= 4, "a backbone is not a clique");
        // Seattle (node 0) to New York (node 10): every realized route is a
        // shortest path, starts/ends right, and stays on wiring.
        let d = w.dist[0][10] as usize;
        for key in 0..64u64 {
            let r = Fabric::route(&w, 0, 21, key);
            assert_eq!(r.len(), d + 1);
            assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: 0 });
            assert_eq!(r[d], SwitchId { role: SwitchRole::Edge, index: 10 });
            for pair in r.windows(2) {
                assert!(
                    w.adj[pair[0].index].contains(&pair[1].index),
                    "route must follow graph edges: {pair:?}"
                );
            }
            // Deterministic per flow.
            assert_eq!(r, Fabric::route(&w, 0, 21, key));
        }
    }

    #[test]
    fn abilene_ecmp_splits_where_parallel_shortest_paths_exist() {
        let w = WanGraph::abilene(1);
        // Across many flows between the coasts, more than one distinct
        // route must be realized (Abilene has parallel shortest paths
        // between Sunnyvale and the east coast).
        let mut distinct = std::collections::HashSet::new();
        for key in 0..256u64 {
            distinct.insert(Fabric::route(&w, 1, 10, key));
        }
        assert!(distinct.len() > 1, "ECMP must split over parallel paths");
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn wan_rejects_disconnected_graphs() {
        WanGraph::new("split", 4, &[(0, 1), (2, 3)], 1);
    }

    #[test]
    fn topology_enum_delegates_faithfully() {
        let ft = FatTree::testbed();
        let t: Topology = ft.clone().into();
        assert_eq!(t.kind(), "fat-tree");
        assert_eq!(t.n_hosts(), ft.n_hosts());
        assert_eq!(t.n_edges(), ft.n_edge());
        assert_eq!(t.n_switches(), ft.n_switches());
        for src in 0..8 {
            for dst in 0..8 {
                for key in [1u64, 99, 0x5eed] {
                    assert_eq!(t.route(src, dst, key), ft.route(src, dst, key));
                    assert_eq!(t.hops(src, dst, key), ft.hops(src, dst, key));
                }
            }
        }
        assert_eq!(t.links(), ft.links());
    }
}
