//! The testbed topology (§5.2): a Fat-tree of 10 Tofino switches —
//! 4 ToR/edge, 4 aggregation, 2 core — interconnecting 8 servers (2 per
//! edge switch), with ECMP routing between pods.
//!
//! Only edge switches run ChameleMon; the fabric's role in the evaluation is
//! to connect edges and (proactively) drop marked packets. We still model
//! the full wiring so paths, hop counts, and per-switch drop points are
//! faithful.

use chm_common::hash::mix64;

/// Switch roles in the fat-tree. The derived order (Edge < Aggregation <
/// Core) gives [`SwitchId`] a total order, which the per-switch drop maps
/// rely on for deterministic (sorted) emission into JSON goldens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SwitchRole {
    /// Top-of-rack switch running the ChameleMon data plane.
    Edge,
    /// Pod aggregation switch.
    Aggregation,
    /// Core switch.
    Core,
}

impl SwitchRole {
    /// Short stable label for reports and JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            SwitchRole::Edge => "edge",
            SwitchRole::Aggregation => "agg",
            SwitchRole::Core => "core",
        }
    }
}

/// A switch identifier: role + index within the role. Totally ordered
/// (by layer, then index) so per-switch maps can be `BTreeMap`s with a
/// stable iteration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId {
    /// The role layer.
    pub role: SwitchRole,
    /// Index within the layer.
    pub index: usize,
}

/// The 10-switch / 8-host fat-tree.
///
/// Layout (k=2 pods): pod `p ∈ {0,1}` contains edge switches `2p`, `2p+1`
/// and aggregation switches `2p`, `2p+1`; both aggregation switches of a pod
/// connect to both cores. Host `h` attaches to edge `h / hosts_per_edge`.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Number of edge switches (testbed: 4).
    pub n_edge: usize,
    /// Hosts attached to each edge switch (testbed: 2).
    pub hosts_per_edge: usize,
}

impl FatTree {
    /// The §5.2 testbed: 4 edge + 4 aggregation + 2 core switches, 8 hosts.
    pub fn testbed() -> Self {
        FatTree { n_edge: 4, hosts_per_edge: 2 }
    }

    /// Total number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_edge * self.hosts_per_edge
    }

    /// Total number of switches (edge + agg + core).
    pub fn n_switches(&self) -> usize {
        self.n_edge + self.n_edge + self.n_edge / 2
    }

    /// The edge switch serving `host`.
    pub fn edge_of_host(&self, host: usize) -> usize {
        assert!(host < self.n_hosts(), "host {host} out of range");
        host / self.hosts_per_edge
    }

    /// The pod containing edge switch `edge`.
    pub fn pod_of_edge(&self, edge: usize) -> usize {
        edge / 2
    }

    /// The switch-level path from `src_host` to `dst_host`, ECMP-resolved
    /// deterministically by `flow_key` (so a flow always takes one path, as
    /// real ECMP hashes the 5-tuple).
    pub fn route(&self, src_host: usize, dst_host: usize, flow_key: u64) -> Vec<SwitchId> {
        let mut out = Vec::with_capacity(5);
        self.route_into(src_host, dst_host, flow_key, &mut out);
        out
    }

    /// Allocation-free form of [`route`](Self::route): clears `out` and
    /// fills it with the path. The replay hot loops reuse one buffer across
    /// every flow of an epoch.
    pub fn route_into(
        &self,
        src_host: usize,
        dst_host: usize,
        flow_key: u64,
        out: &mut Vec<SwitchId>,
    ) {
        out.clear();
        let se = self.edge_of_host(src_host);
        let de = self.edge_of_host(dst_host);
        if se == de {
            // Same rack: single hop through the shared ToR.
            out.push(SwitchId { role: SwitchRole::Edge, index: se });
            return;
        }
        let sp = self.pod_of_edge(se);
        let dp = self.pod_of_edge(de);
        let h = mix64(flow_key);
        if sp == dp {
            // Same pod: edge → (one of 2 aggs) → edge.
            let agg = sp * 2 + (h as usize & 1);
            out.push(SwitchId { role: SwitchRole::Edge, index: se });
            out.push(SwitchId { role: SwitchRole::Aggregation, index: agg });
            out.push(SwitchId { role: SwitchRole::Edge, index: de });
        } else {
            // Cross-pod: edge → agg → core → agg → edge. The chosen core
            // pins the aggregation switch in each pod (fat-tree wiring).
            let core = (h as usize >> 1) % (self.n_edge / 2);
            let up_agg = sp * 2 + core % 2;
            let down_agg = dp * 2 + core % 2;
            out.push(SwitchId { role: SwitchRole::Edge, index: se });
            out.push(SwitchId { role: SwitchRole::Aggregation, index: up_agg });
            out.push(SwitchId { role: SwitchRole::Core, index: core });
            out.push(SwitchId { role: SwitchRole::Aggregation, index: down_agg });
            out.push(SwitchId { role: SwitchRole::Edge, index: de });
        }
    }

    /// Hop count (switches traversed) between two hosts for a given flow.
    /// Purely locality-determined — no route is materialized.
    pub fn hops(&self, src_host: usize, dst_host: usize, _flow_key: u64) -> usize {
        let se = self.edge_of_host(src_host);
        let de = self.edge_of_host(dst_host);
        if se == de {
            1
        } else if self.pod_of_edge(se) == self.pod_of_edge(de) {
            3
        } else {
            5
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_dimensions() {
        let t = FatTree::testbed();
        assert_eq!(t.n_hosts(), 8);
        assert_eq!(t.n_switches(), 10); // 4 edge + 4 agg + 2 core
    }

    #[test]
    fn host_to_edge_mapping() {
        let t = FatTree::testbed();
        assert_eq!(t.edge_of_host(0), 0);
        assert_eq!(t.edge_of_host(1), 0);
        assert_eq!(t.edge_of_host(2), 1);
        assert_eq!(t.edge_of_host(7), 3);
    }

    #[test]
    fn same_rack_route_is_one_switch() {
        let t = FatTree::testbed();
        let r = t.route(0, 1, 42);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: 0 });
    }

    #[test]
    fn same_pod_route_is_three_switches() {
        let t = FatTree::testbed();
        let r = t.route(0, 2, 42); // edge 0 -> edge 1, pod 0
        assert_eq!(r.len(), 3);
        assert_eq!(r[0].role, SwitchRole::Edge);
        assert_eq!(r[1].role, SwitchRole::Aggregation);
        assert!(r[1].index < 2, "agg must be in pod 0");
        assert_eq!(r[2], SwitchId { role: SwitchRole::Edge, index: 1 });
    }

    #[test]
    fn cross_pod_route_is_five_switches() {
        let t = FatTree::testbed();
        let r = t.route(0, 7, 42); // edge 0 (pod 0) -> edge 3 (pod 1)
        assert_eq!(r.len(), 5);
        assert_eq!(r[2].role, SwitchRole::Core);
        assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: 0 });
        assert_eq!(r[4], SwitchId { role: SwitchRole::Edge, index: 3 });
        // Up/down aggregation switches live in the right pods.
        assert!(r[1].index < 2 && r[3].index >= 2);
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let t = FatTree::testbed();
        assert_eq!(t.route(0, 7, 9), t.route(0, 7, 9));
    }

    #[test]
    fn ecmp_spreads_flows() {
        let t = FatTree::testbed();
        let mut cores_used = std::collections::HashSet::new();
        for k in 0..64u64 {
            let r = t.route(0, 7, k);
            cores_used.insert(r[2].index);
        }
        assert_eq!(cores_used.len(), 2, "both cores should carry traffic");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_host_panics() {
        FatTree::testbed().edge_of_host(8);
    }
}
