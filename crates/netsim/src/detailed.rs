//! Detailed per-packet simulation: routes every packet hop-by-hop through
//! the fat-tree, drops it at a specific switch (as the testbed's
//! ECN-marked proactive drops do, §5.2), and attributes losses per link —
//! the visibility a LossRadar-style per-link deployment would give, and a
//! harder exercise of the topology substrate than the flow-level loop in
//! [`crate::sim`].

use crate::topology::{FatTree, SwitchId};
use chm_common::hash::mix64;
use chm_workloads::{LossPlan, Trace};
use std::collections::HashMap;
use std::hash::Hash;

/// Where a packet died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DropPoint {
    /// The switch that dropped the packet.
    pub switch: SwitchId,
    /// Hop index along the route (0 = ingress edge).
    pub hop: usize,
}

/// Per-switch and per-flow accounting of one detailed run.
#[derive(Debug, Clone)]
pub struct DetailedReport<F> {
    /// Packets forwarded by each switch (counted once per traversal).
    pub forwarded: HashMap<SwitchId, u64>,
    /// Packets dropped, attributed to the switch that dropped them.
    pub dropped_at: HashMap<SwitchId, u64>,
    /// Per-flow delivered counts.
    pub delivered: HashMap<F, u64>,
    /// Per-flow lost counts with their drop points.
    pub lost: HashMap<F, Vec<DropPoint>>,
    /// Distribution of route lengths (hops → packets).
    pub hops_histogram: HashMap<usize, u64>,
}

impl<F: Copy + Eq + Hash> DetailedReport<F> {
    /// Total packets dropped.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_at.values().sum()
    }

    /// Total packets delivered.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.values().sum()
    }
}

/// Runs a detailed per-packet replay of `trace` over `topology`.
///
/// For a victim flow, the realized number of lost packets follows the plan
/// (at least one per victim), and each lost packet picks its drop switch
/// deterministically from the flow's route — never the ingress edge's
/// ingress pipeline (the upstream encoder has already seen the packet) and,
/// for multi-hop routes, never after the egress pipeline.
pub fn run_detailed<F>(
    topology: &FatTree,
    trace: &Trace<F>,
    plan: &LossPlan<F>,
    src_dst: impl Fn(&F) -> (usize, usize),
    seed: u64,
) -> DetailedReport<F>
where
    F: Copy + Eq + Hash + Ord + chm_common::FlowId,
{
    let (_, lost_counts) = plan.apply_to_trace(trace, seed);
    let mut report = DetailedReport {
        forwarded: HashMap::new(),
        dropped_at: HashMap::new(),
        delivered: HashMap::new(),
        lost: HashMap::new(),
        hops_histogram: HashMap::new(),
    };
    for &(f, pkts) in &trace.flows {
        let (src, dst) = src_dst(&f);
        let route = topology.route(src, dst, f.key64());
        let n_lost = lost_counts.get(&f).copied().unwrap_or(0);
        for i in 0..pkts {
            *report.hops_histogram.entry(route.len()).or_insert(0) += 1;
            let drop_here = if crate::sim::spread_drop(i, pkts, n_lost) {
                // Choose a drop hop: any switch on the route (the single-
                // switch case drops between its ingress and egress
                // pipelines, which is still "at" that switch).
                let h = (mix64(seed ^ f.key64() ^ i) as usize) % route.len();
                Some(h)
            } else {
                None
            };
            match drop_here {
                Some(h) => {
                    // Switches before the drop forwarded the packet.
                    for s in &route[..h] {
                        *report.forwarded.entry(*s).or_insert(0) += 1;
                    }
                    *report.dropped_at.entry(route[h]).or_insert(0) += 1;
                    report
                        .lost
                        .entry(f)
                        .or_default()
                        .push(DropPoint { switch: route[h], hop: h });
                }
                None => {
                    for s in &route {
                        *report.forwarded.entry(*s).or_insert(0) += 1;
                    }
                    *report.delivered.entry(f).or_insert(0) += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SwitchRole;
    use chm_common::FlowId as _;
    use chm_workloads::trace::ip_host;
    use chm_workloads::{testbed_trace, VictimSelection, WorkloadKind};

    fn endpoints(f: &chm_common::FiveTuple) -> (usize, usize) {
        (ip_host(f.src_ip) as usize, ip_host(f.dst_ip) as usize)
    }

    #[test]
    fn conservation_of_packets() {
        let topo = FatTree::testbed();
        let trace = testbed_trace(WorkloadKind::Dctcp, 500, 8, 1);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, 2);
        let r = run_detailed(&topo, &trace, &plan, endpoints, 3);
        let total: u64 = trace.flows.iter().map(|&(_, s)| s).sum();
        assert_eq!(r.total_delivered() + r.total_dropped(), total);
    }

    #[test]
    fn lossless_run_has_no_drop_points() {
        let topo = FatTree::testbed();
        let trace = testbed_trace(WorkloadKind::Cache, 300, 8, 4);
        let r = run_detailed(&topo, &trace, &LossPlan::none(), endpoints, 5);
        assert_eq!(r.total_dropped(), 0);
        assert!(r.lost.is_empty());
    }

    #[test]
    fn drop_points_lie_on_the_flow_route() {
        let topo = FatTree::testbed();
        let trace = testbed_trace(WorkloadKind::Vl2, 400, 8, 6);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.2), 0.1, 7);
        let r = run_detailed(&topo, &trace, &plan, endpoints, 8);
        for (f, points) in &r.lost {
            let (s, d) = endpoints(f);
            let route = topo.route(s, d, f.key64());
            for p in points {
                assert!(p.hop < route.len());
                assert_eq!(route[p.hop], p.switch);
            }
        }
    }

    #[test]
    fn hop_histogram_shapes() {
        let topo = FatTree::testbed();
        let trace = testbed_trace(WorkloadKind::Hadoop, 2_000, 8, 9);
        let r = run_detailed(&topo, &trace, &LossPlan::none(), endpoints, 10);
        // Possible route lengths in the 2-pod fat-tree: 1 (same rack),
        // 3 (same pod), 5 (cross-pod).
        for &h in r.hops_histogram.keys() {
            assert!(matches!(h, 1 | 3 | 5), "unexpected hop count {h}");
        }
        // Cross-pod is the most common with uniform host selection.
        assert!(r.hops_histogram[&5] > r.hops_histogram[&1]);
    }

    #[test]
    fn per_switch_drops_cover_all_roles_eventually() {
        let topo = FatTree::testbed();
        let trace = testbed_trace(WorkloadKind::Dctcp, 2_000, 8, 11);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.5), 0.2, 12);
        let r = run_detailed(&topo, &trace, &plan, endpoints, 13);
        let roles: std::collections::HashSet<SwitchRole> =
            r.dropped_at.keys().map(|s| s.role).collect();
        assert!(roles.contains(&SwitchRole::Edge));
        assert!(roles.contains(&SwitchRole::Aggregation));
        assert!(roles.contains(&SwitchRole::Core));
    }
}
