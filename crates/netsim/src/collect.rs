//! Collection cost model (Appendix D.2 and F).
//!
//! On the testbed the controller collects, per edge switch and per epoch:
//! the flow classifier, the upstream flow encoder, and the downstream flow
//! encoder. Collection uses recirculating tailored packets; the measured
//! budget breakdown at the default configuration (§D.2) is
//!
//! | step                              | time     |
//! |-----------------------------------|----------|
//! | post-flip sync sleep              | 1.00 ms  |
//! | collect flow classifier (64 KiB)  | 2.68 ms  |
//! | collect upstream encoder (240 KiB)| 0.44 ms  |
//! | wait for in-flight packets        | 6.88 ms  |
//! | collect downstream encoder        | 0.33 ms  |
//!
//! totalling 11.33 ms. We scale the per-sketch collection times linearly
//! with sketch size from those calibration points, which preserves the
//! figure-20/21 shapes (see DESIGN.md substitutions). On-switch sketch
//! buckets are five 32-bit lanes = 20 bytes (Figure 13).

/// Bytes of one FermatSketch bucket on the switch: five 32-bit counters
/// (4 ID/fingerprint lanes + 1 count lane), §D.1.
pub const TOFINO_BUCKET_BYTES: usize = 20;

/// Cost model for per-epoch sketch collection.
#[derive(Debug, Clone)]
pub struct CollectionModel {
    /// Number of edge switches collected from.
    pub n_edges: usize,
    /// Flow classifier bytes per switch.
    pub classifier_bytes: usize,
    /// Upstream flow encoder bytes per switch.
    pub upstream_bytes: usize,
    /// Downstream flow encoder bytes per switch.
    pub downstream_bytes: usize,
}

/// Calibration constants from §D.2 (defaults at 64 KiB classifier / 245 KiB
/// upstream / 184 KiB downstream).
const SYNC_SLEEP_MS: f64 = 1.0;
const TRANSIT_WAIT_MS: f64 = 6.88;
const CLASSIFIER_MS_PER_BYTE: f64 = 2.68 / 65_536.0;
const UPSTREAM_MS_PER_BYTE: f64 = 0.44 / (4096.0 * 3.0 * TOFINO_BUCKET_BYTES as f64);
const DOWNSTREAM_MS_PER_BYTE: f64 = 0.33 / (3072.0 * 3.0 * TOFINO_BUCKET_BYTES as f64);

impl CollectionModel {
    /// The §5.2 default configuration: 4 edges, 64 KiB classifier,
    /// 4096-buckets/array upstream and 3072-buckets/array downstream
    /// 3-array Fermat encoders.
    pub fn paper_default() -> Self {
        CollectionModel {
            n_edges: 4,
            classifier_bytes: 65_536,
            upstream_bytes: 4096 * 3 * TOFINO_BUCKET_BYTES,
            downstream_bytes: 3072 * 3 * TOFINO_BUCKET_BYTES,
        }
    }

    /// Total bytes collected per switch per epoch.
    pub fn bytes_per_switch(&self) -> usize {
        self.classifier_bytes + self.upstream_bytes + self.downstream_bytes
    }

    /// Total bytes collected per epoch across all edges.
    pub fn bytes_per_epoch(&self) -> usize {
        self.bytes_per_switch() * self.n_edges
    }

    /// Controller-side collection time per epoch in ms (§D.2 breakdown),
    /// assuming switches are collected in parallel pipelines but the
    /// controller budget is dominated by the serialized steps.
    pub fn collection_time_ms(&self) -> f64 {
        SYNC_SLEEP_MS
            + self.classifier_bytes as f64 * CLASSIFIER_MS_PER_BYTE
            + self.upstream_bytes as f64 * UPSTREAM_MS_PER_BYTE
            + TRANSIT_WAIT_MS
            + self.downstream_bytes as f64 * DOWNSTREAM_MS_PER_BYTE
    }

    /// Collection bandwidth at the controller NIC for a given epoch length,
    /// in Mbps (Figure 21).
    pub fn bandwidth_mbps(&self, epoch_ms: f64) -> f64 {
        let bits = self.bytes_per_epoch() as f64 * 8.0;
        bits / (epoch_ms / 1000.0) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_budget() {
        let m = CollectionModel::paper_default();
        let t = m.collection_time_ms();
        // §D.2: total 11.33 ms.
        assert!((t - 11.33).abs() < 0.05, "collection time {t}");
    }

    #[test]
    fn default_bandwidth_matches_figure_21() {
        let m = CollectionModel::paper_default();
        let bw = m.bandwidth_mbps(50.0);
        // §5/F: ~317-320 Mbps at 50 ms epochs on a 40 Gb NIC (0.8%).
        assert!((300.0..340.0).contains(&bw), "bandwidth {bw}");
        let pct_of_40g = bw / 40_000.0 * 100.0;
        assert!((pct_of_40g - 0.8).abs() < 0.1, "{pct_of_40g}% of 40G");
    }

    #[test]
    fn bandwidth_inverse_in_epoch_length() {
        let m = CollectionModel::paper_default();
        let b50 = m.bandwidth_mbps(50.0);
        let b100 = m.bandwidth_mbps(100.0);
        assert!((b50 / b100 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_sketches_cost_more() {
        let small = CollectionModel::paper_default();
        let big = CollectionModel { upstream_bytes: small.upstream_bytes * 4, ..small.clone() };
        assert!(big.collection_time_ms() > small.collection_time_ms());
        assert!(big.bytes_per_epoch() > small.bytes_per_epoch());
    }
}
