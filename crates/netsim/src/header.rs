//! In-band carriage of measurement state in the packet header (§3.2.3, §B).
//!
//! A packet's flow hierarchy (2 bits) and the 1-bit ingress epoch timestamp
//! must travel from the ingress edge to the egress edge. The paper uses
//! three unused bits of the IPv4 ToS field ("for IPv4 protocol, we can use
//! the unused bits in the type of service (ToS) field"; the prototype
//! "carried by recording them in three bits of the ToS field", §D.1), with
//! an INT-like shim as the fallback when no header bits are free.
//!
//! This module implements both encodings over a simulated header so the
//! data-plane contract is explicit and testable.

/// The measurement state carried by each packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarriedState {
    /// 2-bit flow hierarchy tag (see `chamelemon::dataplane::Hierarchy`).
    pub hierarchy: u8,
    /// 1-bit ingress epoch timestamp (Appendix B: the packet is inserted
    /// into the downstream group matching the timestamp it obtained when it
    /// *entered* the network).
    pub ts_bit: u8,
}

/// Bit layout inside the ToS byte: bits 0-1 hierarchy, bit 2 timestamp.
/// (Bits 3-7 are left untouched for DSCP/ECN compatibility in the higher
/// nibble — the testbed repurposes ECN separately to mark proactive drops.)
const HIER_MASK: u8 = 0b0000_0011;
const TS_BIT: u8 = 0b0000_0100;

/// Encodes the carried state into a ToS byte, preserving unrelated bits.
pub fn encode_tos(tos: u8, st: CarriedState) -> u8 {
    assert!(st.hierarchy <= 3, "hierarchy is 2 bits");
    assert!(st.ts_bit <= 1, "timestamp is 1 bit");
    (tos & !(HIER_MASK | TS_BIT)) | (st.hierarchy & HIER_MASK) | (st.ts_bit << 2)
}

/// Decodes the carried state from a ToS byte.
pub fn decode_tos(tos: u8) -> CarriedState {
    CarriedState {
        hierarchy: tos & HIER_MASK,
        ts_bit: (tos & TS_BIT) >> 2,
    }
}

/// The INT-like fallback (§3.2.3: "we can transmit the flow hierarchy in an
/// INT-like manner"): a 1-byte shim prepended to the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntShim(pub u8);

impl IntShim {
    /// Magic high nibble distinguishing the shim from payload bytes.
    pub const MAGIC: u8 = 0xC0;

    /// Builds a shim carrying `st`.
    pub fn encode(st: CarriedState) -> Self {
        IntShim(Self::MAGIC | (st.ts_bit << 2) | (st.hierarchy & HIER_MASK))
    }

    /// Parses a shim; `None` if the magic doesn't match (not a ChameleMon
    /// packet).
    pub fn decode(byte: u8) -> Option<CarriedState> {
        if byte & 0xF0 != Self::MAGIC {
            return None;
        }
        Some(CarriedState {
            hierarchy: byte & HIER_MASK,
            ts_bit: (byte >> 2) & 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tos_roundtrip_all_states() {
        for h in 0..4u8 {
            for ts in 0..2u8 {
                let st = CarriedState { hierarchy: h, ts_bit: ts };
                let tos = encode_tos(0, st);
                assert_eq!(decode_tos(tos), st);
            }
        }
    }

    #[test]
    fn tos_preserves_unrelated_bits() {
        let st = CarriedState { hierarchy: 2, ts_bit: 1 };
        // DSCP-ish bits set in the high nibble must survive.
        let tos = encode_tos(0b1011_1000, st);
        assert_eq!(tos & 0b1111_1000, 0b1011_1000);
        assert_eq!(decode_tos(tos), st);
    }

    #[test]
    fn tos_overwrites_stale_state() {
        let old = encode_tos(0, CarriedState { hierarchy: 3, ts_bit: 1 });
        let new = encode_tos(old, CarriedState { hierarchy: 0, ts_bit: 0 });
        assert_eq!(decode_tos(new), CarriedState { hierarchy: 0, ts_bit: 0 });
    }

    #[test]
    fn int_shim_roundtrip() {
        for h in 0..4u8 {
            for ts in 0..2u8 {
                let st = CarriedState { hierarchy: h, ts_bit: ts };
                assert_eq!(IntShim::decode(IntShim::encode(st).0), Some(st));
            }
        }
    }

    #[test]
    fn int_shim_rejects_non_magic() {
        assert_eq!(IntShim::decode(0x00), None);
        assert_eq!(IntShim::decode(0x7F), None);
        assert_eq!(IntShim::decode(0xB3), None);
    }

    #[test]
    #[should_panic(expected = "2 bits")]
    fn oversized_hierarchy_rejected() {
        encode_tos(0, CarriedState { hierarchy: 4, ts_bit: 0 });
    }
}
