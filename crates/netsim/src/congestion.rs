//! Per-link congestion: the fabric-true loss generator.
//!
//! The paper's testbed removes congestion entirely (64-byte packets,
//! proactive ECN drops), so earlier revisions realized loss as i.i.d.
//! per-flow coins above the hook boundary — blind to the fat-tree. This
//! module closes that gap: every flow's ECMP route contributes its packets
//! to the **offered load** of each directed link it crosses, link
//! utilization maps to a drop probability, and packets die *at a specific
//! switch* (the upstream endpoint of the saturated link, where the egress
//! queue lives). The result feeds [`FabricFates`](crate::impair::FabricFates)
//! so both replay paths consume one realization, and per-switch drop
//! attribution lands in [`EpochReport`](crate::sim::EpochReport) as the
//! ground truth that victim-localization accuracy is scored against.
//!
//! Capacity is *self-calibrating*: a link's capacity is `headroom ×` the
//! mean offered load of its link class (edge→host, edge→agg, agg→core, …),
//! optionally scaled down by [`Derate`]s. Under uniform traffic every link
//! then sits at `1/headroom` utilization — below the drop knee — and only
//! structural hot spots (incast fan-in, a browned-out core, a degraded ToR)
//! push links past it. This keeps scenarios scale-invariant: the same
//! congestion model produces the same *relative* behaviour for CI-smoke and
//! full-size workloads.

use crate::sim::Routable;
use crate::topology::{SwitchId, SwitchRole, Topology};
use chm_workloads::Trace;
use std::collections::{BTreeMap, HashMap};

/// The far end of a directed link: another switch, or a destination host
/// (the final hop out of the egress ToR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hop {
    /// A switch-to-switch link.
    Switch(SwitchId),
    /// The last link, switch to server.
    Host(usize),
}

/// A directed link: the upstream switch (whose egress queue drops) and the
/// next hop. Route position `i` of a flow maps to the link out of
/// `route[i]`, so a drop on link `i` is attributed to switch `route[i]`.
pub type LinkId = (SwitchId, Hop);

/// A capacity derate creating a structural hot spot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Derate {
    /// Every out-link of this switch has its capacity scaled by `factor`.
    Switch {
        /// Layer of the derated switch.
        role: SwitchRole,
        /// Index within the layer.
        index: usize,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
    /// A degradation that rolls across the ToRs: during epochs
    /// `[k·period, (k+1)·period)` the edge switch `k mod n_edge` has its
    /// out-links derated by `factor`.
    RollingEdge {
        /// Epochs each ToR stays degraded.
        period: u64,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
    },
}

/// Utilization-driven per-link loss. Capacity self-calibrates per link
/// class (see module docs); drop probability is
/// `clamp(slope · (util − knee), 0, max_drop)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionModel {
    /// Capacity of a link relative to its class's mean offered load.
    pub headroom: f64,
    /// Utilization at which drops begin.
    pub knee: f64,
    /// Drop probability per unit of utilization above the knee.
    pub slope: f64,
    /// Ceiling on any link's drop probability.
    pub max_drop: f64,
    /// Structural hot spots.
    pub derates: Vec<Derate>,
}

impl CongestionModel {
    /// A calibrated default: 2× headroom over the class mean (heavy-tailed
    /// flow sizes make per-link load variance large even under uniform host
    /// selection — the headroom must absorb it), drops begin past 100%
    /// utilization, 30% drop probability per unit of overload, capped at
    /// 50%.
    pub fn calibrated() -> Self {
        CongestionModel {
            headroom: 2.0,
            knee: 1.0,
            slope: 0.3,
            max_drop: 0.5,
            derates: Vec::new(),
        }
    }

    /// Capacity multiplier of `switch`'s out-links in `epoch` (product of
    /// every matching derate).
    pub fn derate_factor(&self, switch: SwitchId, epoch: u64, n_edge: usize) -> f64 {
        derate_factor(&self.derates, switch, epoch, n_edge)
    }

    /// Realizes the model for one epoch over one trace: offered load per
    /// directed link from every flow's ECMP route, class-mean capacities,
    /// and the resulting per-link drop probabilities. Pure function of
    /// `(self, topology, trace, epoch)` — both replay paths call this with
    /// identical inputs and get identical probabilities.
    pub fn realize<F: Routable>(
        &self,
        topology: &Topology,
        trace: &Trace<F>,
        epoch: u64,
    ) -> CongestionRealization {
        // Offered load per link, in packets (integer accumulation: the sum
        // is order-independent, so a HashMap is safe here).
        let mut loads: HashMap<LinkId, u64> = HashMap::new();
        let mut route = Vec::with_capacity(topology.max_hops());
        for &(f, pkts) in &trace.flows {
            let (src, dst) = (f.src_host(), f.dst_host());
            topology.route_into(src, dst, f.key64(), &mut route);
            for w in route.windows(2) {
                *loads.entry((w[0], Hop::Switch(w[1]))).or_insert(0) += pkts;
            }
            *loads
                .entry((route[route.len() - 1], Hop::Host(dst)))
                .or_insert(0) += pkts;
        }
        // Class means over the loaded links, accumulated in sorted link
        // order (deterministic floating-point emission downstream).
        let loads: BTreeMap<LinkId, u64> = loads.into_iter().collect();
        let mut class_sum: BTreeMap<(SwitchRole, Option<SwitchRole>), (u64, u64)> =
            BTreeMap::new();
        for (&(from, to), &load) in &loads {
            let class = (from.role, link_class_to(to));
            let e = class_sum.entry(class).or_insert((0, 0));
            e.0 += load;
            e.1 += 1;
        }
        let mut probs = BTreeMap::new();
        for (&(from, to), &load) in &loads {
            let (sum, count) = class_sum[&(from.role, link_class_to(to))];
            let mean = sum as f64 / count as f64;
            let capacity =
                self.headroom * mean * self.derate_factor(from, epoch, topology.n_edges());
            if capacity <= 0.0 {
                probs.insert((from, to), self.max_drop);
                continue;
            }
            let util = load as f64 / capacity;
            let p = (self.slope * (util - self.knee)).clamp(0.0, self.max_drop);
            if p > 0.0 {
                probs.insert((from, to), p);
            }
        }
        CongestionRealization { probs }
    }
}

/// Capacity/service multiplier of `switch`'s out-links in `epoch`: the
/// product of every matching [`Derate`]. Shared by the static
/// [`CongestionModel`] and the time-resolved
/// [`QueueModel`](crate::queue::QueueModel), so a hot-spot knob means the
/// same thing under both.
pub fn derate_factor(derates: &[Derate], switch: SwitchId, epoch: u64, n_edge: usize) -> f64 {
    let mut f = 1.0;
    for d in derates {
        match *d {
            Derate::Switch { role, index, factor } => {
                if switch.role == role && switch.index == index {
                    f *= factor;
                }
            }
            Derate::RollingEdge { period, factor } => {
                let active = ((epoch / period.max(1)) as usize) % n_edge.max(1);
                if switch.role == SwitchRole::Edge && switch.index == active {
                    f *= factor;
                }
            }
        }
    }
    f
}

/// The link class of a directed link's far end (host links form their own
/// class). Class membership decides which mean offered load calibrates a
/// link's capacity.
pub(crate) fn link_class_to(to: Hop) -> Option<SwitchRole> {
    match to {
        Hop::Switch(s) => Some(s.role),
        Hop::Host(_) => None,
    }
}

/// One epoch's realized per-link drop probabilities. Links at or below the
/// knee are absent (probability zero).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CongestionRealization {
    probs: BTreeMap<LinkId, f64>,
}

impl CongestionRealization {
    /// Fills `out` with the drop probability of each hop of `route` (the
    /// link *out of* `route[i]`; the last hop is the link to `dst_host`).
    /// `out` is cleared first; its final length equals `route.len()`.
    pub fn hop_probs(&self, route: &[SwitchId], dst_host: usize, out: &mut Vec<f64>) {
        out.clear();
        for w in route.windows(2) {
            out.push(self.probs.get(&(w[0], Hop::Switch(w[1]))).copied().unwrap_or(0.0));
        }
        if let Some(&last) = route.last() {
            out.push(self.probs.get(&(last, Hop::Host(dst_host))).copied().unwrap_or(0.0));
        }
    }

    /// True when no link in the fabric drops (the whole realization is a
    /// no-op and replay can take the congestion-free path).
    pub fn is_lossless(&self) -> bool {
        self.probs.is_empty()
    }

    /// The saturated links, most-loaded first by probability (ties in link
    /// order) — diagnostic output for examples and reports.
    pub fn hot_links(&self) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self.probs.iter().map(|(&l, &p)| (l, p)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTree;
    use chm_common::FlowId;
    use chm_workloads::{testbed_trace, WorkloadKind};

    fn realize(model: &CongestionModel, epoch: u64) -> CongestionRealization {
        let topo: Topology = FatTree::testbed().into();
        let trace = testbed_trace(WorkloadKind::Dctcp, 800, 8, 42);
        model.realize(&topo, &trace, epoch)
    }

    #[test]
    fn uniform_traffic_under_headroom_is_lossless() {
        let r = realize(&CongestionModel::calibrated(), 0);
        assert!(r.is_lossless(), "no hot spot: no link may drop, got {:?}", r.hot_links());
    }

    #[test]
    fn switch_derate_saturates_only_that_switch() {
        let mut m = CongestionModel::calibrated();
        m.derates.push(Derate::Switch {
            role: SwitchRole::Core,
            index: 0,
            factor: 0.4,
        });
        let r = realize(&m, 0);
        assert!(!r.is_lossless(), "a 0.4x core must saturate");
        for ((from, _), _) in r.hot_links() {
            assert_eq!(from, SwitchId { role: SwitchRole::Core, index: 0 });
        }
    }

    #[test]
    fn rolling_edge_moves_with_epochs() {
        let mut m = CongestionModel::calibrated();
        m.derates.push(Derate::RollingEdge { period: 2, factor: 0.3 });
        for epoch in 0..8u64 {
            let r = realize(&m, epoch);
            let expect = ((epoch / 2) as usize) % 4;
            assert!(!r.is_lossless(), "epoch {epoch}: degraded ToR must drop");
            for ((from, _), _) in r.hot_links() {
                assert_eq!(
                    from,
                    SwitchId { role: SwitchRole::Edge, index: expect },
                    "epoch {epoch}: drops must follow the rolling ToR"
                );
            }
        }
    }

    #[test]
    fn realization_is_deterministic() {
        let mut m = CongestionModel::calibrated();
        m.derates.push(Derate::Switch {
            role: SwitchRole::Edge,
            index: 1,
            factor: 0.3,
        });
        assert_eq!(realize(&m, 3), realize(&m, 3));
    }

    #[test]
    fn hop_probs_align_with_route() {
        let mut m = CongestionModel::calibrated();
        m.derates.push(Derate::Switch {
            role: SwitchRole::Core,
            index: 1,
            factor: 0.2,
        });
        let topo: Topology = FatTree::testbed().into();
        let trace = testbed_trace(WorkloadKind::Dctcp, 800, 8, 42);
        let r = m.realize(&topo, &trace, 0);
        let mut probs = Vec::new();
        // Find a cross-pod flow routed through core 1 and check alignment.
        for &(f, _) in &trace.flows {
            let route = topo.route(f.src_host(), f.dst_host(), f.key64());
            r.hop_probs(&route, f.dst_host(), &mut probs);
            assert_eq!(probs.len(), route.len());
            for (i, &p) in probs.iter().enumerate() {
                if p > 0.0 {
                    assert_eq!(
                        route[i],
                        SwitchId { role: SwitchRole::Core, index: 1 },
                        "only the derated core's out-links may drop"
                    );
                }
            }
        }
    }
}
