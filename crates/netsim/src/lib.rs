//! Network substrate: the software stand-in for the paper's testbed (§5.2)
//! — a Fat-tree of 10 Tofino switches and 8 servers.
//!
//! The paper's experiments deliberately remove congestion (64-byte packets)
//! and inject losses *proactively* (ECN-marked packets are dropped), so the
//! fabric's only observable behaviours are (a) which edge switches a packet
//! traverses and (b) whether it is dropped in between. This crate models
//! exactly that:
//!
//! * [`topology`] — the topology zoo: the [`Fabric`] contract (routes, hop
//!   counts, link enumeration, role-tagged switch ids) behind the
//!   [`Topology`] enum, with the §5.2 testbed fat-tree, parameterized k-ary
//!   fat-trees, leaf-spine, and imported WAN graphs;
//! * [`clock`] — per-switch clock offsets with NTP-grade precision and the
//!   1-bit epoch timestamp logic of Appendix B;
//! * [`collect`] — the collection cost model of Appendix D.2/F (per-sketch
//!   collection times, per-epoch bandwidth);
//! * [`sim`] — the packet loop: replays a trace through ingress hooks,
//!   drop decisions, and egress hooks, epoch by epoch, attributing every
//!   drop to the switch that caused it;
//! * [`congestion`] — the per-link congestion model: offered load from
//!   every flow's ECMP route, utilization-driven drop probabilities,
//!   structural derates (incast ToRs, browned-out cores, rolling
//!   degradations);
//! * [`queue`] — the time-resolved layer under [`congestion`]: each epoch
//!   splits into discrete slots, per-flow arrival profiles shape the
//!   per-(link, slot) offered load, and a fluid queue per link turns it
//!   into time-correlated drop probabilities plus per-switch queue-depth
//!   telemetry (microbursts, incast ramps, slow drains);
//! * [`impair`] — adversarial fabric impairments (per-link congestion
//!   loss, time-resolved queue loss, Gilbert–Elliott bursty loss,
//!   duplication, bounded reordering, per-edge clock skew), realized per
//!   flow above the hook boundary so the per-packet and burst replays stay
//!   byte-identical under any scenario.

#![forbid(unsafe_code)]

pub mod clock;
pub mod congestion;
pub mod header;
pub mod impair;
pub mod collect;
pub mod queue;
pub mod shard;
pub mod sim;
pub mod topology;

pub use clock::{ClockModel, EpochClock};
pub use congestion::{CongestionModel, CongestionRealization, Derate, Hop, LinkId};
pub use header::{decode_tos, encode_tos, CarriedState, IntShim};
pub use impair::{
    ClockSkew, Duplication, FabricFates, GilbertElliott, ImpairmentSet, LinkLoss,
    Reordering,
};
pub use collect::CollectionModel;
pub use queue::{QueueDepthStat, QueueLinkStats, QueueModel, QueueRealization, RedDrop};
pub use shard::{
    merge_fragments, EdgeSite, ReportFragment, ShardTiming, ShardedReplay, Sharding,
    SiteArray,
};
pub use sim::{BurstHooks, EdgeHooks, EpochReport, SimConfig, Simulator};
pub use topology::{
    Fabric, FatTree, KaryFatTree, LeafSpine, SwitchId, SwitchRole, Topology, WanGraph,
};
