//! Epoch timekeeping and clock synchronization (Appendix B / D.2).
//!
//! Each edge switch keeps a **1-bit flipping timestamp** that divides its
//! local timeline into fixed-length epochs; the central controller keeps its
//! own and synchronizes switch clocks over NTP every 10 s, achieving
//! 0.3–0.5 ms precision on the testbed. The controller may only collect a
//! sketch group once it is sure no packet of that epoch can still be
//! inserted — it waits `sync_error + max_transit` after its own flip, and
//! must finish `sync_error` before the next flip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-switch clock offsets relative to the controller.
#[derive(Debug, Clone)]
pub struct ClockModel {
    /// Offset of each switch's clock from the controller's, in milliseconds
    /// (positive = switch clock runs ahead).
    pub offsets_ms: Vec<f64>,
    /// Synchronization precision bound in milliseconds (NTP on the testbed:
    /// 0.3–0.5 ms, §D.2).
    pub sync_error_ms: f64,
}

impl ClockModel {
    /// Draws per-switch offsets uniformly within ±`sync_error_ms`.
    pub fn ntp(n_switches: usize, sync_error_ms: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        ClockModel {
            offsets_ms: (0..n_switches)
                .map(|_| rng.gen_range(-sync_error_ms..=sync_error_ms))
                .collect(),
            sync_error_ms,
        }
    }

    /// Perfectly synchronized clocks (for tests).
    pub fn perfect(n_switches: usize) -> Self {
        ClockModel { offsets_ms: vec![0.0; n_switches], sync_error_ms: 0.0 }
    }

    /// The switch's local time for a given controller time.
    pub fn local_time_ms(&self, switch: usize, controller_time_ms: f64) -> f64 {
        controller_time_ms + self.offsets_ms[switch]
    }
}

/// The 1-bit epoch timestamp machinery of a clock (switch or controller).
#[derive(Debug, Clone)]
pub struct EpochClock {
    /// Epoch length in milliseconds (testbed default: 50 ms).
    pub epoch_ms: f64,
}

impl EpochClock {
    /// Creates a clock with the given epoch length.
    pub fn new(epoch_ms: f64) -> Self {
        assert!(epoch_ms > 0.0);
        EpochClock { epoch_ms }
    }

    /// Epoch index at local time `t_ms`.
    pub fn epoch_index(&self, t_ms: f64) -> u64 {
        (t_ms / self.epoch_ms).floor().max(0.0) as u64
    }

    /// The 1-bit flipping timestamp at local time `t_ms` (even epochs = 0,
    /// odd epochs = 1 — which group of sketches is being written).
    pub fn timestamp_bit(&self, t_ms: f64) -> u8 {
        (self.epoch_index(t_ms) & 1) as u8
    }

    /// Time remaining until the next flip.
    pub fn time_to_flip_ms(&self, t_ms: f64) -> f64 {
        let next = (self.epoch_index(t_ms) + 1) as f64 * self.epoch_ms;
        next - t_ms
    }

    /// Whether the controller can safely collect the previous epoch's
    /// sketches at controller time `t_ms`, given the worst-case clock error
    /// and the maximum packet transit time (Appendix B): collection must
    /// start after `sync_error + transit` into the epoch and end
    /// `sync_error + collection_duration` before the flip.
    pub fn collection_window_ok(
        &self,
        t_ms: f64,
        sync_error_ms: f64,
        max_transit_ms: f64,
        collection_duration_ms: f64,
    ) -> bool {
        let into_epoch = t_ms - self.epoch_index(t_ms) as f64 * self.epoch_ms;
        let earliest = sync_error_ms + max_transit_ms;
        let latest = self.epoch_ms - sync_error_ms - collection_duration_ms;
        into_epoch >= earliest && into_epoch <= latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_alternates_per_epoch() {
        let c = EpochClock::new(50.0);
        assert_eq!(c.timestamp_bit(0.0), 0);
        assert_eq!(c.timestamp_bit(49.9), 0);
        assert_eq!(c.timestamp_bit(50.0), 1);
        assert_eq!(c.timestamp_bit(99.9), 1);
        assert_eq!(c.timestamp_bit(100.0), 0);
    }

    #[test]
    fn epoch_index_counts() {
        let c = EpochClock::new(50.0);
        assert_eq!(c.epoch_index(0.0), 0);
        assert_eq!(c.epoch_index(125.0), 2);
    }

    #[test]
    fn time_to_flip() {
        let c = EpochClock::new(50.0);
        assert!((c.time_to_flip_ms(10.0) - 40.0).abs() < 1e-9);
        assert!((c.time_to_flip_ms(50.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn collection_window_respects_guards() {
        let c = EpochClock::new(50.0);
        // §D.2: 1ms sync sleep + 6.88ms transit wait; collection ~3.45ms.
        let sync = 0.5;
        let transit = 10.0;
        let dur = 3.45;
        assert!(!c.collection_window_ok(5.0, sync, transit, dur)); // too early
        assert!(c.collection_window_ok(15.0, sync, transit, dur));
        assert!(c.collection_window_ok(40.0, sync, transit, dur));
        assert!(!c.collection_window_ok(48.0, sync, transit, dur)); // too late
    }

    #[test]
    fn ntp_offsets_bounded() {
        let m = ClockModel::ntp(10, 0.5, 7);
        assert_eq!(m.offsets_ms.len(), 10);
        for &o in &m.offsets_ms {
            assert!(o.abs() <= 0.5);
        }
        assert_eq!(m.local_time_ms(0, 100.0), 100.0 + m.offsets_ms[0]);
    }

    #[test]
    fn perfect_clock_has_no_offsets() {
        let m = ClockModel::perfect(4);
        assert!(m.offsets_ms.iter().all(|&o| o == 0.0));
    }
}
