//! The packet loop: replays a trace through the fabric, epoch by epoch,
//! invoking measurement hooks at the ingress and egress edge switches and
//! applying the loss plan in between — the software equivalent of the §5.2
//! testbed run (DPDK senders, proactive ECN drops, ChameleMon on all four
//! ToR switches), generalized to any [`Topology`] in the zoo.

use crate::impair::{hash_hop, FabricFates, ImpairmentSet, LinkLoss};
use crate::queue::QueueDepthStat;
use crate::topology::{SwitchId, Topology};
use chm_common::{FiveTuple, FlowId};
use chm_workloads::trace::ip_host;
use chm_workloads::{LossPlan, Trace};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Measurement hooks an edge-switch data plane exposes to the simulator.
///
/// `ts_bit` is the 1-bit epoch timestamp the packet reads at its ingress
/// edge and carries through the network (Appendix B); `tag` is the 2-bit
/// flow-hierarchy tag the ingress pipeline writes into the ToS field so the
/// egress pipeline knows which encoder to use (§3.2.3).
pub trait EdgeHooks<F> {
    /// Called when a packet enters the network. Returns the hierarchy tag
    /// the packet carries to its egress edge.
    fn on_ingress(&mut self, edge: usize, f: &F, ts_bit: u8) -> u8;

    /// Called when a packet exits the network (unless it was dropped).
    fn on_egress(&mut self, edge: usize, f: &F, ts_bit: u8, tag: u8);
}

/// Burst-capable measurement hooks: a data plane that can ingest a run of
/// consecutive same-flow packets in one call, producing the same state as
/// the per-packet path (ChameleMon's engine classifies a burst in closed
/// form — [`run_epoch_burst`](Simulator::run_epoch_burst) exploits it).
pub trait BurstHooks<F>: EdgeHooks<F> {
    /// Ingests a burst of `pkts` packets of `f`; returns the carried tags
    /// as `(tag, count)` runs **in packet order** (zero-count runs allowed).
    fn on_ingress_burst(&mut self, edge: usize, f: &F, ts_bit: u8, pkts: u64)
        -> [(u8, u64); 3];

    /// Egress for `delivered` packets of one tag run.
    fn on_egress_burst(&mut self, edge: usize, f: &F, ts_bit: u8, tag: u8, delivered: u64);
}

/// Flows the simulator can route: they name their endpoints.
pub trait Routable: FlowId {
    /// Source host index.
    fn src_host(&self) -> usize;
    /// Destination host index.
    fn dst_host(&self) -> usize;
}

impl Routable for FiveTuple {
    fn src_host(&self) -> usize {
        ip_host(self.src_ip) as usize
    }
    fn dst_host(&self) -> usize {
        ip_host(self.dst_ip) as usize
    }
}

/// Static simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Epoch length in milliseconds (testbed default: 50 ms).
    pub epoch_ms: f64,
    /// Master seed (loss realization varies per epoch on top of this).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { epoch_ms: 50.0, seed: 0xc4a3 }
    }
}

/// Ground truth of one simulated epoch, **fabric-attributed**: besides the
/// per-flow delivered/lost counts, every dropped packet is pinned to the
/// switch that dropped it (the per-switch visibility a per-link deployment
/// like LossRadar would have) — the ground truth victim-localization
/// accuracy is scored against. The per-switch maps are `BTreeMap`s so their
/// iteration order is stable wherever they feed JSON goldens.
///
/// `PartialEq` compares the full report — the sharded-vs-unsharded
/// differential suites assert whole-report equality.
#[derive(Debug, Clone)]
pub struct EpochReport<F> {
    /// Packets that traversed the full path, per flow.
    pub delivered: HashMap<F, u64>,
    /// Packets dropped in the fabric, per victim flow.
    pub lost: HashMap<F, u64>,
    /// Packets dropped, attributed to the switch that dropped them
    /// (fabric-wide totals).
    pub dropped_at: BTreeMap<SwitchId, u64>,
    /// Per-victim drop attribution: which switches dropped this flow's
    /// packets, and how many each. Values sum to `lost[f]`.
    pub lost_at: HashMap<F, BTreeMap<SwitchId, u64>>,
    /// Distribution of route lengths (switches on path → packets).
    pub hops_histogram: BTreeMap<usize, u64>,
    /// Per-switch queue-depth telemetry from the time-resolved queue model
    /// (empty when the epoch ran without one) — what the switches would
    /// export via INT/queue-occupancy counters. Computed identically by
    /// both scenario replay paths from the shared realization; the clean
    /// paths have no queues and leave it empty.
    pub queue_depth: BTreeMap<SwitchId, QueueDepthStat>,
    /// Epoch index this report covers.
    pub epoch: u64,
}

// Hand-written because the derive would bound `F: PartialEq`, while the
// `HashMap` comparisons actually need `F: Eq + Hash` (content equality,
// independent of iteration order).
impl<F: Eq + Hash> PartialEq for EpochReport<F> {
    fn eq(&self, other: &Self) -> bool {
        self.delivered == other.delivered
            && self.lost == other.lost
            && self.dropped_at == other.dropped_at
            && self.lost_at == other.lost_at
            && self.hops_histogram == other.hops_histogram
            && self.queue_depth == other.queue_depth
            && self.epoch == other.epoch
    }
}

impl<F: Copy + Eq + Hash> EpochReport<F> {
    /// Flows that entered the network this epoch.
    pub fn total_flows(&self) -> usize {
        self.delivered.len()
    }

    /// Victim flows this epoch.
    pub fn victim_flows(&self) -> usize {
        self.lost.len()
    }

    /// Total packets sent into the network.
    pub fn total_sent(&self) -> u64 {
        self.delivered.values().sum::<u64>() + self.lost.values().sum::<u64>()
    }

    /// Total packets with an attributed drop switch (equals the sum of
    /// `lost` — every drop happens *somewhere*).
    pub fn total_attributed(&self) -> u64 {
        self.dropped_at.values().sum()
    }

    /// The switch that dropped most of `f`'s packets (ties break toward
    /// the smaller [`SwitchId`]) — the localization target for this victim.
    pub fn dominant_drop_switch(&self, f: &F) -> Option<SwitchId> {
        let at = self.lost_at.get(f)?;
        at.iter()
            .fold(None, |best: Option<(SwitchId, u64)>, (&s, &c)| match best {
                Some((_, bc)) if bc >= c => best,
                _ => Some((s, c)),
            })
            .map(|(s, _)| s)
    }
}

/// True when packet `i` of a `pkts`-packet flow is one of the `n_lost`
/// drops, with drops spread evenly over the flow's packet sequence
/// (`⌊(i+1)·L/P⌋ > ⌊i·L/P⌋` marks exactly `L` of `P` packets).
///
/// Degenerate inputs are clamped rather than left to the formula:
/// `n_lost > pkts` behaves as `n_lost == pkts` (every packet drops — a loss
/// count can never exceed the flow), and `pkts == 0` never drops (there is
/// no packet to drop). So exactly `min(n_lost, pkts)` of the indices
/// `0..pkts` return true.
#[inline]
pub fn spread_drop(i: u64, pkts: u64, n_lost: u64) -> bool {
    if pkts == 0 {
        return false;
    }
    let l = n_lost.min(pkts);
    (i + 1) * l / pkts > i * l / pkts
}

/// Prefix form of [`spread_drop`]: how many of the first `x` packets drop.
/// `spread_drop(i, ..)` is true iff this function increases from `i` to
/// `i + 1`, so both replay paths share one spreading rule.
#[inline]
pub fn spread_drop_prefix(x: u64, pkts: u64, n_lost: u64) -> u64 {
    if pkts == 0 {
        return 0;
    }
    x * n_lost.min(pkts) / pkts
}

/// The `k`-th (0-based) dropped packet index under [`spread_drop`]'s
/// spreading rule: the smallest `i` with
/// `spread_drop_prefix(i + 1, pkts, n_lost) == k + 1`. Valid for
/// `k < min(n_lost, pkts)`; lets the burst path enumerate drop positions in
/// `O(n_lost)` instead of scanning every packet.
#[inline]
pub fn spread_drop_nth(k: u64, pkts: u64, n_lost: u64) -> u64 {
    let l = n_lost.min(pkts).max(1);
    ((k + 1) * pkts).div_ceil(l) - 1
}

/// Folds one victim's drop points into the epoch accumulators, for losses
/// realized by the spread rule (the clean replay paths): each of the
/// `min(n_lost, pkts)` drops picks its switch by [`hash_hop`] over the
/// flow's route — both clean paths call this with identical inputs, so
/// their attribution is byte-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attribute_spread<F: Copy + Eq + Hash>(
    f: &F,
    flow_key: u64,
    pkts: u64,
    n_lost: u64,
    epoch_seed: u64,
    route: &[SwitchId],
    dropped_at: &mut BTreeMap<SwitchId, u64>,
    lost_at: &mut HashMap<F, BTreeMap<SwitchId, u64>>,
) {
    if n_lost == 0 || pkts == 0 {
        return;
    }
    let mut at: BTreeMap<SwitchId, u64> = BTreeMap::new();
    for k in 0..n_lost.min(pkts) {
        let i = spread_drop_nth(k, pkts, n_lost);
        let h = hash_hop(epoch_seed, flow_key, i, route.len());
        *at.entry(route[h as usize]).or_insert(0) += 1;
    }
    for (&s, &c) in &at {
        *dropped_at.entry(s).or_insert(0) += c;
    }
    lost_at.insert(*f, at);
}

/// Folds one flow's realized [`FabricFates`] drop points into the epoch
/// accumulators (the scenario replay paths). No-op for lossless flows.
pub(crate) fn attribute_fates<F: Copy + Eq + Hash>(
    f: &F,
    route: &[SwitchId],
    fates: &FabricFates,
    dropped_at: &mut BTreeMap<SwitchId, u64>,
    lost_at: &mut HashMap<F, BTreeMap<SwitchId, u64>>,
) {
    let mut at: BTreeMap<SwitchId, u64> = BTreeMap::new();
    for (i, &d) in fates.delivered_mask.iter().enumerate() {
        if !d {
            *at.entry(route[fates.drop_hop[i] as usize]).or_insert(0) += 1;
        }
    }
    if at.is_empty() {
        return;
    }
    for (&s, &c) in &at {
        *dropped_at.entry(s).or_insert(0) += c;
    }
    lost_at.insert(*f, at);
}

/// The fabric simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// The fabric wiring.
    pub topology: Topology,
    /// Simulation parameters.
    pub config: SimConfig,
    epoch: u64,
}

impl Simulator {
    /// Creates a simulator over `topology` (any [`Topology`], or a bare
    /// fabric like [`FatTree`](crate::topology::FatTree) via `Into`).
    pub fn new(topology: impl Into<Topology>, config: SimConfig) -> Self {
        Simulator { topology: topology.into(), config, epoch: 0 }
    }

    /// The epoch index about to run.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The 1-bit timestamp of the epoch about to run.
    pub fn current_ts_bit(&self) -> u8 {
        (self.epoch & 1) as u8
    }

    /// Fast-forwards (or rewinds) the simulator to `epoch`. Every replay
    /// path derives its randomness from `(seed, epoch)` alone, so a
    /// simulator positioned here behaves bit-identically to one that
    /// actually ran the preceding epochs — this is what lets a restored
    /// streaming runtime (`chm-serve` snapshots) resume mid-stream.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Replays one epoch: every flow in `trace` sends its full packet count;
    /// packets of victim flows are dropped per `plan` (realized fresh each
    /// epoch — every victim loses at least one packet). Ingress hooks fire
    /// for *all* packets, egress hooks only for delivered ones, matching
    /// where the upstream/downstream encoders sit (§3.2).
    pub fn run_epoch<F: Routable>(
        &mut self,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        hooks: &mut impl EdgeHooks<F>,
    ) -> EpochReport<F> {
        let ts_bit = self.current_ts_bit();
        let epoch_seed = self.epoch_seed();
        let (delivered, lost) = plan.apply_to_trace(trace, epoch_seed);
        let mut dropped_at = BTreeMap::new();
        let mut lost_at = HashMap::new();
        let mut hops_histogram = BTreeMap::new();
        let mut route = Vec::with_capacity(self.topology.max_hops());
        for &(f, pkts) in &trace.flows {
            let (src, dst) = (f.src_host(), f.dst_host());
            let in_edge = self.topology.edge_of_host(src);
            let out_edge = self.topology.edge_of_host(dst);
            // Hop counts are definitionally the route length; the route
            // lands in a reusable buffer, so this stays allocation-free.
            self.topology.route_into(src, dst, f.key64(), &mut route);
            *hops_histogram.entry(route.len()).or_insert(0) += pkts;
            let n_lost = lost.get(&f).copied().unwrap_or(0);
            if n_lost == 0 {
                // Lossless fast path — the overwhelmingly common case (most
                // flows are not victims): skip the per-packet drop test.
                for _ in 0..pkts {
                    let tag = hooks.on_ingress(in_edge, &f, ts_bit);
                    hooks.on_egress(out_edge, &f, ts_bit, tag);
                }
                continue;
            }
            attribute_spread(
                &f,
                f.key64(),
                pkts,
                n_lost,
                epoch_seed,
                &route,
                &mut dropped_at,
                &mut lost_at,
            );
            for i in 0..pkts {
                let tag = hooks.on_ingress(in_edge, &f, ts_bit);
                // Drops must be spread across the flow's lifetime (the
                // testbed marks ECN on a rate basis): the classifier's
                // per-packet hierarchy decision depends on the flow's size
                // *so far*, so dropping only early packets would push every
                // loss into the LL phase and starve the HL encoders.
                if spread_drop(i, pkts, n_lost) {
                    continue;
                }
                hooks.on_egress(out_edge, &f, ts_bit, tag);
            }
        }
        let report = EpochReport {
            delivered,
            lost,
            dropped_at,
            lost_at,
            hops_histogram,
            queue_depth: BTreeMap::new(),
            epoch: self.epoch,
        };
        self.epoch += 1;
        report
    }

    /// The batched replay: one [`BurstHooks`] call per flow instead of one
    /// [`EdgeHooks`] call per packet, with drops distributed across the
    /// burst's tag runs by the same spread formula — the resulting sketch
    /// state and report are identical to [`run_epoch`](Self::run_epoch)
    /// (property-tested), at a fraction of the replay cost.
    pub fn run_epoch_burst<F: Routable>(
        &mut self,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        hooks: &mut impl BurstHooks<F>,
    ) -> EpochReport<F> {
        let ts_bit = self.current_ts_bit();
        let epoch_seed = self.epoch_seed();
        let (delivered, lost) = plan.apply_to_trace(trace, epoch_seed);
        let mut dropped_at = BTreeMap::new();
        let mut lost_at = HashMap::new();
        let mut hops_histogram = BTreeMap::new();
        let mut route = Vec::with_capacity(self.topology.max_hops());
        for &(f, pkts) in &trace.flows {
            let (src, dst) = (f.src_host(), f.dst_host());
            let in_edge = self.topology.edge_of_host(src);
            let out_edge = self.topology.edge_of_host(dst);
            // Hop counts are definitionally the route length (reused
            // buffer, allocation-free).
            self.topology.route_into(src, dst, f.key64(), &mut route);
            *hops_histogram.entry(route.len()).or_insert(0) += pkts;
            let n_lost = lost.get(&f).copied().unwrap_or(0);
            if n_lost > 0 {
                attribute_spread(
                    &f,
                    f.key64(),
                    pkts,
                    n_lost,
                    epoch_seed,
                    &route,
                    &mut dropped_at,
                    &mut lost_at,
                );
            }
            let runs = hooks.on_ingress_burst(in_edge, &f, ts_bit, pkts);
            // Packets dropped before position x (exclusive): ⌊x·L/P⌋ — the
            // prefix form of `spread_drop`.
            let mut pos = 0u64;
            for (tag, len) in runs {
                if len == 0 {
                    continue;
                }
                let dropped = spread_drop_prefix(pos + len, pkts, n_lost)
                    - spread_drop_prefix(pos, pkts, n_lost);
                hooks.on_egress_burst(out_edge, &f, ts_bit, tag, len - dropped);
                pos += len;
            }
            debug_assert_eq!(pos, pkts, "tag runs must cover the whole burst");
        }
        let report = EpochReport {
            delivered,
            lost,
            dropped_at,
            lost_at,
            hops_histogram,
            queue_depth: BTreeMap::new(),
            epoch: self.epoch,
        };
        self.epoch += 1;
        report
    }

    /// Scenario replay, per-packet path: like [`run_epoch`](Self::run_epoch)
    /// but with an [`ImpairmentSet`] perturbing the fabric — per-link
    /// congestion drops, extra correlated losses, duplicates re-traversing
    /// egress, reordered drop positions, and clock-skewed timestamp bits.
    /// The epoch report's `delivered`/`lost` reflect the *realized* fates
    /// (plan losses ∪ congestion losses ∪ impairment losses; duplicates are
    /// fabric noise and never counted as deliveries), and every drop is
    /// attributed to the switch the shared [`FabricFates`] realization pins
    /// it to.
    ///
    /// With [`ImpairmentSet::none`] this is observationally identical to
    /// [`run_epoch`](Self::run_epoch), drop attribution included.
    pub fn run_epoch_scenario<F: Routable>(
        &mut self,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        imp: &ImpairmentSet,
        hooks: &mut impl EdgeHooks<F>,
    ) -> EpochReport<F> {
        let ts_bit = self.current_ts_bit();
        let prev_bit = ts_bit ^ 1;
        let epoch_seed = self.epoch_seed();
        let (_, base_lost) = plan.apply_to_trace(trace, epoch_seed);
        // The queue model supersedes the static congestion model: both are
        // link-level loss generators, and exactly one realization feeds the
        // fates so the two layers can never double-drop.
        let queue = imp
            .queue
            .as_ref()
            .map(|q| q.realize(&self.topology, trace, self.epoch, imp.seed));
        let cong = match &queue {
            Some(_) => None,
            None => imp
                .congestion
                .as_ref()
                .map(|m| m.realize(&self.topology, trace, self.epoch)),
        };
        let queue_depth = queue.as_ref().map(|q| q.depths().clone()).unwrap_or_default();
        let mut delivered = HashMap::with_capacity(trace.num_flows());
        let mut lost = HashMap::new();
        let mut dropped_at = BTreeMap::new();
        let mut lost_at = HashMap::new();
        let mut hops_histogram = BTreeMap::new();
        let mut fates = FabricFates::default();
        let mut route = Vec::with_capacity(self.topology.max_hops());
        let mut hop_probs = Vec::with_capacity(self.topology.max_hops());
        let mut slot_counts = Vec::new();
        for &(f, pkts) in &trace.flows {
            let (src, dst) = (f.src_host(), f.dst_host());
            let in_edge = self.topology.edge_of_host(src);
            let out_edge = self.topology.edge_of_host(dst);
            // The route lands in a reusable buffer (allocation-free); its
            // length is the hop count by definition, and the link-level
            // loss layers read their per-hop probabilities off it.
            hop_probs.clear();
            self.topology.route_into(src, dst, f.key64(), &mut route);
            let route_len = match (&queue, &cong) {
                (Some(q), _) => {
                    q.hop_slot_probs(&route, dst, &mut hop_probs);
                    q.flow_slot_counts(f.key64(), pkts, &mut slot_counts);
                    route.len()
                }
                (None, Some(c)) => {
                    c.hop_probs(&route, dst, &mut hop_probs);
                    route.len()
                }
                (None, None) => route.len(),
            };
            *hops_histogram.entry(route_len).or_insert(0) += pkts;
            let n_lost = base_lost.get(&f).copied().unwrap_or(0);
            let link_loss = match &queue {
                Some(q) => LinkLoss::Slotted {
                    probs: &hop_probs,
                    slot_counts: &slot_counts,
                    n_slots: q.n_slots(),
                },
                None if cong.is_some() => LinkLoss::Static(&hop_probs),
                None => LinkLoss::None,
            };
            imp.realize_flow(
                &mut fates,
                f.key64(),
                pkts,
                n_lost,
                epoch_seed,
                in_edge,
                route_len,
                link_loss,
            );
            for i in 0..pkts {
                let ts = if i < fates.skew_split { prev_bit } else { ts_bit };
                let tag = hooks.on_ingress(in_edge, &f, ts);
                if fates.delivered_mask[i as usize] {
                    hooks.on_egress(out_edge, &f, ts, tag);
                    if fates.dup[i as usize] {
                        hooks.on_egress(out_edge, &f, ts, tag);
                    }
                }
            }
            let del = fates.n_delivered();
            delivered.insert(f, del);
            if del < pkts {
                lost.insert(f, pkts - del);
                attribute_fates(&f, &route, &fates, &mut dropped_at, &mut lost_at);
            }
        }
        let report = EpochReport {
            delivered,
            lost,
            dropped_at,
            lost_at,
            hops_histogram,
            queue_depth,
            epoch: self.epoch,
        };
        self.epoch += 1;
        report
    }

    /// Scenario replay, burst path: the batched twin of
    /// [`run_epoch_scenario`](Self::run_epoch_scenario). Both paths consult
    /// the same per-flow [`FabricFates`] realization, so the resulting sketch
    /// state and epoch report are byte-identical — impairments live above
    /// the hook boundary, not inside one path. A clock-skewed flow splits
    /// into two ingress bursts (the mis-stamped prefix carries the previous
    /// epoch's bit); each tag run's egress weight is the run's delivered
    /// count plus its fabric duplicates.
    pub fn run_epoch_burst_scenario<F: Routable>(
        &mut self,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        imp: &ImpairmentSet,
        hooks: &mut impl BurstHooks<F>,
    ) -> EpochReport<F> {
        let ts_bit = self.current_ts_bit();
        let prev_bit = ts_bit ^ 1;
        let epoch_seed = self.epoch_seed();
        let (_, base_lost) = plan.apply_to_trace(trace, epoch_seed);
        // Identical link-loss layering to the per-packet scenario path:
        // queue supersedes static congestion, one realization feeds both.
        let queue = imp
            .queue
            .as_ref()
            .map(|q| q.realize(&self.topology, trace, self.epoch, imp.seed));
        let cong = match &queue {
            Some(_) => None,
            None => imp
                .congestion
                .as_ref()
                .map(|m| m.realize(&self.topology, trace, self.epoch)),
        };
        let queue_depth = queue.as_ref().map(|q| q.depths().clone()).unwrap_or_default();
        let mut delivered = HashMap::with_capacity(trace.num_flows());
        let mut lost = HashMap::new();
        let mut dropped_at = BTreeMap::new();
        let mut lost_at = HashMap::new();
        let mut hops_histogram = BTreeMap::new();
        let mut fates = FabricFates::default();
        let mut route = Vec::with_capacity(self.topology.max_hops());
        let mut hop_probs = Vec::with_capacity(self.topology.max_hops());
        let mut slot_counts = Vec::new();
        for &(f, pkts) in &trace.flows {
            let (src, dst) = (f.src_host(), f.dst_host());
            let in_edge = self.topology.edge_of_host(src);
            let out_edge = self.topology.edge_of_host(dst);
            // Reused route buffer — identical policy to the per-packet
            // scenario path, so attribution stays byte-equal.
            hop_probs.clear();
            self.topology.route_into(src, dst, f.key64(), &mut route);
            let route_len = match (&queue, &cong) {
                (Some(q), _) => {
                    q.hop_slot_probs(&route, dst, &mut hop_probs);
                    q.flow_slot_counts(f.key64(), pkts, &mut slot_counts);
                    route.len()
                }
                (None, Some(c)) => {
                    c.hop_probs(&route, dst, &mut hop_probs);
                    route.len()
                }
                (None, None) => route.len(),
            };
            *hops_histogram.entry(route_len).or_insert(0) += pkts;
            let n_lost = base_lost.get(&f).copied().unwrap_or(0);
            let link_loss = match &queue {
                Some(q) => LinkLoss::Slotted {
                    probs: &hop_probs,
                    slot_counts: &slot_counts,
                    n_slots: q.n_slots(),
                },
                None if cong.is_some() => LinkLoss::Static(&hop_probs),
                None => LinkLoss::None,
            };
            imp.realize_flow(
                &mut fates,
                f.key64(),
                pkts,
                n_lost,
                epoch_seed,
                in_edge,
                route_len,
                link_loss,
            );
            let k = fates.skew_split;
            let mut pos = 0u64;
            for (seg_ts, seg_len) in [(prev_bit, k), (ts_bit, pkts - k)] {
                if seg_len == 0 {
                    continue;
                }
                let runs = hooks.on_ingress_burst(in_edge, &f, seg_ts, seg_len);
                for (tag, len) in runs {
                    if len == 0 {
                        continue;
                    }
                    let out = fates.delivered_in(pos, len) + fates.dups_in(pos, len);
                    hooks.on_egress_burst(out_edge, &f, seg_ts, tag, out);
                    pos += len;
                }
            }
            debug_assert_eq!(pos, pkts, "tag runs must cover the whole burst");
            let del = fates.n_delivered();
            delivered.insert(f, del);
            if del < pkts {
                lost.insert(f, pkts - del);
                attribute_fates(&f, &route, &fates, &mut dropped_at, &mut lost_at);
            }
        }
        let report = EpochReport {
            delivered,
            lost,
            dropped_at,
            lost_at,
            hops_histogram,
            queue_depth,
            epoch: self.epoch,
        };
        self.epoch += 1;
        report
    }

    /// The per-epoch seed every replay path derives loss realizations from
    /// (the sharded engine in [`crate::shard`] must use the identical
    /// derivation, hence the crate visibility).
    pub(crate) fn epoch_seed(&self) -> u64 {
        self.config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FatTree;
    use chm_workloads::{testbed_trace, VictimSelection, WorkloadKind};

    /// Hooks that just count calls per edge.
    #[derive(Default)]
    struct Counter {
        ingress: HashMap<usize, u64>,
        egress: HashMap<usize, u64>,
        ts_bits: Vec<u8>,
    }

    impl EdgeHooks<FiveTuple> for Counter {
        fn on_ingress(&mut self, edge: usize, _f: &FiveTuple, ts: u8) -> u8 {
            *self.ingress.entry(edge).or_insert(0) += 1;
            self.ts_bits.push(ts);
            2 // arbitrary tag
        }
        fn on_egress(&mut self, edge: usize, _f: &FiveTuple, _ts: u8, tag: u8) {
            assert_eq!(tag, 2, "tag must round-trip");
            *self.egress.entry(edge).or_insert(0) += 1;
        }
    }

    #[test]
    fn lossless_epoch_balances_ingress_egress() {
        let trace = testbed_trace(WorkloadKind::Dctcp, 500, 8, 1);
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        let report = sim.run_epoch(&trace, &LossPlan::none(), &mut hooks);
        let total: u64 = trace.flows.iter().map(|&(_, s)| s).sum();
        assert_eq!(hooks.ingress.values().sum::<u64>(), total);
        assert_eq!(hooks.egress.values().sum::<u64>(), total);
        assert_eq!(report.total_sent(), total);
        assert!(report.lost.is_empty());
    }

    #[test]
    fn losses_skip_egress_only() {
        let trace = testbed_trace(WorkloadKind::Dctcp, 500, 8, 2);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, 3);
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        let report = sim.run_epoch(&trace, &plan, &mut hooks);
        let total: u64 = trace.flows.iter().map(|&(_, s)| s).sum();
        let lost: u64 = report.lost.values().sum();
        assert!(lost > 0);
        assert_eq!(hooks.ingress.values().sum::<u64>(), total);
        assert_eq!(hooks.egress.values().sum::<u64>(), total - lost);
        assert_eq!(report.victim_flows(), plan.num_victims());
    }

    #[test]
    fn ts_bit_flips_between_epochs() {
        let trace = testbed_trace(WorkloadKind::Cache, 50, 8, 3);
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        assert_eq!(sim.current_ts_bit(), 0);
        sim.run_epoch(&trace, &LossPlan::none(), &mut hooks);
        assert!(hooks.ts_bits.iter().all(|&b| b == 0));
        assert_eq!(sim.current_ts_bit(), 1);
        hooks.ts_bits.clear();
        sim.run_epoch(&trace, &LossPlan::none(), &mut hooks);
        assert!(hooks.ts_bits.iter().all(|&b| b == 1));
    }

    #[test]
    fn loss_realization_varies_per_epoch() {
        let trace = testbed_trace(WorkloadKind::Vl2, 300, 8, 4);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.2), 0.1, 5);
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        let r1 = sim.run_epoch(&trace, &plan, &mut hooks);
        let r2 = sim.run_epoch(&trace, &plan, &mut hooks);
        // Victim sets identical (plan is fixed) but realized loss counts
        // should differ somewhere.
        assert_eq!(r1.victim_flows(), r2.victim_flows());
        assert_ne!(
            r1.lost.values().collect::<Vec<_>>(),
            r2.lost.values().collect::<Vec<_>>(),
        );
    }

    #[test]
    fn spread_drop_zero_losses_drops_nothing() {
        for pkts in [1u64, 2, 7, 1000] {
            assert!((0..pkts).all(|i| !spread_drop(i, pkts, 0)));
            assert_eq!(spread_drop_prefix(pkts, pkts, 0), 0);
        }
    }

    #[test]
    fn spread_drop_total_loss_drops_everything() {
        for pkts in [1u64, 2, 7, 1000] {
            assert!((0..pkts).all(|i| spread_drop(i, pkts, pkts)));
            assert_eq!(spread_drop_prefix(pkts, pkts, pkts), pkts);
        }
    }

    #[test]
    fn spread_drop_excess_losses_clamp_to_flow_size() {
        // n_lost > pkts cannot happen from a LossPlan (apply_to_trace caps),
        // but the function is public: clamp instead of relying on the raw
        // formula's accidental behavior.
        for (pkts, n_lost) in [(5u64, 6u64), (5, 100), (1, u32::MAX as u64)] {
            assert!((0..pkts).all(|i| spread_drop(i, pkts, n_lost)));
            assert_eq!(spread_drop_prefix(pkts, pkts, n_lost), pkts);
        }
    }

    #[test]
    fn spread_drop_zero_packets_never_drops() {
        assert!(!spread_drop(0, 0, 0));
        assert!(!spread_drop(0, 0, 3));
        assert_eq!(spread_drop_prefix(0, 0, 3), 0);
    }

    #[test]
    fn spread_drop_marks_exactly_n_lost_spread_out() {
        for (pkts, n_lost) in [(10u64, 3u64), (17, 5), (100, 1), (9, 9), (8, 12)]
        {
            let marks: Vec<u64> =
                (0..pkts).filter(|&i| spread_drop(i, pkts, n_lost)).collect();
            assert_eq!(marks.len() as u64, n_lost.min(pkts), "{pkts}/{n_lost}");
            // Prefix form agrees with the per-index form at every cut.
            for x in 0..=pkts {
                assert_eq!(
                    spread_drop_prefix(x, pkts, n_lost),
                    marks.iter().filter(|&&i| i < x).count() as u64
                );
            }
            // Spread: no run of drops longer than ceil(L/P)·… — adjacent
            // drops only appear when L > P/2.
            if n_lost <= pkts / 2 && n_lost > 0 {
                assert!(marks.windows(2).all(|w| w[1] > w[0] + 1), "clustered");
            }
        }
    }

    #[test]
    fn scenario_replay_with_no_impairments_matches_plain_replay() {
        let trace = testbed_trace(WorkloadKind::Dctcp, 400, 8, 9);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, 9);
        let mut sim_a = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut sim_b = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut ha = Counter::default();
        let mut hb = Counter::default();
        let ra = sim_a.run_epoch(&trace, &plan, &mut ha);
        let rb = sim_b.run_epoch_scenario(&trace, &plan, &ImpairmentSet::none(), &mut hb);
        assert_eq!(ra.delivered, rb.delivered);
        assert_eq!(ra.lost, rb.lost);
        assert_eq!(ra.dropped_at, rb.dropped_at, "attribution must agree too");
        assert_eq!(ra.lost_at, rb.lost_at);
        assert_eq!(ra.hops_histogram, rb.hops_histogram);
        assert_eq!(ha.ingress, hb.ingress);
        assert_eq!(ha.egress, hb.egress);
    }

    #[test]
    fn attribution_conserves_and_stays_on_route() {
        let trace = testbed_trace(WorkloadKind::Vl2, 600, 8, 21);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.2), 0.1, 22);
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        let r = sim.run_epoch(&trace, &plan, &mut hooks);
        // Every lost packet is attributed exactly once.
        assert_eq!(r.total_attributed(), r.lost.values().sum::<u64>());
        let topo = FatTree::testbed();
        for (f, at) in &r.lost_at {
            assert_eq!(at.values().sum::<u64>(), r.lost[f], "per-victim sum");
            let route = topo.route(f.src_host(), f.dst_host(), f.key64());
            for s in at.keys() {
                assert!(route.contains(s), "attributed off-route: {s:?}");
            }
            assert!(r.dominant_drop_switch(f).is_some());
        }
        // Histogram covers every packet.
        assert_eq!(r.hops_histogram.values().sum::<u64>(), r.total_sent());
    }

    #[test]
    fn spread_drop_nth_enumerates_exactly_the_marked_indices() {
        for (pkts, n_lost) in [(10u64, 3u64), (17, 5), (100, 1), (9, 9), (8, 12)] {
            let marks: Vec<u64> =
                (0..pkts).filter(|&i| spread_drop(i, pkts, n_lost)).collect();
            let nth: Vec<u64> =
                (0..n_lost.min(pkts)).map(|k| spread_drop_nth(k, pkts, n_lost)).collect();
            assert_eq!(marks, nth, "{pkts}/{n_lost}");
        }
    }

    #[test]
    fn duplication_inflates_egress_but_not_report() {
        let trace = testbed_trace(WorkloadKind::Dctcp, 300, 8, 10);
        let imp = ImpairmentSet {
            seed: 4,
            duplication: Some(crate::impair::Duplication { prob: 1.0 }),
            ..ImpairmentSet::none()
        };
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        let report = sim.run_epoch_scenario(&trace, &LossPlan::none(), &imp, &mut hooks);
        let total: u64 = trace.flows.iter().map(|&(_, s)| s).sum();
        assert!(report.lost.is_empty(), "duplication is not loss");
        assert_eq!(report.total_sent(), total);
        assert_eq!(hooks.ingress.values().sum::<u64>(), total);
        // Every delivered packet egressed twice.
        assert_eq!(hooks.egress.values().sum::<u64>(), 2 * total);
    }

    #[test]
    fn gilbert_elliott_losses_show_up_in_ground_truth() {
        let trace = testbed_trace(WorkloadKind::Hadoop, 300, 8, 11);
        let imp = ImpairmentSet {
            seed: 5,
            gilbert_elliott: Some(crate::impair::GilbertElliott::bursty()),
            ..ImpairmentSet::none()
        };
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        let report = sim.run_epoch_scenario(&trace, &LossPlan::none(), &imp, &mut hooks);
        let lost: u64 = report.lost.values().sum();
        assert!(lost > 0, "GE must create victims without any loss plan");
        let total: u64 = trace.flows.iter().map(|&(_, s)| s).sum();
        assert_eq!(hooks.egress.values().sum::<u64>(), total - lost);
    }

    #[test]
    fn clock_skew_stamps_a_prefix_with_previous_bit() {
        let trace = testbed_trace(WorkloadKind::Vl2, 200, 8, 12);
        let imp = ImpairmentSet {
            seed: 6,
            clock_skew: Some(crate::impair::ClockSkew { max_frac: 0.3 }),
            ..ImpairmentSet::none()
        };
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        sim.run_epoch_scenario(&trace, &LossPlan::none(), &imp, &mut hooks);
        // Epoch 0 (bit 0): mis-stamped packets carry bit 1.
        let skewed = hooks.ts_bits.iter().filter(|&&b| b == 1).count();
        assert!(skewed > 0, "0.3 max skew must mis-stamp something");
        assert!(skewed < hooks.ts_bits.len() / 2, "skew must stay a minority");
    }

    #[test]
    fn all_edges_carry_traffic() {
        let trace = testbed_trace(WorkloadKind::Hadoop, 2000, 8, 6);
        let mut sim = Simulator::new(FatTree::testbed(), SimConfig::default());
        let mut hooks = Counter::default();
        sim.run_epoch(&trace, &LossPlan::none(), &mut hooks);
        for e in 0..4 {
            assert!(hooks.ingress.get(&e).copied().unwrap_or(0) > 0, "edge {e} idle");
            assert!(hooks.egress.get(&e).copied().unwrap_or(0) > 0, "edge {e} idle");
        }
    }
}
