//! The sharded epoch pipeline: intra-trial parallel replay.
//!
//! [`Simulator`]'s four replay paths walk a trace single-threaded. This
//! module partitions the same work by **ingress edge** — every flow is
//! pinned to the shard that owns `edge_of_host(src)` — and replays the
//! shards on scoped threads, merging per-shard [`ReportFragment`]s into the
//! identical [`EpochReport`]. The contract is *byte-identity at any shard
//! count*: report, drop attribution, and sketch-group state all match the
//! unsharded replay bit for bit (pinned by `tests/shard_differential.rs`
//! and the scenario-matrix suite in `chm_scenarios`).
//!
//! # Why edge-partitioning is exact
//!
//! * **Ingress state is order-sensitive but edge-local.** A classifier's
//!   per-packet hierarchy decision depends on the flow's size *so far* at
//!   its ingress edge. Partitioning by ingress edge keeps every edge's
//!   ingress stream on exactly one shard, in preserved trace order — the
//!   same call sequence the unsharded loop issues.
//! * **Egress state is commutative.** Egress writes are modular adds into
//!   the downstream encoders plus a packet counter; no egress read feeds a
//!   later ingress decision. Shards therefore record egress work as
//!   run-length-encoded `EgressRun`s in per-destination-shard outboxes
//!   (phase A), and the owning shard applies them in deterministic
//!   (source-shard, record) order after a barrier (phase B).
//! * **Randomness is split-seed.** Loss plans realize in a serial prologue
//!   (one global RNG stream, untouched); per-flow impairment fates are pure
//!   functions of `(seed, epoch_seed, flow_key)` — the same discipline that
//!   makes `chm_bench::parallel` byte-identical at any worker count — so a
//!   shard realizes exactly what the serial loop would.
//!
//! # SoA layout
//!
//! `ShardFlows` keeps the partition as flat parallel arrays (trace slot,
//! global/local ingress edge, destination shard/local edge) indexed by flow
//! slot, and `ShardScratch` reuses route/probability/fate buffers across
//! epochs — shards stream cache-linearly instead of chasing per-flow heap
//! objects.
//!
//! `shards` fixes the partition (and is what byte-identity is proven over);
//! `workers` only scales execution — any worker count replays the same
//! shard set in the same per-shard order, so it never affects output.
//!
//! Timing is injected: [`ShardedReplay::run_epoch_burst_timed`] (and the
//! other `_timed` variants) accept a monotonic-seconds closure from the
//! caller, because only `crates/bench` may read wall clocks. Per-shard
//! phase times make the scaling curve honest on any builder: the critical
//! path `prologue + max(phase A) + max(phase B) + merge` is what an
//! `n`-core machine would pay.

use crate::impair::{ImpairmentSet, LinkLoss};
use crate::queue::QueueDepthStat;
use crate::sim::{
    attribute_fates, attribute_spread, spread_drop, spread_drop_prefix, BurstHooks,
    EdgeHooks, EpochReport, Routable, Simulator,
};
use crate::topology::{SwitchId, Topology};
use crate::{CongestionRealization, FabricFates, QueueRealization};
use chm_common::FlowId;
use chm_obs::SpanProfiler;
use chm_workloads::{LossPlan, Trace};
use std::collections::{BTreeMap, HashMap};

/// One edge switch's measurement pipeline, as the sharded replay drives it.
///
/// This is the per-site twin of [`EdgeHooks`]/[`BurstHooks`]: the same four
/// operations without the `edge` index (the shard already holds the site it
/// owns). `Send` is required so shards can carry their sites across scoped
/// threads. Blanket adapters go the other way: [`SiteArray`] presents a
/// `&mut [E]` of sites as `EdgeHooks`/`BurstHooks` for the serial replay
/// paths, so one implementation serves both engines.
pub trait EdgeSite<F>: Send {
    /// Packet of `f` enters the network here; returns the carried 2-bit tag.
    fn site_ingress(&mut self, f: &F, ts_bit: u8) -> u8;
    /// Packet of `f` exits the network here.
    fn site_egress(&mut self, f: &F, ts_bit: u8, tag: u8);
    /// Burst ingress: `pkts` packets of `f`, tag runs in packet order.
    fn site_ingress_burst(&mut self, f: &F, ts_bit: u8, pkts: u64) -> [(u8, u64); 3];
    /// Burst egress for `delivered` packets of one tag run.
    fn site_egress_burst(&mut self, f: &F, ts_bit: u8, tag: u8, delivered: u64);
}

/// Presents a slice of [`EdgeSite`]s as the [`EdgeHooks`]/[`BurstHooks`]
/// pair the serial [`Simulator`] paths expect — the shared replacement for
/// the per-crate `EdgeArray` adapters that used to live in `chamelemon`,
/// `chm_scenarios`, and `chm_serve`.
pub struct SiteArray<'a, E>(pub &'a mut [E]);

impl<F, E: EdgeSite<F>> EdgeHooks<F> for SiteArray<'_, E> {
    fn on_ingress(&mut self, edge: usize, f: &F, ts_bit: u8) -> u8 {
        self.0[edge].site_ingress(f, ts_bit)
    }
    fn on_egress(&mut self, edge: usize, f: &F, ts_bit: u8, tag: u8) {
        self.0[edge].site_egress(f, ts_bit, tag)
    }
}

impl<F, E: EdgeSite<F>> BurstHooks<F> for SiteArray<'_, E> {
    fn on_ingress_burst(&mut self, edge: usize, f: &F, ts_bit: u8, pkts: u64)
        -> [(u8, u64); 3] {
        self.0[edge].site_ingress_burst(f, ts_bit, pkts)
    }
    fn on_egress_burst(&mut self, edge: usize, f: &F, ts_bit: u8, tag: u8, delivered: u64) {
        self.0[edge].site_egress_burst(f, ts_bit, tag, delivered)
    }
}

/// How a trial is sharded.
///
/// `shards` fixes the flow partition — the unit byte-identity is proven
/// over. `workers` caps the scoped threads actually spawned; any value
/// produces identical output because shards are static work units merged in
/// shard order. Both are clamped to ≥ 1 at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sharding {
    /// Number of flow partitions (by ingress edge, round-robin).
    pub shards: usize,
    /// Scoped threads to run them on (≤ shards threads ever spawn).
    pub workers: usize,
}

impl Sharding {
    /// The serial layout: one shard, one worker.
    pub fn single() -> Self {
        Sharding { shards: 1, workers: 1 }
    }

    /// `n` shards on `n` workers.
    pub fn of(n: usize) -> Self {
        let n = n.max(1);
        Sharding { shards: n, workers: n }
    }

    fn normalized(self) -> Self {
        Sharding { shards: self.shards.max(1), workers: self.workers.max(1) }
    }
}

/// One shard's slice of an [`EpochReport`]: everything a shard accumulates
/// locally in phase A. Per-flow maps are disjoint across shards (every flow
/// lives on exactly one shard); per-switch and histogram maps overlap and
/// merge by addition — both reductions are order-independent, which is what
/// makes [`merge_fragments`] permutation-invariant (property-tested).
#[derive(Debug, Clone)]
pub struct ReportFragment<F> {
    /// Realized per-flow deliveries (scenario paths; clean paths take these
    /// from the loss plan's global application instead).
    pub delivered: HashMap<F, u64>,
    /// Realized per-flow losses (scenario paths).
    pub lost: HashMap<F, u64>,
    /// Per-switch drop totals for this shard's flows.
    pub dropped_at: BTreeMap<SwitchId, u64>,
    /// Per-victim drop attribution for this shard's flows.
    pub lost_at: HashMap<F, BTreeMap<SwitchId, u64>>,
    /// Route-length histogram contribution.
    pub hops_histogram: BTreeMap<usize, u64>,
}

// Manual impls: the derives would bound `F: Default` / `F: PartialEq`,
// but an empty fragment needs no `F` and map equality needs `Eq + Hash`.
impl<F> Default for ReportFragment<F> {
    fn default() -> Self {
        ReportFragment {
            delivered: HashMap::new(),
            lost: HashMap::new(),
            dropped_at: BTreeMap::new(),
            lost_at: HashMap::new(),
            hops_histogram: BTreeMap::new(),
        }
    }
}

impl<F: Eq + std::hash::Hash> PartialEq for ReportFragment<F> {
    fn eq(&self, other: &Self) -> bool {
        self.delivered == other.delivered
            && self.lost == other.lost
            && self.dropped_at == other.dropped_at
            && self.lost_at == other.lost_at
            && self.hops_histogram == other.hops_histogram
    }
}

impl<F: Copy + Eq + std::hash::Hash> ReportFragment<F> {
    fn clear(&mut self) {
        self.delivered.clear();
        self.lost.clear();
        self.dropped_at.clear();
        self.lost_at.clear();
        self.hops_histogram.clear();
    }
}

/// Merges one fragment into the accumulator, draining the source so its
/// map capacity is reused next epoch. Per-flow maps are disjoint unions;
/// per-switch and histogram maps are keyed sums — both order-independent.
// chm-lint: hot
fn merge_one<F: Copy + Eq + std::hash::Hash>(
    acc: &mut ReportFragment<F>,
    frag: &mut ReportFragment<F>,
) {
    acc.delivered.extend(frag.delivered.drain());
    acc.lost.extend(frag.lost.drain());
    acc.lost_at.extend(frag.lost_at.drain());
    for (&s, &c) in frag.dropped_at.iter() {
        *acc.dropped_at.entry(s).or_insert(0) += c;
    }
    frag.dropped_at.clear();
    for (&h, &c) in frag.hops_histogram.iter() {
        *acc.hops_histogram.entry(h).or_insert(0) += c;
    }
    frag.hops_histogram.clear();
}

/// The deterministic, order-independent reduction of per-shard fragments
/// into one [`EpochReport`]. Fragments are drained (capacity kept). The
/// result is invariant under any permutation of `frags` as long as the
/// per-flow key sets are disjoint — which the ingress-edge partition
/// guarantees and the proptest in `tests/shard_differential.rs` pins.
pub fn merge_fragments<F: FlowId>(
    epoch: u64,
    queue_depth: BTreeMap<SwitchId, QueueDepthStat>,
    frags: &mut [ReportFragment<F>],
) -> EpochReport<F> {
    let mut acc = ReportFragment::default();
    for frag in frags.iter_mut() {
        merge_one(&mut acc, frag);
    }
    EpochReport {
        delivered: acc.delivered,
        lost: acc.lost,
        dropped_at: acc.dropped_at,
        lost_at: acc.lost_at,
        hops_histogram: acc.hops_histogram,
        queue_depth,
        epoch,
    }
}

/// Per-shard timing of one sharded epoch, in the caller's injected clock
/// units (seconds when the bench harness injects `Instant`-based time; all
/// zeros under the default null clock).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardTiming {
    /// Serial prologue: plan application, queue/congestion realization, and
    /// the flow partition — work every shard layout pays once.
    pub prologue_s: f64,
    /// Per-shard phase-A (ingress + fragment accounting) times.
    pub phase_a: Vec<f64>,
    /// Per-shard phase-B (egress inbox drain) times.
    pub phase_b: Vec<f64>,
    /// Serial fragment merge.
    pub merge_s: f64,
}

impl ShardTiming {
    /// The epoch's critical-path time on a machine with ≥ `shards` cores:
    /// serial prologue, then the slowest shard of each parallel phase, then
    /// the serial merge. Measured with `workers = 1` this projects the
    /// parallel wall time from genuinely measured per-shard work.
    pub fn critical_path_s(&self) -> f64 {
        self.prologue_s
            + self.phase_a.iter().fold(0.0_f64, |m, &t| m.max(t))
            + self.phase_b.iter().fold(0.0_f64, |m, &t| m.max(t))
            + self.merge_s
    }

    /// Total work: every phase of every shard plus the serial segments.
    pub fn total_work_s(&self) -> f64 {
        self.prologue_s
            + self.phase_a.iter().sum::<f64>()
            + self.phase_b.iter().sum::<f64>()
            + self.merge_s
    }

    /// Reconstructs the timing struct as a view over a recorded span tree
    /// (`prologue`, `phase_a/shard_{i}`, `phase_b/shard_{i}`, `merge`).
    /// Shard vectors are read back in index order, so the result is
    /// value-identical to the struct the engine used to build directly.
    pub fn from_profile(prof: &SpanProfiler) -> Self {
        let total = |path: &[&str]| prof.get(path).map_or(0.0, |(_, t)| t);
        let shard_vec = |phase: &str| {
            let mut out = Vec::new();
            let mut i = 0usize;
            while let Some((_, t)) = prof.get(&[phase, &format!("shard_{i}")]) {
                out.push(t);
                i += 1;
            }
            out
        };
        ShardTiming {
            prologue_s: total(&["prologue"]),
            phase_a: shard_vec("phase_a"),
            phase_b: shard_vec("phase_b"),
            merge_s: total(&["merge"]),
        }
    }
}

/// The flow partition, struct-of-arrays: one entry per flow owned by this
/// shard, in trace order. Global ingress edges ride along because
/// [`ImpairmentSet::realize_flow`] derives per-edge clock skew from the
/// *global* edge index — a local index would silently change realizations.
#[derive(Debug, Default)]
struct ShardFlows {
    /// Index into `trace.flows`.
    idx: Vec<u32>,
    /// Global ingress edge (for impairment realization).
    in_edge: Vec<u32>,
    /// Ingress edge's index into this shard's owned-site list.
    in_local: Vec<u32>,
    /// Destination shard (`out_edge % shards`, precomputed — hot loops may
    /// not reduce).
    out_shard: Vec<u32>,
    /// Egress edge's index into the destination shard's owned-site list.
    out_local: Vec<u32>,
}

impl ShardFlows {
    fn clear(&mut self) {
        self.idx.clear();
        self.in_edge.clear();
        self.in_local.clear();
        self.out_shard.clear();
        self.out_local.clear();
    }
}

/// One egress work record: `pkts` packets of `f` leaving through the
/// destination shard's site `edge_local`, all carrying the same timestamp
/// bit and tag (run-length encoding of consecutive identical egress calls).
#[derive(Debug, Clone, Copy)]
struct EgressRun<F> {
    edge_local: u32,
    ts: u8,
    tag: u8,
    f: F,
    pkts: u64,
}

/// Per-shard reusable working state: the egress outboxes (one per
/// destination shard), the report fragment, and the per-flow scratch
/// buffers the serial replay paths keep as locals.
#[derive(Debug)]
struct ShardScratch<F> {
    outbox: Vec<Vec<EgressRun<F>>>,
    frag: ReportFragment<F>,
    route: Vec<SwitchId>,
    hop_probs: Vec<f64>,
    slot_counts: Vec<u64>,
    fates: FabricFates,
}

impl<F> Default for ShardScratch<F> {
    fn default() -> Self {
        ShardScratch {
            outbox: Vec::new(),
            frag: ReportFragment::default(),
            route: Vec::new(),
            hop_probs: Vec::new(),
            slot_counts: Vec::new(),
            fates: FabricFates::default(),
        }
    }
}

/// Everything a per-flow phase-A body needs, copied out of the SoA arrays.
#[derive(Clone, Copy)]
struct FlowArgs<F> {
    f: F,
    pkts: u64,
    in_edge: usize,
    out_shard: usize,
    out_local: u32,
}

/// Run-length emitter: merges consecutive egress packets with identical
/// `(ts, tag)` into one [`EgressRun`] so per-packet replay ships runs, not
/// packets, across the shard boundary.
struct RunEmitter {
    ts: u8,
    tag: u8,
    count: u64,
}

impl RunEmitter {
    fn start() -> Self {
        RunEmitter { ts: 0, tag: 0, count: 0 }
    }

    // chm-lint: hot
    #[inline]
    fn emit<F: FlowId>(
        &mut self,
        ob: &mut Vec<EgressRun<F>>,
        edge_local: u32,
        f: &F,
        ts: u8,
        tag: u8,
        n: u64,
    ) {
        if self.count > 0 && self.ts == ts && self.tag == tag {
            self.count += n;
            return;
        }
        self.flush(ob, edge_local, f);
        self.ts = ts;
        self.tag = tag;
        self.count = n;
    }

    // chm-lint: hot
    #[inline]
    fn flush<F: FlowId>(&mut self, ob: &mut Vec<EgressRun<F>>, edge_local: u32, f: &F) {
        if self.count > 0 {
            ob.push(EgressRun {
                edge_local,
                ts: self.ts,
                tag: self.tag,
                f: *f,
                pkts: self.count,
            });
            self.count = 0;
        }
    }
}

/// Phase-A body of the clean per-packet path — the sharded twin of the flow
/// loop in [`Simulator::run_epoch`].
// chm-lint: hot
#[allow(clippy::too_many_arguments)]
fn clean_flow_per_packet<F: Routable, E: EdgeSite<F>>(
    a: FlowArgs<F>,
    n_lost: u64,
    ts_bit: u8,
    epoch_seed: u64,
    topo: &Topology,
    site: &mut E,
    sc: &mut ShardScratch<F>,
) {
    let f = &a.f;
    let pkts = a.pkts;
    topo.route_into(f.src_host(), f.dst_host(), f.key64(), &mut sc.route);
    *sc.frag.hops_histogram.entry(sc.route.len()).or_insert(0) += pkts;
    let mut em = RunEmitter::start();
    if n_lost == 0 {
        // Lossless fast path, exactly as the serial loop takes it.
        for _ in 0..pkts {
            let tag = site.site_ingress(f, ts_bit);
            em.emit(&mut sc.outbox[a.out_shard], a.out_local, f, ts_bit, tag, 1);
        }
        em.flush(&mut sc.outbox[a.out_shard], a.out_local, f);
        return;
    }
    attribute_spread(
        f,
        f.key64(),
        pkts,
        n_lost,
        epoch_seed,
        &sc.route,
        &mut sc.frag.dropped_at,
        &mut sc.frag.lost_at,
    );
    for i in 0..pkts {
        let tag = site.site_ingress(f, ts_bit);
        if spread_drop(i, pkts, n_lost) {
            continue;
        }
        em.emit(&mut sc.outbox[a.out_shard], a.out_local, f, ts_bit, tag, 1);
    }
    em.flush(&mut sc.outbox[a.out_shard], a.out_local, f);
}

/// Phase-A body of the clean burst path — the sharded twin of the flow loop
/// in [`Simulator::run_epoch_burst`]. Zero-delivery runs are skipped: a
/// weight-0 egress is a state no-op on every data plane.
// chm-lint: hot
#[allow(clippy::too_many_arguments)]
fn clean_flow_burst<F: Routable, E: EdgeSite<F>>(
    a: FlowArgs<F>,
    n_lost: u64,
    ts_bit: u8,
    epoch_seed: u64,
    topo: &Topology,
    site: &mut E,
    sc: &mut ShardScratch<F>,
) {
    let f = &a.f;
    let pkts = a.pkts;
    topo.route_into(f.src_host(), f.dst_host(), f.key64(), &mut sc.route);
    *sc.frag.hops_histogram.entry(sc.route.len()).or_insert(0) += pkts;
    if n_lost > 0 {
        attribute_spread(
            f,
            f.key64(),
            pkts,
            n_lost,
            epoch_seed,
            &sc.route,
            &mut sc.frag.dropped_at,
            &mut sc.frag.lost_at,
        );
    }
    let runs = site.site_ingress_burst(f, ts_bit, pkts);
    let ob = &mut sc.outbox[a.out_shard];
    let mut pos = 0u64;
    for (tag, len) in runs {
        if len == 0 {
            continue;
        }
        let dropped = spread_drop_prefix(pos + len, pkts, n_lost)
            - spread_drop_prefix(pos, pkts, n_lost);
        let out = len - dropped;
        if out > 0 {
            ob.push(EgressRun { edge_local: a.out_local, ts: ts_bit, tag, f: a.f, pkts: out });
        }
        pos += len;
    }
    debug_assert_eq!(pos, pkts, "tag runs must cover the whole burst");
}

/// Shared scenario prologue per flow: route, link-loss view, and the fate
/// realization — identical inputs to the serial scenario paths, so the
/// realization is bit-equal.
// chm-lint: hot
#[allow(clippy::too_many_arguments)]
fn scenario_realize<F: Routable>(
    a: FlowArgs<F>,
    n_lost: u64,
    epoch_seed: u64,
    topo: &Topology,
    imp: &ImpairmentSet,
    queue: Option<&QueueRealization>,
    cong: Option<&CongestionRealization>,
    sc: &mut ShardScratch<F>,
) -> usize {
    let f = &a.f;
    let pkts = a.pkts;
    sc.hop_probs.clear();
    topo.route_into(f.src_host(), f.dst_host(), f.key64(), &mut sc.route);
    let route_len = match (queue, cong) {
        (Some(q), _) => {
            q.hop_slot_probs(&sc.route, f.dst_host(), &mut sc.hop_probs);
            q.flow_slot_counts(f.key64(), pkts, &mut sc.slot_counts);
            sc.route.len()
        }
        (None, Some(c)) => {
            c.hop_probs(&sc.route, f.dst_host(), &mut sc.hop_probs);
            sc.route.len()
        }
        (None, None) => sc.route.len(),
    };
    *sc.frag.hops_histogram.entry(route_len).or_insert(0) += pkts;
    let link_loss = match queue {
        Some(q) => LinkLoss::Slotted {
            probs: &sc.hop_probs,
            slot_counts: &sc.slot_counts,
            n_slots: q.n_slots(),
        },
        None if cong.is_some() => LinkLoss::Static(&sc.hop_probs),
        None => LinkLoss::None,
    };
    imp.realize_flow(
        &mut sc.fates,
        f.key64(),
        pkts,
        n_lost,
        epoch_seed,
        a.in_edge,
        route_len,
        link_loss,
    );
    route_len
}

/// Fold one realized flow's outcome into the fragment (delivered/lost maps
/// plus attribution) — shared by both scenario phase-A bodies.
// chm-lint: hot
fn scenario_account<F: Routable>(a: FlowArgs<F>, sc: &mut ShardScratch<F>) {
    let del = sc.fates.n_delivered();
    sc.frag.delivered.insert(a.f, del);
    if del < a.pkts {
        sc.frag.lost.insert(a.f, a.pkts - del);
        attribute_fates(
            &a.f,
            &sc.route,
            &sc.fates,
            &mut sc.frag.dropped_at,
            &mut sc.frag.lost_at,
        );
    }
}

/// Phase-A body of the scenario per-packet path — the sharded twin of
/// [`Simulator::run_epoch_scenario`]'s flow loop.
// chm-lint: hot
#[allow(clippy::too_many_arguments)]
fn scenario_flow_per_packet<F: Routable, E: EdgeSite<F>>(
    a: FlowArgs<F>,
    n_lost: u64,
    ts_bit: u8,
    prev_bit: u8,
    epoch_seed: u64,
    topo: &Topology,
    imp: &ImpairmentSet,
    queue: Option<&QueueRealization>,
    cong: Option<&CongestionRealization>,
    site: &mut E,
    sc: &mut ShardScratch<F>,
) {
    scenario_realize(a, n_lost, epoch_seed, topo, imp, queue, cong, sc);
    let f = &a.f;
    let mut em = RunEmitter::start();
    for i in 0..a.pkts {
        let ts = if i < sc.fates.skew_split { prev_bit } else { ts_bit };
        let tag = site.site_ingress(f, ts);
        if sc.fates.delivered_mask[i as usize] {
            em.emit(&mut sc.outbox[a.out_shard], a.out_local, f, ts, tag, 1);
            if sc.fates.dup[i as usize] {
                em.emit(&mut sc.outbox[a.out_shard], a.out_local, f, ts, tag, 1);
            }
        }
    }
    em.flush(&mut sc.outbox[a.out_shard], a.out_local, f);
    scenario_account(a, sc);
}

/// Phase-A body of the scenario burst path — the sharded twin of
/// [`Simulator::run_epoch_burst_scenario`]'s flow loop.
// chm-lint: hot
#[allow(clippy::too_many_arguments)]
fn scenario_flow_burst<F: Routable, E: EdgeSite<F>>(
    a: FlowArgs<F>,
    n_lost: u64,
    ts_bit: u8,
    prev_bit: u8,
    epoch_seed: u64,
    topo: &Topology,
    imp: &ImpairmentSet,
    queue: Option<&QueueRealization>,
    cong: Option<&CongestionRealization>,
    site: &mut E,
    sc: &mut ShardScratch<F>,
) {
    scenario_realize(a, n_lost, epoch_seed, topo, imp, queue, cong, sc);
    let f = &a.f;
    let pkts = a.pkts;
    let k = sc.fates.skew_split;
    let mut pos = 0u64;
    for (seg_ts, seg_len) in [(prev_bit, k), (ts_bit, pkts - k)] {
        if seg_len == 0 {
            continue;
        }
        let runs = site.site_ingress_burst(f, seg_ts, seg_len);
        for (tag, len) in runs {
            if len == 0 {
                continue;
            }
            let out = sc.fates.delivered_in(pos, len) + sc.fates.dups_in(pos, len);
            if out > 0 {
                sc.outbox[a.out_shard].push(EgressRun {
                    edge_local: a.out_local,
                    ts: seg_ts,
                    tag,
                    f: a.f,
                    pkts: out,
                });
            }
            pos += len;
        }
    }
    debug_assert_eq!(pos, pkts, "tag runs must cover the whole burst");
    scenario_account(a, sc);
}

/// Phase-B application of one per-packet-path run: `pkts` individual egress
/// calls, exactly what the serial per-packet loop issues.
// chm-lint: hot
fn apply_run_per_packet<F, E: EdgeSite<F>>(site: &mut E, run: &EgressRun<F>) {
    for _ in 0..run.pkts {
        site.site_egress(&run.f, run.ts, run.tag);
    }
}

/// Phase-B application of one burst-path run: a single weighted egress.
// chm-lint: hot
fn apply_run_burst<F, E: EdgeSite<F>>(site: &mut E, run: &EgressRun<F>) {
    site.site_egress_burst(&run.f, run.ts, run.tag, run.pkts);
}

/// Round-robin split of the edge-site slice: shard `s` owns sites
/// `{e : e % shards == s}` in ascending order, so site `e`'s local index is
/// `e / shards` everywhere.
fn split_edges<E>(edges: &mut [E], shards: usize) -> Vec<Vec<&mut E>> {
    let mut buckets: Vec<Vec<&mut E>> = (0..shards).map(|_| Vec::new()).collect();
    for (e, site) in edges.iter_mut().enumerate() {
        buckets[e % shards].push(site);
    }
    buckets
}

/// Runs `work` over every task, statically chunked across at most `workers`
/// scoped threads. Chunking is contiguous and deterministic; worker count
/// never changes which task gets which index. Panics in any worker
/// propagate at scope join.
fn run_tasks<T, W>(workers: usize, tasks: &mut [T], work: W)
where
    T: Send,
    W: Fn(usize, &mut T) + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let w = workers.max(1).min(n);
    if w == 1 {
        for (i, t) in tasks.iter_mut().enumerate() {
            work(i, t);
        }
        return;
    }
    let per = n.div_ceil(w);
    std::thread::scope(|scope| {
        for (c, chunk) in tasks.chunks_mut(per).enumerate() {
            let work = &work;
            scope.spawn(move || {
                for (j, t) in chunk.iter_mut().enumerate() {
                    work(c * per + j, t);
                }
            });
        }
    });
}

/// Phase-A work unit: one shard's partition, scratch, and owned sites.
/// The scratch borrow gets its own lifetime so it can end at the phase
/// barrier while the site borrows continue into phase B.
struct TaskA<'s, 'e, F, E> {
    part: &'s ShardFlows,
    scratch: &'s mut ShardScratch<F>,
    edges: Vec<&'e mut E>,
    time: f64,
}

/// Phase-B work unit: the owned sites again (scratches are read shared).
struct TaskB<'a, E> {
    edges: Vec<&'a mut E>,
    time: f64,
}

/// The sharded replay engine. Construct once with a [`Sharding`], then
/// drive any number of epochs; partitions, outboxes, fragments, and scratch
/// buffers are reused across epochs (arena-style — no steady-state
/// allocation once capacities stabilize).
#[derive(Debug)]
pub struct ShardedReplay<F> {
    sharding: Sharding,
    parts: Vec<ShardFlows>,
    scratches: Vec<ShardScratch<F>>,
    /// Span tree of the most recent epoch (`prologue`, `phase_a/shard_i`,
    /// `phase_b/shard_i`, `merge`) — the [`ShardTiming`] the timed entry
    /// points return is a [`ShardTiming::from_profile`] view over it.
    last_profile: SpanProfiler,
}

impl<F: Routable> ShardedReplay<F> {
    /// Builds an engine with `sharding` (clamped to ≥ 1 shard/worker).
    pub fn new(sharding: Sharding) -> Self {
        let sharding = sharding.normalized();
        ShardedReplay {
            sharding,
            parts: (0..sharding.shards).map(|_| ShardFlows::default()).collect(),
            scratches: (0..sharding.shards).map(|_| ShardScratch::default()).collect(),
            last_profile: SpanProfiler::new(),
        }
    }

    /// The engine's (normalized) sharding.
    pub fn sharding(&self) -> Sharding {
        self.sharding
    }

    /// Span tree of the most recent epoch, for callers that want to fold
    /// engine timing into a wider profile (`chm-bench profile` absorbs
    /// this under its per-epoch span). Durations are in the injected
    /// clock's units — all zeros under the default null clock.
    pub fn last_profile(&self) -> &SpanProfiler {
        &self.last_profile
    }

    /// Sharded [`Simulator::run_epoch`]: byte-identical report and sketch
    /// state at any shard/worker count.
    pub fn run_epoch<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        edges: &mut [E],
    ) -> EpochReport<F> {
        self.run_epoch_timed(sim, trace, plan, edges, &|| 0.0).0
    }

    /// [`run_epoch`](Self::run_epoch) with per-phase timing from the
    /// injected `clock` (monotonic seconds; only `crates/bench` owns one).
    pub fn run_epoch_timed<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        edges: &mut [E],
        clock: &(dyn Fn() -> f64 + Sync),
    ) -> (EpochReport<F>, ShardTiming) {
        let t0 = clock();
        let epoch = sim.current_epoch();
        let ts_bit = sim.current_ts_bit();
        let epoch_seed = sim.epoch_seed();
        let (delivered, lost) = plan.apply_to_trace(trace, epoch_seed);
        let prologue = clock() - t0;
        let topo = &sim.topology;
        let lost_by_flow = &lost;
        let (mut report, mut timing) = self.drive(
            topo,
            trace,
            edges,
            clock,
            epoch,
            BTreeMap::new(),
            |a: FlowArgs<F>, site: &mut E, sc: &mut ShardScratch<F>| {
                let n_lost = lost_by_flow.get(&a.f).copied().unwrap_or(0);
                clean_flow_per_packet(a, n_lost, ts_bit, epoch_seed, topo, site, sc);
            },
            apply_run_per_packet,
        );
        timing.prologue_s += prologue;
        self.last_profile.record(&["prologue"], prologue);
        install_globals(&mut report, delivered, lost);
        sim.set_epoch(epoch + 1);
        (report, timing)
    }

    /// Sharded [`Simulator::run_epoch_burst`]: byte-identical report and
    /// sketch state at any shard/worker count.
    pub fn run_epoch_burst<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        edges: &mut [E],
    ) -> EpochReport<F> {
        self.run_epoch_burst_timed(sim, trace, plan, edges, &|| 0.0).0
    }

    /// [`run_epoch_burst`](Self::run_epoch_burst) with per-phase timing —
    /// what `chm-bench perf --threads` builds the scaling curve from.
    pub fn run_epoch_burst_timed<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        edges: &mut [E],
        clock: &(dyn Fn() -> f64 + Sync),
    ) -> (EpochReport<F>, ShardTiming) {
        let t0 = clock();
        let epoch = sim.current_epoch();
        let ts_bit = sim.current_ts_bit();
        let epoch_seed = sim.epoch_seed();
        let (delivered, lost) = plan.apply_to_trace(trace, epoch_seed);
        let prologue = clock() - t0;
        let topo = &sim.topology;
        let lost_by_flow = &lost;
        let (mut report, mut timing) = self.drive(
            topo,
            trace,
            edges,
            clock,
            epoch,
            BTreeMap::new(),
            |a: FlowArgs<F>, site: &mut E, sc: &mut ShardScratch<F>| {
                let n_lost = lost_by_flow.get(&a.f).copied().unwrap_or(0);
                clean_flow_burst(a, n_lost, ts_bit, epoch_seed, topo, site, sc);
            },
            apply_run_burst,
        );
        timing.prologue_s += prologue;
        self.last_profile.record(&["prologue"], prologue);
        install_globals(&mut report, delivered, lost);
        sim.set_epoch(epoch + 1);
        (report, timing)
    }

    /// Sharded [`Simulator::run_epoch_scenario`]: byte-identical report and
    /// sketch state at any shard/worker count.
    pub fn run_epoch_scenario<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        imp: &ImpairmentSet,
        edges: &mut [E],
    ) -> EpochReport<F> {
        self.run_epoch_scenario_timed(sim, trace, plan, imp, edges, &|| 0.0).0
    }

    /// [`run_epoch_scenario`](Self::run_epoch_scenario) with timing.
    pub fn run_epoch_scenario_timed<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        imp: &ImpairmentSet,
        edges: &mut [E],
        clock: &(dyn Fn() -> f64 + Sync),
    ) -> (EpochReport<F>, ShardTiming) {
        let t0 = clock();
        let epoch = sim.current_epoch();
        let ts_bit = sim.current_ts_bit();
        let prev_bit = ts_bit ^ 1;
        let epoch_seed = sim.epoch_seed();
        let (_, base_lost) = plan.apply_to_trace(trace, epoch_seed);
        let queue = imp
            .queue
            .as_ref()
            .map(|q| q.realize(&sim.topology, trace, epoch, imp.seed));
        let cong = match &queue {
            Some(_) => None,
            None => imp.congestion.as_ref().map(|m| m.realize(&sim.topology, trace, epoch)),
        };
        let queue_depth = queue.as_ref().map(|q| q.depths().clone()).unwrap_or_default();
        let prologue = clock() - t0;
        let topo = &sim.topology;
        let base = &base_lost;
        let q = queue.as_ref();
        let c = cong.as_ref();
        let (report, mut timing) = self.drive(
            topo,
            trace,
            edges,
            clock,
            epoch,
            queue_depth,
            |a: FlowArgs<F>, site: &mut E, sc: &mut ShardScratch<F>| {
                let n_lost = base.get(&a.f).copied().unwrap_or(0);
                scenario_flow_per_packet(
                    a, n_lost, ts_bit, prev_bit, epoch_seed, topo, imp, q, c, site, sc,
                );
            },
            apply_run_per_packet,
        );
        timing.prologue_s += prologue;
        self.last_profile.record(&["prologue"], prologue);
        sim.set_epoch(epoch + 1);
        (report, timing)
    }

    /// Sharded [`Simulator::run_epoch_burst_scenario`]: byte-identical
    /// report and sketch state at any shard/worker count.
    pub fn run_epoch_burst_scenario<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        imp: &ImpairmentSet,
        edges: &mut [E],
    ) -> EpochReport<F> {
        self.run_epoch_burst_scenario_timed(sim, trace, plan, imp, edges, &|| 0.0).0
    }

    /// [`run_epoch_burst_scenario`](Self::run_epoch_burst_scenario) with
    /// timing.
    pub fn run_epoch_burst_scenario_timed<E: EdgeSite<F>>(
        &mut self,
        sim: &mut Simulator,
        trace: &Trace<F>,
        plan: &LossPlan<F>,
        imp: &ImpairmentSet,
        edges: &mut [E],
        clock: &(dyn Fn() -> f64 + Sync),
    ) -> (EpochReport<F>, ShardTiming) {
        let t0 = clock();
        let epoch = sim.current_epoch();
        let ts_bit = sim.current_ts_bit();
        let prev_bit = ts_bit ^ 1;
        let epoch_seed = sim.epoch_seed();
        let (_, base_lost) = plan.apply_to_trace(trace, epoch_seed);
        let queue = imp
            .queue
            .as_ref()
            .map(|q| q.realize(&sim.topology, trace, epoch, imp.seed));
        let cong = match &queue {
            Some(_) => None,
            None => imp.congestion.as_ref().map(|m| m.realize(&sim.topology, trace, epoch)),
        };
        let queue_depth = queue.as_ref().map(|q| q.depths().clone()).unwrap_or_default();
        let prologue = clock() - t0;
        let topo = &sim.topology;
        let base = &base_lost;
        let q = queue.as_ref();
        let c = cong.as_ref();
        let (report, mut timing) = self.drive(
            topo,
            trace,
            edges,
            clock,
            epoch,
            queue_depth,
            |a: FlowArgs<F>, site: &mut E, sc: &mut ShardScratch<F>| {
                let n_lost = base.get(&a.f).copied().unwrap_or(0);
                scenario_flow_burst(
                    a, n_lost, ts_bit, prev_bit, epoch_seed, topo, imp, q, c, site, sc,
                );
            },
            apply_run_burst,
        );
        timing.prologue_s += prologue;
        self.last_profile.record(&["prologue"], prologue);
        sim.set_epoch(epoch + 1);
        (report, timing)
    }

    /// Rebuilds the SoA partition for this trace (buffers reused).
    fn partition(&mut self, topo: &Topology, trace: &Trace<F>) {
        let shards = self.sharding.shards;
        assert!(
            trace.flows.len() <= u32::MAX as usize,
            "shard partition indexes flows with u32"
        );
        for p in &mut self.parts {
            p.clear();
        }
        for sc in &mut self.scratches {
            if sc.outbox.len() < shards {
                sc.outbox.resize_with(shards, Vec::new);
            }
            for ob in &mut sc.outbox {
                ob.clear();
            }
            sc.frag.clear();
        }
        for (i, &(f, _)) in trace.flows.iter().enumerate() {
            let in_edge = topo.edge_of_host(f.src_host());
            let out_edge = topo.edge_of_host(f.dst_host());
            let p = &mut self.parts[in_edge % shards];
            p.idx.push(i as u32);
            p.in_edge.push(in_edge as u32);
            p.in_local.push((in_edge / shards) as u32);
            p.out_shard.push((out_edge % shards) as u32);
            p.out_local.push((out_edge / shards) as u32);
        }
    }

    /// The shared engine: partition → phase A (parallel ingress + fragment
    /// accounting into outboxes) → barrier → phase B (parallel egress inbox
    /// drain in deterministic source order) → serial fragment merge.
    #[allow(clippy::too_many_arguments)]
    fn drive<E, PA, PB>(
        &mut self,
        topo: &Topology,
        trace: &Trace<F>,
        edges: &mut [E],
        clock: &(dyn Fn() -> f64 + Sync),
        epoch: u64,
        queue_depth: BTreeMap<SwitchId, QueueDepthStat>,
        flow_fn: PA,
        run_fn: PB,
    ) -> (EpochReport<F>, ShardTiming)
    where
        E: EdgeSite<F>,
        PA: Fn(FlowArgs<F>, &mut E, &mut ShardScratch<F>) + Sync,
        PB: Fn(&mut E, &EgressRun<F>) + Sync,
    {
        assert_eq!(
            edges.len(),
            topo.n_edges(),
            "one edge site per topology edge switch"
        );
        let t0 = clock();
        self.partition(topo, trace);
        let partition_s = clock() - t0;
        let shards = self.sharding.shards;
        let workers = self.sharding.workers;

        // Phase A: each shard ingests its own flows (trace order preserved)
        // and records egress work into per-destination outboxes.
        let buckets = split_edges(edges, shards);
        let mut tasks: Vec<TaskA<'_, '_, F, E>> = self
            .parts
            .iter()
            .zip(self.scratches.iter_mut())
            .zip(buckets)
            .map(|((part, scratch), edges)| TaskA { part, scratch, edges, time: 0.0 })
            .collect();
        run_tasks(workers, &mut tasks, |_, t| {
            let start = clock();
            let part = t.part;
            for k in 0..part.idx.len() {
                let (f, pkts) = trace.flows[part.idx[k] as usize];
                let args = FlowArgs {
                    f,
                    pkts,
                    in_edge: part.in_edge[k] as usize,
                    out_shard: part.out_shard[k] as usize,
                    out_local: part.out_local[k],
                };
                flow_fn(args, &mut *t.edges[part.in_local[k] as usize], t.scratch);
            }
            t.time = clock() - start;
        });
        let phase_a: Vec<f64> = tasks.iter().map(|t| t.time).collect();

        // Barrier: phase-A tasks drop their scratch borrows; the sites move
        // into phase-B tasks. Scratches are now read shared (outboxes).
        let mut tasks_b: Vec<TaskB<'_, E>> = tasks
            .into_iter()
            .map(|t| TaskB { edges: t.edges, time: 0.0 })
            .collect();
        let scratches = &self.scratches;
        run_tasks(workers, &mut tasks_b, |shard, t| {
            let start = clock();
            for sc in scratches.iter() {
                for run in &sc.outbox[shard] {
                    run_fn(&mut *t.edges[run.edge_local as usize], run);
                }
            }
            t.time = clock() - start;
        });
        let phase_b: Vec<f64> = tasks_b.iter().map(|t| t.time).collect();
        drop(tasks_b);

        // Serial merge, in shard order (order-independent by construction;
        // the fixed order keeps the walk deterministic).
        let m0 = clock();
        let mut frags: Vec<ReportFragment<F>> = self
            .scratches
            .iter_mut()
            .map(|s| std::mem::take(&mut s.frag))
            .collect();
        let report = merge_fragments(epoch, queue_depth, &mut frags);
        for (s, frag) in self.scratches.iter_mut().zip(frags) {
            s.frag = frag; // drained, capacity retained for the next epoch
        }
        let merge_s = clock() - m0;

        // Record the epoch as a span tree and hand back the classic
        // timing struct as a view over it (value-identical fields).
        let mut prof = SpanProfiler::new();
        prof.record(&["prologue"], partition_s);
        for (i, t) in phase_a.iter().enumerate() {
            prof.record(&["phase_a", &format!("shard_{i}")], *t);
        }
        for (i, t) in phase_b.iter().enumerate() {
            prof.record(&["phase_b", &format!("shard_{i}")], *t);
        }
        prof.record(&["merge"], merge_s);
        let timing = ShardTiming::from_profile(&prof);
        self.last_profile = prof;
        (report, timing)
    }
}

/// Installs the clean paths' globally-applied plan outcome into the merged
/// report (fragments carry no per-flow maps on those paths). Scenario paths
/// pass empty maps and keep the fragment-accumulated ones.
fn install_globals<F: FlowId>(
    report: &mut EpochReport<F>,
    delivered: HashMap<F, u64>,
    lost: HashMap<F, u64>,
) {
    if !delivered.is_empty() {
        debug_assert!(report.delivered.is_empty(), "clean fragments carry no deliveries");
        report.delivered = delivered;
    }
    if !lost.is_empty() {
        debug_assert!(report.lost.is_empty(), "clean fragments carry no losses");
        report.lost = lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FatTree, SwitchRole};
    use chm_common::FiveTuple;
    use chm_workloads::{testbed_trace, VictimSelection, WorkloadKind};

    /// A stateful site double: order-sensitive ingress chain (detects any
    /// ingress reordering), commutative egress accumulator (matches the
    /// real data plane's modular adds), and a 3-level tag threshold so the
    /// burst path produces genuine multi-run bursts.
    #[derive(Default, Clone, PartialEq, Debug)]
    struct Site {
        chain: u64,
        egress_acc: u64,
        ingress_pkts: u64,
        egress_pkts: u64,
        seen: HashMap<(u64, u8), u64>,
    }

    fn tag_for(count: u64) -> u8 {
        match count {
            0..=2 => 0,
            3..=9 => 1,
            _ => 2,
        }
    }

    impl EdgeSite<FiveTuple> for Site {
        fn site_ingress(&mut self, f: &FiveTuple, ts: u8) -> u8 {
            let c = self.seen.entry((f.key64(), ts)).or_insert(0);
            let tag = tag_for(*c);
            *c += 1;
            self.ingress_pkts += 1;
            self.chain = chm_common::hash::mix64(self.chain ^ f.key64() ^ u64::from(ts));
            tag
        }
        fn site_egress(&mut self, f: &FiveTuple, ts: u8, tag: u8) {
            self.egress_pkts += 1;
            self.egress_acc = self.egress_acc.wrapping_add(chm_common::hash::mix64(
                f.key64() ^ (u64::from(ts) << 8) ^ u64::from(tag),
            ));
        }
        fn site_ingress_burst(&mut self, f: &FiveTuple, ts: u8, pkts: u64) -> [(u8, u64); 3] {
            let mut runs = [(0u8, 0u64), (1, 0), (2, 0)];
            for _ in 0..pkts {
                let tag = self.site_ingress(f, ts);
                runs[tag as usize].1 += 1;
            }
            runs
        }
        fn site_egress_burst(&mut self, f: &FiveTuple, ts: u8, tag: u8, delivered: u64) {
            if delivered == 0 {
                return;
            }
            self.egress_pkts += delivered;
            self.egress_acc = self.egress_acc.wrapping_add(
                chm_common::hash::mix64(f.key64() ^ (u64::from(ts) << 8) ^ u64::from(tag))
                    .wrapping_mul(delivered),
            );
        }
    }

    fn sites(n: usize) -> Vec<Site> {
        (0..n).map(|_| Site::default()).collect()
    }

    fn setup() -> (Trace<FiveTuple>, LossPlan<FiveTuple>, Simulator) {
        let trace = testbed_trace(WorkloadKind::Dctcp, 600, 8, 7);
        let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, 9);
        let sim = Simulator::new(FatTree::testbed(), crate::SimConfig::default());
        (trace, plan, sim)
    }

    #[test]
    fn sharded_clean_paths_match_unsharded_at_any_layout() {
        let (trace, plan, sim0) = setup();
        for burst in [false, true] {
            let mut sim_ref = sim0.clone();
            let mut ref_sites = sites(4);
            let r_ref = if burst {
                sim_ref.run_epoch_burst(&trace, &plan, &mut SiteArray(&mut ref_sites))
            } else {
                sim_ref.run_epoch(&trace, &plan, &mut SiteArray(&mut ref_sites))
            };
            for sharding in [
                Sharding::single(),
                Sharding::of(2),
                Sharding { shards: 3, workers: 2 },
                Sharding::of(7),
            ] {
                let mut sim = sim0.clone();
                let mut s = sites(4);
                let mut eng = ShardedReplay::new(sharding);
                let r = if burst {
                    eng.run_epoch_burst(&mut sim, &trace, &plan, &mut s)
                } else {
                    eng.run_epoch(&mut sim, &trace, &plan, &mut s)
                };
                assert_eq!(r, r_ref, "report differs at {sharding:?} burst={burst}");
                assert_eq!(s, ref_sites, "site state differs at {sharding:?} burst={burst}");
                assert_eq!(sim.current_epoch(), sim_ref.current_epoch());
            }
        }
    }

    #[test]
    fn timed_run_populates_span_profile_as_timing_view() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (trace, plan, mut sim) = setup();
        let mut s = sites(4);
        let mut eng = ShardedReplay::new(Sharding { shards: 3, workers: 1 });
        // Deterministic strictly-increasing fake clock (not wall time).
        let ticks = AtomicU64::new(0);
        let clock = move || ticks.fetch_add(1, Ordering::SeqCst) as f64;
        let (_, timing) = eng.run_epoch_timed(&mut sim, &trace, &plan, &mut s, &clock);
        let prof = eng.last_profile();
        assert!(prof.balanced());
        assert_eq!(ShardTiming::from_profile(prof), timing);
        assert_eq!(prof.get(&["phase_a", "shard_2"]).map(|(c, _)| c), Some(1));
        assert!(prof.get(&["phase_a", "shard_3"]).is_none());
        assert!(timing.total_work_s() > 0.0);
    }

    #[test]
    fn sharded_scenario_paths_match_unsharded() {
        let (trace, plan, sim0) = setup();
        let imp = ImpairmentSet {
            seed: 11,
            gilbert_elliott: Some(crate::impair::GilbertElliott::bursty()),
            duplication: Some(crate::impair::Duplication { prob: 0.05 }),
            clock_skew: Some(crate::impair::ClockSkew { max_frac: 0.2 }),
            ..ImpairmentSet::none()
        };
        for burst in [false, true] {
            let mut sim_ref = sim0.clone();
            let mut ref_sites = sites(4);
            let r_ref = if burst {
                sim_ref.run_epoch_burst_scenario(
                    &trace,
                    &plan,
                    &imp,
                    &mut SiteArray(&mut ref_sites),
                )
            } else {
                sim_ref.run_epoch_scenario(&trace, &plan, &imp, &mut SiteArray(&mut ref_sites))
            };
            for n in [1usize, 2, 4] {
                let mut sim = sim0.clone();
                let mut s = sites(4);
                let mut eng = ShardedReplay::new(Sharding::of(n));
                let r = if burst {
                    eng.run_epoch_burst_scenario(&mut sim, &trace, &plan, &imp, &mut s)
                } else {
                    eng.run_epoch_scenario(&mut sim, &trace, &plan, &imp, &mut s)
                };
                assert_eq!(r, r_ref, "scenario report differs at {n} shards burst={burst}");
                assert_eq!(s, ref_sites, "site state differs at {n} shards burst={burst}");
            }
        }
    }

    #[test]
    fn multi_epoch_sharded_stream_stays_identical() {
        let (trace, plan, sim0) = setup();
        let mut sim_ref = sim0.clone();
        let mut sim = sim0.clone();
        let mut ref_sites = sites(4);
        let mut s = sites(4);
        let mut eng = ShardedReplay::new(Sharding::of(3));
        for _ in 0..4 {
            let r_ref = sim_ref.run_epoch_burst(&trace, &plan, &mut SiteArray(&mut ref_sites));
            let r = eng.run_epoch_burst(&mut sim, &trace, &plan, &mut s);
            assert_eq!(r, r_ref);
        }
        assert_eq!(s, ref_sites);
    }

    #[test]
    fn merge_is_permutation_invariant_for_disjoint_fragments() {
        let mk = |salt: u64| {
            let mut frag = ReportFragment::<FiveTuple>::default();
            let f = FiveTuple::unpack(salt as u128);
            frag.delivered.insert(f, 10 + salt);
            frag.lost.insert(f, salt);
            let mut at = BTreeMap::new();
            at.insert(SwitchId { role: SwitchRole::Edge, index: salt as usize }, salt);
            frag.lost_at.insert(f, at);
            let core = SwitchId { role: SwitchRole::Core, index: (salt % 3) as usize };
            *frag.dropped_at.entry(core).or_insert(0) += salt;
            *frag.hops_histogram.entry(3).or_insert(0) += salt;
            frag
        };
        let mut a = [mk(1), mk(2), mk(3), mk(4)];
        let mut b = [mk(3), mk(1), mk(4), mk(2)];
        let qd = BTreeMap::new();
        assert_eq!(
            merge_fragments(5, qd.clone(), &mut a),
            merge_fragments(5, qd, &mut b)
        );
    }

    #[test]
    fn timing_critical_path_sums_the_slowest_shards() {
        let t = ShardTiming {
            prologue_s: 1.0,
            phase_a: vec![2.0, 5.0, 3.0],
            phase_b: vec![0.5, 0.25, 1.0],
            merge_s: 0.5,
        };
        assert_eq!(t.critical_path_s(), 1.0 + 5.0 + 1.0 + 0.5);
        assert_eq!(t.total_work_s(), 1.0 + 10.0 + 1.75 + 0.5);
    }

    #[test]
    fn workers_beyond_shards_and_shards_beyond_edges_are_safe() {
        let (trace, plan, sim0) = setup();
        let mut sim_ref = sim0.clone();
        let mut ref_sites = sites(4);
        let r_ref = sim_ref.run_epoch_burst(&trace, &plan, &mut SiteArray(&mut ref_sites));
        // 9 shards over 4 edges: shards 4..9 own no edges and stay idle.
        let mut sim = sim0.clone();
        let mut s = sites(4);
        let mut eng = ShardedReplay::new(Sharding { shards: 9, workers: 16 });
        let r = eng.run_epoch_burst(&mut sim, &trace, &plan, &mut s);
        assert_eq!(r, r_ref);
        assert_eq!(s, ref_sites);
    }
}
