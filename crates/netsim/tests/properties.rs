//! Property tests of the topology zoo: every ECMP route is valid wiring,
//! hop counts follow pod locality and are definitionally the route length,
//! intra-rack flows never leave their ToR, the spread-drop rule is exact at
//! every cut, and the loss generators conserve on every generated fabric.

use chm_netsim::sim::{spread_drop, spread_drop_prefix};
use chm_netsim::{FatTree, SwitchId, SwitchRole, Topology};
use proptest::prelude::*;

/// Checks one route end to end: endpoint correctness, wiring validity
/// (edge→agg→core→agg→edge with pods respected), and locality-determined
/// hop counts.
fn check_route(t: &FatTree, src: usize, dst: usize, key: u64) -> Result<(), TestCaseError> {
    let r = t.route(src, dst, key);
    let se = t.edge_of_host(src);
    let de = t.edge_of_host(dst);
    let sp = t.pod_of_edge(se);
    let dp = t.pod_of_edge(de);
    prop_assert_eq!(
        r.first().copied(),
        Some(SwitchId { role: SwitchRole::Edge, index: se }),
        "route must start at the source ToR"
    );
    prop_assert_eq!(
        r.last().copied(),
        Some(SwitchId { role: SwitchRole::Edge, index: de }),
        "route must end at the destination ToR"
    );
    // Hop counts match pod locality.
    let expected_len = if se == de {
        1 // intra-rack: never leaves the ToR
    } else if sp == dp {
        3 // intra-pod: edge → agg → edge
    } else {
        5 // cross-pod: edge → agg → core → agg → edge
    };
    prop_assert_eq!(r.len(), expected_len, "hops must follow pod locality");
    prop_assert_eq!(t.hops(src, dst, key), expected_len);
    match r.len() {
        1 => {}
        3 => {
            prop_assert_eq!(r[1].role, SwitchRole::Aggregation);
            prop_assert_eq!(r[1].index / 2, sp, "agg must sit in the shared pod");
        }
        5 => {
            prop_assert_eq!(r[1].role, SwitchRole::Aggregation);
            prop_assert_eq!(r[2].role, SwitchRole::Core);
            prop_assert_eq!(r[3].role, SwitchRole::Aggregation);
            prop_assert_eq!(r[1].index / 2, sp, "up-agg must sit in the source pod");
            prop_assert_eq!(r[3].index / 2, dp, "down-agg must sit in the dest pod");
            prop_assert!(r[2].index < t.n_cores(), "core index in range");
            // Fat-tree wiring: the chosen core pins the agg parity in both
            // pods.
            prop_assert_eq!(r[1].index % 2, r[2].index % 2);
            prop_assert_eq!(r[3].index % 2, r[2].index % 2);
        }
        n => prop_assert!(false, "impossible route length {n}"),
    }
    // ECMP is deterministic per flow key.
    prop_assert_eq!(r, t.route(src, dst, key));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every host pair's route is valid wiring on the testbed fat-tree.
    #[test]
    fn testbed_routes_are_valid(
        src in 0usize..8,
        dst in 0usize..8,
        key in any::<u64>(),
    ) {
        check_route(&FatTree::testbed(), src, dst, key)?;
    }

    /// The wiring invariants hold on scaled fat-trees too (2–8 edge
    /// switches, 1–4 hosts per rack).
    #[test]
    fn scaled_routes_are_valid(
        n_edge_half in 1usize..5,
        hosts_per_edge in 1usize..5,
        pair in any::<u64>(),
        key in any::<u64>(),
    ) {
        let t = FatTree::new(2 * n_edge_half, hosts_per_edge);
        let n = t.n_hosts() as u64;
        let src = (pair % n) as usize;
        let dst = ((pair / n) % n) as usize;
        check_route(&t, src, dst, key)?;
    }

    /// Intra-rack flows never leave the ToR, for any flow key.
    #[test]
    fn intra_rack_never_leaves_tor(rack in 0usize..4, key in any::<u64>()) {
        let t = FatTree::testbed();
        let (a, b) = (2 * rack, 2 * rack + 1);
        for (s, d) in [(a, b), (b, a), (a, a)] {
            let r = t.route(s, d, key);
            prop_assert_eq!(r.len(), 1);
            prop_assert_eq!(r[0], SwitchId { role: SwitchRole::Edge, index: rack });
        }
    }

    /// `spread_drop` marks exactly `min(n_lost, pkts)` indices and its
    /// prefix form counts them at every cut.
    #[test]
    fn spread_drop_exact_at_every_cut(
        pkts in 1u64..5_000,
        n_lost in 0u64..6_000,
    ) {
        let mut marked = 0u64;
        for i in 0..pkts {
            prop_assert_eq!(
                spread_drop_prefix(i, pkts, n_lost),
                marked,
                "prefix disagrees at {i}"
            );
            if spread_drop(i, pkts, n_lost) {
                marked += 1;
            }
        }
        prop_assert_eq!(marked, n_lost.min(pkts));
        prop_assert_eq!(spread_drop_prefix(pkts, pkts, n_lost), marked);
    }
}

// ---------------------------------------------------------------------------
// Time-resolved queue model: exact fluid conservation, and flat-profile
// equivalence with the static congestion model (the queue layer is a strict
// superset — with uniform arrivals and no queue coupling it *is* the static
// model).
// ---------------------------------------------------------------------------

mod queue {
    use super::*;
    use chm_netsim::{CongestionModel, Derate, QueueModel};
    use chm_workloads::{testbed_trace, ArrivalProfile, WorkloadKind};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Fluid conservation is exact on every loaded link, for every
        /// profile and hot-spot shape:
        /// `arrivals = served + dropped + residual`.
        #[test]
        fn queue_conserves_arrivals(
            seed in any::<u64>(),
            epoch in 0u64..6,
            profile_idx in 0usize..4,
            layer in 0usize..3,
            index in 0usize..2,
            factor in 0.1f64..0.7,
            red in any::<bool>(),
        ) {
            let role = [SwitchRole::Edge, SwitchRole::Aggregation, SwitchRole::Core][layer];
            let mut m = QueueModel::calibrated(8);
            m.profile = [
                ArrivalProfile::Flat,
                ArrivalProfile::Microburst { frac: 0.5, width: 2 },
                ArrivalProfile::IncastRamp,
                ArrivalProfile::SlowDrain,
            ][profile_idx];
            m.derates.push(Derate::Switch { role, index, factor });
            if red {
                m.red = Some(chm_netsim::RedDrop {
                    min_depth: 0.2,
                    max_depth: 2.0,
                    max_prob: 0.3,
                });
            }
            let topo: Topology = FatTree::testbed().into();
            let trace = testbed_trace(WorkloadKind::Dctcp, 400, 8, seed ^ 0xAB);
            let r = m.realize(&topo, &trace, epoch, seed);
            prop_assert!(!r.link_stats().is_empty(), "a derated switch must drop");
            for (link, st) in r.link_stats() {
                let rhs = st.served + st.dropped + st.residual;
                prop_assert!(
                    (st.arrivals as f64 - rhs).abs() <= 1e-6 * (st.arrivals as f64).max(1.0),
                    "{link:?}: {} != {} + {} + {}",
                    st.arrivals, st.served, st.dropped, st.residual
                );
                prop_assert!(st.dropped >= 0.0 && st.served >= 0.0 && st.residual >= 0.0);
            }
        }

        /// Steady-load equivalence: with a Flat profile and no queue
        /// coupling, the queue model reproduces the static congestion
        /// model's per-link epoch loss — same dropping links, probabilities
        /// within integer-slot rounding. With coupling on, the same links
        /// drop at least as much (queues only ever add pressure).
        #[test]
        fn flat_profile_reproduces_the_static_model(
            seed in any::<u64>(),
            index in 0usize..2,
            factor in 0.25f64..0.55,
        ) {
            let derate = Derate::Switch { role: SwitchRole::Core, index, factor };
            let topo: Topology = FatTree::testbed().into();
            let trace = testbed_trace(WorkloadKind::Dctcp, 500, 8, seed ^ 0xCD);

            let stat = CongestionModel {
                derates: vec![derate],
                ..CongestionModel::calibrated()
            };
            let sr = stat.realize(&topo, &trace, 0);

            let mut memoryless = QueueModel::calibrated(8);
            memoryless.queue_coupling = 0.0;
            memoryless.derates.push(derate);
            let qr = memoryless.realize(&topo, &trace, 0, seed);

            let static_hot: std::collections::BTreeMap<_, f64> =
                sr.hot_links().into_iter().collect();
            let queue_hot: std::collections::BTreeMap<_, f64> =
                qr.hot_links().into_iter().collect();
            // Every static hot link drops in the queue model too, at a
            // matching epoch-aggregate probability.
            for (link, &p_static) in &static_hot {
                let Some(&p_queue) = queue_hot.get(link) else {
                    return Err(TestCaseError::fail(format!(
                        "{link:?}: drops statically (p={p_static}) but not in slots"
                    )));
                };
                prop_assert!(
                    (p_queue - p_static).abs() < 0.02,
                    "{link:?}: queue {p_queue} vs static {p_static}"
                );
            }
            // Links the static model calls clean may pick up slot-rounding
            // dust (integer packet layout makes some slots a whisker hotter
            // than the flat mean) — but only dust.
            for (link, &p_queue) in &queue_hot {
                if !static_hot.contains_key(link) {
                    prop_assert!(
                        p_queue < 0.02,
                        "{link:?}: statically clean but queue-drops {p_queue}"
                    );
                }
            }

            // Full coupling: same support, never less loss.
            let mut coupled = QueueModel::calibrated(8);
            coupled.derates.push(derate);
            let cr = coupled.realize(&topo, &trace, 0, seed);
            for (link, &p_static) in &static_hot {
                let st = cr.link_stats()[link];
                let p_coupled = st.dropped / st.arrivals as f64;
                prop_assert!(
                    p_coupled >= p_static - 1e-9,
                    "{link:?}: coupling lowered loss ({p_coupled} < {p_static})"
                );
            }
        }

        /// Sub-knee links never drop and never buffer, under any profile —
        /// temporal shaping cannot conjure loss where aggregate load is
        /// within a single slot's service everywhere.
        #[test]
        fn flat_load_below_knee_is_clean(seed in any::<u64>(), epoch in 0u64..4) {
            let m = QueueModel::calibrated(8);
            let topo: Topology = FatTree::testbed().into();
            let trace = testbed_trace(WorkloadKind::Dctcp, 600, 8, seed ^ 0xEF);
            let r = m.realize(&topo, &trace, epoch, seed);
            prop_assert!(r.is_lossless(), "hot links: {:?}", r.hot_links());
            prop_assert!(r.depths().is_empty());
        }

        /// The queue replay's ground truth conserves and attributes like
        /// the static congestion replay: every drop lands on an on-route
        /// switch, per-victim sums match, and the depth telemetry only
        /// names switches that could have dropped.
        #[test]
        fn queue_replay_attribution_conserves(
            seed in any::<u64>(),
            profile_idx in 0usize..3,
        ) {
            let mut m = QueueModel::calibrated(8);
            m.profile = [
                ArrivalProfile::Microburst { frac: 0.5, width: 2 },
                ArrivalProfile::IncastRamp,
                ArrivalProfile::Flat,
            ][profile_idx];
            m.derates.push(Derate::Switch {
                role: SwitchRole::Edge,
                index: 1,
                factor: 0.4,
            });
            let imp = chm_netsim::ImpairmentSet {
                seed,
                queue: Some(m),
                ..chm_netsim::ImpairmentSet::none()
            };
            let topo: Topology = FatTree::testbed().into();
            let trace = testbed_trace(WorkloadKind::Vl2, 300, 8, seed ^ 0x33);
            let plan = chm_workloads::LossPlan::build(
                &trace,
                chm_workloads::VictimSelection::RandomRatio(0.05),
                0.05,
                seed,
            );
            let mut sim = chm_netsim::Simulator::new(
                topo.clone(),
                chm_netsim::SimConfig { epoch_ms: 50.0, seed },
            );
            for _ in 0..2 {
                let r = sim.run_epoch_scenario(&trace, &plan, &imp, &mut fabric::Null);
                fabric::check_attribution(&r, &topo);
                prop_assert!(!r.queue_depth.is_empty(), "derated ToR must buffer");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fabric-attributed replay: congestion-coupled drops conserve packets,
// attribute only to on-route switches, and the per-packet and burst
// scenario replays stay byte-identical under congestion.
// ---------------------------------------------------------------------------

mod fabric {
    use super::*;
    use chm_common::{FiveTuple, FlowId};
    use chm_netsim::sim::{EdgeHooks, EpochReport, Routable};
    use chm_netsim::{
        CongestionModel, Derate, ImpairmentSet, SimConfig, Simulator,
    };
    use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};

    /// Hooks that ignore everything (ground truth is what's under test).
    pub struct Null;
    impl EdgeHooks<FiveTuple> for Null {
        fn on_ingress(&mut self, _e: usize, _f: &FiveTuple, _ts: u8) -> u8 {
            0
        }
        fn on_egress(&mut self, _e: usize, _f: &FiveTuple, _ts: u8, _tag: u8) {}
    }

    fn congested_imp(seed: u64, derate: Derate) -> ImpairmentSet {
        ImpairmentSet {
            seed,
            congestion: Some(CongestionModel {
                derates: vec![derate],
                ..CongestionModel::calibrated()
            }),
            ..ImpairmentSet::none()
        }
    }

    pub fn check_attribution(report: &EpochReport<FiveTuple>, topo: &Topology) {
        // Conservation: every lost packet is attributed exactly once,
        // fabric-wide and per victim.
        assert_eq!(report.total_attributed(), report.lost.values().sum::<u64>());
        for (f, at) in &report.lost_at {
            assert_eq!(at.values().sum::<u64>(), report.lost[f], "victim sum");
            let route = topo.route(f.src_host(), f.dst_host(), f.key64());
            for s in at.keys() {
                assert!(route.contains(s), "off-route attribution {s:?}");
            }
        }
        assert_eq!(report.lost_at.len(), report.lost.len());
        assert_eq!(report.hops_histogram.values().sum::<u64>(), report.total_sent());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Congestion-coupled drops conserve packet counts and attribute
        /// only to on-route switches, for random derate targets and seeds.
        #[test]
        fn congestion_attribution_conserves_and_stays_on_route(
            seed in any::<u64>(),
            layer in 0usize..3,
            index in 0usize..2,
            factor in 0.15f64..0.6,
        ) {
            let role = [SwitchRole::Edge, SwitchRole::Aggregation, SwitchRole::Core][layer];
            let imp = congested_imp(seed, Derate::Switch { role, index, factor });
            let topo: Topology = FatTree::testbed().into();
            let trace = testbed_trace(WorkloadKind::Dctcp, 300, 8, seed ^ 0x77);
            let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.05), 0.05, seed);
            let mut sim = Simulator::new(topo.clone(), SimConfig { epoch_ms: 50.0, seed });
            for _ in 0..2 {
                let r = sim.run_epoch_scenario(&trace, &plan, &imp, &mut Null);
                check_attribution(&r, &topo);
            }
        }

        /// Derating a switch causes drops *at that switch*: against a
        /// control run without the derate (same trace, same seeds — only
        /// the core's own links change probability), the browned-out core
        /// must lose several times more packets. Natural hot spots
        /// elsewhere (heavy-tailed elephants) are allowed — the invariant
        /// is causal attribution, not exclusivity.
        #[test]
        fn derating_a_switch_multiplies_its_own_drops(
            seed in any::<u64>(),
            index in 0usize..2,
        ) {
            let derate = Derate::Switch {
                role: SwitchRole::Core,
                index,
                factor: 0.15,
            };
            let topo: Topology = FatTree::testbed().into();
            let trace = testbed_trace(WorkloadKind::Dctcp, 400, 8, seed ^ 0x99);
            let culprit = SwitchId { role: SwitchRole::Core, index };
            let mut drops = [0u64; 2];
            for (i, imp) in [
                congested_imp(seed, derate),
                ImpairmentSet {
                    seed,
                    congestion: Some(CongestionModel::calibrated()),
                    ..ImpairmentSet::none()
                },
            ]
            .iter()
            .enumerate()
            {
                let mut sim =
                    Simulator::new(topo.clone(), SimConfig { epoch_ms: 50.0, seed });
                let r = sim.run_epoch_scenario(&trace, &LossPlan::none(), imp, &mut Null);
                check_attribution(&r, &topo);
                drops[i] = r.dropped_at.get(&culprit).copied().unwrap_or(0);
            }
            let [derated, control] = drops;
            prop_assert!(
                derated > 3 * control.max(1),
                "0.15x derate must multiply the core's drops: {derated} vs control {control}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The topology zoo: the Fabric contract holds on every generated fabric —
// endpoints, hop-locality bounds, the definitional hops == route.len()
// equality, full ECMP spread, and conservation of the congestion-coupled
// replay on leaf-spine and the WAN graph.
// ---------------------------------------------------------------------------

mod zoo {
    use super::*;
    use chm_netsim::{
        CongestionModel, Derate, ImpairmentSet, KaryFatTree, LeafSpine, SimConfig,
        Simulator, WanGraph,
    };
    use chm_workloads::{testbed_trace, LossPlan, VictimSelection, WorkloadKind};
    use std::collections::HashSet;

    /// Every fabric the sweep scores, one of each family.
    fn zoo() -> Vec<Topology> {
        vec![
            FatTree::testbed().into(),
            FatTree::new(8, 3).into(),
            KaryFatTree::new(4).into(),
            KaryFatTree::new(8).into(),
            LeafSpine::new(8, 4, 2).into(),
            LeafSpine::new(6, 3, 4).into(),
            WanGraph::abilene(2).into(),
        ]
    }

    /// The generic route contract: starts at the source's edge, ends at the
    /// destination's edge, stays within the fabric's hop bound, repeats
    /// deterministically, and `hops` IS the route length.
    fn check_generic_route(
        t: &Topology,
        src: usize,
        dst: usize,
        key: u64,
    ) -> Result<(), TestCaseError> {
        let r = t.route(src, dst, key);
        prop_assert_eq!(
            r.first().map(|s| s.index),
            Some(t.edge_of_host(src)),
            "route must start at the source edge ({})", t.kind()
        );
        prop_assert_eq!(
            r.last().map(|s| s.index),
            Some(t.edge_of_host(dst)),
            "route must end at the destination edge ({})", t.kind()
        );
        prop_assert!(r.first().unwrap().role == SwitchRole::Edge);
        prop_assert!(r.last().unwrap().role == SwitchRole::Edge);
        prop_assert!(
            !r.is_empty() && r.len() <= t.max_hops(),
            "{}: hop-locality bound violated ({} hops, max {})",
            t.kind(), r.len(), t.max_hops()
        );
        if t.edge_of_host(src) == t.edge_of_host(dst) {
            prop_assert_eq!(r.len(), 1, "same-edge flows never leave the ToR");
        }
        // The definitional equality the old closed-form `hops` drifted from.
        prop_assert_eq!(t.hops(src, dst, key), r.len());
        // Every switch on the route actually exists in the fabric.
        for s in &r {
            prop_assert!(
                s.index < t.n_switches(),
                "{}: switch index {} out of range", t.kind(), s.index
            );
        }
        prop_assert_eq!(r, t.route(src, dst, key), "ECMP must be deterministic");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The route contract holds for every fabric in the zoo, any host
        /// pair, any flow key.
        #[test]
        fn routes_are_valid_on_every_fabric(
            pair in any::<u64>(),
            key in any::<u64>(),
        ) {
            for t in zoo() {
                let n = t.n_hosts() as u64;
                let src = (pair % n) as usize;
                let dst = ((pair / n) % n) as usize;
                check_generic_route(&t, src, dst, key)?;
            }
        }

        /// Congestion-coupled replay conserves and attributes on-route on
        /// leaf-spine and the WAN graph — the fabrics whose wiring the
        /// static model never saw before the zoo.
        #[test]
        fn congestion_conserves_on_leaf_spine_and_wan(seed in any::<u64>()) {
            let fabrics: Vec<(Topology, Derate)> = vec![
                (
                    LeafSpine::new(8, 4, 2).into(),
                    Derate::Switch { role: SwitchRole::Core, index: 0, factor: 0.3 },
                ),
                (
                    WanGraph::abilene(2).into(),
                    Derate::Switch { role: SwitchRole::Edge, index: 5, factor: 0.3 },
                ),
            ];
            for (topo, derate) in fabrics {
                let imp = ImpairmentSet {
                    seed,
                    congestion: Some(CongestionModel {
                        derates: vec![derate],
                        ..CongestionModel::calibrated()
                    }),
                    ..ImpairmentSet::none()
                };
                let trace = testbed_trace(
                    WorkloadKind::Dctcp, 300, topo.n_hosts() as u32, seed ^ 0x2200);
                let plan = LossPlan::build(
                    &trace, VictimSelection::RandomRatio(0.05), 0.05, seed);
                let mut sim =
                    Simulator::new(topo.clone(), SimConfig { epoch_ms: 50.0, seed });
                for _ in 0..2 {
                    let r = sim.run_epoch_scenario(&trace, &plan, &imp, &mut fabric::Null);
                    fabric::check_attribution(&r, &topo);
                }
            }
        }
    }

    /// ECMP must use *all* parallel cores of a k-ary fat-tree and all
    /// spines of a leaf-spine — a fabric with idle parallel paths would
    /// silently undersample the wiring the localizer has to exonerate.
    #[test]
    fn ecmp_covers_every_parallel_path() {
        let kary = KaryFatTree::new(8);
        let t: Topology = kary.clone().into();
        let mut cores = HashSet::new();
        // Cross-pod pair: host 0 (pod 0) to the last host (pod 7).
        for key in 0..4096u64 {
            let r = t.route(0, t.n_hosts() - 1, key);
            cores.insert(r[2].index);
        }
        assert_eq!(cores.len(), kary.n_cores(), "all 16 cores must carry flows");

        let ls: Topology = LeafSpine::new(8, 4, 2).into();
        let mut spines = HashSet::new();
        for key in 0..1024u64 {
            let r = ls.route(0, ls.n_hosts() - 1, key);
            spines.insert(r[1].index);
        }
        assert_eq!(spines.len(), 4, "all 4 spines must carry flows");
    }

    /// The link enumeration is consistent with routing: every window of
    /// every realized route is an enumerated link, on every fabric.
    #[test]
    fn routes_ride_enumerated_links() {
        for t in zoo() {
            let links: HashSet<_> = t.links().into_iter().collect();
            for key in 0..64u64 {
                let r = t.route(0, t.n_hosts() - 1, key);
                for w in r.windows(2) {
                    assert!(
                        links.contains(&(w[0], w[1])),
                        "{}: route uses unenumerated link {:?}", t.kind(), w
                    );
                }
            }
        }
    }
}
