//! Differential suite for the sharded epoch pipeline: every replay path ×
//! every topology variant must produce byte-identical reports and edge
//! state at any shard/worker layout, and the fragment merge must be
//! invariant under fragment permutation.
//!
//! The in-crate unit tests pin the same property on the testbed fabric;
//! this suite widens the fabric axis to the full topology zoo (testbed,
//! k=4 and k=8 fat-trees, leaf-spine, Abilene WAN) and randomizes the
//! merge inputs with proptest.

use chm_netsim::sim::EpochReport;
use chm_netsim::{
    merge_fragments, ClockSkew, Duplication, EdgeSite, FatTree, GilbertElliott,
    ImpairmentSet, KaryFatTree, LeafSpine, ReportFragment, ShardedReplay, Sharding,
    SimConfig, Simulator, SiteArray, SwitchId, SwitchRole, Topology, WanGraph,
};
use chm_common::{FiveTuple, FlowId};
use chm_workloads::{testbed_trace, LossPlan, Trace, VictimSelection, WorkloadKind};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// A stateful site double, deliberately order-sensitive on ingress (a
/// hash chain detects any reordering of the per-edge packet stream) and
/// commutative on egress (wrapping adds, mirroring the real data plane's
/// modular counters). Per-(flow, ts) counts drive a 3-level tag threshold
/// so the burst path emits genuine multi-run bursts.
#[derive(Default, Clone, PartialEq, Debug)]
struct Site {
    chain: u64,
    egress_acc: u64,
    ingress_pkts: u64,
    egress_pkts: u64,
    seen: HashMap<(u64, u8), u64>,
}

fn tag_for(count: u64) -> u8 {
    match count {
        0..=2 => 0,
        3..=9 => 1,
        _ => 2,
    }
}

impl EdgeSite<FiveTuple> for Site {
    fn site_ingress(&mut self, f: &FiveTuple, ts: u8) -> u8 {
        let c = self.seen.entry((f.key64(), ts)).or_insert(0);
        let tag = tag_for(*c);
        *c += 1;
        self.ingress_pkts += 1;
        self.chain = chm_common::hash::mix64(self.chain ^ f.key64() ^ u64::from(ts));
        tag
    }
    fn site_egress(&mut self, f: &FiveTuple, ts: u8, tag: u8) {
        self.egress_pkts += 1;
        self.egress_acc = self.egress_acc.wrapping_add(chm_common::hash::mix64(
            f.key64() ^ (u64::from(ts) << 8) ^ u64::from(tag),
        ));
    }
    fn site_ingress_burst(&mut self, f: &FiveTuple, ts: u8, pkts: u64) -> [(u8, u64); 3] {
        let mut runs = [(0u8, 0u64), (1, 0), (2, 0)];
        for _ in 0..pkts {
            let tag = self.site_ingress(f, ts);
            runs[tag as usize].1 += 1;
        }
        runs
    }
    fn site_egress_burst(&mut self, f: &FiveTuple, ts: u8, tag: u8, delivered: u64) {
        if delivered == 0 {
            return;
        }
        self.egress_pkts += delivered;
        self.egress_acc = self.egress_acc.wrapping_add(
            chm_common::hash::mix64(f.key64() ^ (u64::from(ts) << 8) ^ u64::from(tag))
                .wrapping_mul(delivered),
        );
    }
}

fn sites(n: usize) -> Vec<Site> {
    (0..n).map(|_| Site::default()).collect()
}

/// The topology zoo under test, with a workload sized to each fabric.
fn fabrics() -> Vec<(&'static str, Topology)> {
    vec![
        ("testbed", FatTree::testbed().into()),
        ("kary4", KaryFatTree::new(4).into()),
        ("kary8", KaryFatTree::new(8).into()),
        ("leafspine", LeafSpine::new(6, 4, 4).into()),
        ("abilene", WanGraph::abilene(3).into()),
    ]
}

fn workload(topo: &Topology, seed: u64) -> (Trace<FiveTuple>, LossPlan<FiveTuple>) {
    let trace = testbed_trace(WorkloadKind::Dctcp, 400, topo.n_hosts() as u32, seed);
    let plan = LossPlan::build(&trace, VictimSelection::RandomRatio(0.1), 0.05, seed ^ 0xf00d);
    (trace, plan)
}

fn impairments() -> ImpairmentSet {
    ImpairmentSet {
        seed: 23,
        gilbert_elliott: Some(GilbertElliott::bursty()),
        duplication: Some(Duplication { prob: 0.05 }),
        clock_skew: Some(ClockSkew { max_frac: 0.2 }),
        ..ImpairmentSet::none()
    }
}

/// The four replay paths, dispatched uniformly so one loop covers them all.
#[derive(Clone, Copy, Debug)]
enum Path {
    Clean,
    CleanBurst,
    Scenario,
    ScenarioBurst,
}

const PATHS: [Path; 4] = [Path::Clean, Path::CleanBurst, Path::Scenario, Path::ScenarioBurst];

fn run_unsharded(
    path: Path,
    sim: &mut Simulator,
    trace: &Trace<FiveTuple>,
    plan: &LossPlan<FiveTuple>,
    imp: &ImpairmentSet,
    edges: &mut [Site],
) -> EpochReport<FiveTuple> {
    let mut hooks = SiteArray(edges);
    match path {
        Path::Clean => sim.run_epoch(trace, plan, &mut hooks),
        Path::CleanBurst => sim.run_epoch_burst(trace, plan, &mut hooks),
        Path::Scenario => sim.run_epoch_scenario(trace, plan, imp, &mut hooks),
        Path::ScenarioBurst => sim.run_epoch_burst_scenario(trace, plan, imp, &mut hooks),
    }
}

fn run_sharded(
    path: Path,
    eng: &mut ShardedReplay<FiveTuple>,
    sim: &mut Simulator,
    trace: &Trace<FiveTuple>,
    plan: &LossPlan<FiveTuple>,
    imp: &ImpairmentSet,
    edges: &mut [Site],
) -> EpochReport<FiveTuple> {
    match path {
        Path::Clean => eng.run_epoch(sim, trace, plan, edges),
        Path::CleanBurst => eng.run_epoch_burst(sim, trace, plan, edges),
        Path::Scenario => eng.run_epoch_scenario(sim, trace, plan, imp, edges),
        Path::ScenarioBurst => eng.run_epoch_burst_scenario(sim, trace, plan, imp, edges),
    }
}

/// Every path × every fabric × every shard/worker layout reproduces the
/// unsharded replay exactly: same report, same per-edge state, same epoch
/// counter. Two epochs per configuration so the second epoch runs on
/// reused (dirty) engine scratch.
#[test]
fn all_paths_match_unsharded_on_every_fabric() {
    for (name, topo) in fabrics() {
        let (trace, plan) = workload(&topo, 0x5eed ^ topo.n_hosts() as u64);
        let imp = impairments();
        let sim0 = Simulator::new(topo.clone(), SimConfig::default());
        for path in PATHS {
            let mut sim_ref = sim0.clone();
            let mut ref_sites = sites(topo.n_edges());
            let mut ref_reports = Vec::new();
            for _ in 0..2 {
                ref_reports.push(run_unsharded(
                    path,
                    &mut sim_ref,
                    &trace,
                    &plan,
                    &imp,
                    &mut ref_sites,
                ));
            }
            for shards in [1usize, 2, 3, 7] {
                for workers in [1usize, 2] {
                    let mut sim = sim0.clone();
                    let mut s = sites(topo.n_edges());
                    let mut eng = ShardedReplay::new(Sharding { shards, workers });
                    for (epoch, r_ref) in ref_reports.iter().enumerate() {
                        let r =
                            run_sharded(path, &mut eng, &mut sim, &trace, &plan, &imp, &mut s);
                        assert_eq!(
                            &r, r_ref,
                            "report differs: {name} {path:?} epoch {epoch} \
                             shards={shards} workers={workers}"
                        );
                    }
                    assert_eq!(
                        s, ref_sites,
                        "site state differs: {name} {path:?} shards={shards} workers={workers}"
                    );
                    assert_eq!(sim.current_epoch(), sim_ref.current_epoch());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Merge permutation invariance (proptest)
// ---------------------------------------------------------------------

/// Builds one fragment from a generated spec. Flow keys are made disjoint
/// across fragments by construction (`frag_id` is baked into the flow id),
/// mirroring the pipeline invariant that each flow is realized by exactly
/// one shard.
fn build_fragment(frag_id: u64, flows: &[(u64, u64, u64, u8)]) -> ReportFragment<FiveTuple> {
    let mut frag = ReportFragment::<FiveTuple>::default();
    for &(salt, delivered, lost, hops) in flows {
        let f = FiveTuple::unpack(((frag_id << 32) | salt) as u128 | 1 << 96);
        frag.delivered.insert(f, delivered);
        if lost > 0 {
            frag.lost.insert(f, lost);
            let sw = SwitchId { role: SwitchRole::Edge, index: (salt % 5) as usize };
            let mut at = BTreeMap::new();
            at.insert(sw, lost);
            frag.lost_at.insert(f, at);
            *frag.dropped_at.entry(sw).or_insert(0) += lost;
        }
        let core = SwitchId { role: SwitchRole::Core, index: (salt % 3) as usize };
        *frag.dropped_at.entry(core).or_insert(0) += salt % 2;
        *frag.hops_histogram.entry(hops as usize).or_insert(0) += delivered + lost;
    }
    frag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `merge_fragments` is invariant under any permutation of its
    /// fragment slice: the merged report depends only on the multiset of
    /// fragment contents, never on shard order.
    #[test]
    fn merge_is_permutation_invariant(
        specs in proptest::collection::vec(
            proptest::collection::vec(
                (0u64..u32::MAX as u64, 0u64..1000, 0u64..100, 1u8..6),
                0..8,
            ),
            1..6,
        ),
        epoch in 0u64..100,
        perm_seed in any::<u64>(),
    ) {
        let mut frags: Vec<ReportFragment<FiveTuple>> = specs
            .iter()
            .enumerate()
            .map(|(i, flows)| build_fragment(i as u64, flows))
            .collect();
        let mut shuffled: Vec<ReportFragment<FiveTuple>> = specs
            .iter()
            .enumerate()
            .map(|(i, flows)| build_fragment(i as u64, flows))
            .collect();
        // Fisher–Yates with a deterministic splitmix stream.
        let mut state = perm_seed;
        for i in (1..shuffled.len()).rev() {
            state = chm_common::hash::mix64(state);
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let qd = BTreeMap::new();
        prop_assert_eq!(
            merge_fragments(epoch, qd.clone(), &mut frags),
            merge_fragments(epoch, qd, &mut shuffled)
        );
    }
}
