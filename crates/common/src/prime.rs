//! Modular arithmetic over the Mersenne prime `p = 2^61 − 1`.
//!
//! FermatSketch needs a prime `p` larger than any flow-ID fragment and any
//! flow size (§3.1). The paper's Tofino prototype uses 32-bit lanes with a
//! 32-bit prime; in software we can afford a single 61-bit Mersenne prime,
//! which admits a branch-free reduction (`x mod (2^61−1)` via shift+add) and
//! lets a 104-bit 5-tuple fit in two fragments instead of four.
//!
//! All functions assume their inputs are already reduced (`< p`) unless noted
//! otherwise and are total — no panics for in-range inputs.

/// The Mersenne prime `2^61 − 1` used as the modulus for all IDsum fields.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u64` modulo `p = 2^61 − 1`.
#[inline]
pub fn reduce64(x: u64) -> u64 {
    // x = hi*2^61 + lo  =>  x ≡ hi + lo (mod 2^61−1)
    let r = (x >> 61) + (x & MERSENNE_P);
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

/// Reduces a 128-bit product modulo `p = 2^61 − 1`.
///
/// Split into three 61-bit limbs (each limb weight is ≡ 1 mod p), summed in
/// pure 64-bit arithmetic: the limb extraction works on the two 64-bit
/// halves directly and the limb sum fits a `u64` (`≤ 2·(2^61−1) + 2^6`), so
/// no 128-bit add/compare chains survive into the hot loop. One fold plus a
/// single conditional subtraction finishes the reduction.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    let xl = x as u64;
    let xh = (x >> 64) as u64;
    let lo = xl & MERSENNE_P;
    // Bits 61..122 of x: the top 3 bits of xl and the low 58 bits of xh.
    let mid = ((xl >> 61) | (xh << 3)) & MERSENNE_P;
    let hi = xh >> 58; // bits 122.. — < 2^6
    let r = lo + mid + hi; // < 2^63: no overflow
    let r = (r & MERSENNE_P) + (r >> 61); // ≤ (2^61 − 1) + 2
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

/// Modular addition: `(a + b) mod p`.
#[inline]
pub fn add_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    let s = a + b; // < 2^62, no overflow
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// Modular subtraction: `(a − b) mod p`.
#[inline]
pub fn sub_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    if a >= b {
        a - b
    } else {
        a + MERSENNE_P - b
    }
}

/// Modular multiplication: `(a · b) mod p`.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    debug_assert!(a < MERSENNE_P && b < MERSENNE_P);
    reduce128(a as u128 * b as u128)
}

/// Modular exponentiation by squaring: `b^e mod p`.
pub fn pow_mod(mut b: u64, mut e: u64) -> u64 {
    b = reduce64(b);
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, b);
        }
        b = mul_mod(b, b);
        e >>= 1;
    }
    acc
}

/// Size of the precomputed small-inverse table: covers every bucket count
/// a realistically loaded sketch sees during peeling.
const SMALL_INV: usize = 4096;

/// Lazily built table of `a^(p−2) mod p` for `a in 1..SMALL_INV`.
fn small_inv_table() -> &'static [u64; SMALL_INV] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[u64; SMALL_INV]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([0u64; SMALL_INV]);
        for (a, slot) in t.iter_mut().enumerate().skip(1) {
            *slot = pow_mod(a as u64, MERSENNE_P - 2);
        }
        t
    })
}

/// Modular inverse via Fermat's little theorem: `a^(p−2) mod p`.
///
/// This is exactly the operation FermatSketch's pure-bucket verification
/// performs to recover a flow ID from `(count, IDsum)`:
/// `f' = IDsum · count^(p−2) mod p` (§3.1, Algorithm 2). Returns `None`
/// for `a ≡ 0 (mod p)`, which has no inverse.
///
/// Decoding runs this once per peel attempt, and bucket counts are small
/// (packet counts), so inverses of `a < 4096` come from a precomputed
/// table instead of the 61-squaring exponentiation ladder.
pub fn inv_mod(a: u64) -> Option<u64> {
    let a = reduce64(a);
    if a == 0 {
        return None;
    }
    if a < SMALL_INV as u64 {
        return Some(small_inv_table()[a as usize]);
    }
    Some(pow_mod(a, MERSENNE_P - 2))
}

/// Maps a signed count into `Z_p` (used when delta sketches transiently hold
/// negative counts during false-positive cancellation, §A.2).
#[inline]
pub fn signed_to_mod(c: i64) -> u64 {
    let m = c.rem_euclid(MERSENNE_P as i64);
    m as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mersenne_p_is_expected_constant() {
        assert_eq!(MERSENNE_P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn reduce64_handles_boundaries() {
        assert_eq!(reduce64(0), 0);
        assert_eq!(reduce64(MERSENNE_P), 0);
        assert_eq!(reduce64(MERSENNE_P + 1), 1);
        assert_eq!(reduce64(u64::MAX), u64::MAX % MERSENNE_P);
    }

    #[test]
    fn reduce128_matches_naive_modulo() {
        let samples: [u128; 6] = [
            0,
            1,
            MERSENNE_P as u128,
            (MERSENNE_P as u128) * (MERSENNE_P as u128),
            u128::MAX,
            0x1234_5678_9abc_def0_1234_5678_9abc_def0,
        ];
        for &x in &samples {
            assert_eq!(reduce128(x) as u128, x % MERSENNE_P as u128, "x={x}");
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = MERSENNE_P - 5;
        let b = 123_456;
        assert_eq!(sub_mod(add_mod(a, b), b), a);
        assert_eq!(sub_mod(0, 1), MERSENNE_P - 1);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let pairs = [
            (2u64, 3u64),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (0x0fff_ffff_ffff_ffff, 7),
        ];
        for (a, b) in pairs {
            let expect = ((a as u128 * b as u128) % MERSENNE_P as u128) as u64;
            assert_eq!(mul_mod(a, b), expect);
        }
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10), 1024);
        assert_eq!(pow_mod(5, 0), 1);
        assert_eq!(pow_mod(0, 5), 0);
        // Fermat: a^(p-1) = 1 for a != 0.
        assert_eq!(pow_mod(123_456_789, MERSENNE_P - 1), 1);
    }

    #[test]
    fn inv_mod_is_multiplicative_inverse() {
        for a in [1u64, 2, 3, 97, 1 << 52, MERSENNE_P - 1] {
            let inv = inv_mod(a).unwrap();
            assert_eq!(mul_mod(a, inv), 1, "a={a}");
        }
        assert_eq!(inv_mod(0), None);
        assert_eq!(inv_mod(MERSENNE_P), None);
    }

    #[test]
    fn fermat_id_recovery_identity() {
        // The core FermatSketch identity: if a bucket holds `count` copies of
        // flow id `f`, then IDsum = count*f and f = IDsum * count^(p-2).
        let f = 0x000f_edcb_a987_6543u64;
        let count = 41u64;
        let idsum = mul_mod(count, f);
        let recovered = mul_mod(idsum, inv_mod(count).unwrap());
        assert_eq!(recovered, f);
    }

    #[test]
    fn signed_to_mod_handles_negatives() {
        assert_eq!(signed_to_mod(-1), MERSENNE_P - 1);
        assert_eq!(signed_to_mod(0), 0);
        assert_eq!(signed_to_mod(5), 5);
        assert_eq!(signed_to_mod(-(MERSENNE_P as i64)), 0);
    }
}
