//! Flow identifiers and their fragmentation into IDsum lanes.
//!
//! FermatSketch encodes a flow ID into an `IDsum mod p` field, so the ID must
//! be smaller than the prime. A 104-bit 5-tuple does not fit under our 61-bit
//! prime, so — exactly like the paper's Tofino prototype, which splits the
//! 5-tuple across four 32-bit register lanes (§D.1, Figure 13) — we split IDs
//! into **fragments**, each encoded in its own IDsum lane. Decoding recovers
//! every fragment independently from the same pure bucket and reassembles the
//! ID, rejecting any fragment that exceeds its lane width (such buckets
//! cannot be pure).

use crate::hash::combine64;
use std::fmt::Debug;
use std::hash::Hash;

/// Width of one ID fragment in bits. Fragments must stay below the 61-bit
/// Mersenne prime; 52 bits gives headroom and splits 104 bits evenly in two.
pub const FRAGMENT_BITS: u32 = 52;

/// Maximum value of a single fragment (inclusive).
pub const FRAGMENT_MAX: u64 = (1u64 << FRAGMENT_BITS) - 1;

/// A flow identifier that can be fragmented into IDsum lanes.
///
/// Implementors guarantee that every fragment is `<= FRAGMENT_MAX` so the
/// modular encoding is injective, and that `try_from_fragments` is the exact
/// inverse of `fragment` (and returns `None` for out-of-range lanes, which is
/// how impure buckets are rejected during decode).
pub trait FlowId: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static {
    /// Number of IDsum lanes this ID occupies.
    const FRAGMENTS: usize;

    /// The `i`-th fragment, `i < Self::FRAGMENTS`; always `<= FRAGMENT_MAX`.
    fn fragment(&self, i: usize) -> u64;

    /// Reassembles an ID from decoded fragments. `None` if any fragment is
    /// out of range (the candidate bucket is not pure).
    fn try_from_fragments(frags: &[u64]) -> Option<Self>;

    /// A single 64-bit key mixing all fragments, fed to the hash family.
    fn key64(&self) -> u64;
}

impl FlowId for u32 {
    const FRAGMENTS: usize = 1;

    #[inline]
    fn fragment(&self, i: usize) -> u64 {
        debug_assert_eq!(i, 0);
        *self as u64
    }

    fn try_from_fragments(frags: &[u64]) -> Option<Self> {
        match frags {
            [f] if *f <= u32::MAX as u64 => Some(*f as u32),
            _ => None,
        }
    }

    #[inline]
    fn key64(&self) -> u64 {
        *self as u64
    }
}

impl FlowId for u64 {
    const FRAGMENTS: usize = 2;

    #[inline]
    fn fragment(&self, i: usize) -> u64 {
        match i {
            0 => *self & 0xffff_ffff,
            1 => *self >> 32,
            _ => unreachable!("u64 has 2 fragments"),
        }
    }

    fn try_from_fragments(frags: &[u64]) -> Option<Self> {
        match frags {
            [lo, hi] if *lo <= 0xffff_ffff && *hi <= 0xffff_ffff => Some((hi << 32) | lo),
            _ => None,
        }
    }

    #[inline]
    fn key64(&self) -> u64 {
        *self
    }
}

/// The classic 104-bit transport 5-tuple used as the flow ID on the testbed
/// (§5.2: "We use the 104-bit 5-tuple as the flow ID").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FiveTuple {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// IP protocol number (e.g. 17 for the UDP flows on the testbed).
    pub proto: u8,
}

impl FiveTuple {
    /// Packs the 104 significant bits into the low bits of a `u128`.
    #[inline]
    pub fn pack(&self) -> u128 {
        (self.src_ip as u128) << 72
            | (self.dst_ip as u128) << 40
            | (self.src_port as u128) << 24
            | (self.dst_port as u128) << 8
            | self.proto as u128
    }

    /// Inverse of [`pack`](Self::pack); ignores bits above 104.
    #[inline]
    pub fn unpack(v: u128) -> Self {
        FiveTuple {
            src_ip: (v >> 72) as u32,
            dst_ip: (v >> 40) as u32,
            src_port: (v >> 24) as u16,
            dst_port: (v >> 8) as u16,
            proto: v as u8,
        }
    }
}

impl FlowId for FiveTuple {
    const FRAGMENTS: usize = 2;

    #[inline]
    fn fragment(&self, i: usize) -> u64 {
        let v = self.pack();
        match i {
            0 => (v & FRAGMENT_MAX as u128) as u64,
            1 => ((v >> FRAGMENT_BITS) & FRAGMENT_MAX as u128) as u64,
            _ => unreachable!("FiveTuple has 2 fragments"),
        }
    }

    fn try_from_fragments(frags: &[u64]) -> Option<Self> {
        match frags {
            [lo, hi] if *lo <= FRAGMENT_MAX && *hi <= FRAGMENT_MAX => {
                Some(FiveTuple::unpack(((*hi as u128) << FRAGMENT_BITS) | *lo as u128))
            }
            _ => None,
        }
    }

    #[inline]
    fn key64(&self) -> u64 {
        combine64(self.fragment(0), self.fragment(1))
    }
}

/// Maximum number of fragments any supported [`FlowId`] uses; sketches size
/// their per-bucket lane storage with this.
pub const MAX_FRAGMENTS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tuple() -> FiveTuple {
        FiveTuple {
            src_ip: 0x0a00_0102,
            dst_ip: 0xc0a8_01fe,
            src_port: 443,
            dst_port: 51_234,
            proto: 17,
        }
    }

    #[test]
    fn u32_roundtrip() {
        for v in [0u32, 1, 0xdead_beef, u32::MAX] {
            let frags: Vec<u64> = (0..<u32 as FlowId>::FRAGMENTS).map(|i| v.fragment(i)).collect();
            assert_eq!(u32::try_from_fragments(&frags), Some(v));
        }
        assert_eq!(u32::try_from_fragments(&[u32::MAX as u64 + 1]), None);
        assert_eq!(u32::try_from_fragments(&[]), None);
        assert_eq!(u32::try_from_fragments(&[1, 2]), None);
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
            let frags: Vec<u64> = (0..<u64 as FlowId>::FRAGMENTS).map(|i| v.fragment(i)).collect();
            assert_eq!(u64::try_from_fragments(&frags), Some(v));
        }
        assert_eq!(u64::try_from_fragments(&[1u64 << 32, 0]), None);
    }

    #[test]
    fn five_tuple_pack_unpack_roundtrip() {
        let t = sample_tuple();
        assert_eq!(FiveTuple::unpack(t.pack()), t);
    }

    #[test]
    fn five_tuple_fragment_roundtrip() {
        let t = sample_tuple();
        let frags: Vec<u64> = (0..FiveTuple::FRAGMENTS).map(|i| t.fragment(i)).collect();
        assert!(frags.iter().all(|&f| f <= FRAGMENT_MAX));
        assert_eq!(FiveTuple::try_from_fragments(&frags), Some(t));
    }

    #[test]
    fn five_tuple_rejects_out_of_range_fragment() {
        assert_eq!(FiveTuple::try_from_fragments(&[FRAGMENT_MAX + 1, 0]), None);
        assert_eq!(FiveTuple::try_from_fragments(&[0, FRAGMENT_MAX + 1]), None);
    }

    #[test]
    fn distinct_tuples_have_distinct_keys() {
        let a = sample_tuple();
        let mut b = a;
        b.proto = 6;
        assert_ne!(a.key64(), b.key64());
        let mut c = a;
        c.src_port = 444;
        assert_ne!(a.key64(), c.key64());
    }

    #[test]
    fn pack_is_injective_on_all_fields() {
        let base = sample_tuple();
        let variants = [
            FiveTuple { src_ip: base.src_ip ^ 1, ..base },
            FiveTuple { dst_ip: base.dst_ip ^ 1, ..base },
            FiveTuple { src_port: base.src_port ^ 1, ..base },
            FiveTuple { dst_port: base.dst_port ^ 1, ..base },
            FiveTuple { proto: base.proto ^ 1, ..base },
        ];
        for v in variants {
            assert_ne!(v.pack(), base.pack());
        }
    }
}
