//! Seeded, pairwise-independent hashing.
//!
//! Every sketch in the paper associates each counter/bucket array with a
//! pairwise-independent hash function (§3.1, §3.2.1). On Tofino these are CRC
//! units with distinct polynomials; in software we use the textbook
//! construction `h(x) = ((a·x + b) mod p) mod m` over the Mersenne prime
//! `p = 2^61 − 1`, with `(a, b)` drawn deterministically from a seed so that
//! upstream and downstream encoders (on *different* switches) can share the
//! exact same functions — a correctness requirement for FermatSketch
//! addition/subtraction (§3.1).

use crate::prime::{mul_mod, reduce64, MERSENNE_P};

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
///
/// Used (a) to derive per-array `(a, b)` coefficients from a master seed and
/// (b) to compress multi-word flow IDs to a single 64-bit word before the
/// pairwise stage.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines two 64-bit words into one (for multi-fragment flow IDs).
#[inline]
pub fn combine64(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b).rotate_left(31))
}

/// One pairwise-independent hash function `h(x) = ((a·x + b) mod p) mod m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
}

impl PairwiseHash {
    /// Derives a hash function deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        // `a` must be non-zero mod p for pairwise independence.
        let mut a = reduce64(mix64(seed ^ 0xa5a5_a5a5_a5a5_a5a5));
        if a == 0 {
            a = 1;
        }
        let b = reduce64(mix64(seed ^ 0x5a5a_5a5a_5a5a_5a5a));
        PairwiseHash { a, b }
    }

    /// Hashes a pre-mixed 64-bit key into `[0, m)`.
    #[inline]
    pub fn index(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        let v = self.raw(key);
        (v % m as u64) as usize
    }

    /// The full-range hash value in `[0, p)` before range reduction.
    #[inline]
    pub fn raw(&self, key: u64) -> u64 {
        let x = reduce64(mix64(key));
        let ax = mul_mod(self.a, x);
        let s = ax + self.b; // < 2^62
        if s >= MERSENNE_P {
            s - MERSENNE_P
        } else {
            s
        }
    }

    /// A uniform value in `[0, 2^16)`, matching the 16-bit comparison used by
    /// the Tofino sampling stage (§D.1).
    #[inline]
    pub fn sample16(&self, key: u64) -> u16 {
        (self.raw(key) >> 16) as u16
    }
}

/// A family of `d` independent hash functions sharing a master seed.
///
/// Sketches that need one function per array (`d` bucket arrays in
/// FermatSketch, `l` counter arrays in TowerSketch) construct a family so the
/// per-array seeds are reproducible and decorrelated.
#[derive(Debug, Clone)]
pub struct HashFamily {
    fns: Vec<PairwiseHash>,
    master_seed: u64,
}

impl HashFamily {
    /// Builds `d` hash functions from `master_seed`.
    pub fn new(master_seed: u64, d: usize) -> Self {
        let fns = (0..d)
            .map(|i| PairwiseHash::from_seed(mix64(master_seed).wrapping_add(i as u64 * 0x9e37_79b9)))
            .collect();
        HashFamily { fns, master_seed }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when the family is empty (never the case for valid sketches).
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The `i`-th hash function.
    #[inline]
    pub fn get(&self, i: usize) -> &PairwiseHash {
        &self.fns[i]
    }

    /// The master seed the family was derived from (for config echo).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Hashes `key` with function `i` into `[0, m)`.
    #[inline]
    pub fn index(&self, i: usize, key: u64, m: usize) -> usize {
        self.fns[i].index(key, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn from_seed_is_deterministic() {
        let h1 = PairwiseHash::from_seed(42);
        let h2 = PairwiseHash::from_seed(42);
        assert_eq!(h1, h2);
        assert_ne!(PairwiseHash::from_seed(42), PairwiseHash::from_seed(43));
    }

    #[test]
    fn index_stays_in_range() {
        let h = PairwiseHash::from_seed(7);
        for m in [1usize, 2, 3, 1000, 4096] {
            for key in 0..200u64 {
                assert!(h.index(key, m) < m);
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = PairwiseHash::from_seed(99);
        let m = 64;
        let n = 64_000u64;
        let mut counts = vec![0u32; m];
        for key in 0..n {
            counts[h.index(key, m)] += 1;
        }
        let expect = (n as usize / m) as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "bin {i} count {c} deviates {dev:.2} from {expect}");
        }
    }

    #[test]
    fn family_functions_are_distinct() {
        let fam = HashFamily::new(123, 3);
        assert_eq!(fam.len(), 3);
        let m = 1 << 20;
        // Different functions should disagree on most keys.
        let disagreements = (0..1000u64)
            .filter(|&k| fam.index(0, k, m) != fam.index(1, k, m))
            .count();
        assert!(disagreements > 990, "only {disagreements} disagreements");
    }

    #[test]
    fn sample16_covers_range() {
        let h = PairwiseHash::from_seed(5);
        let mut lo = false;
        let mut hi = false;
        for k in 0..10_000u64 {
            let s = h.sample16(k);
            if s < 8192 {
                lo = true;
            }
            if s > 57_344 {
                hi = true;
            }
        }
        assert!(lo && hi, "sample16 not covering the 16-bit range");
    }
}
