//! Seeded, pairwise-independent hashing.
//!
//! Every sketch in the paper associates each counter/bucket array with a
//! pairwise-independent hash function (§3.1, §3.2.1). On Tofino these are CRC
//! units with distinct polynomials; in software we use the textbook
//! construction `h(x) = ((a·x + b) mod p) >>fastrange>> m` over the Mersenne
//! prime `p = 2^61 − 1`, with `(a, b)` drawn deterministically from a seed so
//! that upstream and downstream encoders (on *different* switches) can share
//! the exact same functions — a correctness requirement for FermatSketch
//! addition/subtraction (§3.1).
//!
//! # The per-packet fast path
//!
//! Two things make the software hash hardware-speed:
//!
//! * [`FastRange`] — Lemire's multiply-shift range reduction specialized to
//!   the 61-bit hash domain: `index = (v · m) >> 61` replaces the `v % m`
//!   integer division (20–40 cycles on most cores) with one widening
//!   multiply and a shift, and is completely branch-free. Sketches
//!   precompute one `FastRange` per bucket array.
//! * [`BatchHasher`] — mixes a flow key through SplitMix64 **once** and
//!   derives every per-array/per-lane value from the premixed word, instead
//!   of re-running the mixer inside each of the `d` per-array hash calls.
//!
//! [`PairwiseHash::index_mod`] keeps the original `mod m` reduction as the
//! reference implementation; property tests pin the fast path against it.

use crate::prime::{mul_mod, reduce64, MERSENNE_P};

/// Precomputed branch-free range reduction onto `[0, m)`.
///
/// For a hash value `v` uniform in `[0, p)` with `p = 2^61 − 1`, the Lemire
/// fast-range index is `(v · m) >> 61`. Because `v ≤ p − 1 < 2^61`, the
/// result is always `< m` without any conditional, and the mapping bias
/// relative to a perfect `[0, m)` partition is `O(m / 2^61)` — negligible
/// for every sketch geometry in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastRange {
    m: u64,
}

impl FastRange {
    /// Precomputes the reduction onto `[0, m)`.
    #[inline]
    pub const fn new(m: usize) -> Self {
        FastRange { m: m as u64 }
    }

    /// The range size `m` this reduction maps onto.
    #[inline]
    pub const fn len(self) -> usize {
        self.m as usize
    }

    /// True when the range is empty (`m == 0`); `reduce` then returns 0.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.m == 0
    }

    /// Maps a full-range hash value `v < 2^61` into `[0, m)` with one
    /// widening multiply and one shift — no division, no branch.
    #[inline]
    // chm-lint: hot
    pub const fn reduce(self, v: u64) -> usize {
        debug_assert!(v < MERSENNE_P);
        ((v as u128 * self.m as u128) >> 61) as usize
    }
}

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
///
/// Used (a) to derive per-array `(a, b)` coefficients from a master seed and
/// (b) to compress multi-word flow IDs to a single 64-bit word before the
/// pairwise stage.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines two 64-bit words into one (for multi-fragment flow IDs).
#[inline]
pub fn combine64(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b).rotate_left(31))
}

/// One pairwise-independent hash function `h(x) = ((a·x + b) mod p) mod m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
}

impl PairwiseHash {
    /// Derives a hash function deterministically from a seed.
    pub fn from_seed(seed: u64) -> Self {
        // `a` must be non-zero mod p for pairwise independence.
        let mut a = reduce64(mix64(seed ^ 0xa5a5_a5a5_a5a5_a5a5));
        if a == 0 {
            a = 1;
        }
        let b = reduce64(mix64(seed ^ 0x5a5a_5a5a_5a5a_5a5a));
        PairwiseHash { a, b }
    }

    /// Hashes a 64-bit key into `[0, m)` via the branch-free
    /// [`FastRange`] reduction.
    #[inline]
    // chm-lint: hot
    pub fn index(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        FastRange::new(m).reduce(self.raw(key))
    }

    /// The original `mod m` range reduction, kept as the reference
    /// implementation for the fast-range property tests and the
    /// `chm-bench perf` legacy baseline. Semantically a valid index
    /// function, but pays a 64-bit integer division per call.
    #[inline]
    pub fn index_mod(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        (self.raw(key) % m as u64) as usize
    }

    /// The full-range hash value in `[0, p)` before range reduction.
    #[inline]
    // chm-lint: hot
    pub fn raw(&self, key: u64) -> u64 {
        self.raw_premixed(reduce64(mix64(key)))
    }

    /// Like [`raw`](Self::raw) but for a key already mixed and reduced into
    /// `[0, p)` — the per-array step [`BatchHasher`] amortizes over.
    #[inline]
    // chm-lint: hot
    pub fn raw_premixed(&self, x: u64) -> u64 {
        let ax = mul_mod(self.a, x);
        let s = ax + self.b; // < 2^62
        if s >= MERSENNE_P {
            s - MERSENNE_P
        } else {
            s
        }
    }

    /// A uniform value in `[0, 2^16)`, matching the 16-bit comparison used by
    /// the Tofino sampling stage (§D.1).
    #[inline]
    pub fn sample16(&self, key: u64) -> u16 {
        (self.raw(key) >> 16) as u16
    }
}

/// One flow key, mixed once, ready to be hashed by many functions.
///
/// The per-packet hot path of every sketch evaluates `d` (or `l`) hash
/// functions of the *same* key. The naive loop re-runs the SplitMix64
/// finalizer inside every call; `BatchHasher` hoists that work out:
///
/// ```
/// use chm_common::hash::{BatchHasher, FastRange, HashFamily};
///
/// let fam = HashFamily::new(7, 3);
/// let reducer = FastRange::new(1024);
/// let bh = BatchHasher::new(0xfeed_f00d);
/// for h in fam.as_slice() {
///     let j = bh.index(h, reducer);
///     assert!(j < 1024);
///     // identical to the unbatched path:
///     assert_eq!(j, h.index(0xfeed_f00d, 1024));
/// }
/// ```
///
/// Every derived value is bit-identical to the unbatched
/// [`PairwiseHash::raw`]/[`PairwiseHash::index`] results, so batched and
/// unbatched encoders stay addable/subtractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchHasher {
    /// `reduce64(mix64(key))` — the premixed key in `[0, p)`.
    x: u64,
}

impl BatchHasher {
    /// Mixes `key` once.
    #[inline]
    pub fn new(key: u64) -> Self {
        BatchHasher { x: reduce64(mix64(key)) }
    }

    /// The full-range value of hash function `h` for this key.
    #[inline]
    // chm-lint: hot
    pub fn raw(&self, h: &PairwiseHash) -> u64 {
        h.raw_premixed(self.x)
    }

    /// The bucket index of hash function `h` under reduction `r`.
    #[inline]
    // chm-lint: hot
    pub fn index(&self, h: &PairwiseHash, r: FastRange) -> usize {
        r.reduce(self.raw(h))
    }
}

/// A family of `d` independent hash functions sharing a master seed.
///
/// Sketches that need one function per array (`d` bucket arrays in
/// FermatSketch, `l` counter arrays in TowerSketch) construct a family so the
/// per-array seeds are reproducible and decorrelated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    fns: Vec<PairwiseHash>,
    master_seed: u64,
}

impl HashFamily {
    /// Builds `d` hash functions from `master_seed`.
    pub fn new(master_seed: u64, d: usize) -> Self {
        let fns = (0..d)
            .map(|i| PairwiseHash::from_seed(mix64(master_seed).wrapping_add(i as u64 * 0x9e37_79b9)))
            .collect();
        HashFamily { fns, master_seed }
    }

    /// Number of functions in the family.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when the family is empty (never the case for valid sketches).
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The `i`-th hash function.
    #[inline]
    pub fn get(&self, i: usize) -> &PairwiseHash {
        &self.fns[i]
    }

    /// All functions as a slice — the hot loops iterate this together with a
    /// [`BatchHasher`] so the key is mixed once for the whole family.
    #[inline]
    pub fn as_slice(&self) -> &[PairwiseHash] {
        &self.fns
    }

    /// The master seed the family was derived from (for config echo).
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Hashes `key` with function `i` into `[0, m)`.
    #[inline]
    // chm-lint: hot
    pub fn index(&self, i: usize, key: u64, m: usize) -> usize {
        self.fns[i].index(key, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn from_seed_is_deterministic() {
        let h1 = PairwiseHash::from_seed(42);
        let h2 = PairwiseHash::from_seed(42);
        assert_eq!(h1, h2);
        assert_ne!(PairwiseHash::from_seed(42), PairwiseHash::from_seed(43));
    }

    #[test]
    fn index_stays_in_range() {
        let h = PairwiseHash::from_seed(7);
        for m in [1usize, 2, 3, 1000, 4096] {
            for key in 0..200u64 {
                assert!(h.index(key, m) < m);
            }
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = PairwiseHash::from_seed(99);
        let m = 64;
        let n = 64_000u64;
        let mut counts = vec![0u32; m];
        for key in 0..n {
            counts[h.index(key, m)] += 1;
        }
        let expect = (n as usize / m) as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "bin {i} count {c} deviates {dev:.2} from {expect}");
        }
    }

    #[test]
    fn family_functions_are_distinct() {
        let fam = HashFamily::new(123, 3);
        assert_eq!(fam.len(), 3);
        let m = 1 << 20;
        // Different functions should disagree on most keys.
        let disagreements = (0..1000u64)
            .filter(|&k| fam.index(0, k, m) != fam.index(1, k, m))
            .count();
        assert!(disagreements > 990, "only {disagreements} disagreements");
    }

    #[test]
    fn fast_range_stays_in_bounds() {
        for m in [1usize, 2, 3, 5, 1000, 4096, 1 << 20] {
            let r = FastRange::new(m);
            assert_eq!(r.len(), m);
            assert_eq!(r.reduce(0), 0);
            assert!(r.reduce(MERSENNE_P - 1) < m, "m={m}");
            for v in (0..MERSENNE_P).step_by((MERSENNE_P / 257) as usize) {
                assert!(r.reduce(v) < m, "v={v} m={m}");
            }
        }
        assert!(FastRange::new(0).is_empty());
    }

    #[test]
    fn fast_range_is_monotone_partition() {
        // fastrange is order-preserving: v1 <= v2 => reduce(v1) <= reduce(v2),
        // so it partitions [0, p) into m contiguous intervals.
        let r = FastRange::new(37);
        let mut prev = 0;
        for v in (0..MERSENNE_P).step_by((MERSENNE_P / 1009) as usize) {
            let j = r.reduce(v);
            assert!(j >= prev);
            prev = j;
        }
    }

    #[test]
    fn fast_range_distribution_is_roughly_uniform() {
        let h = PairwiseHash::from_seed(77);
        let m = 64;
        let n = 64_000u64;
        let mut counts = vec![0u32; m];
        for key in 0..n {
            counts[h.index(key, m)] += 1;
        }
        let expect = (n as usize / m) as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "bin {i} count {c} deviates {dev:.2} from {expect}");
        }
    }

    #[test]
    fn index_mod_reference_stays_in_range_and_uniform() {
        let h = PairwiseHash::from_seed(13);
        let m = 48;
        let mut counts = vec![0u32; m];
        for key in 0..48_000u64 {
            let j = h.index_mod(key, m);
            assert!(j < m);
            counts[j] += 1;
        }
        let expect = 1000.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() / expect < 0.25);
        }
    }

    #[test]
    fn batch_hasher_matches_unbatched_path() {
        let fam = HashFamily::new(0xbeef, 5);
        for key in (0..5_000u64).map(mix64) {
            let bh = BatchHasher::new(key);
            for (i, h) in fam.as_slice().iter().enumerate() {
                assert_eq!(bh.raw(h), h.raw(key));
                for m in [3usize, 100, 4096] {
                    assert_eq!(bh.index(h, FastRange::new(m)), fam.index(i, key, m));
                }
            }
        }
    }

    #[test]
    fn sample16_covers_range() {
        let h = PairwiseHash::from_seed(5);
        let mut lo = false;
        let mut hi = false;
        for k in 0..10_000u64 {
            let s = h.sample16(k);
            if s < 8192 {
                lo = true;
            }
            if s > 57_344 {
                hi = true;
            }
        }
        assert!(lo && hi, "sample16 not covering the 16-bit range");
    }
}
