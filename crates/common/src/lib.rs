//! Shared primitives for the ChameleMon reproduction.
//!
//! This crate hosts the low-level building blocks that every other crate in
//! the workspace depends on:
//!
//! * [`prime`] — modular arithmetic over the Mersenne prime `p = 2^61 − 1`,
//!   including the Fermat-little-theorem inverse used by FermatSketch's
//!   pure-bucket verification (`f = IDsum · count^(p−2) mod p`).
//! * [`hash`] — a seeded, pairwise-independent hash family
//!   (`h(x) = ((a·x + b) mod p) mod m`) plus a strong 64-bit finalizer, the
//!   software analogue of the CRC-polynomial hash units on a Tofino switch.
//! * [`flowid`] — the [`FlowId`] trait that fragments a flow
//!   identifier into lanes small enough to be encoded in a single IDsum field
//!   (the paper's prototype splits a 104-bit 5-tuple across four 32-bit
//!   counters; we split across two 52-bit fragments under a 61-bit prime).
//! * [`metrics`] — the accuracy metrics of the paper's evaluation (ARE, F1
//!   score, RE, WMRE) in Appendix C.
//!
//! Everything here is deterministic given a seed, so experiments are
//! reproducible run-to-run.

#![forbid(unsafe_code)]

pub mod flowid;
pub mod hash;
pub mod metrics;
pub mod prime;

pub use flowid::{FiveTuple, FlowId};
pub use hash::{mix64, BatchHasher, FastRange, HashFamily, PairwiseHash};
pub use prime::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod, MERSENNE_P};
