//! Accuracy metrics from the paper's evaluation (Appendix C).
//!
//! * **ARE** — Average Relative Error over a flow set.
//! * **F1 score** — harmonic mean of precision and recall for detection tasks
//!   (heavy hitters, heavy changes, victim flows).
//! * **RE** — Relative Error of a scalar estimate (cardinality, entropy).
//! * **WMRE** — Weighted Mean Relative Error between two flow-size
//!   distributions.

use std::collections::HashMap;
use std::hash::Hash;

/// Average Relative Error: `(1/|Ω|) Σ |v_i − v̂_i| / v_i`.
///
/// `truth` defines the flow set Ω; flows absent from `estimate` are treated
/// as estimated 0 (relative error 1). Returns 0.0 for an empty Ω.
///
/// The per-flow terms are accumulated in sorted-key order: `HashMap`
/// iteration order is randomized per map instance, and float addition is
/// order-sensitive in the last ulp — sorting makes the metric a pure
/// function of its inputs, which the differential/golden-scenario tests
/// rely on (byte-identical JSON per seed).
pub fn average_relative_error<K: Eq + Hash + Ord>(
    truth: &HashMap<K, u64>,
    estimate: &HashMap<K, u64>,
) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut keyed: Vec<(&K, u64)> = truth.iter().map(|(k, &v)| (k, v)).collect();
    keyed.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut sum = 0.0;
    for (k, v) in keyed {
        let e = estimate.get(k).copied().unwrap_or(0);
        if v == 0 {
            continue;
        }
        sum += (v as f64 - e as f64).abs() / v as f64;
    }
    sum / truth.len() as f64
}

/// Precision, recall and F1 for a detection task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// Correct reports / all reports.
    pub precision: f64,
    /// Correct reports / all correct instances.
    pub recall: f64,
    /// `2·PR·RR / (PR + RR)`.
    pub f1: f64,
}

/// Scores a reported set against the ground-truth set.
///
/// Empty-set conventions: if both sets are empty the task was solved
/// perfectly (all scores 1); if only the report is empty recall is 0; if only
/// the truth is empty precision is 0.
pub fn detection_score<K: Eq + Hash>(
    reported: impl IntoIterator<Item = K>,
    truth: &std::collections::HashSet<K>,
) -> DetectionScore {
    // Dedup: reporters that track a flow in several places (e.g. a flow
    // occupying multiple HashPipe stages) must not count it twice.
    let reported: std::collections::HashSet<K> = reported.into_iter().collect();
    if reported.is_empty() && truth.is_empty() {
        return DetectionScore { precision: 1.0, recall: 1.0, f1: 1.0 };
    }
    let correct = reported.iter().filter(|k| truth.contains(k)).count() as f64;
    let precision = if reported.is_empty() { 0.0 } else { correct / reported.len() as f64 };
    let recall = if truth.is_empty() { 0.0 } else { correct / truth.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    DetectionScore { precision, recall, f1 }
}

/// Relative Error of a scalar: `|true − est| / true`.
pub fn relative_error(truth: f64, estimate: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (truth - estimate).abs() / truth.abs()
    }
}

/// Weighted Mean Relative Error between flow-size distributions
/// (`n[i]` = number of flows of size `i`):
/// `Σ|n_i − n̂_i| / Σ((n_i + n̂_i)/2)`.
pub fn wmre(truth: &[f64], estimate: &[f64]) -> f64 {
    let z = truth.len().max(estimate.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..z {
        let t = truth.get(i).copied().unwrap_or(0.0);
        let e = estimate.get(i).copied().unwrap_or(0.0);
        num += (t - e).abs();
        den += (t + e) / 2.0;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Empirical entropy of flow sizes: `−Σ (n_i · i / N) · log2(i / N)` with
/// `N = Σ i·n_i` (§4.2, entropy estimation).
pub fn size_entropy(dist: &[f64]) -> f64 {
    let n: f64 = dist.iter().enumerate().map(|(i, &c)| i as f64 * c).sum();
    if n <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for (i, &c) in dist.iter().enumerate().skip(1) {
        if c <= 0.0 {
            continue;
        }
        let p = i as f64 / n;
        h -= c * p * p.log2();
    }
    h
}

/// Builds a flow-size histogram (`out[s]` = #flows of size `s`) from exact
/// per-flow sizes; used to compute ground-truth distributions.
pub fn size_histogram<K>(sizes: &HashMap<K, u64>, max_size: usize) -> Vec<f64> {
    let mut hist = vec![0.0; max_size + 1];
    // chm-lint: allow(map-iter-order, "each flow adds exactly 1.0 to one bin; unit f64 increments are exact and commutative far below 2^53")
    for &v in sizes.values() {
        let s = (v as usize).min(max_size);
        hist[s] += 1.0;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn are_zero_for_perfect_estimate() {
        let truth: HashMap<u32, u64> = [(1, 10), (2, 20)].into();
        assert_eq!(average_relative_error(&truth, &truth.clone()), 0.0);
    }

    #[test]
    fn are_counts_missing_flows_as_full_error() {
        let truth: HashMap<u32, u64> = [(1, 10), (2, 20)].into();
        let est: HashMap<u32, u64> = [(1, 10)].into();
        assert!((average_relative_error(&truth, &est) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn are_empty_truth_is_zero() {
        let truth: HashMap<u32, u64> = HashMap::new();
        let est: HashMap<u32, u64> = [(1, 5)].into();
        assert_eq!(average_relative_error(&truth, &est), 0.0);
    }

    #[test]
    fn detection_perfect() {
        let truth: HashSet<u32> = [1, 2, 3].into();
        let s = detection_score(vec![1, 2, 3], &truth);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn detection_half_precision() {
        let truth: HashSet<u32> = [1].into();
        let s = detection_score(vec![1, 2], &truth);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn detection_empty_conventions() {
        let empty: HashSet<u32> = HashSet::new();
        assert_eq!(detection_score(Vec::<u32>::new(), &empty).f1, 1.0);
        assert_eq!(detection_score(vec![1], &empty).precision, 0.0);
        let truth: HashSet<u32> = [1].into();
        assert_eq!(detection_score(Vec::<u32>::new(), &truth).recall, 0.0);
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert!((relative_error(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(0.0, 1.0).is_infinite());
    }

    #[test]
    fn wmre_identical_distributions() {
        let d = vec![0.0, 5.0, 3.0, 1.0];
        assert_eq!(wmre(&d, &d), 0.0);
    }

    #[test]
    fn wmre_disjoint_distributions_is_two() {
        let a = vec![0.0, 10.0];
        let b = vec![0.0, 0.0, 10.0];
        assert!((wmre(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_sizes() {
        // 4 flows of size 1, N = 4, each term: -1 * (1/4) log2(1/4) => total 4 * 0.5 = 2
        let d = vec![0.0, 4.0];
        assert!((size_entropy(&d) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_empty_is_zero() {
        assert_eq!(size_entropy(&[]), 0.0);
        assert_eq!(size_entropy(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn histogram_clamps_to_max() {
        let sizes: HashMap<u32, u64> = [(1, 2), (2, 9)].into();
        let h = size_histogram(&sizes, 4);
        assert_eq!(h[2], 1.0);
        assert_eq!(h[4], 1.0);
    }
}
