//! MRAC — flow-size distribution estimation from a counter array via
//! Expectation-Maximization (Kumar et al., SIGMETRICS 2004; used by the
//! control plane in §4.2 "Flow size distribution estimation").
//!
//! Model: `n` flows are hashed uniformly into `m` counters; a counter's
//! value is the sum of the sizes of the flows that collide into it. Given
//! the observed histogram of counter values, EM alternates:
//!
//! * **E-step** — for each counter value `v`, enumerate the multisets of
//!   flow sizes that sum to `v` and weight them by their Poissonized
//!   probability `Π_s λ_s^{c_s} / c_s!` (with `λ_s = n_s/m`; the common
//!   `e^{−λ}` factor cancels in the conditional), yielding the expected
//!   number of flows of each size hidden in that counter.
//! * **M-step** — sum those expectations over all counters to get the new
//!   size distribution.
//!
//! **Substitution note (DESIGN.md):** full MRAC enumerates *all* partitions
//! of `v`, which is exponential; like practical reimplementations we cap the
//! number of colliding flows per counter ([`MracConfig::max_parts`], default
//! 3, and 2 beyond [`MracConfig::three_part_limit`]). At the load factors
//! the paper runs (≪ 1 flow/counter on the wide arrays) counters with ≥ 4
//! colliding flows are vanishingly rare, so the cap preserves the estimator's
//! behaviour while keeping the controller's epoch-time budget.

/// Tuning knobs for [`mrac_em`].
#[derive(Debug, Clone, Copy)]
pub struct MracConfig {
    /// Number of EM iterations.
    pub iterations: usize,
    /// Maximum flows assumed to collide in one counter (≥ 1).
    pub max_parts: usize,
    /// Counter values above this use at most 2 parts (keeps E-step
    /// quadratic only for small values).
    pub three_part_limit: usize,
}

impl Default for MracConfig {
    fn default() -> Self {
        MracConfig { iterations: 12, max_parts: 3, three_part_limit: 96 }
    }
}

impl MracConfig {
    /// A cheaper configuration for real-time monitoring (the paper suggests
    /// reducing iterations for more real-time estimates, §4.3 footnote).
    pub fn realtime() -> Self {
        MracConfig { iterations: 4, max_parts: 2, three_part_limit: 0 }
    }
}

/// Runs MRAC EM.
///
/// * `counter_hist[v]` — number of counters holding value `v` (index 0 =
///   empty counters).
/// * `m` — total number of counters in the array.
///
/// Returns `est[s]` = estimated number of flows of size `s` (index 0 unused).
pub fn mrac_em(counter_hist: &[f64], m: usize, cfg: &MracConfig) -> Vec<f64> {
    let vmax = counter_hist.len().saturating_sub(1);
    if vmax == 0 || m == 0 {
        return vec![0.0];
    }
    // Initial guess: no collisions (each non-zero counter is one flow).
    let mut n: Vec<f64> = counter_hist.to_vec();
    n[0] = 0.0;
    // Scratch buffer reused across counter values (cleared sparsely after
    // each value so the E-step stays O(Σ v) rather than O(vmax · #values)).
    let mut contrib = vec![0.0; vmax + 1];
    for _ in 0..cfg.iterations {
        let lambda: Vec<f64> = n.iter().map(|&c| c / m as f64).collect();
        let mut next = vec![0.0; vmax + 1];
        for v in 1..=vmax {
            let observed = counter_hist[v];
            if observed == 0.0 {
                continue;
            }
            // Enumerate partitions of v into at most `parts` parts, weight
            // each by Π λ_s^{c_s}/c_s!, and take the conditional expectation.
            let parts = if v <= cfg.three_part_limit {
                cfg.max_parts
            } else {
                cfg.max_parts.min(2)
            };
            let mut total_w = 0.0;
            // 1 part
            if lambda[v] > 0.0 {
                total_w += lambda[v];
                contrib[v] += lambda[v];
            }
            // 2 parts: s1 >= s2 >= 1, s1 + s2 = v
            if parts >= 2 {
                for s2 in 1..=v / 2 {
                    let s1 = v - s2;
                    let w = if s1 == s2 {
                        lambda[s1] * lambda[s2] / 2.0
                    } else {
                        lambda[s1] * lambda[s2]
                    };
                    if w > 0.0 {
                        total_w += w;
                        contrib[s1] += w;
                        contrib[s2] += w;
                    }
                }
            }
            // 3 parts: s1 >= s2 >= s3 >= 1
            if parts >= 3 {
                for s3 in 1..=v / 3 {
                    for s2 in s3..=(v - s3) / 2 {
                        let s1 = v - s2 - s3;
                        if s1 < s2 {
                            break;
                        }
                        let raw = lambda[s1] * lambda[s2] * lambda[s3];
                        if raw <= 0.0 {
                            continue;
                        }
                        // Multiset permutation correction 1/Π c_s!.
                        let w = if s1 == s2 && s2 == s3 {
                            raw / 6.0
                        } else if s1 == s2 || s2 == s3 {
                            raw / 2.0
                        } else {
                            raw
                        };
                        total_w += w;
                        contrib[s1] += w;
                        contrib[s2] += w;
                        contrib[s3] += w;
                    }
                }
            }
            if total_w > 0.0 {
                let scale = observed / total_w;
                for s in 1..=v {
                    if contrib[s] > 0.0 {
                        next[s] += contrib[s] * scale;
                    }
                }
            } else {
                // No partition has support (can happen after mass collapses);
                // fall back to the single-flow interpretation.
                next[v] += observed;
            }
            // Sparse clear of the scratch buffer for the next value.
            for c in contrib[1..=v].iter_mut() {
                *c = 0.0;
            }
        }
        n = next;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulates hashing flows into `m` counters and returns the histogram.
    fn simulate(m: usize, sizes: &[(usize, usize)], seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counters = vec![0usize; m];
        let mut truth = vec![0.0; 512];
        for &(size, count) in sizes {
            truth[size] += count as f64;
            for _ in 0..count {
                let j = rng.gen_range(0..m);
                counters[j] += size;
            }
        }
        let vmax = counters.iter().copied().max().unwrap_or(0);
        let mut hist = vec![0.0; vmax + 1];
        for &c in &counters {
            hist[c] += 1.0;
        }
        (hist, truth)
    }

    #[test]
    fn no_collisions_is_exact() {
        // Load << 1: histogram is the distribution.
        let (hist, truth) = simulate(100_000, &[(1, 500), (3, 100)], 1);
        let est = mrac_em(&hist, 100_000, &MracConfig::default());
        assert!((est[1] - truth[1]).abs() < 15.0, "est1={}", est[1]);
        assert!((est[3] - truth[3]).abs() < 10.0, "est3={}", est[3]);
    }

    #[test]
    fn collisions_are_deconvolved() {
        // Load 0.5: plain histogram over-reports size-2 counters; EM should
        // shift mass back to size 1.
        let (hist, truth) = simulate(2000, &[(1, 1000)], 2);
        let naive_size2 = hist.get(2).copied().unwrap_or(0.0);
        assert!(naive_size2 > 50.0, "collision setup broken: {naive_size2}");
        let est = mrac_em(&hist, 2000, &MracConfig::default());
        let err_naive = (hist[1] - truth[1]).abs();
        let err_em = (est[1] - truth[1]).abs();
        assert!(
            err_em < err_naive * 0.5,
            "EM err {err_em:.1} not better than naive {err_naive:.1}"
        );
    }

    #[test]
    fn total_flow_mass_is_preserved_roughly() {
        let (hist, truth) = simulate(4000, &[(1, 1500), (2, 300), (10, 50)], 3);
        let est = mrac_em(&hist, 4000, &MracConfig::default());
        let est_total: f64 = est.iter().sum();
        let truth_total: f64 = truth.iter().sum();
        let re = (est_total - truth_total).abs() / truth_total;
        assert!(re < 0.15, "est {est_total:.0} vs {truth_total:.0}");
    }

    #[test]
    fn empty_histogram() {
        assert_eq!(mrac_em(&[0.0], 10, &MracConfig::default()), vec![0.0]);
        assert_eq!(mrac_em(&[], 10, &MracConfig::default()), vec![0.0]);
        assert_eq!(mrac_em(&[5.0, 1.0], 0, &MracConfig::default()), vec![0.0]);
    }

    #[test]
    fn realtime_config_is_cheaper_but_sane() {
        let (hist, truth) = simulate(2000, &[(1, 800)], 4);
        let est = mrac_em(&hist, 2000, &MracConfig::realtime());
        let re = (est[1] - truth[1]).abs() / truth[1];
        assert!(re < 0.25, "realtime estimate off by {re:.2}");
    }
}
